"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import Integer, Real, Categorical, Space


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def mixed_space():
    """A small mixed-type space with a constraint, used across tests."""
    return Space(
        [
            Real("x", 0.0, 1.0),
            Integer("k", 1, 8),
            Categorical("alg", ["a", "b", "c"]),
        ],
        constraints=["k <= 6 or alg == 'a'"],
    )


@pytest.fixture
def toy_multitask_data(rng):
    """Smooth two-task data the LCM should fit well: y = sin(3x) + offset(t)."""
    X = rng.random((16, 1))
    tidx = np.array([0] * 8 + [1] * 8)
    y = np.sin(3.0 * X[:, 0]) + 0.5 * tidx + 0.02 * rng.normal(size=16)
    return X, y, tidx
