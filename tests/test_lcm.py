"""Unit tests for the Linear Coregionalization Model (repro.core.lcm)."""

import numpy as np
import pytest

from repro.core import LCM, GaussianProcess, LCMParams
from repro.core.kernels import pairwise_sq_diffs


class TestParams:
    def test_size(self):
        p = LCMParams(n_tasks=3, n_dims=2, n_latent=2)
        # Q*β + δ*Q (a) + δ*Q (b) + δ (d)
        assert p.size == 2 * 2 + 3 * 2 + 3 * 2 + 3

    def test_pack_unpack_roundtrip(self, rng):
        p = LCMParams(2, 3, 2)
        ls = np.exp(rng.normal(size=(2, 3)))
        a = rng.normal(size=(2, 2))
        bw = np.exp(rng.normal(size=(2, 2)))
        dn = np.exp(rng.normal(size=2))
        theta = p.pack(ls, a, bw, dn)
        assert theta.shape == (p.size,)
        ls2, a2, bw2, dn2 = p.unpack(theta)
        assert np.allclose(ls, ls2) and np.allclose(a, a2)
        assert np.allclose(bw, bw2) and np.allclose(dn, dn2)


class TestValidation:
    def test_q_bounds(self):
        with pytest.raises(ValueError):
            LCM(n_tasks=2, n_dims=1, n_latent=3)  # Q > δ
        with pytest.raises(ValueError):
            LCM(n_tasks=2, n_dims=1, n_latent=0)

    def test_default_q(self):
        assert LCM(n_tasks=5, n_dims=1).params.Q == 3
        assert LCM(n_tasks=2, n_dims=1).params.Q == 2

    def test_fit_validation(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, seed=0)
        with pytest.raises(ValueError):
            m.fit(X, y[:-1], tidx)
        with pytest.raises(ValueError):
            m.fit(X, y, np.full_like(tidx, 5))  # task id out of range

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LCM(1, 1).predict(0, np.zeros((1, 1)))

    def test_predict_bad_task(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, seed=0, n_start=1).fit(X, y, tidx)
        with pytest.raises(ValueError):
            m.predict(7, X[:1])


class TestGradient:
    def test_analytic_gradient_matches_fd(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=1, n_start=1)
        sqd = pairwise_sq_diffs(X)
        theta = m._initial_theta(y, restart=1)
        _, g = m._nll_and_grad(theta, sqd, y, tidx)
        eps = 1e-6
        num = np.zeros_like(theta)
        for k in range(theta.shape[0]):
            tp, tm = theta.copy(), theta.copy()
            tp[k] += eps
            tm[k] -= eps
            fp, _ = m._nll_and_grad(tp, sqd, y, tidx)
            fm, _ = m._nll_and_grad(tm, sqd, y, tidx)
            num[k] = (fp - fm) / (2 * eps)
        assert np.max(np.abs(g - num) / (1.0 + np.abs(num))) < 1e-5


class TestFitPredict:
    def test_fits_related_tasks(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=2).fit(X, y, tidx)
        mu0, var0 = m.predict(0, X[tidx == 0])
        assert np.max(np.abs(mu0 - y[tidx == 0])) < 0.15
        assert np.all(var0 >= 0)

    def test_single_task_matches_gp_quality(self, rng):
        """With δ=1 the LCM reduces to a GP and should fit as well."""
        X = np.linspace(0, 1, 14)[:, None]
        y = np.sin(5 * X[:, 0])
        lcm = LCM(1, 1, seed=0, n_start=2).fit(X, y, np.zeros(14, dtype=int))
        gp = GaussianProcess(seed=0, n_start=2).fit(X, y)
        mu_l, _ = lcm.predict(0, X)
        mu_g, _ = gp.predict(X)
        assert np.max(np.abs(mu_l - y)) < 0.1
        assert np.max(np.abs(mu_g - y)) < 0.1

    def test_transfer_between_identical_tasks(self, rng):
        """A task with few samples borrows from an identical, dense task."""
        f = lambda x: np.sin(6 * x)
        X_dense = np.linspace(0, 1, 20)[:, None]
        X_sparse = np.array([[0.1], [0.9]])
        X = np.vstack([X_dense, X_sparse])
        y = f(X[:, 0])
        tidx = np.array([0] * 20 + [1] * 2)
        m = LCM(2, 1, n_latent=1, seed=0, n_start=3).fit(X, y, tidx)
        Xq = np.array([[0.5]])
        mu, _ = m.predict(1, Xq)
        # a 2-point single-task GP could not know f(0.5); the LCM can
        assert abs(mu[0] - f(0.5)) < 0.35

    def test_task_correlation_matrix(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tidx)
        C = m.task_correlation()
        assert C.shape == (2, 2)
        assert np.allclose(np.diag(C), 1.0)
        assert np.all(np.abs(C) <= 1.0 + 1e-9)

    def test_executor_restarts_equivalent(self, toy_multitask_data):
        """Serial and executor-mapped restarts find the same optimum."""
        from repro.runtime.executor import ThreadBackend

        X, y, tidx = toy_multitask_data
        serial = LCM(2, 1, n_latent=1, seed=7, n_start=3).fit(X, y, tidx)
        with ThreadBackend(2) as ex:
            par = LCM(2, 1, n_latent=1, seed=7, n_start=3, executor=ex).fit(X, y, tidx)
        assert par.log_likelihood_ == pytest.approx(serial.log_likelihood_, rel=1e-6)

    def test_posterior_variance_zero_at_data(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tidx)
        _, var = m.predict(0, X[tidx == 0][:3])
        # small but not exactly zero because of the fitted noise d_i
        assert np.all(var < 0.5)


class TestExtendDrift:
    """Many incremental extends must not drift from a cold refactorization.

    The async driver absorbs streaming results via :meth:`LCM.extend` for up
    to ``refit_interval - 1`` rounds before the next full refit; block
    Cholesky updates that accumulated error would silently corrupt every
    acquisition decision in between.
    """

    def test_many_extends_match_cold_refactorize(self, rng):
        n_total, n0 = 60, 12
        X = rng.random((n_total, 2))
        tidx = rng.integers(0, 3, size=n_total)
        tidx[:3] = [0, 1, 2]  # every task observed in the seed block
        y = (
            np.sin(3 * X[:, 0])
            + 0.4 * np.cos(2 * X[:, 1])
            + 0.3 * tidx
            + 0.05 * rng.normal(size=n_total)
        )

        def pinned(n):
            """Model over X[:n] at a fixed θ with a healthy noise term.

            The seed fit's θ interpolates its 12 points (d_i ≈ 0), which
            makes the extended system ill-conditioned and would measure
            jitter-escalation differences, not block-update drift.
            """
            m = LCM(3, 2, seed=0, n_start=1).fit(X[:n0], y[:n0], tidx[:n0])
            ls, a, bw, dn = m.params.unpack(m.theta)
            m.theta = m.params.pack(ls, a, bw, np.maximum(dn, 1e-2))
            m.X, m.y, m.task_index = X[:n].copy(), y[:n].copy(), tidx[:n].copy()
            m._pred_cache, m._batch_cache, m._same_cache = {}, {}, None
            m._refactorize(pairwise_sq_diffs(m.X))
            return m

        inc = pinned(n0)
        for i in range(n0, n_total):  # one observation at a time: worst case
            inc.extend(X[i : i + 1], y[i : i + 1], tidx[i : i + 1])

        cold = pinned(n_total)
        assert np.array_equal(cold.theta, inc.theta)

        # _refactorize does not refresh log_likelihood_; compute it from the
        # cold factor for the comparison
        cold_ll = -(
            0.5 * float(cold.y @ cold._alpha)
            + float(np.log(np.diag(cold._L)).sum())
            + 0.5 * n_total * np.log(2 * np.pi)
        )
        assert inc.log_likelihood_ == pytest.approx(cold_ll, abs=1e-8)
        Xs = rng.random((20, 2))
        for t in range(3):
            mu_i, var_i = inc.predict(t, Xs)
            mu_c, var_c = cold.predict(t, Xs)
            assert np.allclose(mu_i, mu_c, atol=1e-8)
            assert np.allclose(var_i, var_c, atol=1e-8)

    def test_batched_extend_matches_one_shot(self, rng):
        """Extending in chunks equals extending everything at once."""
        X = rng.random((40, 1))
        tidx = np.array([0, 1] * 20)
        y = np.sin(5 * X[:, 0]) + 0.2 * tidx

        a = LCM(2, 1, seed=0, n_start=1).fit(X[:10], y[:10], tidx[:10])
        b = LCM(2, 1, seed=0, n_start=1).fit(X[:10], y[:10], tidx[:10])
        a.extend(X[10:], y[10:], tidx[10:])
        for lo in range(10, 40, 5):
            b.extend(X[lo : lo + 5], y[lo : lo + 5], tidx[lo : lo + 5])

        Xs = rng.random((10, 1))
        for t in range(2):
            mu_a, var_a = a.predict(t, Xs)
            mu_b, var_b = b.predict(t, Xs)
            assert np.allclose(mu_a, mu_b, atol=1e-8)
            assert np.allclose(var_a, var_b, atol=1e-8)


class TestDistributedCholRouting:
    """LCM(chol_ranks=p) routes factorization through the simulated
    parallel Cholesky without changing the posterior."""

    def test_matches_serial_posterior(self, toy_multitask_data, rng):
        X, y, tidx = toy_multitask_data
        serial = LCM(2, 1, seed=0, n_start=1).fit(X, y, tidx)
        dist = LCM(2, 1, seed=0, n_start=1, chol_ranks=2).fit(X, y, tidx)
        assert np.array_equal(serial.theta, dist.theta)
        assert dist.chol_makespan_ > 0.0
        assert serial.chol_makespan_ == 0.0  # never took the distributed path
        Xs = rng.random((10, 1))
        for t in range(2):
            mu_s, var_s = serial.predict(t, Xs)
            mu_d, var_d = dist.predict(t, Xs)
            assert np.allclose(mu_s, mu_d, atol=1e-9)
            assert np.allclose(var_s, var_d, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            LCM(2, 1, chol_ranks=0)
