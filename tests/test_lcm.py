"""Unit tests for the Linear Coregionalization Model (repro.core.lcm)."""

import numpy as np
import pytest

from repro.core import LCM, GaussianProcess, LCMParams
from repro.core.kernels import pairwise_sq_diffs


class TestParams:
    def test_size(self):
        p = LCMParams(n_tasks=3, n_dims=2, n_latent=2)
        # Q*β + δ*Q (a) + δ*Q (b) + δ (d)
        assert p.size == 2 * 2 + 3 * 2 + 3 * 2 + 3

    def test_pack_unpack_roundtrip(self, rng):
        p = LCMParams(2, 3, 2)
        ls = np.exp(rng.normal(size=(2, 3)))
        a = rng.normal(size=(2, 2))
        bw = np.exp(rng.normal(size=(2, 2)))
        dn = np.exp(rng.normal(size=2))
        theta = p.pack(ls, a, bw, dn)
        assert theta.shape == (p.size,)
        ls2, a2, bw2, dn2 = p.unpack(theta)
        assert np.allclose(ls, ls2) and np.allclose(a, a2)
        assert np.allclose(bw, bw2) and np.allclose(dn, dn2)


class TestValidation:
    def test_q_bounds(self):
        with pytest.raises(ValueError):
            LCM(n_tasks=2, n_dims=1, n_latent=3)  # Q > δ
        with pytest.raises(ValueError):
            LCM(n_tasks=2, n_dims=1, n_latent=0)

    def test_default_q(self):
        assert LCM(n_tasks=5, n_dims=1).params.Q == 3
        assert LCM(n_tasks=2, n_dims=1).params.Q == 2

    def test_fit_validation(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, seed=0)
        with pytest.raises(ValueError):
            m.fit(X, y[:-1], tidx)
        with pytest.raises(ValueError):
            m.fit(X, y, np.full_like(tidx, 5))  # task id out of range

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LCM(1, 1).predict(0, np.zeros((1, 1)))

    def test_predict_bad_task(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, seed=0, n_start=1).fit(X, y, tidx)
        with pytest.raises(ValueError):
            m.predict(7, X[:1])


class TestGradient:
    def test_analytic_gradient_matches_fd(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=1, n_start=1)
        sqd = pairwise_sq_diffs(X)
        theta = m._initial_theta(y, restart=1)
        _, g = m._nll_and_grad(theta, sqd, y, tidx)
        eps = 1e-6
        num = np.zeros_like(theta)
        for k in range(theta.shape[0]):
            tp, tm = theta.copy(), theta.copy()
            tp[k] += eps
            tm[k] -= eps
            fp, _ = m._nll_and_grad(tp, sqd, y, tidx)
            fm, _ = m._nll_and_grad(tm, sqd, y, tidx)
            num[k] = (fp - fm) / (2 * eps)
        assert np.max(np.abs(g - num) / (1.0 + np.abs(num))) < 1e-5


class TestFitPredict:
    def test_fits_related_tasks(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=2).fit(X, y, tidx)
        mu0, var0 = m.predict(0, X[tidx == 0])
        assert np.max(np.abs(mu0 - y[tidx == 0])) < 0.15
        assert np.all(var0 >= 0)

    def test_single_task_matches_gp_quality(self, rng):
        """With δ=1 the LCM reduces to a GP and should fit as well."""
        X = np.linspace(0, 1, 14)[:, None]
        y = np.sin(5 * X[:, 0])
        lcm = LCM(1, 1, seed=0, n_start=2).fit(X, y, np.zeros(14, dtype=int))
        gp = GaussianProcess(seed=0, n_start=2).fit(X, y)
        mu_l, _ = lcm.predict(0, X)
        mu_g, _ = gp.predict(X)
        assert np.max(np.abs(mu_l - y)) < 0.1
        assert np.max(np.abs(mu_g - y)) < 0.1

    def test_transfer_between_identical_tasks(self, rng):
        """A task with few samples borrows from an identical, dense task."""
        f = lambda x: np.sin(6 * x)
        X_dense = np.linspace(0, 1, 20)[:, None]
        X_sparse = np.array([[0.1], [0.9]])
        X = np.vstack([X_dense, X_sparse])
        y = f(X[:, 0])
        tidx = np.array([0] * 20 + [1] * 2)
        m = LCM(2, 1, n_latent=1, seed=0, n_start=3).fit(X, y, tidx)
        Xq = np.array([[0.5]])
        mu, _ = m.predict(1, Xq)
        # a 2-point single-task GP could not know f(0.5); the LCM can
        assert abs(mu[0] - f(0.5)) < 0.35

    def test_task_correlation_matrix(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tidx)
        C = m.task_correlation()
        assert C.shape == (2, 2)
        assert np.allclose(np.diag(C), 1.0)
        assert np.all(np.abs(C) <= 1.0 + 1e-9)

    def test_executor_restarts_equivalent(self, toy_multitask_data):
        """Serial and executor-mapped restarts find the same optimum."""
        from repro.runtime.executor import ThreadBackend

        X, y, tidx = toy_multitask_data
        serial = LCM(2, 1, n_latent=1, seed=7, n_start=3).fit(X, y, tidx)
        with ThreadBackend(2) as ex:
            par = LCM(2, 1, n_latent=1, seed=7, n_start=3, executor=ex).fit(X, y, tidx)
        assert par.log_likelihood_ == pytest.approx(serial.log_likelihood_, rel=1e-6)

    def test_posterior_variance_zero_at_data(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tidx)
        _, var = m.predict(0, X[tidx == 0][:3])
        # small but not exactly zero because of the fitted noise d_i
        assert np.all(var < 0.5)
