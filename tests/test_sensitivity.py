"""Tests for Sobol sensitivity analysis (repro.core.sensitivity)."""

import numpy as np
import pytest

from repro.core import (
    GPTune,
    Integer,
    LCM,
    Options,
    Real,
    Space,
    TuningProblem,
    sobol_indices,
    surrogate_sensitivity,
)


class TestSobolIndices:
    def test_additive_function_known_indices(self):
        """f = a·x1 + b·x2 with uniform inputs: S_i = a_i²/(a²+b²)."""
        a, b = 3.0, 1.0

        def f(U):
            return a * U[:, 0] + b * U[:, 1]

        idx = sobol_indices(f, 2, n_base=8192, seed=0)
        expect = np.array([a**2, b**2]) / (a**2 + b**2)
        assert np.allclose(idx["S1"], expect, atol=0.08)
        assert np.allclose(idx["ST"], expect, atol=0.08)  # no interactions
        assert idx["S1"][0] > idx["S1"][1]

    def test_pure_interaction(self):
        """f = (x1−½)(x2−½): first-order ~0, total-order ~1 for both."""

        def f(U):
            return (U[:, 0] - 0.5) * (U[:, 1] - 0.5)

        idx = sobol_indices(f, 2, n_base=4096, seed=1)
        assert np.all(idx["S1"] < 0.1)
        assert np.all(idx["ST"] > 0.8)

    def test_irrelevant_dimension_zero(self):
        def f(U):
            return np.sin(4 * U[:, 0])

        idx = sobol_indices(f, 3, n_base=2048, seed=2)
        assert idx["ST"][0] > 0.9
        assert idx["ST"][1] < 0.05 and idx["ST"][2] < 0.05

    def test_constant_function(self):
        idx = sobol_indices(lambda U: np.ones(U.shape[0]), 2, n_base=256, seed=3)
        assert np.allclose(idx["S1"], 0.0) and np.allclose(idx["ST"], 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sobol_indices(lambda U: U[:, 0], 0)
        with pytest.raises(ValueError):
            sobol_indices(lambda U: U[:, 0], 2, n_base=4)

    def test_clipped_to_unit_interval(self):
        rng_f = np.random.default_rng(5)

        def noisy(U):
            return rng_f.normal(size=U.shape[0])  # pure noise: wild estimates

        idx = sobol_indices(noisy, 2, n_base=64, seed=4)
        assert np.all((0 <= idx["S1"]) & (idx["S1"] <= 1))
        assert np.all((0 <= idx["ST"]) & (idx["ST"] <= 1))


class TestSurrogateSensitivity:
    def test_identifies_dominant_parameter(self):
        """Tune y = (x − .5)² + 0.01·k; x must dominate the sensitivity."""
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Real("x", 0.0, 1.0), Integer("k", 0, 9)])
        prob = TuningProblem(
            ts, ps, lambda t, c: (c["x"] - 0.5) ** 2 + 0.001 * c["k"] + 0.01
        )
        res = GPTune(prob, Options(seed=0, n_start=2, pso_iters=5, ei_candidates=10)).tune(
            [{"t": 1}], 16
        )
        sens = surrogate_sensitivity(res.models[0], res.data, task=0, n_base=512, seed=0)
        names = list(sens)
        assert names[0] == "x"  # sorted by total-order index
        assert sens["x"]["ST"] > sens["k"]["ST"]

    def test_enriched_model_rejected(self):
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(ts, ps, lambda t, c: c["x"] ** 2 + 0.01)
        from repro.core import TuningData

        data = TuningData(ts, ps, [{"t": 1}])
        lcm = LCM(1, 3, seed=0, n_start=1)  # 3 dims ≠ 1-dim tuning space
        rng = np.random.default_rng(0)
        lcm.fit(rng.random((6, 3)), rng.random(6), np.zeros(6, dtype=int))
        with pytest.raises(ValueError):
            surrogate_sensitivity(lcm, data, 0)
