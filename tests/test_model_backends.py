"""Tests for the surrogate-backend subsystem (repro.core.model).

Covers the backend registry and auto-selection policy, inducing-point
selection, the sparse Nyström/SoR LCM against the exact LCM, the explicit
per-task GP backend, Options validation for the new knobs, driver-level
integration (forced and auto-escalating campaigns), and the backend
partitioning of the surrogate cache.
"""

import copy

import numpy as np
import pytest

from repro.core import (
    GPTune,
    Integer,
    LCM,
    Options,
    PerTaskGP,
    Real,
    Space,
    SparseLCM,
    TuningProblem,
    available_backends,
    get_backend,
    register_backend,
    select_backend,
)
from repro.core.model.inducing import max_min_indices, select_inducing
from repro.core.model.registry import BackendSpec
from repro.service.modelcache import CachedFit, SurrogateCache


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def sparse_data(rng):
    """Three-task smooth data, large enough for a meaningful inducing set."""
    n_per = 40
    X = rng.random((3 * n_per, 2))
    tidx = np.repeat(np.arange(3), n_per)
    y = (
        np.sin(3.0 * X[:, 0])
        + 0.5 * np.cos(2.0 * X[:, 1])
        + 0.3 * tidx
        + 0.02 * rng.normal(size=3 * n_per)
    )
    return X, y, tidx


def _toy_problem():
    def objective(task, config):
        x = float(config["x"])
        mu = 0.2 + 0.06 * float(task["t"])
        return 1.0 + (x - mu) ** 2

    return TuningProblem(
        Space([Integer("t", 0, 8)]), Space([Real("x", 0.0, 1.0)]), objective
    )


def _fast_options(**kw):
    base = dict(seed=3, n_start=1, pso_iters=5, ei_candidates=8, lbfgs_maxiter=30)
    base.update(kw)
    return Options(**base)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtin_backends(self):
        names = available_backends()
        assert "exact-lcm" in names
        assert "sparse-lcm" in names
        assert "gp" in names

    def test_get_backend_spec(self):
        spec = get_backend("sparse-lcm")
        assert spec.name == "sparse-lcm"
        assert spec.supports_theta
        assert callable(spec.factory)
        assert not get_backend("gp").supports_theta

    def test_unknown_backend_lists_known(self):
        with pytest.raises(ValueError, match="exact-lcm"):
            get_backend("nope")

    def test_register_rejects_auto_and_duplicates(self):
        spec = BackendSpec(
            name="auto", factory=lambda *a: None, supports_theta=False,
            description="reserved",
        )
        with pytest.raises(ValueError):
            register_backend(spec)
        dup = BackendSpec(
            name="gp", factory=lambda *a: None, supports_theta=False,
            description="dup",
        )
        with pytest.raises(ValueError):
            register_backend(dup)

    def test_register_replace_roundtrip(self):
        original = get_backend("gp")
        marker = BackendSpec(
            name="gp", factory=lambda *a: None, supports_theta=False,
            description="replaced for test",
        )
        register_backend(marker, replace=True)
        try:
            assert get_backend("gp").description == "replaced for test"
        finally:
            register_backend(original, replace=True)
        assert get_backend("gp") is original

    def test_select_backend_policy(self):
        # explicit preference always wins
        assert select_backend("exact-lcm", 10_000, 512) == "exact-lcm"
        assert select_backend("sparse-lcm", 4, 512) == "sparse-lcm"
        assert select_backend("gp", 10_000, 512) == "gp"
        # auto escalates strictly past the threshold
        assert select_backend("auto", 512, 512) == "exact-lcm"
        assert select_backend("auto", 513, 512) == "sparse-lcm"
        assert select_backend("auto", 0, 512) == "exact-lcm"

    def test_select_backend_unknown_preference(self):
        with pytest.raises(ValueError):
            select_backend("nope", 100, 512)


# ---------------------------------------------------------------------------
# inducing-point selection
# ---------------------------------------------------------------------------

class TestInducing:
    def test_max_min_deterministic_and_sorted(self, rng):
        X = rng.random((50, 3))
        idx1 = max_min_indices(X, 10)
        idx2 = max_min_indices(X, 10)
        assert np.array_equal(idx1, idx2)
        assert np.array_equal(idx1, np.sort(idx1))
        assert len(set(idx1.tolist())) == 10

    def test_max_min_spreads_points(self, rng):
        """Greedy farthest-point beats a random subset on min pairwise gap."""
        X = rng.random((200, 2))
        idx = max_min_indices(X, 12)
        sel = X[idx]
        d = np.linalg.norm(sel[:, None] - sel[None], axis=-1)
        np.fill_diagonal(d, np.inf)
        rand = X[rng.choice(200, size=12, replace=False)]
        dr = np.linalg.norm(rand[:, None] - rand[None], axis=-1)
        np.fill_diagonal(dr, np.inf)
        assert d.min() >= dr.min()

    def test_max_min_m_clamps_to_n(self, rng):
        X = rng.random((5, 2))
        assert np.array_equal(max_min_indices(X, 99), np.arange(5))

    def test_select_inducing_covers_every_task(self, rng):
        X = rng.random((90, 2))
        tidx = np.repeat(np.arange(3), 30)
        idx = select_inducing(X, tidx, 12)
        assert len(idx) == 12
        assert set(np.unique(tidx[idx])) == {0, 1, 2}
        assert np.array_equal(idx, np.sort(idx))

    def test_select_inducing_proportional_quotas(self, rng):
        """An 80/10/10 split keeps roughly proportional inducing shares."""
        X = rng.random((100, 2))
        tidx = np.array([0] * 80 + [1] * 10 + [2] * 10)
        idx = select_inducing(X, tidx, 20)
        counts = np.bincount(tidx[idx], minlength=3)
        assert counts[0] >= 14  # ~16 expected
        assert counts[1] >= 1 and counts[2] >= 1

    def test_select_inducing_deterministic(self, rng):
        X = rng.random((60, 2))
        tidx = np.repeat(np.arange(2), 30)
        assert np.array_equal(
            select_inducing(X, tidx, 16), select_inducing(X, tidx, 16)
        )


# ---------------------------------------------------------------------------
# SparseLCM numerics
# ---------------------------------------------------------------------------

class TestSparseLCM:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparseLCM(n_tasks=2, n_dims=1, n_inducing=1)
        m = SparseLCM(2, 1, n_inducing=8, seed=0)
        with pytest.raises(RuntimeError):
            m.predict(0, np.zeros((1, 1)))
        X = np.random.default_rng(0).random((6, 1))
        with pytest.raises(ValueError):
            m.fit(X, np.zeros(5), np.zeros(6, dtype=int))
        with pytest.raises(ValueError):
            m.fit(X, np.zeros(6), np.full(6, 7))

    def test_agrees_with_exact_on_smooth_data(self, sparse_data):
        """With a generous inducing set the SoR posterior tracks the exact one."""
        X, y, tidx = sparse_data
        exact = LCM(3, 2, seed=0, n_start=1).fit(X, y, tidx)
        sp = SparseLCM(3, 2, n_inducing=60, seed=0, n_start=1).fit(X, y, tidx)
        Xs = np.random.default_rng(7).random((25, 2))
        for t in range(3):
            me, _ = exact.predict(t, Xs)
            ms, vs = sp.predict(t, Xs)
            assert np.all(vs >= 0.0)
            rmse = float(np.sqrt(np.mean((me - ms) ** 2)))
            assert rmse < 0.1 * float(np.std(y))

    def test_collapses_to_exact_when_m_covers_n(self, rng):
        """M >= N makes Z = X, so SoR equals the exact posterior at equal θ.

        Agreement is limited by the jitter added to K_mm amplified through
        its condition number, so the tolerance is loose-ish (2e-4) rather
        than machine precision.
        """
        n_per = 12
        X = rng.random((3 * n_per, 2))
        tidx = np.repeat(np.arange(3), n_per)
        y = (
            np.sin(3 * X[:, 0]) + 0.5 * np.cos(2 * X[:, 1]) + 0.3 * tidx
            + 0.05 * rng.normal(size=3 * n_per)
        )
        exact = LCM(3, 2, seed=0, n_start=1).fit(X, y, tidx)
        sp = SparseLCM(3, 2, n_inducing=80, seed=0, n_start=1)
        sp.fit(X, y, tidx, theta0=exact.theta)
        assert sp.Z.shape[0] == 3 * n_per
        # pin θ to the exact optimum so the comparison isolates the SoR
        # algebra from the (slightly different) subset re-optimization
        sp.theta = exact.theta.copy()
        sp._pred_cache, sp._batch_cache = {}, {}
        sp._assemble()
        Xs = rng.random((15, 2))
        for t in range(3):
            me, ve = exact.predict(t, Xs)
            ms, vs = sp.predict(t, Xs)
            assert np.allclose(me, ms, atol=2e-4)
            assert np.allclose(ve, vs, atol=2e-4)

    def test_predict_tasks_matches_predict(self, sparse_data):
        X, y, tidx = sparse_data
        sp = SparseLCM(3, 2, n_inducing=24, seed=0, n_start=1).fit(X, y, tidx)
        rng = np.random.default_rng(11)
        # shared 2-D block
        Xs = rng.random((12, 2))
        mu_b, var_b = sp.predict_tasks([0, 1, 2], Xs)
        for t in range(3):
            mu, var = sp.predict(t, Xs)
            assert np.allclose(mu_b[t], mu, atol=1e-10)
            assert np.allclose(var_b[t], var, atol=1e-10)
        # per-task 3-D block
        Xs3 = rng.random((3, 9, 2))
        mu_b3, var_b3 = sp.predict_tasks([0, 1, 2], Xs3)
        for t in range(3):
            mu, var = sp.predict(t, Xs3[t])
            assert np.allclose(mu_b3[t], mu, atol=1e-10)
            assert np.allclose(var_b3[t], var, atol=1e-10)

    def test_extend_matches_fresh_assemble(self, sparse_data, rng):
        """The rank-M information update equals rebuilding from all data.

        Agreement is limited by the conditioning of A = Kmm + KnmᵀΛ⁻¹Knm
        (Λ⁻¹ is large when the fitted noise is small), so the tolerance is
        1e-5 on predictions rather than machine precision.
        """
        X, y, tidx = sparse_data
        n0 = 90
        sp = SparseLCM(3, 2, n_inducing=24, seed=0, n_start=1)
        sp.fit(X[:n0], y[:n0], tidx[:n0])
        sp.extend(X[n0:], y[n0:], tidx[n0:])

        fresh = SparseLCM(3, 2, n_inducing=24, seed=0, n_start=1)
        fresh.fit(X[:n0], y[:n0], tidx[:n0])
        fresh.X = X.copy()
        fresh.y = y.copy()
        fresh.task_index = tidx.copy()
        fresh._assemble()

        Xs = rng.random((15, 2))
        for t in range(3):
            m1, v1 = sp.predict(t, Xs)
            m2, v2 = fresh.predict(t, Xs)
            assert np.allclose(m1, m2, atol=1e-5)
            assert np.allclose(v1, v2, atol=1e-5)

    def test_extend_validation(self, sparse_data):
        X, y, tidx = sparse_data
        sp = SparseLCM(3, 2, n_inducing=16, seed=0, n_start=1)
        with pytest.raises(RuntimeError):
            sp.extend(X[:1], y[:1], tidx[:1])
        sp.fit(X, y, tidx)
        with pytest.raises(ValueError):
            sp.extend(X[:2], y[:1], tidx[:2])
        with pytest.raises(ValueError):
            sp.extend(X[:1], y[:1], [9])

    def test_deepcopy_and_extend_for_constant_liar(self, sparse_data):
        """The async driver's constant-liar path deepcopies then extends."""
        X, y, tidx = sparse_data
        sp = SparseLCM(3, 2, n_inducing=16, seed=0, n_start=1).fit(X, y, tidx)
        clone = copy.deepcopy(sp)
        clone.extend(X[:2] + 0.01, y[:2], tidx[:2])
        # the original is untouched
        assert sp.X.shape[0] == X.shape[0]
        assert clone.X.shape[0] == X.shape[0] + 2
        mu, var = clone.predict(0, X[:4])
        assert np.all(np.isfinite(mu)) and np.all(var >= 0)

    def test_warm_start_determinism(self, sparse_data):
        X, y, tidx = sparse_data
        a = SparseLCM(3, 2, n_inducing=20, seed=42, n_start=1).fit(X, y, tidx)
        b = SparseLCM(3, 2, n_inducing=20, seed=42, n_start=1).fit(X, y, tidx)
        assert np.array_equal(a.theta, b.theta)
        assert a.log_likelihood_ == b.log_likelihood_

    def test_task_correlation_shape(self, sparse_data):
        X, y, tidx = sparse_data
        sp = SparseLCM(3, 2, n_inducing=16, seed=0, n_start=1).fit(X, y, tidx)
        C = sp.task_correlation()
        assert C.shape == (3, 3)
        assert np.allclose(np.diag(C), 1.0)


# ---------------------------------------------------------------------------
# PerTaskGP backend
# ---------------------------------------------------------------------------

class TestPerTaskGP:
    def test_fit_predict(self, sparse_data):
        X, y, tidx = sparse_data
        m = PerTaskGP(3, 2, seed=0, n_start=1).fit(X, y, tidx)
        assert m.theta is None
        assert not hasattr(m, "predict_tasks")
        assert np.isfinite(m.log_likelihood_)
        mu, var = m.predict(1, X[:5])
        assert mu.shape == (5,) and np.all(var >= 0)

    def test_deterministic(self, sparse_data):
        X, y, tidx = sparse_data
        a = PerTaskGP(3, 2, seed=9, n_start=1).fit(X, y, tidx)
        b = PerTaskGP(3, 2, seed=9, n_start=1).fit(X, y, tidx)
        mu_a, _ = a.predict(0, X[:6])
        mu_b, _ = b.predict(0, X[:6])
        assert np.array_equal(mu_a, mu_b)


# ---------------------------------------------------------------------------
# Options validation (satellite: numeric knob guards)
# ---------------------------------------------------------------------------

class TestOptionsValidation:
    def test_model_backend_validated(self):
        Options(model_backend="auto")
        Options(model_backend="sparse-lcm")
        with pytest.raises(ValueError, match="model_backend"):
            Options(model_backend="bogus")

    def test_n_inducing_floor(self):
        Options(n_inducing=2)
        with pytest.raises(ValueError, match="n_inducing"):
            Options(n_inducing=1)

    def test_sparse_threshold_floor(self):
        with pytest.raises(ValueError, match="sparse_threshold"):
            Options(sparse_threshold=0)

    def test_existing_floors_still_enforced(self):
        with pytest.raises(ValueError, match="max_inflight"):
            Options(max_inflight=0)
        with pytest.raises(ValueError, match="refit_interval"):
            Options(refit_interval=0)

    def test_chol_ranks_guard(self):
        Options(chol_ranks=None)
        Options(chol_ranks=4)
        with pytest.raises(ValueError, match="chol_ranks"):
            Options(chol_ranks=0)


# ---------------------------------------------------------------------------
# driver integration
# ---------------------------------------------------------------------------

class TestDriverIntegration:
    def test_forced_sparse_campaign(self):
        prob = _toy_problem()
        tasks = [{"t": i} for i in range(3)]
        opts = _fast_options(model_backend="sparse-lcm", n_inducing=8)
        res = GPTune(prob, opts).tune(tasks, 8)
        assert all(isinstance(m, SparseLCM) for m in res.models)
        events = res.events.of_kind("model-backend")
        assert events and events[0].fields["backend"] == "sparse-lcm"
        assert all(np.isfinite(v) for v in res.best_values())

    def test_auto_escalates_mid_campaign(self):
        """Crossing sparse_threshold mid-run switches exact -> sparse."""
        prob = _toy_problem()
        tasks = [{"t": i} for i in range(3)]
        opts = _fast_options(
            model_backend="auto", sparse_threshold=18, n_inducing=8
        )
        res = GPTune(prob, opts).tune(tasks, 10)
        backends = [e.fields["backend"] for e in res.events.of_kind("model-backend")]
        assert backends == ["exact-lcm", "sparse-lcm"]
        assert isinstance(res.models[0], SparseLCM)

    def test_small_campaign_stays_exact(self):
        prob = _toy_problem()
        tasks = [{"t": i} for i in range(2)]
        res = GPTune(prob, _fast_options(model_backend="auto")).tune(tasks, 6)
        assert all(isinstance(m, LCM) for m in res.models)
        backends = [e.fields["backend"] for e in res.events.of_kind("model-backend")]
        assert backends == ["exact-lcm"]

    def test_gp_backend_campaign(self):
        prob = _toy_problem()
        tasks = [{"t": i} for i in range(2)]
        res = GPTune(prob, _fast_options(model_backend="gp")).tune(tasks, 6)
        assert all(isinstance(m, PerTaskGP) for m in res.models)
        # PerTaskGP has no predict_tasks, so the batched search mode is off
        modes = {e.fields["mode"] for e in res.events.of_kind("search-mode")}
        assert "batched" not in modes

    def test_sparse_campaign_seed_reproducible(self):
        prob = _toy_problem()
        tasks = [{"t": i} for i in range(3)]

        def run():
            opts = _fast_options(model_backend="sparse-lcm", n_inducing=8)
            return GPTune(prob, opts).tune(tasks, 8)

        r1, r2 = run(), run()
        assert r1.data.to_records() == r2.data.to_records()
        assert np.allclose(r1.best_values(), r2.best_values())

    def test_model_fit_events_carry_backend(self):
        prob = _toy_problem()
        tasks = [{"t": i} for i in range(2)]
        opts = _fast_options(model_backend="sparse-lcm", n_inducing=8)
        res = GPTune(prob, opts).tune(tasks, 6)
        fits = res.events.of_kind("model-fit")
        assert fits and all(e.fields.get("backend") == "sparse-lcm" for e in fits)


# ---------------------------------------------------------------------------
# surrogate-cache backend partitioning (satellite)
# ---------------------------------------------------------------------------

class TestCacheBackendPartition:
    def _fit(self, backend, n_inducing, fps=("a", "b")):
        return CachedFit(
            "prob", 0, 2, 3, 2, [0.1] * 13, -1.0, fps,
            backend=backend, n_inducing=n_inducing,
        )

    def test_keys_differ_across_backends(self):
        exact = self._fit("exact-lcm", 0)
        sparse = self._fit("sparse-lcm", 64)
        sparse2 = self._fit("sparse-lcm", 128)
        assert len({exact.key, sparse.key, sparse2.key}) == 3

    def test_lookup_partitions_by_backend(self, tmp_path):
        cache = SurrogateCache(str(tmp_path / "cache.jsonl"))
        cache.put(self._fit("exact-lcm", 0))
        cache.put(self._fit("sparse-lcm", 64))
        fps = ["a", "b"]
        hit = cache.lookup("prob", 0, fps, 2, 3, 2, backend="exact-lcm")
        assert hit is not None and hit.backend == "exact-lcm"
        hit = cache.lookup(
            "prob", 0, fps, 2, 3, 2, backend="sparse-lcm", n_inducing=64
        )
        assert hit is not None and hit.backend == "sparse-lcm"
        # a sparse fit with a different inducing count is not a warm start
        assert cache.lookup(
            "prob", 0, fps, 2, 3, 2, backend="sparse-lcm", n_inducing=128
        ) is None
        assert cache.lookup("prob", 0, fps, 2, 3, 2, backend="gp") is None

    def test_legacy_rows_load_as_exact(self):
        row = self._fit("exact-lcm", 0).to_json()
        del row["backend"], row["n_inducing"]
        fit = CachedFit.from_json(row)
        assert fit.backend == "exact-lcm" and fit.n_inducing == 0
        assert fit.key == self._fit("exact-lcm", 0).key

    def test_json_roundtrip_preserves_backend(self):
        fit = self._fit("sparse-lcm", 32)
        again = CachedFit.from_json(fit.to_json())
        assert again.backend == "sparse-lcm"
        assert again.n_inducing == 32
        assert again.key == fit.key
