"""Edge-case coverage for the MLA driver's feature combinations."""

import numpy as np
import pytest

from repro.core import (
    GPTune,
    HistoryDB,
    Integer,
    LinearPerformanceModel,
    Options,
    Real,
    Space,
    TuningProblem,
)

FAST = Options(
    seed=0, n_start=1, pso_iters=6, ei_candidates=10, lbfgs_maxiter=40,
    nsga_pop=12, nsga_gens=5, pareto_batch=2,
)


def _mo_problem_with_models():
    ts = Space([Integer("t", 1, 4)])
    ps = Space([Real("x", 0.0, 1.0)])
    return TuningProblem(
        ts,
        ps,
        lambda t, c: [c["x"] ** 2 + 0.01, (c["x"] - 1.0) ** 2 + 0.01],
        n_objectives=2,
        models=[lambda t, c: c["x"]],  # a perfect feature for both objectives
        name="mo-models",
    )


class TestMultiObjectiveCombos:
    def test_models_with_multiobjective(self):
        """Sec. 3.3 enrichment must compose with Algorithm 2."""
        res = GPTune(_mo_problem_with_models(), FAST).tune([{"t": 1}], 12)
        _, front = res.pareto_front(0)
        assert front.shape[0] >= 1
        assert len(res.models) == 2

    def test_multiobjective_with_history(self, tmp_path):
        db = HistoryDB(str(tmp_path / "mo.json"))
        prob = _mo_problem_with_models()
        GPTune(prob, FAST, history=db).tune([{"t": 1}], 8)
        assert db.count("mo-models") == 8
        assert all(len(r["y"]) == 2 for r in db.records("mo-models"))
        # a rerun absorbs the two-objective records without error
        res = GPTune(prob, FAST, history=db).tune([{"t": 1}], 10)
        assert res.data.n_samples(0) >= 10

    def test_multiobjective_multitask(self):
        res = GPTune(_mo_problem_with_models(), FAST).tune([{"t": 1}, {"t": 3}], 10)
        for i in range(2):
            _, front = res.pareto_front(i)
            assert front.shape[0] >= 1


class TestOptionCombos:
    def test_none_y_transform(self):
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(ts, ps, lambda t, c: (c["x"] - 0.5) ** 2 + 0.01)
        res = GPTune(prob, FAST.replace(y_transform="none")).tune([{"t": 1}], 10)
        assert res.best(0)[1] < 0.1

    def test_large_initial_fraction(self):
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(ts, ps, lambda t, c: c["x"] + 0.01)
        res = GPTune(prob, FAST.replace(initial_fraction=0.9)).tune([{"t": 1}], 10)
        assert res.data.n_samples(0) == 10

    def test_explicit_q_latent(self):
        ts = Space([Integer("t", 1, 9)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(ts, ps, lambda t, c: (c["x"] - t["t"] / 10) ** 2 + 0.01)
        res = GPTune(prob, FAST.replace(n_latent=1)).tune([{"t": 2}, {"t": 8}], 8)
        assert res.models[0].params.Q == 1

    def test_q_exceeding_delta_fails_cleanly(self):
        ts = Space([Integer("t", 1, 9)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(ts, ps, lambda t, c: c["x"] + 0.01)
        with pytest.raises(ValueError):
            GPTune(prob, FAST.replace(n_latent=5)).tune([{"t": 1}], 6)


class TestTinyDiscreteSpaces:
    def test_exhaustible_space_allows_reevaluation(self):
        """A 3-point space with budget 6 cannot avoid duplicates; the
        driver must finish rather than loop forever."""
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Integer("k", 1, 3)])
        prob = TuningProblem(ts, ps, lambda t, c: float(c["k"]))
        res = GPTune(prob, FAST).tune([{"t": 1}], 6)
        assert res.data.n_samples(0) == 6
        assert res.best(0)[1] == 1.0

    def test_single_feasible_point(self):
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Integer("k", 1, 5)], constraints=["k == 3"])
        prob = TuningProblem(ts, ps, lambda t, c: float(c["k"]))
        res = GPTune(prob, FAST).tune([{"t": 1}], 3)
        assert all(c["k"] == 3 for c in res.data.X[0])


class TestStatsAccounting:
    def test_objective_time_is_sum_of_outputs(self):
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(ts, ps, lambda t, c: 2.5)
        res = GPTune(prob, FAST).tune([{"t": 1}], 4)
        assert res.stats["objective_time"] == pytest.approx(4 * 2.5)

    def test_total_is_component_sum(self):
        ts = Space([Integer("t", 1, 2)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(ts, ps, lambda t, c: c["x"] + 0.01)
        res = GPTune(prob, FAST).tune([{"t": 1}], 6)
        s = res.stats
        assert s["total_time"] == pytest.approx(
            s["objective_time"] + s["modeling_time"] + s["search_time"]
        )
