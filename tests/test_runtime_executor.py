"""Tests for executor backends (repro.runtime.executor)."""

import os
import signal

import pytest

from repro.runtime import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkerError,
    make_executor,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("bad three")
    return x * 10


def _die_once(arg):
    """Kill the worker on first sight of the marker-less filesystem."""
    marker, val = arg
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return val * 2


def _always_die(_x):
    os.kill(os.getpid(), signal.SIGKILL)


class TestBackends:
    def test_serial_order(self):
        assert SerialBackend().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_thread_order_preserved(self):
        with ThreadBackend(3) as ex:
            assert ex.map(_square, range(10)) == [i * i for i in range(10)]

    def test_process_backend(self):
        with ProcessBackend(2) as ex:
            assert ex.map(_square, [2, 3]) == [4, 9]

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)
        with pytest.raises(ValueError):
            ProcessBackend(0)

    def test_context_manager_shutdown(self):
        ex = ThreadBackend(1)
        with ex:
            pass
        # pool is shut down; submitting again must fail
        with pytest.raises(RuntimeError):
            ex.map(_square, [1])


class TestWorkerError:
    BACKENDS = [
        pytest.param(lambda: SerialBackend(), id="serial"),
        pytest.param(lambda: ThreadBackend(2), id="thread"),
        pytest.param(lambda: ProcessBackend(2), id="process"),
    ]

    @pytest.mark.parametrize("make", BACKENDS)
    def test_first_failing_index_surfaces(self, make):
        ex = make()
        try:
            with pytest.raises(WorkerError) as ei:
                ex.map(_fail_on_three, [1, 3, 2, 3])
            assert ei.value.index == 1
            assert "work item 1" in str(ei.value)
            assert isinstance(ei.value.__cause__, ValueError)
        finally:
            ex.shutdown()

    @pytest.mark.parametrize("make", BACKENDS)
    def test_success_unaffected(self, make):
        ex = make()
        try:
            assert ex.map(_square, [4, 5]) == [16, 25]
        finally:
            ex.shutdown()


class TestWorkerDeath:
    def test_lost_items_resubmitted_on_fresh_pool(self, tmp_path):
        events = []
        marker = str(tmp_path / "died")
        ex = ProcessBackend(1, on_event=lambda kind, detail: events.append(kind))
        try:
            out = ex.map(_die_once, [(marker, 1), (marker, 2), (marker, 3)])
            assert out == [2, 4, 6]
            assert "worker-death" in events
        finally:
            ex.shutdown()

    def test_poison_item_exhausts_restarts(self):
        ex = ProcessBackend(1, max_pool_restarts=1)
        try:
            with pytest.raises(WorkerError, match="giving up"):
                ex.map(_always_die, [0])
        finally:
            ex.shutdown()


class TestFactory:
    def test_make_serial(self):
        assert isinstance(make_executor("serial"), SerialBackend)

    def test_make_thread(self):
        ex = make_executor("thread", 2)
        assert isinstance(ex, ThreadBackend) and ex.n_workers == 2
        ex.shutdown()

    def test_make_process(self):
        ex = make_executor("process", 1)
        assert isinstance(ex, ProcessBackend)
        ex.shutdown()

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_executor("quantum")
