"""Tests for executor backends (repro.runtime.executor)."""

import pytest

from repro.runtime import ProcessBackend, SerialBackend, ThreadBackend, make_executor


def _square(x):
    return x * x


class TestBackends:
    def test_serial_order(self):
        assert SerialBackend().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_thread_order_preserved(self):
        with ThreadBackend(3) as ex:
            assert ex.map(_square, range(10)) == [i * i for i in range(10)]

    def test_process_backend(self):
        with ProcessBackend(2) as ex:
            assert ex.map(_square, [2, 3]) == [4, 9]

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)
        with pytest.raises(ValueError):
            ProcessBackend(0)

    def test_context_manager_shutdown(self):
        ex = ThreadBackend(1)
        with ex:
            pass
        # pool is shut down; submitting again must fail
        with pytest.raises(RuntimeError):
            ex.map(_square, [1])


class TestFactory:
    def test_make_serial(self):
        assert isinstance(make_executor("serial"), SerialBackend)

    def test_make_thread(self):
        ex = make_executor("thread", 2)
        assert isinstance(ex, ThreadBackend) and ex.n_workers == 2
        ex.shutdown()

    def test_make_process(self):
        ex = make_executor("process", 1)
        assert isinstance(ex, ProcessBackend)
        ex.shutdown()

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_executor("quantum")
