"""Meta-tests: documentation invariants of the public API.

Deliverable-level guarantees: every public module, class, and function in
the package carries a docstring, and the README's architecture section
mentions every subpackage.  Cheap to run, catches drift permanently.
"""

import importlib
import inspect
import os
import pkgutil

import repro

SKIP_MODULES = set()


def _walk_modules():
    pkg_path = os.path.dirname(repro.__file__)
    for info in pkgutil.walk_packages([pkg_path], prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_documented(self):
        missing = []
        for mod in _walk_modules():
            for name, obj in vars(mod).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != mod.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"classes without docstrings: {missing}"

    def test_every_public_function_documented(self):
        missing = []
        for mod in _walk_modules():
            for name, obj in vars(mod).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != mod.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"functions without docstrings: {missing}"

    def test_public_methods_documented(self):
        """Every public method carries a docstring — its own, or one
        inherited from the base method it overrides (the standard
        convention for interface implementations)."""

        def inherited_doc(cls, mname):
            for base in cls.__mro__[1:]:
                base_meth = base.__dict__.get(mname)
                if base_meth is None:
                    continue
                f = base_meth.fget if isinstance(base_meth, property) else base_meth
                if (getattr(f, "__doc__", None) or "").strip():
                    return True
            return False

        missing = []
        for mod in _walk_modules():
            for cname, cls in vars(mod).items():
                if cname.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != mod.__name__:
                    continue
                for mname, meth in vars(cls).items():
                    if mname.startswith("_"):
                        continue
                    func = meth.fget if isinstance(meth, property) else meth
                    if not inspect.isfunction(func):
                        continue
                    if (func.__doc__ or "").strip() or inherited_doc(cls, mname):
                        continue
                    missing.append(f"{mod.__name__}.{cname}.{mname}")
        assert not missing, f"methods without docstrings: {missing}"


class TestReadmeCoverage:
    def test_readme_mentions_all_subpackages(self):
        root = os.path.join(os.path.dirname(repro.__file__), os.pardir, os.pardir)
        readme = open(os.path.join(root, "README.md"), encoding="utf-8").read()
        for sub in ("repro.core", "repro.runtime", "repro.apps", "repro.tuners"):
            assert sub in readme

    def test_design_doc_exists_with_experiment_index(self):
        root = os.path.join(os.path.dirname(repro.__file__), os.pardir, os.pardir)
        design = open(os.path.join(root, "DESIGN.md"), encoding="utf-8").read()
        for token in ("Fig. 2", "Fig. 7", "Tab. 4", "Tab. 5", "bench_"):
            assert token in design
