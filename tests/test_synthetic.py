"""Tests for the synthetic benchmark families (repro.apps.synthetic)."""

import numpy as np
import pytest

from repro.apps.synthetic import BraninApp, RosenbrockApp, SphereApp, branin
from repro.core import GPTune, Options

FAST = Options(seed=0, n_start=1, pso_iters=10, ei_candidates=16, lbfgs_maxiter=60)


class TestBranin:
    def test_known_minima(self):
        """All three classical minimizers give the optimum value."""
        for x1, x2 in [(-np.pi, 12.275), (np.pi, 2.275), (9.42478, 2.475)]:
            assert branin(x1, x2) == pytest.approx(BraninApp.OPTIMUM, abs=1e-5)

    def test_task_shift_preserves_optimum(self):
        app = BraninApp()
        y = app.objective({"t": 2.0}, {"x1": np.pi, "x2": 2.275 + 2.0})
        assert y == pytest.approx(BraninApp.OPTIMUM, abs=1e-5)

    def test_tunable_to_near_optimum(self):
        app = BraninApp()
        res = GPTune(app.problem(), FAST).tune([{"t": 0.0}], 30)
        assert res.best(0)[1] < 3.0  # within the basin at this tiny budget


class TestRosenbrock:
    def test_minimum_at_ones(self):
        app = RosenbrockApp(dim=3)
        cfg = {f"x{i}": 1.0 for i in range(3)}
        for t in (1, 50, 200):
            assert app.objective({"t": t}, cfg) == pytest.approx(0.0, abs=1e-12)

    def test_harder_with_larger_t(self):
        app = RosenbrockApp(dim=2)
        near = {"x0": 0.9, "x1": 0.7}
        assert app.objective({"t": 200}, near) > app.objective({"t": 1}, near)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            RosenbrockApp(dim=1)


class TestSphere:
    def test_minimum_location(self):
        app = SphereApp(dim=2)
        assert app.objective({"t": 4}, {"x0": 0.4, "x1": 0.4}) == pytest.approx(0.01)

    def test_multitask_tuning_tracks_moving_optimum(self):
        app = SphereApp(dim=2)
        tasks = [{"t": 2}, {"t": 8}]
        res = GPTune(app.problem(), FAST).tune(tasks, 14)
        for i, t in enumerate(tasks):
            cfg, val = res.best(i)
            target = t["t"] / 10.0
            assert abs(cfg["x0"] - target) < 0.2
            assert abs(cfg["x1"] - target) < 0.2

    def test_default_config(self):
        app = SphereApp(dim=2)
        assert app.default_config({"t": 0}) == {"x0": 0.5, "x1": 0.5}
