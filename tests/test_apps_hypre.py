"""Tests for the hypre substrate (AMG, GMRES, simulator)."""

import numpy as np
import pytest
from scipy import sparse

from repro.apps.hypre import (
    HypreApp,
    build_hierarchy,
    coarsen,
    gmres,
    interpolation,
    poisson3d,
    strength_graph,
)
from repro.runtime import cori_haswell


class TestPoisson:
    def test_shape_and_stencil(self):
        A = poisson3d(3, 4, 5)
        assert A.shape == (60, 60)
        assert A.diagonal().min() == 6.0
        # interior point has 6 neighbours
        assert A[31].nnz <= 7

    def test_spd(self):
        A = poisson3d(4, 4, 4).toarray()
        assert np.allclose(A, A.T)
        assert np.linalg.eigvalsh(A).min() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson3d(0, 2, 2)


class TestStrength:
    def test_poisson_all_offdiag_strong_at_low_theta(self):
        A = poisson3d(4, 4, 4)
        S = strength_graph(A, theta=0.1)
        offdiag = A.copy()
        offdiag.setdiag(0)
        offdiag.eliminate_zeros()
        assert S.nnz == offdiag.nnz

    def test_high_theta_keeps_fewer(self):
        # anisotropic operator: strong in one direction only
        n = 6
        import scipy.sparse as sp

        lap = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n))
        eye = sp.identity(n)
        A = sparse.csr_matrix(sp.kron(lap, eye) + 0.01 * sp.kron(eye, lap))
        s_low = strength_graph(A, 0.005).nnz  # weak-direction edges included
        s_high = strength_graph(A, 0.5).nnz  # only the strong direction
        assert s_high < s_low

    def test_max_row_sum_filters_dominant_rows(self):
        A = poisson3d(3, 3, 3).tolil()
        A[0, 0] = 1000.0  # strongly diagonally dominant row
        S_all = strength_graph(sparse.csr_matrix(A), 0.25, max_row_sum=1.0)
        S_filtered = strength_graph(sparse.csr_matrix(A), 0.25, max_row_sum=0.5)
        assert S_filtered[0].nnz < S_all[0].nnz


class TestCoarsening:
    @pytest.fixture
    def S(self):
        return strength_graph(poisson3d(5, 5, 5), 0.25)

    @pytest.mark.parametrize("method", ["RS", "PMIS", "HMIS"])
    def test_proper_subset(self, S, method, rng):
        cmask = coarsen(S, method, rng)
        assert 0 < cmask.sum() < S.shape[0]

    def test_pmis_independence(self, S, rng):
        """PMIS C-points form an independent set in the symmetrized graph."""
        cmask = coarsen(S, "PMIS", rng)
        G = ((S + S.T) > 0).tocsr()
        cidx = np.where(cmask)[0]
        sub = G[cidx][:, cidx]
        assert sub.nnz == 0

    def test_aggressive_coarsens_more(self, S, rng):
        plain = coarsen(S, "PMIS", np.random.default_rng(0)).sum()
        aggr = coarsen(S, "PMIS", np.random.default_rng(0), aggressive=True).sum()
        assert aggr <= plain

    def test_unknown_method(self, S, rng):
        with pytest.raises(ValueError):
            coarsen(S, "FALGOUT", rng)

    def test_never_empty(self, rng):
        S = sparse.csr_matrix((4, 4))  # no strong connections at all
        assert coarsen(S, "PMIS", rng).sum() >= 1


class TestInterpolation:
    @pytest.fixture
    def setup(self, rng):
        A = poisson3d(4, 4, 4)
        S = strength_graph(A, 0.25)
        cmask = coarsen(S, "RS", rng)
        return A, S, cmask

    @pytest.mark.parametrize("method", ["direct", "classical", "one_point"])
    def test_shape_and_identity_on_c(self, setup, method):
        A, S, cmask = setup
        P = interpolation(A, S, cmask, method)
        assert P.shape == (A.shape[0], int(cmask.sum()))
        cidx = np.where(cmask)[0]
        sub = P[cidx].toarray()
        assert np.allclose(sub, np.eye(int(cmask.sum())))

    def test_rows_bounded(self, setup):
        A, S, cmask = setup
        P = interpolation(A, S, cmask, "classical", p_max_elmts=3)
        row_nnz = np.diff(P.tocsr().indptr)
        assert row_nnz.max() <= 3

    def test_truncation_reduces_nnz(self, setup):
        A, S, cmask = setup
        full = interpolation(A, S, cmask, "classical", trunc_factor=0.0).nnz
        trunc = interpolation(A, S, cmask, "classical", trunc_factor=0.45).nnz
        assert trunc <= full

    def test_constant_preserved_direct(self, setup):
        """Direct interpolation reproduces constants on interior F-points."""
        A, S, cmask = setup
        P = interpolation(A, S, cmask, "direct")
        ones_c = np.ones(int(cmask.sum()))
        v = P @ ones_c
        nonzero_rows = np.diff(P.tocsr().indptr) > 0
        # Poisson with Dirichlet rows is not exactly row-sum zero at the
        # boundary, so check interior behaviour loosely
        assert np.all(v[nonzero_rows] > 0.2)

    def test_unknown_method(self, setup):
        A, S, cmask = setup
        with pytest.raises(ValueError):
            interpolation(A, S, cmask, "extended+i")


class TestHierarchyAndGMRES:
    def test_amg_preconditioning_beats_none(self):
        A = poisson3d(8, 8, 8)
        b = np.ones(A.shape[0])
        H = build_hierarchy(A)
        with_amg = gmres(A, b, M=H, rtol=1e-8, maxiter=150)
        without = gmres(A, b, rtol=1e-8, maxiter=150)
        assert with_amg.converged
        assert with_amg.iterations < without.iterations

    def test_vcycle_reduces_error(self):
        A = poisson3d(6, 6, 6)
        H = build_hierarchy(A)
        rng = np.random.default_rng(0)
        x_true = rng.normal(size=A.shape[0])
        b = A @ x_true
        x = H.vcycle(b)
        assert np.linalg.norm(x - x_true) < np.linalg.norm(x_true)

    def test_hierarchy_shrinks(self):
        H = build_hierarchy(poisson3d(8, 8, 8))
        sizes = [lv.A.shape[0] for lv in H.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert H.n_levels >= 2
        assert H.grid_complexity < 3.0
        assert H.operator_complexity < 6.0

    def test_gmres_exact_on_small_system(self):
        A = sparse.csr_matrix(np.array([[4.0, 1.0], [1.0, 3.0]]))
        b = np.array([1.0, 2.0])
        res = gmres(A, b, rtol=1e-12, maxiter=10)
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-9)

    def test_gmres_zero_rhs(self):
        A = poisson3d(3, 3, 3)
        res = gmres(A, np.zeros(27))
        assert res.converged and res.iterations == 0

    def test_gmres_restart_path(self):
        A = poisson3d(6, 6, 6)
        b = np.ones(A.shape[0])
        res = gmres(A, b, rtol=1e-10, restart=5, maxiter=400)
        assert res.converged  # must survive several restarts

    def test_gmres_dimension_mismatch(self):
        with pytest.raises(ValueError):
            gmres(poisson3d(2, 2, 2), np.ones(5))

    def test_bad_smoother_weight_slower(self):
        A = poisson3d(7, 7, 7)
        b = np.ones(A.shape[0])
        good = gmres(A, b, M=build_hierarchy(A, relax_type="jacobi", relax_weight=0.8), maxiter=150)
        bad = gmres(A, b, M=build_hierarchy(A, relax_type="jacobi", relax_weight=0.31), maxiter=150)
        assert good.iterations <= bad.iterations

    def test_invalid_relax_type(self):
        with pytest.raises(ValueError):
            build_hierarchy(poisson3d(3, 3, 3), relax_type="chebyshev")


class TestHypreApp:
    @pytest.fixture(scope="class")
    def app(self):
        return HypreApp(machine=cori_haswell(1), solve_cap=512, grid_range=(8, 64), seed=0)

    def test_twelve_parameters(self, app):
        assert app.tuning_space().dimension == 12  # as stated in Sec. 6.2

    def test_process_grid_constraint(self, app):
        cfg = app.default_config({"n1": 10, "n2": 10, "n3": 10})
        bad = dict(cfg, p1=app.p_max, p2=app.p_max)
        assert not app.tuning_space().is_feasible(bad)
        assert app.tuning_space().is_feasible(cfg)

    def test_objective_positive(self, app):
        t = {"n1": 20, "n2": 20, "n3": 20}
        y = app.objective(t, app.default_config(t))
        assert 0 < y < 1e4

    def test_downscaling_keeps_aspect(self, app):
        dims = app._scaled_dims({"n1": 64, "n2": 32, "n3": 32})
        assert np.prod(dims) <= app.solve_cap * 1.5
        assert dims[0] >= dims[1]

    def test_small_task_not_scaled(self, app):
        assert app._scaled_dims({"n1": 8, "n2": 8, "n3": 8}) == (8, 8, 8)

    def test_solver_cache_hit(self, app):
        t = {"n1": 16, "n2": 16, "n3": 16}
        cfg = app.default_config(t)
        app.objective(t, cfg)
        n = len(app._solve_cache)
        app.objective(t, dict(cfg, p1=1, p2=1))  # same solver params
        assert len(app._solve_cache) == n

    def test_bigger_task_costs_more(self, app):
        cfg = app.default_config({"n1": 8, "n2": 8, "n3": 8})
        y_small = app.objective({"n1": 10, "n2": 10, "n3": 10}, cfg)
        y_big = app.objective({"n1": 60, "n2": 60, "n3": 60}, cfg)
        assert y_big > 10 * y_small
