"""Unit tests for parameter types (repro.core.params)."""

import math

import numpy as np
import pytest

from repro.core.params import Categorical, Integer, Real


class TestReal:
    def test_normalize_bounds(self):
        p = Real("x", 2.0, 10.0)
        assert p.normalize(2.0) == 0.0
        assert p.normalize(10.0) == 1.0
        assert p.normalize(6.0) == pytest.approx(0.5)

    def test_denormalize_roundtrip(self):
        p = Real("x", -3.0, 7.0)
        for v in [-3.0, 0.0, 3.3, 7.0]:
            assert p.denormalize(p.normalize(v)) == pytest.approx(v)

    def test_out_of_range_clipped(self):
        p = Real("x", 0.0, 1.0)
        assert p.normalize(2.0) == 1.0
        assert p.normalize(-1.0) == 0.0
        assert p.denormalize(1.7) == 1.0

    def test_log_transform(self):
        p = Real("x", 1.0, 100.0, transform="log")
        assert p.denormalize(0.5) == pytest.approx(10.0)
        assert p.normalize(10.0) == pytest.approx(0.5)

    def test_log_requires_positive_lb(self):
        with pytest.raises(ValueError):
            Real("x", 0.0, 1.0, transform="log")

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Real("x", 1.0, 1.0)

    def test_invalid_transform(self):
        with pytest.raises(ValueError):
            Real("x", 0.0, 1.0, transform="sqrt")

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Real("not a name", 0.0, 1.0)

    def test_cardinality_infinite(self):
        assert Real("x", 0, 1).cardinality == math.inf

    def test_sample_within_bounds(self, rng):
        p = Real("x", -5.0, 5.0)
        vals = [p.sample(rng) for _ in range(50)]
        assert all(-5.0 <= v <= 5.0 for v in vals)

    def test_grid(self):
        p = Real("x", 0.0, 1.0)
        g = p.grid(5)
        assert g == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


class TestInteger:
    def test_roundtrip_every_value(self):
        p = Integer("k", 3, 12)
        for v in range(3, 13):
            assert p.denormalize(p.normalize(v)) == v

    def test_uniform_cells(self, rng):
        """Each integer owns an equal slice of [0,1]."""
        p = Integer("k", 0, 3)
        u = rng.random(20000)
        vals = np.array([p.denormalize(x) for x in u])
        counts = np.bincount(vals, minlength=4)
        assert counts.min() > 0.2 * len(u)

    def test_endpoint_one(self):
        p = Integer("k", 1, 5)
        assert p.denormalize(1.0) == 5
        assert p.denormalize(0.0) == 1

    def test_clipping(self):
        p = Integer("k", 1, 5)
        assert p.normalize(100) == p.normalize(5)
        assert p.normalize(-3) == p.normalize(1)

    def test_log_transform(self):
        p = Integer("k", 1, 1024, transform="log")
        assert p.denormalize(0.5) == 32
        assert p.denormalize(0.0) == 1
        assert p.denormalize(1.0) == 1024

    def test_log_requires_lb_ge_1(self):
        with pytest.raises(ValueError):
            Integer("k", 0, 8, transform="log")

    def test_cardinality(self):
        assert Integer("k", 2, 6).cardinality == 5

    def test_singleton_range(self):
        p = Integer("k", 4, 4)
        assert p.denormalize(0.3) == 4
        assert p.cardinality == 1

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Integer("k", 5, 4)

    def test_grid_unique_sorted(self):
        p = Integer("k", 1, 4)
        assert p.grid(10) == [1, 2, 3, 4]


class TestCategorical:
    def test_roundtrip(self):
        p = Categorical("alg", ["x", "y", "z"])
        for c in ["x", "y", "z"]:
            assert p.denormalize(p.normalize(c)) == c

    def test_unknown_category_raises(self):
        p = Categorical("alg", ["x", "y"])
        with pytest.raises(ValueError):
            p.normalize("w")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Categorical("alg", [])

    def test_duplicates_raise(self):
        with pytest.raises(ValueError):
            Categorical("alg", ["x", "x"])

    def test_is_categorical_flag(self):
        assert Categorical("alg", ["x"]).is_categorical
        assert not Integer("k", 0, 1).is_categorical
        assert not Real("x", 0, 1).is_categorical

    def test_endpoint_maps_to_last(self):
        p = Categorical("alg", ["x", "y", "z"])
        assert p.denormalize(1.0) == "z"
        assert p.denormalize(0.0) == "x"

    def test_non_string_categories(self):
        p = Categorical("alg", [1, (2, 3), "s"])
        assert p.denormalize(p.normalize((2, 3))) == (2, 3)

    def test_sample_covers_all(self, rng):
        p = Categorical("alg", ["x", "y", "z"])
        seen = {p.sample(rng) for _ in range(100)}
        assert seen == {"x", "y", "z"}

    def test_grid(self):
        p = Categorical("alg", ["x", "y", "z"])
        assert p.grid(10) == ["x", "y", "z"]
        assert p.grid(2) == ["x", "y"]


class TestEquality:
    def test_equal_params(self):
        assert Real("x", 0, 1) == Real("x", 0, 1)
        assert Real("x", 0, 1) != Real("x", 0, 2)
        assert Integer("x", 0, 1) != Real("x", 0, 1)
