"""Unit tests for the sharded tuning-history store (repro.service.store)
and the HistoryDB back-compat shim routed through it."""

import json
import os

import pytest

from repro.core import HistoryDB
from repro.service import ShardedStore, canonical_payload, content_fingerprint

REC = {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]}
REC2 = {"task": {"m": 20}, "x": {"b": 8}, "y": [2.5]}


@pytest.fixture
def store(tmp_path):
    return ShardedStore(str(tmp_path / "db"))


class TestShardedStore:
    def test_empty(self, store):
        assert store.problems() == []
        assert store.records("p") == []
        assert store.count("p") == 0
        assert store.etag("p") == "empty"

    def test_append_and_read(self, store):
        rids = store.append("qr", [REC, REC2])
        assert len(rids) == 2
        assert store.count("qr") == 2
        assert store.records("qr") == [
            {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]},
            {"task": {"m": 20}, "x": {"b": 8}, "y": [2.5]},
        ]

    def test_repeated_payloads_are_kept(self, store):
        # re-measuring the same configuration is legitimate data
        store.append("qr", [REC, REC])
        store.append("qr", [REC])
        assert store.count("qr") == 3

    def test_rid_push_is_idempotent(self, store):
        store.append("qr", [REC, REC2])
        synced = store.records("qr", with_rid=True)
        assert store.append("qr", synced) == []  # nothing new
        assert store.count("qr") == 2

    def test_append_is_append_only(self, store):
        store.append("qr", [REC])
        before = open(store.shard_path("qr"), "rb").read()
        store.append("qr", [REC2])
        after = open(store.shard_path("qr"), "rb").read()
        assert after.startswith(before)  # old bytes never rewritten

    def test_malformed_record_rejected(self, store):
        with pytest.raises(ValueError):
            store.append("qr", [{"task": {}, "x": {}}])  # no y

    def test_torn_trailing_line_skipped_and_survived(self, store):
        store.append("qr", [REC])
        with open(store.shard_path("qr"), "a", encoding="utf-8") as fh:
            fh.write('{"task": {"m"')  # crashed writer mid-line
        assert store.count("qr") == 1
        store.append("qr", [REC2])  # lands on a fresh line
        assert store.count("qr") == 2

    def test_compact_drops_torn_and_duplicate_lines(self, store):
        store.append("qr", [REC, REC2])
        path = store.shard_path("qr")
        with open(path, "a", encoding="utf-8") as fh:
            # a duplicated rid line (e.g. replayed append) and a torn line
            first = open(path, encoding="utf-8").readline()
            fh.write(first)
            fh.write('{"task": {"m"')
        stats = store.compact("qr")
        assert stats == {"kept": 2, "duplicates": 1, "torn": 1}
        assert store.count("qr") == 2

    def test_etag_changes_on_append_stable_across_compaction(self, store):
        store.append("qr", [REC])
        e1 = store.etag("qr")
        store.append("qr", [REC2])
        e2 = store.etag("qr")
        assert e1 != e2
        store.compact("qr")
        assert store.etag("qr") == e2

    def test_etag_visible_across_instances(self, store):
        store.append("qr", [REC])
        other = ShardedStore(store.root)
        assert other.etag("qr") == store.etag("qr")
        other.append("qr", [REC2])
        assert store.etag("qr") == other.etag("qr")  # refreshes from disk

    def test_clear(self, store):
        store.append("qr", [REC])
        store.clear("qr")
        assert store.count("qr") == 0
        store.clear("never-existed")  # no error

    def test_problem_names_roundtrip_through_slugs(self, store):
        weird = "qr / sub:problem %x"
        store.append(weird, [REC])
        assert store.problems() == [weird]
        assert store.count(weird) == 1

    def test_stats(self, store):
        store.append("a", [REC])
        store.append("b", [REC, REC2])
        s = store.stats()
        assert s["n_records"] == 3
        assert s["problems"]["b"]["count"] == 2
        assert s["problems"]["a"]["etag"] == store.etag("a")

    def test_events_emitted(self, tmp_path):
        events = []
        store = ShardedStore(str(tmp_path / "db"), on_event=lambda k, d: events.append(k))
        store.append("qr", [REC])
        store.compact("qr")
        assert "service-append" in events
        assert "service-compact" in events


class TestFingerprints:
    def test_content_fingerprint_ignores_key_order(self):
        a = {"task": {"m": 10, "n": 3}, "x": {"b": 4}, "y": [1.5]}
        b = {"task": {"n": 3, "m": 10}, "x": {"b": 4}, "y": [1.5]}
        assert content_fingerprint(a) == content_fingerprint(b)

    def test_content_fingerprint_ignores_rid(self):
        assert content_fingerprint({**REC, "rid": "zzz"}) == content_fingerprint(REC)

    def test_payload_differences_change_fingerprint(self):
        assert content_fingerprint(REC) != content_fingerprint(REC2)

    def test_canonical_payload_is_json(self):
        payload = json.loads(canonical_payload(REC))
        assert payload["y"] == [1.5]


class TestHistoryDBShim:
    """The public HistoryDB API rides on the sharded store."""

    def test_append_does_not_rewrite_legacy_json(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"qr": [REC]}))
        db = HistoryDB(str(path))
        legacy_bytes = path.read_bytes()
        db.append("qr", [REC2])
        assert path.read_bytes() == legacy_bytes  # import path, not write path
        assert db.count("qr") == 2

    def test_append_only_writes_new_lines(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        db.append("qr", [REC])
        shard = db.store.shard_path("qr")
        before = os.path.getsize(shard)
        db.append("qr", [REC2])
        after = os.path.getsize(shard)
        assert 0 < after - before < 200  # one record's line, not a full rewrite

    def test_legacy_import_is_idempotent(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"qr": [REC, REC]}))
        assert HistoryDB(str(path)).count("qr") == 2
        assert HistoryDB(str(path)).count("qr") == 2  # reopen: no duplication

    def test_legacy_plus_new_records_coexist(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"qr": [REC]}))
        db = HistoryDB(str(path))
        db.append("qr", [REC2])
        reopened = HistoryDB(str(path))
        assert reopened.count("qr") == 2

    def test_export_json_writes_legacy_view(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        db.append("qr", [REC, REC2])
        out = db.export_json(str(tmp_path / "export.json"))
        dumped = json.loads(open(out, encoding="utf-8").read())
        assert [r["y"] for r in dumped["qr"]] == [[1.5], [2.5]]

    def test_compact(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        db.append("qr", [REC])
        db.compact()
        assert db.count("qr") == 1

    def test_concurrent_instances_share_one_archive(self, tmp_path):
        # the failure mode of the old whole-store rewrite: two open handles
        # each flushing their own snapshot lost each other's appends
        a = HistoryDB(str(tmp_path / "h.json"))
        b = HistoryDB(str(tmp_path / "h.json"))
        a.append("qr", [REC])
        b.append("qr", [REC2])
        a.append("qr", [REC])
        assert a.count("qr") == 3
        assert b.count("qr") == 3
