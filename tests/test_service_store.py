"""Unit tests for the sharded tuning-history store (repro.service.store)
and the HistoryDB back-compat shim routed through it."""

import json
import os
import time

import pytest

from repro.core import HistoryDB
from repro.service import ShardedStore, canonical_payload, content_fingerprint

REC = {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]}
REC2 = {"task": {"m": 20}, "x": {"b": 8}, "y": [2.5]}


@pytest.fixture
def store(tmp_path):
    return ShardedStore(str(tmp_path / "db"))


class TestShardedStore:
    def test_empty(self, store):
        assert store.problems() == []
        assert store.records("p") == []
        assert store.count("p") == 0
        assert store.etag("p") == "empty"

    def test_append_and_read(self, store):
        rids = store.append("qr", [REC, REC2])
        assert len(rids) == 2
        assert store.count("qr") == 2
        assert store.records("qr") == [
            {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]},
            {"task": {"m": 20}, "x": {"b": 8}, "y": [2.5]},
        ]

    def test_repeated_payloads_are_kept(self, store):
        # re-measuring the same configuration is legitimate data
        store.append("qr", [REC, REC])
        store.append("qr", [REC])
        assert store.count("qr") == 3

    def test_rid_push_is_idempotent(self, store):
        store.append("qr", [REC, REC2])
        synced = store.records("qr", with_rid=True)
        assert store.append("qr", synced) == []  # nothing new
        assert store.count("qr") == 2

    def test_append_is_append_only(self, store):
        store.append("qr", [REC])
        before = open(store.shard_path("qr"), "rb").read()
        store.append("qr", [REC2])
        after = open(store.shard_path("qr"), "rb").read()
        assert after.startswith(before)  # old bytes never rewritten

    def test_malformed_record_rejected(self, store):
        with pytest.raises(ValueError):
            store.append("qr", [{"task": {}, "x": {}}])  # no y

    def test_torn_trailing_line_skipped_and_survived(self, store):
        store.append("qr", [REC])
        with open(store.shard_path("qr"), "a", encoding="utf-8") as fh:
            fh.write('{"task": {"m"')  # crashed writer mid-line
        assert store.count("qr") == 1
        store.append("qr", [REC2])  # lands on a fresh line
        assert store.count("qr") == 2

    def test_compact_drops_torn_and_duplicate_lines(self, store):
        store.append("qr", [REC, REC2])
        path = store.shard_path("qr")
        with open(path, "a", encoding="utf-8") as fh:
            # a duplicated rid line (e.g. replayed append) and a torn line
            first = open(path, encoding="utf-8").readline()
            fh.write(first)
            fh.write('{"task": {"m"')
        stats = store.compact("qr")
        assert stats == {"kept": 2, "duplicates": 1, "torn": 1}
        assert store.count("qr") == 2

    def test_etag_changes_on_append_stable_across_compaction(self, store):
        store.append("qr", [REC])
        e1 = store.etag("qr")
        store.append("qr", [REC2])
        e2 = store.etag("qr")
        assert e1 != e2
        store.compact("qr")
        assert store.etag("qr") == e2

    def test_etag_visible_across_instances(self, store):
        store.append("qr", [REC])
        other = ShardedStore(store.root)
        assert other.etag("qr") == store.etag("qr")
        other.append("qr", [REC2])
        assert store.etag("qr") == other.etag("qr")  # refreshes from disk

    def test_clear(self, store):
        store.append("qr", [REC])
        store.clear("qr")
        assert store.count("qr") == 0
        store.clear("never-existed")  # no error

    def test_problem_names_roundtrip_through_slugs(self, store):
        weird = "qr / sub:problem %x"
        store.append(weird, [REC])
        assert store.problems() == [weird]
        assert store.count(weird) == 1

    def test_stats(self, store):
        store.append("a", [REC])
        store.append("b", [REC, REC2])
        s = store.stats()
        assert s["n_records"] == 3
        assert s["problems"]["b"]["count"] == 2
        assert s["problems"]["a"]["etag"] == store.etag("a")

    def test_events_emitted(self, tmp_path):
        events = []
        store = ShardedStore(str(tmp_path / "db"), on_event=lambda k, d: events.append(k))
        store.append("qr", [REC])
        store.compact("qr")
        assert "service-append" in events
        assert "service-compact" in events


class TestFingerprints:
    def test_content_fingerprint_ignores_key_order(self):
        a = {"task": {"m": 10, "n": 3}, "x": {"b": 4}, "y": [1.5]}
        b = {"task": {"n": 3, "m": 10}, "x": {"b": 4}, "y": [1.5]}
        assert content_fingerprint(a) == content_fingerprint(b)

    def test_content_fingerprint_ignores_rid(self):
        assert content_fingerprint({**REC, "rid": "zzz"}) == content_fingerprint(REC)

    def test_payload_differences_change_fingerprint(self):
        assert content_fingerprint(REC) != content_fingerprint(REC2)

    def test_canonical_payload_is_json(self):
        payload = json.loads(canonical_payload(REC))
        assert payload["y"] == [1.5]


class TestHistoryDBShim:
    """The public HistoryDB API rides on the sharded store."""

    def test_append_does_not_rewrite_legacy_json(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"qr": [REC]}))
        db = HistoryDB(str(path))
        legacy_bytes = path.read_bytes()
        db.append("qr", [REC2])
        assert path.read_bytes() == legacy_bytes  # import path, not write path
        assert db.count("qr") == 2

    def test_append_only_writes_new_lines(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        db.append("qr", [REC])
        shard = db.store.shard_path("qr")
        before = os.path.getsize(shard)
        db.append("qr", [REC2])
        after = os.path.getsize(shard)
        assert 0 < after - before < 200  # one record's line, not a full rewrite

    def test_legacy_import_is_idempotent(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"qr": [REC, REC]}))
        assert HistoryDB(str(path)).count("qr") == 2
        assert HistoryDB(str(path)).count("qr") == 2  # reopen: no duplication

    def test_legacy_plus_new_records_coexist(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"qr": [REC]}))
        db = HistoryDB(str(path))
        db.append("qr", [REC2])
        reopened = HistoryDB(str(path))
        assert reopened.count("qr") == 2

    def test_export_json_writes_legacy_view(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        db.append("qr", [REC, REC2])
        out = db.export_json(str(tmp_path / "export.json"))
        dumped = json.loads(open(out, encoding="utf-8").read())
        assert [r["y"] for r in dumped["qr"]] == [[1.5], [2.5]]

    def test_compact(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        db.append("qr", [REC])
        db.compact()
        assert db.count("qr") == 1

    def test_concurrent_instances_share_one_archive(self, tmp_path):
        # the failure mode of the old whole-store rewrite: two open handles
        # each flushing their own snapshot lost each other's appends
        a = HistoryDB(str(tmp_path / "h.json"))
        b = HistoryDB(str(tmp_path / "h.json"))
        a.append("qr", [REC])
        b.append("qr", [REC2])
        a.append("qr", [REC])
        assert a.count("qr") == 3
        assert b.count("qr") == 3


class TestPrepare:
    def test_prepare_assigns_fresh_rids(self, store):
        rows = store.prepare([REC, REC2])
        assert len(rows) == 2
        assert all(r["rid"] for r in rows)
        assert rows[0]["rid"] != rows[1]["rid"]
        assert store.count("qr") == 0  # prepare writes nothing

    def test_prepare_keeps_caller_rids(self, store):
        rows = store.prepare([dict(REC, rid="abc123")])
        assert rows[0]["rid"] == "abc123"

    def test_prepare_rejects_malformed(self, store):
        with pytest.raises(ValueError):
            store.prepare([{"task": {}, "x": {}}])  # no y

    def test_snapshot_pairs_rows_with_their_etag(self, store):
        store.append("qr", [REC, REC2])
        rows, etag = store.snapshot("qr")
        assert len(rows) == 2
        assert etag == store.etag("qr")
        from repro.service.store import _etag_of
        assert etag == _etag_of(r["rid"] for r in rows)


class TestReadCache:
    def test_hot_read_hits_cache(self, tmp_path):
        from repro.service import ShardReadCache
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        cache = ShardReadCache(metrics=metrics)
        store = ShardedStore(str(tmp_path / "db"), cache=cache)
        store.append("qr", [REC, REC2])
        first = store.records("qr")
        second = store.records("qr")
        assert first == second
        assert metrics.counter_value("repro_service_read_cache_hits_total") >= 1
        assert cache.stats()["entries"] == 1
        assert cache.stats()["bytes"] > 0

    def test_append_invalidates(self, tmp_path):
        from repro.service import ShardReadCache

        cache = ShardReadCache()
        store = ShardedStore(str(tmp_path / "db"), cache=cache)
        store.append("qr", [REC])
        assert len(store.records("qr")) == 1
        store.append("qr", [REC2])
        assert len(store.records("qr")) == 2  # no stale serve

    def test_foreign_write_caught_by_etag_key(self, tmp_path):
        from repro.service import ShardReadCache

        cache = ShardReadCache()
        cached = ShardedStore(str(tmp_path / "db"), cache=cache)
        other = ShardedStore(str(tmp_path / "db"))  # no shared cache
        cached.append("qr", [REC])
        assert len(cached.records("qr")) == 1
        other.append("qr", [REC2])  # invalidates nothing in `cache`
        assert len(cached.records("qr")) == 2  # etag key self-invalidates

    def test_lru_eviction_respects_byte_budget(self, tmp_path):
        from repro.service import ShardReadCache
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        cache = ShardReadCache(max_bytes=1, metrics=metrics)
        store = ShardedStore(str(tmp_path / "db"), cache=cache)
        store.append("a", [REC])
        store.append("b", [REC2])
        store.records("a")
        store.records("b")  # budget of 1 byte: "a" must go
        assert cache.stats()["entries"] == 1
        assert metrics.counter_value(
            "repro_service_read_cache_evictions_total"
        ) >= 1


class TestStaleLockBreaking:
    def _lock(self, tmp_path, **kw):
        from repro.service import ShardLock

        return ShardLock(str(tmp_path / "s.lock"), use_flock=False, **kw)

    def test_dead_pid_lock_is_broken(self, tmp_path):
        events = []
        lock = self._lock(
            tmp_path, on_event=lambda k, d: events.append((k, d))
        )
        # fabricate a lock left by a crashed holder: dead-but-valid pid
        import subprocess

        proc = subprocess.Popen(["true"])
        proc.wait()
        with open(str(tmp_path / "s.lock") + ".x", "w") as fh:
            fh.write(str(proc.pid))
        with lock:
            pass  # acquired despite the leftover file
        assert any(k == "service-lock-stale" for k, _ in events)
        assert any("dead" in d for _, d in events)

    def test_pidless_lock_broken_after_stale_age(self, tmp_path):
        events = []
        lock = self._lock(
            tmp_path,
            stale_after=0.05,
            on_event=lambda k, d: events.append((k, d)),
        )
        lockfile = str(tmp_path / "s.lock") + ".x"
        with open(lockfile, "w") as fh:
            pass  # holder died before writing its pid
        old = time.time() - 1.0
        os.utime(lockfile, (old, old))
        with lock:
            pass
        assert any(k == "service-lock-stale" for k, _ in events)

    def test_fresh_pidless_lock_is_respected(self, tmp_path):
        lock = self._lock(tmp_path, timeout=0.2, stale_after=30.0)
        with open(str(tmp_path / "s.lock") + ".x", "w") as fh:
            pass  # just created: the holder may not have written its pid yet
        with pytest.raises(TimeoutError):
            lock.acquire()

    def test_live_holder_times_out_waiter(self, tmp_path):
        holder = self._lock(tmp_path)
        holder.acquire()
        waiter = self._lock(tmp_path, timeout=0.2)
        with pytest.raises(TimeoutError):
            waiter.acquire()
        holder.release()
        with waiter:  # released: acquirable again
            pass

    def test_exactly_one_concurrent_breaker_wins(self, tmp_path):
        import subprocess
        import threading

        proc = subprocess.Popen(["true"])
        proc.wait()
        with open(str(tmp_path / "s.lock") + ".x", "w") as fh:
            fh.write(str(proc.pid))
        acquired = []

        def contend():
            lock = self._lock(tmp_path, timeout=5.0)
            lock.acquire()
            acquired.append(lock)
            time.sleep(0.02)
            lock.release()

        threads = [threading.Thread(target=contend) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(acquired) == 4  # all eventually serialized through
