"""Unit tests for machine models and cost models (repro.runtime)."""

import math

import pytest

from repro.runtime import Machine, cori_haswell, laptop
from repro.runtime import costmodel as cm


class TestMachine:
    def test_cori_preset(self):
        m = cori_haswell(64)
        assert m.nodes == 64
        assert m.cores_per_node == 32
        assert m.total_cores == 2048

    def test_laptop_preset(self):
        assert laptop().total_cores == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(nodes=0)
        with pytest.raises(ValueError):
            Machine(latency=-1.0)
        with pytest.raises(ValueError):
            Machine(flops_per_core=0)

    def test_time_flops_scales_with_cores(self):
        m = cori_haswell(1)
        assert m.time_flops(1e12, cores=32) == pytest.approx(m.time_flops(1e12, cores=1) / 32)

    def test_core_count_capped(self):
        m = cori_haswell(1)
        assert m.time_flops(1e12, cores=10_000) == m.time_flops(1e12, cores=32)

    def test_time_message_alpha_beta(self):
        m = Machine(latency=1e-6, inv_bandwidth=1e-9)
        assert m.time_message(0) == pytest.approx(1e-6)
        assert m.time_message(1000) == pytest.approx(1e-6 + 1e-6)

    def test_frozen(self):
        with pytest.raises(Exception):
            cori_haswell(1).nodes = 5


class TestCollectiveCosts:
    def setup_method(self):
        self.m = cori_haswell(1)

    def test_single_rank_free(self):
        assert cm.bcast_time(self.m, 1000, 1) == 0.0
        assert cm.barrier_time(self.m, 1) == 0.0
        assert cm.gather_time(self.m, 1000, 1) == 0.0

    def test_bcast_log_scaling(self):
        t4 = cm.bcast_time(self.m, 1000, 4)
        t16 = cm.bcast_time(self.m, 1000, 16)
        assert t16 == pytest.approx(2 * t4)

    def test_allreduce_equals_bcast_shape(self):
        assert cm.allreduce_time(self.m, 8, 8) == cm.bcast_time(self.m, 8, 8)

    def test_gather_doubling_payloads(self):
        t = cm.gather_time(self.m, 100, 4)
        expected = self.m.time_message(100) + self.m.time_message(200)
        assert t == pytest.approx(expected)

    def test_alltoall_linear_in_p(self):
        t4 = cm.alltoall_time(self.m, 100, 4)
        t8 = cm.alltoall_time(self.m, 100, 8)
        assert t8 / t4 == pytest.approx(7 / 3)


class TestLinearAlgebraCosts:
    def setup_method(self):
        self.m = cori_haswell(1)

    def test_cholesky_flops(self):
        assert cm.cholesky_flops(100) == pytest.approx(1e6 / 3)

    def test_parallel_cholesky_speedup(self):
        t1 = cm.parallel_cholesky_time(self.m, 4000, 1)
        t16 = cm.parallel_cholesky_time(self.m, 4000, 16)
        assert t16 < t1
        assert t1 / t16 <= 16.0 + 1e-9

    def test_parallel_cholesky_comm_floor(self):
        """Tiny matrices on many processes are latency dominated."""
        t1 = cm.parallel_cholesky_time(self.m, 64, 1)
        t32 = cm.parallel_cholesky_time(self.m, 64, 32)
        assert t32 > t1

    def test_modeling_time_cubic_scaling(self):
        """Serial modeling time follows O(N³) = O(ε³δ³) (Fig. 3)."""
        t1 = cm.lbfgs_modeling_time(self.m, 400, 50, 1, 1)
        t2 = cm.lbfgs_modeling_time(self.m, 800, 50, 1, 1)
        assert t2 / t1 == pytest.approx(8.0, rel=0.15)

    def test_modeling_time_parallel_restarts(self):
        tserial = cm.lbfgs_modeling_time(self.m, 400, 50, 8, 1)
        tpar = cm.lbfgs_modeling_time(self.m, 400, 50, 8, 8)
        assert tserial / tpar > 4.0

    def test_search_time_quadratic_scaling(self):
        """Serial search time follows O(N²) = O(ε²δ²) (Fig. 3)."""
        t1 = cm.search_phase_time(self.m, 20, 400, 1)
        t2 = cm.search_phase_time(self.m, 20, 800, 1)
        assert t2 / t1 == pytest.approx(4.0, rel=0.1)

    def test_search_speedup_capped_by_tasks(self):
        """Distributing δ tasks over more than δ ranks cannot help (paper:
        'the speedup is at most δ = 20')."""
        t_d = cm.search_phase_time(self.m, 20, 400, 20)
        t_more = cm.search_phase_time(self.m, 20, 400, 128)
        assert t_more == pytest.approx(t_d)
