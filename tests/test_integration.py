"""Cross-module integration tests: the full stack on real substrates."""

import numpy as np
import pytest

from repro import GPTune, Options
from repro.apps.analytical import AnalyticalApp
from repro.apps.fusion import M3DC1
from repro.apps.hypre import HypreApp
from repro.apps.scalapack import PDGEQRF
from repro.apps.superlu import SuperLUDIST
from repro.runtime import cori_haswell
from repro.tuners import GPTuneTuner, HpBandSterTuner, OpenTunerTuner, RandomSearchTuner

FAST = Options(seed=0, n_start=1, pso_iters=8, ei_candidates=12, lbfgs_maxiter=50)


class TestMLAOnSubstrates:
    """GPTune end-to-end on each application simulator."""

    def test_pdgeqrf_multitask_beats_random_average(self):
        app = PDGEQRF(machine=cori_haswell(4), mn_max=16000, seed=0)
        tasks = [{"m": 8000, "n": 8000}, {"m": 12000, "n": 6000}]
        res = GPTune(app.problem(), FAST).tune(tasks, 10)
        from repro.core.sampling import sample_feasible

        rng = np.random.default_rng(9)
        for i, t in enumerate(tasks):
            randoms = [
                app.objective(t, c)
                for c in sample_feasible(app.tuning_space(), 10, rng, extra=t)
            ]
            # tuned result clearly better than the average random config,
            # and within reach of the near-optimal ScaLAPACK default
            assert res.best(i)[1] < float(np.mean(randoms))
            default = app.objective(t, app.default_config(t))
            assert res.best(i)[1] <= default * 1.5

    def test_superlu_time_tuning(self):
        app = SuperLUDIST(
            machine=cori_haswell(4), matrices=["Si2", "SiNa"], scale=0.02, seed=0
        )
        res = GPTune(app.problem(), FAST).tune(
            [{"matrix": "Si2"}, {"matrix": "SiNa"}], 8
        )
        for i in range(2):
            default = app.objective(res.data.tasks[i], app.default_config(res.data.tasks[i]))
            assert res.best(i)[1] <= default * 1.1

    def test_superlu_multiobjective_front(self):
        app = SuperLUDIST(
            machine=cori_haswell(4),
            matrices=["Si2"],
            objectives=("time", "memory"),
            scale=0.02,
            seed=0,
        )
        opts = FAST.replace(nsga_pop=12, nsga_gens=6, pareto_batch=2)
        res = GPTune(app.problem(), opts).tune([{"matrix": "Si2"}], 12)
        _, front = res.pareto_front(0)
        assert front.shape[0] >= 1
        assert front.shape[1] == 2
        # front members are mutually non-dominating by construction
        from repro.core.metrics import pareto_mask

        assert pareto_mask(front).all()

    def test_hypre_twelve_param_tuning(self):
        app = HypreApp(machine=cori_haswell(1), grid_range=(8, 16), solve_cap=512, seed=0)
        res = GPTune(app.problem(), FAST).tune([{"n1": 10, "n2": 10, "n3": 10}], 6)
        assert res.best(0)[1] > 0
        # mixed space round-trips: every evaluated config has native types
        for cfg in res.data.X[0]:
            assert isinstance(cfg["coarsen_type"], str)
            assert isinstance(cfg["P_max_elmts"], int)

    def test_m3dc1_cheap_to_expensive_transfer(self):
        app = M3DC1(machine=cori_haswell(1), plane_size=150, seed=0)
        res = GPTune(app.problem(), FAST).tune([{"t": 1}, {"t": 1}, {"t": 4}], 6)
        cfg, val = res.best(2)
        default = app.objective({"t": 4}, app.default_config({"t": 4}))
        assert val <= default * 1.05

    def test_analytical_model_enriched(self):
        app = AnalyticalApp(seed=0)
        res = GPTune(app.problem(with_models=True), FAST).tune([{"t": 0.0}], 12)
        assert res.best(0)[1] < 1.0  # well below the y≈1 baseline level


class TestTunerInteroperability:
    """All tuners share the TuningProblem interface on a real substrate."""

    @pytest.mark.parametrize(
        "tuner",
        [RandomSearchTuner(), OpenTunerTuner(), HpBandSterTuner(), GPTuneTuner(FAST)],
        ids=lambda t: t.name,
    )
    def test_all_tuners_on_superlu(self, tuner):
        app = SuperLUDIST(machine=cori_haswell(4), matrices=["Si2"], scale=0.02, seed=0)
        rec = tuner.tune(app.problem(), {"matrix": "Si2"}, 8, seed=5)
        assert len(rec) == 8
        assert rec.best()[1] > 0
        # every evaluated configuration respects the grid constraint
        assert all(c["p_r"] <= c["p"] for c in rec.configs)


class TestDeterminism:
    def test_full_stack_reproducible(self):
        app = PDGEQRF(machine=cori_haswell(1), mn_max=8000, seed=3)
        t = [{"m": 4000, "n": 4000}]
        a = GPTune(app.problem(), FAST).tune(t, 8).best(0)
        b = GPTune(app.problem(), FAST).tune(t, 8).best(0)
        assert a[1] == b[1] and a[0] == b[0]

    def test_seed_changes_trajectory(self):
        app = PDGEQRF(machine=cori_haswell(1), mn_max=8000, seed=3)
        t = [{"m": 4000, "n": 4000}]
        a = GPTune(app.problem(), FAST).tune(t, 8)
        b = GPTune(app.problem(), FAST.replace(seed=77)).tune(t, 8)
        assert [x for x in a.data.X[0]] != [x for x in b.data.X[0]]


class TestBackends:
    def test_thread_backend_same_result_as_serial(self):
        app = AnalyticalApp(seed=0)
        serial = GPTune(app.problem(), FAST.replace(n_start=2)).tune([{"t": 1.0}], 8)
        threaded = GPTune(
            app.problem(), FAST.replace(n_start=2, backend="thread", n_workers=2)
        ).tune([{"t": 1.0}], 8)
        assert serial.best(0)[1] == pytest.approx(threaded.best(0)[1], rel=1e-9)
