"""Tests for the distributed Cholesky on simulated MPI
(repro.runtime.distributed_linalg)."""

import numpy as np
import pytest

from repro.runtime import Machine, distributed_cholesky

MACH = Machine(nodes=2, cores_per_node=8)


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    B = rng.normal(size=(n, n))
    return B @ B.T + n * np.eye(n)


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_matches_numpy_cholesky(self, p):
        A = _spd(96, seed=1)
        Lref = np.linalg.cholesky(A)
        L, _ = distributed_cholesky(A, p, block=16, machine=MACH)
        assert np.allclose(L, Lref, atol=1e-10)

    @pytest.mark.parametrize("block", [8, 17, 32, 96, 200])
    def test_block_sizes_including_non_dividing(self, block):
        A = _spd(70, seed=2)
        L, _ = distributed_cholesky(A, 2, block=block, machine=MACH)
        assert np.allclose(L @ L.T, A, atol=1e-8)

    def test_lower_triangular(self):
        A = _spd(40, seed=3)
        L, _ = distributed_cholesky(A, 3, block=8, machine=MACH)
        assert np.allclose(np.triu(L, k=1), 0.0)

    def test_single_block(self):
        A = _spd(10, seed=4)
        L, _ = distributed_cholesky(A, 2, block=32, machine=MACH)
        assert np.allclose(L, np.linalg.cholesky(A))

    def test_nonsquare_rejected(self):
        with pytest.raises(Exception):
            distributed_cholesky(np.ones((3, 4)), 2, machine=MACH)


class TestSimulatedTime:
    def test_compute_dominated_regime_speeds_up(self):
        """For a matrix large relative to the network, a few ranks help —
        the Sec. 4.3 level-2 parallelism effect."""
        A = _spd(512, seed=5)
        _, t1 = distributed_cholesky(A, 1, block=64, machine=MACH)
        _, t4 = distributed_cholesky(A, 4, block=64, machine=MACH)
        assert t4 < t1

    def test_latency_dominated_regime_slows_down(self):
        """A tiny matrix on many ranks pays more in collectives than it
        gains in flops — the classic strong-scaling limit."""
        A = _spd(48, seed=6)
        _, t1 = distributed_cholesky(A, 1, block=8, machine=MACH)
        _, t8 = distributed_cholesky(A, 8, block=8, machine=MACH)
        assert t8 > t1

    def test_makespan_positive_and_finite(self):
        A = _spd(64, seed=7)
        _, t = distributed_cholesky(A, 2, block=16, machine=MACH)
        assert 0 < t < 10.0


class TestForwardSolve:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_matches_direct_solve(self, p):
        from repro.runtime import distributed_forward_solve

        A = _spd(60, seed=9)
        L = np.linalg.cholesky(A)
        b = np.arange(60, dtype=float)
        x, t = distributed_forward_solve(L, b, p, block=16, machine=MACH)
        assert np.allclose(L @ x, b, atol=1e-10)
        assert t >= 0

    def test_full_covariance_solve_pipeline(self):
        """L then Lᵀ solves give Σ⁻¹y — the modeling-phase α."""
        from repro.runtime import distributed_cholesky, distributed_forward_solve

        A = _spd(48, seed=10)
        y = np.ones(48)
        L, _ = distributed_cholesky(A, 2, block=16, machine=MACH)
        z, _ = distributed_forward_solve(L, y, 2, block=16, machine=MACH)
        # back substitution via the transposed system (upper): reuse forward
        # solve on flipped ordering, or solve directly here for the check
        from scipy.linalg import solve_triangular

        alpha = solve_triangular(L.T, z, lower=False)
        assert np.allclose(A @ alpha, y, atol=1e-8)

    def test_dimension_mismatch(self):
        from repro.runtime import distributed_forward_solve

        with pytest.raises(Exception):
            distributed_forward_solve(np.eye(4), np.ones(5), 2, machine=MACH)
