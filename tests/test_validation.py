"""Tests for LOO cross-validation diagnostics (repro.core.validation)."""

import numpy as np
import pytest

from repro.core import LCM, loo_diagnostics, loo_residuals


def _fit(noise=0.0, seed=0, n=14):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.random(n))[:, None]
    y = np.sin(3 * X[:, 0]) + noise * rng.normal(size=n)
    return LCM(1, 1, seed=seed, n_start=2).fit(X, y, np.zeros(n, dtype=int)), X, y


class TestLOOResiduals:
    def test_matches_explicit_refits(self):
        """The closed-form LOO residual equals actually leaving one out
        (with hyperparameters held fixed, which is the standard definition)."""
        lcm, X, y = _fit(noise=0.05, seed=1)
        r = loo_residuals(lcm)
        # explicit check for a few points: refit the *posterior* (same θ)
        from scipy import linalg as sla

        from repro.core.kernels import pairwise_sq_diffs

        for n in (0, 5, 11):
            keep = np.arange(len(y)) != n
            Sigma, _, _ = lcm._covariance(lcm.theta, pairwise_sq_diffs(X), lcm.task_index)
            Sigma[np.diag_indices(len(y))] += lcm.jitter
            S_kk = Sigma[np.ix_(keep, keep)]
            S_nk = Sigma[n, keep]
            mu_loo = S_nk @ sla.solve(S_kk, y[keep])
            assert r["residual"][n] == pytest.approx(mu_loo - y[n], rel=1e-6, abs=1e-8)

    def test_variances_positive(self):
        lcm, _, _ = _fit(noise=0.1, seed=2)
        r = loo_residuals(lcm)
        assert np.all(r["variance"] > 0)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            loo_residuals(LCM(1, 1))


class TestDiagnostics:
    def test_good_model_small_rmse(self):
        lcm, _, y = _fit(noise=0.0, seed=3)
        d = loo_diagnostics(lcm)
        assert d["rmse"] < 0.3 * np.std(y)

    def test_noisier_data_worse_loo(self):
        clean = loo_diagnostics(_fit(noise=0.0, seed=4)[0])
        noisy = loo_diagnostics(_fit(noise=0.5, seed=4)[0])
        assert noisy["rmse"] > clean["rmse"]

    def test_per_task_keys(self):
        rng = np.random.default_rng(5)
        X = rng.random((12, 1))
        y = np.sin(3 * X[:, 0]) + (np.arange(12) >= 6) * 0.5
        tidx = np.array([0] * 6 + [1] * 6)
        lcm = LCM(2, 1, seed=5, n_start=1).fit(X, y, tidx)
        d = loo_diagnostics(lcm)
        assert "rmse_task_0" in d and "rmse_task_1" in d

    def test_calibration_moments_reasonable(self):
        lcm, _, _ = _fit(noise=0.1, seed=6, n=20)
        d = loo_diagnostics(lcm)
        assert abs(d["mean_std_resid"]) < 1.0
        assert 0.1 < d["std_std_resid"] < 5.0
