"""Smoke tests keeping the runnable examples green.

Only the fast examples run here (the full set is exercised manually /
in benchmarks); each must complete and print its headline lines.
"""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _run(name, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    assert os.path.exists(path), f"missing example {name}"
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "y found" in out and "tuner time breakdown" in out

    def test_parallel_runtime(self, capsys):
        out = _run("parallel_runtime.py", capsys)
        assert "log-likelihood" in out
        assert "<- selected" in out
        assert "makespan" in out

    def test_history_reuse(self, capsys):
        out = _run("history_reuse.py", capsys)
        assert "run 1" in out and "run 2" in out
        assert "came from the archive" in out

    def test_crowd_tuning(self, capsys):
        out = _run("crowd_tuning.py", capsys)
        assert "user A archived" in out
        assert "user B raised the archive" in out
        assert "transferred config" in out

    def test_all_examples_importable(self):
        """Every example compiles (catches syntax/import drift cheaply)."""
        import py_compile

        for fname in sorted(os.listdir(EXAMPLES)):
            if fname.endswith(".py"):
                py_compile.compile(os.path.join(EXAMPLES, fname), doraise=True)
