"""Tests for cross-iteration warm refits and the incremental driver caches.

Covers the ``refit_warm_start`` / ``refit_interval`` options (fewer L-BFGS
multi-starts per campaign via warm refits and O(N²·n_new) posterior
extension), the GP warm-start mirror for the degradation ladder, and the
incremental seen-key / fingerprint accumulators.
"""

import numpy as np
import pytest

from repro.core import (
    GaussianProcess,
    GPTune,
    Options,
    Real,
    Space,
    TuningData,
    TuningProblem,
)


def _problem():
    return TuningProblem(
        task_space=Space([Real("t", 0.0, 1.0)]),
        tuning_space=Space([Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)]),
        objective=lambda task, cfg: 1.0
        + (cfg["x"] - 0.2 - 0.3 * task["t"]) ** 2
        + (cfg["y"] - 0.7 * task["t"]) ** 2,
        name="warm-refit-test",
    )


TASKS = [{"t": 0.2}, {"t": 0.8}]
BASE = dict(seed=0, n_start=2, lbfgs_maxiter=40, pso_iters=5, ei_candidates=10)


class TestOptions:
    def test_defaults_off(self):
        opt = Options()
        assert opt.refit_warm_start is False
        assert opt.refit_warm_n_start == 1
        assert opt.refit_interval == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Options(refit_warm_n_start=0)
        with pytest.raises(ValueError):
            Options(refit_interval=0)


class TestWarmRefitCampaign:
    def test_fewer_multistarts_same_quality(self):
        cold = GPTune(_problem(), Options(**BASE)).tune(TASKS, 16)
        warm = GPTune(
            _problem(), Options(**BASE, refit_warm_start=True)
        ).tune(TASKS, 16)
        cold_starts = cold.events.total("model-fit", "n_starts")
        warm_starts = warm.events.total("model-fit", "n_starts")
        assert warm_starts < cold_starts
        # only the first fit is cold (n_start=2); the rest warm-start with 1
        n_fits = warm.events.count("model-fit")
        assert warm_starts == 2 + (n_fits - 1)
        assert np.all(warm.best_values() <= cold.best_values() * 1.05)

    def test_refit_interval_extends_posterior(self):
        warm = GPTune(
            _problem(),
            Options(**BASE, refit_warm_start=True, refit_interval=3),
        ).tune(TASKS, 16)
        extends = warm.events.count("model-extend")
        fits = warm.events.count("model-fit")
        assert extends > 0
        # every extend event reports n_starts=0, so it adds nothing to the total
        assert warm.events.total("model-extend", "n_starts") == 0
        # roughly two in three modeling phases are extensions
        assert extends >= fits - 1
        assert np.all(np.isfinite(warm.best_values()))

    def test_extension_observations_reach_the_model(self):
        """The extended surrogate really contains the intermediate rows."""
        opts = Options(**BASE, refit_warm_start=True, refit_interval=2)
        tuner = GPTune(_problem(), opts)
        result = tuner.tune(TASKS, 12)
        model = result.models[0]
        # every row up to the last modeling phase is in the final surrogate,
        # whatever mix of fits and extensions produced it (the last batch of
        # one evaluation per task lands after that phase, as in a cold run)
        assert model.y.shape[0] == result.data.n_samples() - len(TASKS)

    def test_campaign_state_reset_between_tunes(self):
        tuner = GPTune(_problem(), Options(**BASE, refit_warm_start=True))
        r1 = tuner.tune(TASKS, 8)
        first_total = tuner.events.total("model-fit", "n_starts")
        r2 = tuner.tune(TASKS, 8)
        # the second campaign's first fit is cold again (n_start=2), so the
        # grand total grows by at least another cold fit
        assert tuner.events.total("model-fit", "n_starts") >= first_total + 2
        assert np.all(np.isfinite(r2.best_values()))


class TestGPWarmStart:
    def test_theta0_replaces_first_restart(self, rng):
        X = np.linspace(0, 1, 12)[:, None]
        y = np.sin(5 * X[:, 0])
        ref = GaussianProcess(seed=0, n_start=3).fit(X, y)
        warm = GaussianProcess(seed=0, n_start=1).fit(X, y, theta0=ref.theta)
        assert warm.log_likelihood_ >= ref.log_likelihood_ - 1e-6

    def test_theta0_shape_validated(self, rng):
        X = rng.random((6, 2))
        y = rng.normal(size=6)
        with pytest.raises(ValueError):
            GaussianProcess(seed=0).fit(X, y, theta0=np.zeros(3))


class TestSeenKeys:
    def test_incremental_seen_keys(self):
        space = Space([Real("x", 0.0, 1.0)])
        data = TuningData(Space([Real("t", 0.0, 1.0)]), space, [{"t": 0.0}, {"t": 1.0}])
        assert data.seen_keys(0) == set()
        data.add(0, {"x": 0.25}, 1.0)
        data.add(0, {"x": 0.5}, 2.0)
        data.add(1, {"x": 0.25}, 3.0)
        assert data.x_key({"x": 0.25}) in data.seen_keys(0)
        assert data.x_key({"x": 0.5}) in data.seen_keys(0)
        assert len(data.seen_keys(0)) == 2
        assert len(data.seen_keys(1)) == 1

    def test_matches_recomputed_set(self):
        space = Space([Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)])
        data = TuningData(Space([Real("t", 0.0, 1.0)]), space, [{"t": 0.5}])
        rng = np.random.default_rng(4)
        for _ in range(17):
            data.add(0, {"x": float(rng.random()), "y": float(rng.random())}, 0.0)
        rebuilt = {tuple(np.round(space.normalize(x), 9)) for x in data.X[0]}
        assert data.seen_keys(0) == rebuilt

    def test_dedup_uses_incremental_set(self):
        res = GPTune(_problem(), Options(**BASE)).tune(TASKS, 8)
        # no duplicate configurations were evaluated for either task
        for i in range(2):
            assert len(res.data.seen_keys(i)) == res.data.n_samples(i)


class TestIncrementalFingerprints:
    def test_matches_full_rehash(self, tmp_path):
        from repro.service.modelcache import SurrogateCache
        from repro.service.store import content_fingerprint

        tuner = GPTune(
            _problem(),
            Options(**BASE),
            model_cache=SurrogateCache(str(tmp_path / "cache.jsonl")),
        )
        data = TuningData(
            _problem().task_space, _problem().tuning_space, TASKS
        )
        rng = np.random.default_rng(0)
        for i in range(2):
            for _ in range(3):
                data.add(i, {"x": float(rng.random()), "y": float(rng.random())}, 1.0)
        got = tuner._fingerprints(data)
        want = frozenset(content_fingerprint(r) for r in data.to_records())
        assert got == want
        # appending more rows only hashes the new ones, same resulting set
        data.add(0, {"x": 0.123, "y": 0.456}, 2.0)
        got2 = tuner._fingerprints(data)
        want2 = frozenset(content_fingerprint(r) for r in data.to_records())
        assert got2 == want2 and len(got2) == len(want) + 1

    def test_none_without_cache(self):
        tuner = GPTune(_problem(), Options(**BASE))
        data = TuningData(_problem().task_space, _problem().tuning_space, TASKS)
        assert tuner._fingerprints(data) is None

    def test_cache_still_warms_across_campaigns(self, tmp_path):
        """End-to-end: the incremental fingerprints still hit the cache."""
        from repro.service.modelcache import SurrogateCache

        path = str(tmp_path / "cache.jsonl")
        history = []

        def run():
            t = GPTune(
                _problem(),
                Options(**BASE),
                model_cache=SurrogateCache(path),
            )
            r = t.tune(TASKS, 6)
            history.append(r)
            return r

        first = run()
        assert first.events.count("model-cache-store") >= 1
