"""Tests for the simulated MPI runtime (repro.runtime.mpi)."""

import numpy as np
import pytest

from repro.runtime import Machine, SimJob, run_spmd
from repro.runtime.mpi import payload_bytes

MACH = Machine(nodes=4, cores_per_node=8)


class TestBasics:
    def test_ranks_and_sizes(self):
        results, _ = run_spmd(4, lambda c: (c.Get_rank(), c.Get_size()), machine=MACH)
        assert results == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_single_rank(self):
        results, t = run_spmd(1, lambda c: c.rank, machine=MACH)
        assert results == [0] and t == 0.0

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            SimJob(0, lambda c: None)

    def test_error_propagates(self):
        def boom(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 died")
            comm.barrier()

        job = SimJob(2, boom, machine=MACH).start()
        with pytest.raises(Exception):
            job.join()

    def test_compute_advances_clock(self):
        def fn(comm):
            comm.compute(2.5)
            return comm.clock.now

        results, makespan = run_spmd(3, fn, machine=MACH)
        assert all(r == 2.5 for r in results)
        assert makespan == 2.5


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results, t = run_spmd(2, fn, machine=MACH)
        assert results[1] == {"a": 7}
        assert t > 0.0  # communication charged simulated time

    def test_tag_matching(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("second", dest=1, tag=2)
                comm.send("first", dest=1, tag=1)
                return None
            a = comm.recv(source=0, tag=1)
            b = comm.recv(source=0, tag=2)
            return (a, b)

        results, _ = run_spmd(2, fn, machine=MACH)
        assert results[1] == ("first", "second")

    def test_causality(self):
        """A receive cannot complete before the send happened."""

        def fn(comm):
            if comm.rank == 0:
                comm.compute(5.0)
                comm.send("late", dest=1)
                return comm.clock.now
            comm.recv(source=0)
            return comm.clock.now

        results, _ = run_spmd(2, fn, machine=MACH)
        assert results[1] >= 5.0

    def test_bad_dest(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=9)

        job = SimJob(2, fn, machine=MACH).start()
        with pytest.raises(Exception):
            job.join()


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            data = {"k": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        results, t = run_spmd(4, fn, machine=MACH)
        assert all(r == {"k": [1, 2, 3]} for r in results)
        assert t > 0

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank**2, root=0)

        results, _ = run_spmd(4, fn, machine=MACH)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allgather(self):
        def fn(comm):
            return comm.allgather(comm.rank)

        results, _ = run_spmd(3, fn, machine=MACH)
        assert all(r == [0, 1, 2] for r in results)

    def test_scatter(self):
        def fn(comm):
            data = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        results, _ = run_spmd(3, fn, machine=MACH)
        assert results == [10, 20, 30]

    def test_scatter_wrong_length(self):
        def fn(comm):
            data = [1, 2] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        job = SimJob(3, fn, machine=MACH).start()
        with pytest.raises(Exception):
            job.join()

    def test_reduce_sum(self):
        def fn(comm):
            return comm.reduce(comm.rank + 1, root=0)

        results, _ = run_spmd(4, fn, machine=MACH)
        assert results[0] == 10
        assert results[1] is None

    def test_allreduce_custom_op(self):
        def fn(comm):
            return comm.allreduce(comm.rank, op=max)

        results, _ = run_spmd(5, fn, machine=MACH)
        assert all(r == 4 for r in results)

    def test_barrier_synchronizes_clocks(self):
        def fn(comm):
            comm.compute(float(comm.rank))  # rank 3 is slowest
            comm.barrier()
            return comm.clock.now

        results, _ = run_spmd(4, fn, machine=MACH)
        assert all(r >= 3.0 for r in results)
        assert results[0] == pytest.approx(results[3])

    def test_numpy_payloads(self):
        def fn(comm):
            arr = np.arange(10) if comm.rank == 0 else None
            return comm.bcast(arr, root=0)

        results, _ = run_spmd(2, fn, machine=MACH)
        assert np.array_equal(results[1], np.arange(10))


class TestSpawn:
    def test_spawn_master_worker_roundtrip(self):
        """The Fig. 1 programming model: master spawns workers, broadcasts
        work, gathers results, disconnects."""

        def worker(comm):
            parent = comm.Get_parent()
            x = parent.worker_recv_bcast(comm)
            comm.compute(0.5)
            parent.worker_send_result(comm, x * (comm.rank + 1))

        def master(comm):
            inter = comm.Spawn(worker, nprocs=3)
            inter.bcast_to_workers(10)
            results = inter.gather_from_workers()
            makespan = inter.Disconnect()
            return results, makespan

        results, t = run_spmd(1, master, machine=MACH)
        vals, child_makespan = results[0]
        assert vals == [10, 20, 30]
        assert child_makespan >= 0.5
        assert t >= child_makespan  # master absorbed the child time

    def test_spawned_clocks_start_at_spawner_time(self):
        def worker(comm):
            return comm.clock.now

        def master(comm):
            comm.compute(2.0)
            inter = comm.Spawn(worker, nprocs=2)
            inter.Disconnect()
            return inter._job.results

        results, _ = run_spmd(1, master, machine=MACH)
        assert all(t >= 2.0 for t in results[0])


class TestPayload:
    def test_payload_bytes_scales(self):
        small = payload_bytes([1])
        big = payload_bytes(list(range(10000)))
        assert big > small

    def test_unpicklable_fallback(self):
        assert payload_bytes(lambda x: x) == 64


class TestMakespan:
    def test_makespan_is_max_clock(self):
        def fn(comm):
            comm.compute(1.0 if comm.rank == 0 else 4.0)

        _, t = run_spmd(2, fn, machine=MACH)
        assert t == 4.0


class TestNonblocking:
    def test_isend_irecv_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend({"v": 42}, dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        results, _ = run_spmd(2, fn, machine=MACH)
        assert results[1] == {"v": 42}

    def test_irecv_overlaps_compute(self):
        """Work issued between irecv and wait overlaps the transfer."""

        def fn(comm):
            if comm.rank == 0:
                comm.compute(1.0)
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            comm.compute(1.0)  # overlaps the sender's compute
            req.wait()
            return comm.clock.now

        results, _ = run_spmd(2, fn, machine=MACH)
        # without overlap the receiver would finish after ~2.0s
        assert results[1] < 1.5

    def test_test_polls_without_blocking(self):
        def fn(comm):
            if comm.rank == 0:
                comm.compute(0.1)
                comm.send("x", dest=1)
                return None
            req = comm.irecv(source=0)
            polls = 0
            import time as _t

            while True:
                done, val = req.test()
                if done:
                    return polls, val
                polls += 1
                _t.sleep(0.001)

        results, _ = run_spmd(2, fn, machine=MACH)
        polls, val = results[1]
        assert val == "x"

    def test_isend_completes_immediately(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend("y", dest=1)
                done, _ = req.test()
                comm.send("flush", dest=1, tag=9)
                return done
            comm.recv(source=0, tag=9)
            return comm.recv(source=0)

        results, _ = run_spmd(2, fn, machine=MACH)
        assert results[0] is True
        assert results[1] == "y"

    def test_wait_idempotent(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(7, dest=1)
                return None
            req = comm.irecv(source=0)
            return req.wait(), req.wait()

        results, _ = run_spmd(2, fn, machine=MACH)
        assert results[1] == (7, 7)
