"""Unit tests for TuningProblem (repro.core.problem) and Options."""

import numpy as np
import pytest

from repro.core import Integer, Options, Real, Space, TuningProblem


@pytest.fixture
def problem():
    ts = Space([Integer("m", 1, 100)])
    ps = Space([Real("x", 0.0, 1.0), Integer("p", 1, 16)], constraints=["p <= m"])
    return TuningProblem(ts, ps, lambda t, c: t["m"] * c["x"] + c["p"], name="toy")


class TestEvaluate:
    def test_scalar_objective(self, problem):
        y = problem.evaluate({"m": 10}, {"x": 0.5, "p": 2})
        assert y.shape == (1,)
        assert y[0] == pytest.approx(7.0)

    def test_round_trip_before_eval(self, problem):
        """Fractional integer settings are snapped before evaluation."""
        y = problem.evaluate({"m": 10}, {"x": 0.5, "p": 2.4})
        assert y[0] == pytest.approx(7.0)

    def test_nonfinite_rejected(self):
        ts = Space([Integer("m", 1, 10)])
        ps = Space([Real("x", 0, 1)])
        p = TuningProblem(ts, ps, lambda t, c: float("nan"))
        with pytest.raises(ValueError):
            p.evaluate({"m": 1}, {"x": 0.5})

    def test_wrong_shape_rejected(self):
        ts = Space([Integer("m", 1, 10)])
        ps = Space([Real("x", 0, 1)])
        p = TuningProblem(ts, ps, lambda t, c: [1.0, 2.0], n_objectives=1)
        with pytest.raises(ValueError):
            p.evaluate({"m": 1}, {"x": 0.5})

    def test_multi_objective(self):
        ts = Space([Integer("m", 1, 10)])
        ps = Space([Real("x", 0, 1)])
        p = TuningProblem(ts, ps, lambda t, c: [c["x"], 1 - c["x"]], n_objectives=2)
        y = p.evaluate({"m": 1}, {"x": 0.3})
        assert y.tolist() == pytest.approx([0.3, 0.7])


class TestFeasibility:
    def test_task_bound_constraint(self, problem):
        assert problem.is_feasible({"m": 10}, {"x": 0.1, "p": 5})
        assert not problem.is_feasible({"m": 3}, {"x": 0.1, "p": 5})

    def test_feasibility_on_unit(self, problem):
        check = problem.feasibility_on_unit({"m": 4})
        U = np.array([[0.5, 0.0], [0.5, 1.0]])  # p=1 feasible, p=16 not
        mask = check(U)
        assert mask.tolist() == [True, False]


class TestMeta:
    def test_objective_names_default(self, problem):
        assert problem.objective_names == ["y0"]

    def test_objective_names_validation(self):
        ts = Space([Integer("m", 1, 10)])
        ps = Space([Real("x", 0, 1)])
        with pytest.raises(ValueError):
            TuningProblem(ts, ps, lambda t, c: 0.0, objective_names=["a", "b"])

    def test_has_models(self, problem):
        assert not problem.has_models

    def test_n_objectives_validation(self):
        ts = Space([Integer("m", 1, 10)])
        ps = Space([Real("x", 0, 1)])
        with pytest.raises(ValueError):
            TuningProblem(ts, ps, lambda t, c: 0.0, n_objectives=0)


class TestOptions:
    def test_defaults_valid(self):
        Options()

    def test_replace(self):
        o = Options(seed=1)
        o2 = o.replace(n_start=7)
        assert o2.n_start == 7 and o2.seed == 1 and o.n_start != 7

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_latent": 0},
            {"n_start": 0},
            {"initial_fraction": 0.0},
            {"initial_fraction": 1.0},
            {"y_transform": "boxcox"},
            {"backend": "gpu"},
            {"pareto_batch": 0},
        ],
    )
    def test_invalid_options(self, kw):
        with pytest.raises(ValueError):
            Options(**kw)
