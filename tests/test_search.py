"""Unit tests for the search-phase optimizers (PSO, NSGA-II)."""

import numpy as np
import pytest

from repro.core import NSGA2, ParticleSwarm
from repro.core.search.nsga2 import crowding_distance, fast_non_dominated_sort


class TestPSO:
    def test_finds_smooth_maximum(self):
        target = np.array([0.3, 0.7])

        def f(X):
            return -np.sum((X - target) ** 2, axis=1)

        pso = ParticleSwarm(dim=2, n_particles=30, iterations=40, seed=0)
        x, v = pso.maximize(f)
        assert np.allclose(x, target, atol=0.05)
        assert v == pytest.approx(0.0, abs=1e-2)

    def test_respects_bounds(self):
        def f(X):
            return X[:, 0]  # pushes toward the boundary

        x, _ = ParticleSwarm(dim=1, n_particles=10, iterations=30, seed=1).maximize(f)
        assert 0.0 <= x[0] <= 1.0
        assert x[0] > 0.95

    def test_seed_reproducible(self):
        f = lambda X: -np.sum((X - 0.5) ** 2, axis=1)
        a = ParticleSwarm(2, 10, 10, seed=5).maximize(f)
        b = ParticleSwarm(2, 10, 10, seed=5).maximize(f)
        assert np.allclose(a[0], b[0]) and a[1] == b[1]

    def test_x0_seeding_helps(self):
        """An injected good start is never lost (elitist pbest)."""
        target = np.array([0.111, 0.222, 0.333, 0.444])
        f = lambda X: -np.sum((X - target) ** 2, axis=1)
        pso = ParticleSwarm(dim=4, n_particles=5, iterations=2, seed=0)
        x, v = pso.maximize(f, x0=target[None, :])
        assert v >= -1e-12

    def test_infeasible_minus_inf_handled(self):
        def f(X):
            vals = -np.sum((X - 0.5) ** 2, axis=1)
            vals[X[:, 0] > 0.5] = -np.inf
            return vals

        x, v = ParticleSwarm(dim=1, n_particles=20, iterations=30, seed=2).maximize(f)
        assert x[0] <= 0.5 and np.isfinite(v)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ParticleSwarm(dim=0)


class TestNonDominatedSort:
    def test_simple_fronts(self):
        F = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0], [3.0, 3.0]])
        fronts = fast_non_dominated_sort(F)
        assert set(fronts[0].tolist()) == {0, 2}
        assert set(fronts[1].tolist()) == {1}
        assert set(fronts[2].tolist()) == {3}

    def test_all_nondominated(self):
        F = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        fronts = fast_non_dominated_sort(F)
        assert len(fronts) == 1 and len(fronts[0]) == 3

    def test_duplicates_same_front(self):
        F = np.array([[1.0, 1.0], [1.0, 1.0]])
        fronts = fast_non_dominated_sort(F)
        assert len(fronts[0]) == 2

    def test_partition_is_complete(self, rng):
        F = rng.random((20, 3))
        fronts = fast_non_dominated_sort(F)
        together = np.concatenate(fronts)
        assert sorted(together.tolist()) == list(range(20))


class TestCrowdingDistance:
    def test_boundary_infinite(self):
        F = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        d = crowding_distance(F)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_small_fronts_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0]]))))
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))))

    def test_denser_region_smaller_distance(self):
        F = np.array([[0.0, 4.0], [0.1, 3.9], [0.2, 3.8], [2.0, 1.0], [4.0, 0.0]])
        d = crowding_distance(F)
        assert d[1] < d[3]


class TestNSGA2:
    def test_converges_to_known_front(self):
        """min (x², (x−1)²) on x ∈ [0,1] — the front is x ∈ [0,1] with
        f1 + sqrt-shape; check solutions lie near the true front curve."""

        def objectives(X):
            x = X[:, 0]
            return np.column_stack([x**2, (x - 1.0) ** 2])

        nsga = NSGA2(dim=1, pop_size=30, generations=30, seed=0)
        Xf, Ff = nsga.minimize(objectives)
        assert Xf.shape[0] >= 5
        # on the true Pareto front, sqrt(f1) + sqrt(f2) == 1
        resid = np.abs(np.sqrt(Ff[:, 0]) + np.sqrt(Ff[:, 1]) - 1.0)
        assert np.median(resid) < 0.05

    def test_front_spread(self):
        def objectives(X):
            x = X[:, 0]
            return np.column_stack([x**2, (x - 1.0) ** 2])

        _, Ff = NSGA2(dim=1, pop_size=40, generations=30, seed=1).minimize(objectives)
        assert Ff[:, 0].max() - Ff[:, 0].min() > 0.5

    def test_returned_front_is_nondominated(self, rng):
        def objectives(X):
            return np.column_stack([X[:, 0], 1.0 - X[:, 0] + 0.3 * X[:, 1]])

        _, Ff = NSGA2(dim=2, pop_size=20, generations=10, seed=2).minimize(objectives)
        fronts = fast_non_dominated_sort(Ff)
        assert len(fronts) == 1

    def test_infeasible_inf_rows_excluded(self):
        def objectives(X):
            F = np.column_stack([X[:, 0], 1.0 - X[:, 0]])
            F[X[:, 0] > 0.5] = np.inf
            return F

        _, Ff = NSGA2(dim=1, pop_size=20, generations=15, seed=3).minimize(objectives)
        finite = Ff[np.all(np.isfinite(Ff), axis=1)]
        assert finite.shape[0] >= 1
        assert np.all(finite[:, 0] <= 0.5 + 1e-9)

    def test_seed_reproducible(self):
        def objectives(X):
            return np.column_stack([X[:, 0], 1.0 - X[:, 0]])

        a = NSGA2(dim=1, pop_size=10, generations=5, seed=9).minimize(objectives)
        b = NSGA2(dim=1, pop_size=10, generations=5, seed=9).minimize(objectives)
        assert np.allclose(a[1], b[1])
