"""Unit tests for the search-phase optimizers (PSO, NSGA-II)."""

import numpy as np
import pytest

from repro.core import NSGA2, ParticleSwarm
from repro.core.search.nsga2 import crowding_distance, fast_non_dominated_sort


class TestPSO:
    def test_finds_smooth_maximum(self):
        target = np.array([0.3, 0.7])

        def f(X):
            return -np.sum((X - target) ** 2, axis=1)

        pso = ParticleSwarm(dim=2, n_particles=30, iterations=40, seed=0)
        x, v = pso.maximize(f)
        assert np.allclose(x, target, atol=0.05)
        assert v == pytest.approx(0.0, abs=1e-2)

    def test_respects_bounds(self):
        def f(X):
            return X[:, 0]  # pushes toward the boundary

        x, _ = ParticleSwarm(dim=1, n_particles=10, iterations=30, seed=1).maximize(f)
        assert 0.0 <= x[0] <= 1.0
        assert x[0] > 0.95

    def test_seed_reproducible(self):
        f = lambda X: -np.sum((X - 0.5) ** 2, axis=1)
        a = ParticleSwarm(2, 10, 10, seed=5).maximize(f)
        b = ParticleSwarm(2, 10, 10, seed=5).maximize(f)
        assert np.allclose(a[0], b[0]) and a[1] == b[1]

    def test_x0_seeding_helps(self):
        """An injected good start is never lost (elitist pbest)."""
        target = np.array([0.111, 0.222, 0.333, 0.444])
        f = lambda X: -np.sum((X - target) ** 2, axis=1)
        pso = ParticleSwarm(dim=4, n_particles=5, iterations=2, seed=0)
        x, v = pso.maximize(f, x0=target[None, :])
        assert v >= -1e-12

    def test_infeasible_minus_inf_handled(self):
        def f(X):
            vals = -np.sum((X - 0.5) ** 2, axis=1)
            vals[X[:, 0] > 0.5] = -np.inf
            return vals

        x, v = ParticleSwarm(dim=1, n_particles=20, iterations=30, seed=2).maximize(f)
        assert x[0] <= 0.5 and np.isfinite(v)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ParticleSwarm(dim=0)


class TestNonDominatedSort:
    def test_simple_fronts(self):
        F = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0], [3.0, 3.0]])
        fronts = fast_non_dominated_sort(F)
        assert set(fronts[0].tolist()) == {0, 2}
        assert set(fronts[1].tolist()) == {1}
        assert set(fronts[2].tolist()) == {3}

    def test_all_nondominated(self):
        F = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        fronts = fast_non_dominated_sort(F)
        assert len(fronts) == 1 and len(fronts[0]) == 3

    def test_duplicates_same_front(self):
        F = np.array([[1.0, 1.0], [1.0, 1.0]])
        fronts = fast_non_dominated_sort(F)
        assert len(fronts[0]) == 2

    def test_partition_is_complete(self, rng):
        F = rng.random((20, 3))
        fronts = fast_non_dominated_sort(F)
        together = np.concatenate(fronts)
        assert sorted(together.tolist()) == list(range(20))


class TestCrowdingDistance:
    def test_boundary_infinite(self):
        F = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        d = crowding_distance(F)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_small_fronts_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0]]))))
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))))

    def test_denser_region_smaller_distance(self):
        F = np.array([[0.0, 4.0], [0.1, 3.9], [0.2, 3.8], [2.0, 1.0], [4.0, 0.0]])
        d = crowding_distance(F)
        assert d[1] < d[3]


class TestNSGA2:
    def test_converges_to_known_front(self):
        """min (x², (x−1)²) on x ∈ [0,1] — the front is x ∈ [0,1] with
        f1 + sqrt-shape; check solutions lie near the true front curve."""

        def objectives(X):
            x = X[:, 0]
            return np.column_stack([x**2, (x - 1.0) ** 2])

        nsga = NSGA2(dim=1, pop_size=30, generations=30, seed=0)
        Xf, Ff = nsga.minimize(objectives)
        assert Xf.shape[0] >= 5
        # on the true Pareto front, sqrt(f1) + sqrt(f2) == 1
        resid = np.abs(np.sqrt(Ff[:, 0]) + np.sqrt(Ff[:, 1]) - 1.0)
        assert np.median(resid) < 0.05

    def test_front_spread(self):
        def objectives(X):
            x = X[:, 0]
            return np.column_stack([x**2, (x - 1.0) ** 2])

        _, Ff = NSGA2(dim=1, pop_size=40, generations=30, seed=1).minimize(objectives)
        assert Ff[:, 0].max() - Ff[:, 0].min() > 0.5

    def test_returned_front_is_nondominated(self, rng):
        def objectives(X):
            return np.column_stack([X[:, 0], 1.0 - X[:, 0] + 0.3 * X[:, 1]])

        _, Ff = NSGA2(dim=2, pop_size=20, generations=10, seed=2).minimize(objectives)
        fronts = fast_non_dominated_sort(Ff)
        assert len(fronts) == 1

    def test_infeasible_inf_rows_excluded(self):
        def objectives(X):
            F = np.column_stack([X[:, 0], 1.0 - X[:, 0]])
            F[X[:, 0] > 0.5] = np.inf
            return F

        _, Ff = NSGA2(dim=1, pop_size=20, generations=15, seed=3).minimize(objectives)
        finite = Ff[np.all(np.isfinite(Ff), axis=1)]
        assert finite.shape[0] >= 1
        assert np.all(finite[:, 0] <= 0.5 + 1e-9)

    def test_seed_reproducible(self):
        def objectives(X):
            return np.column_stack([X[:, 0], 1.0 - X[:, 0]])

        a = NSGA2(dim=1, pop_size=10, generations=5, seed=9).minimize(objectives)
        b = NSGA2(dim=1, pop_size=10, generations=5, seed=9).minimize(objectives)
        assert np.allclose(a[1], b[1])


class TestNSGA2AskTell:
    """The stepping API must reproduce minimize() exactly (same RNG order)."""

    @staticmethod
    def _objectives(X):
        return np.column_stack([X[:, 0], 1.0 - X[:, 0] + 0.2 * X[:, 1]])

    def test_stepping_matches_minimize(self):
        ref = NSGA2(dim=2, pop_size=12, generations=5, seed=7)
        Xr, Fr = ref.minimize(self._objectives)

        step = NSGA2(dim=2, pop_size=12, generations=5, seed=7)
        step.tell(self._objectives(step.initialize()))
        for _ in range(step.generations):
            step.tell(self._objectives(step.ask()))
        Xs, Fs = step.front()
        assert np.array_equal(Xr, Xs)
        assert np.array_equal(Fr, Fs)

    def test_population_exposes_all_ranks(self):
        nsga = NSGA2(dim=2, pop_size=10, generations=3, seed=0)
        nsga.minimize(self._objectives)
        popX, popF = nsga.population
        assert popX.shape == (nsga.pop_size, 2)
        assert popF.shape == (nsga.pop_size, 2)

    def test_ask_before_tell_raises(self):
        nsga = NSGA2(dim=2, pop_size=8, generations=2, seed=0)
        with pytest.raises(RuntimeError):
            nsga.ask()
        nsga.initialize()
        with pytest.raises(RuntimeError):
            nsga.ask()  # initial fitness not told yet

    def test_tell_without_pending_ask_names_task_and_generation(self):
        """Protocol errors carry the label and generation, so a driver
        interleaving many per-task optimizers can tell which one broke."""
        nsga = NSGA2(dim=2, pop_size=8, generations=2, seed=0, label="task 3")
        nsga.tell(self._objectives(nsga.initialize()))
        nsga.tell(self._objectives(nsga.ask()))  # generation 1 completes
        with pytest.raises(RuntimeError) as exc:
            nsga.tell(np.zeros((8, 2)))  # no ask() pending
        msg = str(exc.value)
        assert "tell() without a pending ask()" in msg
        assert "task 3" in msg and "generation 1" in msg

    def test_tell_before_initialize_has_context(self):
        nsga = NSGA2(dim=2, pop_size=8, generations=2, seed=0, label="task 7")
        with pytest.raises(RuntimeError, match=r"task 7, generation 0"):
            nsga.tell(np.zeros((8, 2)))


class TestPickK:
    """MLA._pick_k: non-finite rows filter *before* the size check."""

    @staticmethod
    def _pick_k(Xf, Ff, k, pool=None):
        from repro.core.mla import GPTune

        return GPTune._pick_k(Xf, Ff, k, pool=pool)

    def test_infinite_rows_do_not_slip_through_early_exit(self):
        """A short front padded with inf rows used to be returned verbatim."""
        Xf = np.array([[0.1, 0.1], [0.9, 0.9], [0.5, 0.5]])
        Ff = np.array([[1.0, 2.0], [np.inf, np.inf], [2.0, 1.0]])
        picks = self._pick_k(Xf, Ff, k=3)
        assert picks.shape[0] == 2
        assert not any(np.allclose(p, [0.9, 0.9]) for p in picks)

    def test_tops_up_from_pool_ranks(self):
        """Fewer finite front rows than k: next ranks of the pool fill in."""
        Xf = np.array([[0.1, 0.1], [0.2, 0.2]])
        Ff = np.array([[1.0, 2.0], [np.inf, 3.0]])
        poolX = np.array([[0.1, 0.1], [0.4, 0.4], [0.6, 0.6], [0.8, 0.8]])
        poolF = np.array([[1.0, 2.0], [2.0, 3.0], [3.0, 4.0], [np.inf, 0.5]])
        picks = self._pick_k(Xf, Ff, k=3, pool=(poolX, poolF))
        assert picks.shape[0] == 3
        keys = {tuple(np.round(p, 6)) for p in picks}
        assert (0.1, 0.1) in keys  # the finite front row survives
        assert (0.8, 0.8) not in keys  # non-finite pool rows stay excluded
        assert len(keys) == 3  # no duplicates

    def test_crowding_pick_unchanged_on_large_finite_front(self):
        rng = np.random.default_rng(3)
        Xf = rng.random((12, 2))
        Ff = np.column_stack([np.linspace(0, 1, 12), np.linspace(1, 0, 12)])
        picks = self._pick_k(Xf, Ff, k=4)
        assert picks.shape == (4, 2)
        # boundary (extreme) points have infinite crowding distance: kept
        assert any(np.allclose(p, Xf[0]) for p in picks)
        assert any(np.allclose(p, Xf[-1]) for p in picks)

    def test_all_infeasible_returns_raw_front(self):
        """Everything inf: keep proposing rather than stalling the campaign."""
        Xf = np.array([[0.3, 0.3], [0.6, 0.6]])
        Ff = np.full((2, 2), np.inf)
        picks = self._pick_k(Xf, Ff, k=2)
        assert picks.shape[0] == 2
