"""Tests for the ScaLAPACK simulators (PDGEQRF, PDSYEVX)."""

import numpy as np
import pytest

from repro.apps.scalapack import PDGEQRF, PDSYEVX, costs
from repro.runtime import cori_haswell


class TestCosts:
    def test_grid_cols(self):
        assert costs.grid_cols(16, 4) == 4
        assert costs.grid_cols(17, 4) == 4
        assert costs.grid_cols(4, 8) == 1

    def test_qr_flops_decrease_with_p(self):
        f1 = costs.qr_flops(4000, 4000, 4, 2, 64)
        f2 = costs.qr_flops(4000, 4000, 16, 4, 64)
        assert f2 < f1

    def test_qr_messages_increase_with_grid(self):
        m1 = costs.qr_messages(4000, 4, 2, 64)
        m2 = costs.qr_messages(4000, 64, 8, 64)
        assert m2 > m1

    def test_qr_messages_decrease_with_block(self):
        m_small = costs.qr_messages(4000, 16, 4, 8)
        m_big = costs.qr_messages(4000, 16, 4, 128)
        assert m_big < m_small

    def test_volume_positive(self):
        assert costs.qr_volume(4000, 2000, 16, 4, 64) > 0

    def test_syevx_flops_cubic(self):
        assert costs.syevx_flops(2000, 1) / costs.syevx_flops(1000, 1) == pytest.approx(8.0)


class TestPDGEQRF:
    @pytest.fixture
    def app(self):
        return PDGEQRF(machine=cori_haswell(4), mn_max=20000, seed=0)

    def test_spaces(self, app):
        assert app.tuning_space().dimension == 3  # β = 3 per Table 2
        assert app.task_space().dimension == 2

    def test_constraint(self, app):
        sp = app.tuning_space()
        assert not sp.is_feasible({"b": 32, "p": 4, "p_r": 8})
        assert sp.is_feasible({"b": 32, "p": 8, "p_r": 4})

    def test_runtime_positive_and_finite(self, app):
        y = app.objective({"m": 5000, "n": 4000}, {"b": 64, "p": 64, "p_r": 8})
        assert 0 < y < 1e4

    def test_bigger_matrix_slower(self, app):
        cfg = {"b": 64, "p": 64, "p_r": 8}
        y1 = app.objective({"m": 2000, "n": 2000}, cfg)
        y2 = app.objective({"m": 8000, "n": 8000}, cfg)
        assert y2 > 4 * y1

    def test_more_processes_help_large_matrix(self, app):
        """With threads capped per node, p = 2 underuses the machine."""
        t = {"m": 16000, "n": 16000}
        slow = app.objective(t, {"b": 64, "p": 2, "p_r": 1})
        fast = app.objective(t, {"b": 64, "p": 128, "p_r": 8})
        assert fast < slow

    def test_degenerate_grid_penalized(self, app):
        """A 1 × p or p × 1 grid loses to a square-ish one."""
        t = {"m": 8000, "n": 8000}
        good = app.objective(t, {"b": 64, "p": 64, "p_r": 8})
        bad = app.objective(t, {"b": 64, "p": 64, "p_r": 64})
        assert good < bad

    def test_tiny_blocks_penalized(self, app):
        t = {"m": 8000, "n": 8000}
        good = app.objective(t, {"b": 64, "p": 64, "p_r": 8})
        bad = app.objective(t, {"b": 4, "p": 64, "p_r": 8})
        assert good < bad

    def test_best_of_repeats_deterministic(self, app):
        t = {"m": 4000, "n": 4000}
        cfg = {"b": 64, "p": 32, "p_r": 4}
        assert app.objective(t, cfg) == app.objective(t, cfg)

    def test_m_less_than_n_swapped(self):
        """QR of a wide matrix is treated as QR of its transpose."""
        app = PDGEQRF(machine=cori_haswell(4), mn_max=20000, seed=0, noise=0.0)
        y1 = app.objective({"m": 2000, "n": 6000}, {"b": 64, "p": 32, "p_r": 4})
        y2 = app.objective({"m": 6000, "n": 2000}, {"b": 64, "p": 32, "p_r": 4})
        assert y1 == pytest.approx(y2)

    def test_flop_count_sorting_key(self, app):
        f_small = app.flop_count({"m": 2000, "n": 2000})
        f_big = app.flop_count({"m": 9000, "n": 9000})
        assert f_big > f_small

    def test_performance_model_correlates_after_fit(self, app):
        """After the model-update phase fits t_flop/t_msg/t_vol, the Eq. (7)
        model must rank configurations positively like the simulator (it is
        a *coarse* model, so the bar is informative, not perfect)."""
        model = app.models()[0]
        t = {"m": 10000, "n": 8000}
        rng = np.random.default_rng(3)
        from repro.core.sampling import sample_feasible

        cfgs = sample_feasible(app.tuning_space(), 24, rng, extra=t)
        sim = np.array([app.objective(t, c) for c in cfgs])
        model.update([t] * len(cfgs), cfgs, sim)
        mod = np.array([model.predict(t, c) for c in cfgs])
        rank_corr = np.corrcoef(np.argsort(np.argsort(sim)), np.argsort(np.argsort(mod)))[0, 1]
        assert rank_corr > 0.2


class TestPDSYEVX:
    @pytest.fixture
    def app(self):
        return PDSYEVX(machine=cori_haswell(1), m_max=8000, seed=0)

    def test_spaces(self, app):
        assert app.tuning_space().dimension == 3
        assert app.task_space().dimension == 1  # m = n enforced

    def test_runtime_cubic_in_m(self, app):
        """Fig. 5 right: best runtime scales as O(m³)."""
        cfg = {"b": 32, "p": 32, "p_r": 4}
        y1 = app.objective({"m": 2000}, cfg)
        y2 = app.objective({"m": 4000}, cfg)
        assert 5.0 < y2 / y1 < 11.0

    def test_default_config_feasible(self, app):
        cfg = app.default_config({"m": 4000})
        assert app.tuning_space().is_feasible(cfg)

    def test_landscape_nontrivial(self, app):
        """Different configurations must differ enough to be worth tuning."""
        from repro.core.sampling import sample_feasible

        rng = np.random.default_rng(0)
        t = {"m": 7000}
        ys = [app.objective(t, c) for c in sample_feasible(app.tuning_space(), 15, rng)]
        assert max(ys) / min(ys) > 1.5
