"""Tests for the analytical application (Eq. 11)."""

import numpy as np
import pytest

from repro.apps.analytical import AnalyticalApp, analytical_function, true_minimum


class TestFunction:
    def test_vectorized_matches_scalar(self):
        xs = np.linspace(0, 1, 7)
        vec = analytical_function(2.0, xs)
        scal = np.array([float(analytical_function(2.0, x)) for x in xs])
        assert np.allclose(vec, scal)

    def test_known_structure(self):
        """y = 1 + damped oscillation; the envelope keeps y within [0, 2]-ish."""
        xs = np.linspace(0, 1, 1001)
        for t in [0.0, 2.0, 6.0, 9.5]:
            ys = analytical_function(t, xs)
            assert np.all(ys > -1.0) and np.all(ys < 3.0)

    def test_larger_t_oscillates_faster(self):
        """Sign changes of dy/dx increase with t (harder tasks)."""
        xs = np.linspace(0, 1, 4001)

        def oscillations(t):
            ys = analytical_function(t, xs)
            return int(np.sum(np.diff(np.sign(np.diff(ys))) != 0))

        assert oscillations(6.0) > oscillations(1.0)

    def test_true_minimum_is_a_minimum(self):
        xstar, ystar = true_minimum(1.5, resolution=50001)
        xs = np.linspace(0, 1, 10001)
        assert ystar <= analytical_function(1.5, xs).min() + 1e-9
        assert 0.0 <= xstar <= 1.0


class TestApp:
    def test_problem_shapes(self):
        app = AnalyticalApp()
        prob = app.problem()
        assert prob.task_space.dimension == 1
        assert prob.tuning_space.dimension == 1
        assert prob.n_objectives == 1

    def test_objective_matches_function(self):
        app = AnalyticalApp()
        y = app.objective({"t": 3.0}, {"x": 0.25})
        assert y == pytest.approx(float(analytical_function(3.0, 0.25)))

    def test_noisy_model_close_to_objective(self):
        """The Fig. 4 model ỹ = (1 + 0.1 r)y stays within ~50% of y."""
        app = AnalyticalApp(model_noise=0.1)
        model = app.models()[0]
        for x in [0.1, 0.4, 0.9]:
            y = app.objective({"t": 2.0}, {"x": x})
            ym = model.predict({"t": 2.0}, {"x": x})
            assert abs(ym - y) <= 0.5 * abs(y) + 1e-12

    def test_model_deterministic(self):
        app = AnalyticalApp()
        m = app.models()[0]
        assert m.predict({"t": 1.0}, {"x": 0.5}) == m.predict({"t": 1.0}, {"x": 0.5})

    def test_sample_tasks_within_range(self):
        app = AnalyticalApp(t_range=(0.0, 5.0))
        tasks = app.sample_tasks(10, seed=1)
        assert len(tasks) == 10
        assert all(0.0 <= t["t"] <= 5.0 for t in tasks)
