"""Unit tests for TuningData (repro.core.data)."""

import numpy as np
import pytest

from repro.core import Integer, Real, Space, TuningData


@pytest.fixture
def data():
    ts = Space([Integer("m", 1, 100)])
    ps = Space([Real("x", 0.0, 1.0), Integer("k", 1, 4)])
    return TuningData(ts, ps, tasks=[{"m": 10}, {"m": 50}], n_objectives=1)


class TestRecording:
    def test_counts(self, data):
        assert data.n_tasks == 2
        assert data.n_samples() == 0
        data.add(0, {"x": 0.5, "k": 2}, 3.0)
        assert data.n_samples(0) == 1 and data.n_samples(1) == 0
        assert len(data) == 1

    def test_add_scalar_and_vector(self, data):
        data.add(0, {"x": 0.1, "k": 1}, 2.0)
        data.add(0, {"x": 0.2, "k": 1}, [4.0])
        assert data.n_samples(0) == 2

    def test_wrong_objective_count(self, data):
        with pytest.raises(ValueError):
            data.add(0, {"x": 0.1, "k": 1}, [1.0, 2.0])

    def test_extend(self, data):
        data.extend(1, [{"x": 0.1, "k": 1}, {"x": 0.9, "k": 4}], [5.0, 1.0])
        assert data.n_samples(1) == 2
        with pytest.raises(ValueError):
            data.extend(1, [{"x": 0.1, "k": 1}], [1.0, 2.0])


class TestBest:
    def test_best(self, data):
        data.add(0, {"x": 0.1, "k": 1}, 5.0)
        data.add(0, {"x": 0.7, "k": 2}, 2.0)
        data.add(0, {"x": 0.9, "k": 3}, 4.0)
        cfg, val = data.best(0)
        assert val == 2.0 and cfg["k"] == 2

    def test_best_empty_raises(self, data):
        with pytest.raises(ValueError):
            data.best(0)

    def test_trajectory_monotone(self, data):
        for y in [5.0, 7.0, 3.0, 4.0, 1.0]:
            data.add(0, {"x": 0.5, "k": 1}, y)
        traj = data.best_trajectory(0)
        assert traj.tolist() == [5.0, 5.0, 3.0, 3.0, 1.0]


class TestStacked:
    def test_stacked_shapes(self, data):
        data.add(0, {"x": 0.1, "k": 1}, 1.0)
        data.add(1, {"x": 0.9, "k": 4}, 2.0)
        data.add(1, {"x": 0.5, "k": 2}, 3.0)
        X, y, tidx = data.stacked()
        assert X.shape == (3, 2)
        assert y.tolist() == [1.0, 2.0, 3.0]
        assert tidx.tolist() == [0, 1, 1]
        assert np.all((0 <= X) & (X <= 1))

    def test_stacked_empty(self, data):
        X, y, tidx = data.stacked()
        assert X.shape == (0, 2) and y.size == 0 and tidx.size == 0

    def test_normalized_tasks(self, data):
        T = data.normalized_tasks()
        assert T.shape == (2, 1)


class TestMultiObjective:
    def test_pareto_front(self):
        ts = Space([Integer("m", 1, 10)])
        ps = Space([Real("x", 0, 1)])
        d = TuningData(ts, ps, tasks=[{"m": 1}], n_objectives=2)
        d.add(0, {"x": 0.1}, [1.0, 5.0])
        d.add(0, {"x": 0.2}, [2.0, 2.0])
        d.add(0, {"x": 0.3}, [5.0, 1.0])
        d.add(0, {"x": 0.4}, [3.0, 3.0])  # dominated by (2,2)
        cfgs, front = d.pareto_front(0)
        assert len(cfgs) == 3
        assert front.shape == (3, 2)
        assert not any(c["x"] == 0.4 for c in cfgs)

    def test_pareto_front_empty(self):
        ts = Space([Integer("m", 1, 10)])
        ps = Space([Real("x", 0, 1)])
        d = TuningData(ts, ps, tasks=[{"m": 1}], n_objectives=2)
        cfgs, front = d.pareto_front(0)
        assert cfgs == [] and front.shape == (0, 2)


class TestRecords:
    def test_roundtrip(self, data):
        data.add(0, {"x": 0.25, "k": 3}, 1.5)
        data.add(1, {"x": 0.75, "k": 1}, 2.5)
        recs = data.to_records()
        assert len(recs) == 2

        ts = Space([Integer("m", 1, 100)])
        ps = Space([Real("x", 0.0, 1.0), Integer("k", 1, 4)])
        fresh = TuningData(ts, ps, tasks=[{"m": 10}, {"m": 50}])
        n = fresh.load_records(recs)
        assert n == 2
        assert fresh.best(0)[1] == 1.5

    def test_foreign_tasks_ignored(self, data):
        recs = [{"task": {"m": 99}, "x": {"x": 0.5, "k": 2}, "y": [1.0]}]
        assert data.load_records(recs) == 0
