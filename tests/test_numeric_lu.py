"""Tests for the numeric sparse LU (repro.apps.superlu.numeric)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.apps.superlu import (
    knn_matrix,
    lu_solve,
    ordering,
    sparse_lu,
    symbolic_cholesky,
)


class TestFactorization:
    @pytest.fixture(scope="class")
    def A(self):
        return knn_matrix(120, 5, seed=2)

    def test_reconstructs_matrix(self, A):
        f = sparse_lu(A)
        err = abs(f.L @ f.U - A).max()
        assert err < 1e-10

    def test_with_fill_reducing_permutation(self, A):
        p = ordering(A, "MMD_AT_PLUS_A")
        f = sparse_lu(A, perm=p)
        P = A[p][:, p]
        assert abs(f.L @ f.U - P).max() < 1e-10

    def test_triangularity(self, A):
        f = sparse_lu(A)
        assert (sparse.triu(f.L, k=1)).nnz == 0
        assert (sparse.tril(f.U, k=-1)).nnz == 0
        assert np.allclose(f.L.diagonal(), 1.0)

    def test_numeric_fill_matches_symbolic_exactly(self, A):
        """On a symmetric pattern with no cancellation, the symbolic
        prediction is exact — the strongest cross-validation available."""
        for colperm in ("NATURAL", "MMD_AT_PLUS_A", "METIS_AT_PLUS_A"):
            p = ordering(A, colperm)
            sym = symbolic_cholesky(A, p)
            f = sparse_lu(A, perm=p, symbolic=sym)
            assert f.L.nnz == sym.fill_nnz

    def test_mmd_reduces_numeric_fill(self, A):
        nat = sparse_lu(A).nnz
        mmd = sparse_lu(A, perm=ordering(A, "MMD_AT_PLUS_A")).nnz
        assert mmd < nat

    def test_no_small_pivots_on_dominant_matrix(self, A):
        assert sparse_lu(A).small_pivots == 0

    def test_small_pivot_repair(self):
        A = sparse.csc_matrix(np.array([[1e-14, 1.0], [1.0, 2.0]]))
        f = sparse_lu(A, pivot_floor=1e-10)
        assert f.small_pivots == 1
        assert np.isfinite(f.L.toarray()).all()

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            sparse_lu(sparse.csc_matrix(np.ones((2, 3))))


class TestSolve:
    def test_solve_accuracy(self):
        A = knn_matrix(80, 4, seed=3)
        p = ordering(A, "RCM")
        f = sparse_lu(A, perm=p)
        rng = np.random.default_rng(1)
        b = rng.normal(size=80)
        x = lu_solve(f, b)
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-12

    def test_identity_permutation_solve(self):
        A = knn_matrix(40, 4, seed=4)
        f = sparse_lu(A)
        b = np.ones(40)
        x = lu_solve(f, b)
        assert np.allclose(A @ x, b)


class TestPropertyBased:
    @given(st.integers(min_value=10, max_value=60), st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_random_matrices_factor_exactly(self, n, k, seed):
        A = knn_matrix(n, min(k, n - 1), seed=seed)
        p = ordering(A, "MMD_AT_PLUS_A")
        sym = symbolic_cholesky(A, p)
        f = sparse_lu(A, perm=p, symbolic=sym)
        assert f.L.nnz == sym.fill_nnz  # symbolic is exact, never exceeded
        assert abs(f.L @ f.U - A[p][:, p]).max() < 1e-8
