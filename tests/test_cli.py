"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import APPS, build_app, main


class TestBuildApp:
    def test_known_apps(self):
        for name in APPS:
            app = build_app(name, nodes=1, seed=0)
            assert app.tuning_space().dimension >= 1

    def test_unknown_app(self):
        with pytest.raises(SystemExit):
            build_app("caffe", nodes=1, seed=0)


class TestListApps(object):
    def test_lists_all(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for name in APPS:
            assert name in out


class TestTune:
    def test_analytical_explicit_tasks(self, capsys):
        rc = main(
            ["tune", "--app", "analytical", "--tasks", "1.0;2.0", "--samples", "6",
             "--n-start", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("Popt:") == 2
        assert out.count("Oopt:") == 2
        assert "stats:" in out

    def test_random_tasks_and_archive(self, capsys, tmp_path):
        archive = tmp_path / "out.json"
        rc = main(
            ["tune", "--app", "pdsyevx", "--random-tasks", "1", "--samples", "6",
             "--n-start", "1", "--output", str(archive)]
        )
        assert rc == 0
        records = json.loads(archive.read_text())
        assert len(records) == 6
        assert {"task", "x", "y"} <= set(records[0])

    def test_mixed_task_parsing(self, capsys):
        rc = main(
            ["tune", "--app", "superlu_dist", "--tasks", "Si2", "--samples", "6",
             "--n-start", "1"]
        )
        assert rc == 0
        assert '"matrix": "Si2"' in capsys.readouterr().out


class TestTelemetryAndReport:
    def test_tune_streams_telemetry_and_report_renders_it(self, capsys, tmp_path):
        telemetry = tmp_path / "run.jsonl"
        checkpoint = tmp_path / "run.ck.json"
        rc = main(
            ["tune", "--app", "analytical", "--tasks", "0.5;1.5", "--samples", "8",
             "--n-start", "1", "--telemetry", str(telemetry),
             "--checkpoint", str(checkpoint)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert checkpoint.exists()
        lines = [json.loads(l) for l in telemetry.read_text().splitlines()]
        kinds = {l["kind"] for l in lines}
        assert {"span", "span-summary", "stats", "checkpoint"} <= kinds

        # the report reproduces the phase breakdown from the JSONL alone
        rc = main(["report", str(telemetry), "--strict"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase breakdown (from spans)" in out
        for phase in ("sampling", "modeling", "search", "evaluation"):
            assert phase in out
        assert "consistency (spans vs stats event)" in out
        assert "OK" in out

    def test_report_strict_fails_on_inconsistent_stats(self, capsys, tmp_path):
        telemetry = tmp_path / "bad.jsonl"
        events = [
            {"seq": 0, "kind": "span", "detail": "phase.modeling 1000ms",
             "fields": {"name": "phase.modeling", "dur_s": 1.0}},
            {"seq": 1, "kind": "stats", "detail": "campaign phase totals",
             "fields": {"modeling_time": 2.0, "search_time": 0.0,
                        "objective_wall_time": 0.0}},
        ]
        telemetry.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert main(["report", str(telemetry)]) == 0  # informational by default
        capsys.readouterr()
        assert main(["report", str(telemetry), "--strict"]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_report_missing_file_errors(self):
        with pytest.raises(SystemExit):
            main(["report", "/nonexistent/run.jsonl"])


class TestSensitivity:
    def test_prints_sorted_indices(self, capsys):
        rc = main(
            ["sensitivity", "--app", "pdgeqrf", "--tasks", "4000,4000",
             "--samples", "8", "--n-start", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "S1" in out and "ST" in out
        for p in ("b", "p", "p_r"):
            assert p in out


class TestCompare:
    def test_compare_runs_all_tuners(self, capsys):
        rc = main(
            ["compare", "--app", "analytical", "--tasks", "1.0", "--samples", "6",
             "--n-start", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("gptune", "opentuner", "hpbandster", "ytopt", "random"):
            assert name in out
        assert "WinTask" in out
