"""Unit tests for the initial-design samplers (repro.core.sampling)."""

import numpy as np
import pytest

from repro.core import Integer, LHSSampler, RandomSampler, Real, Space, lhs_unit, sample_feasible


class TestLHSUnit:
    def test_shape(self, rng):
        pts = lhs_unit(7, 3, rng)
        assert pts.shape == (7, 3)
        assert np.all((0 <= pts) & (pts <= 1))

    def test_stratification(self, rng):
        """Every dimension has exactly one point per stratum."""
        n = 10
        pts = lhs_unit(n, 2, rng)
        for j in range(2):
            strata = np.floor(pts[:, j] * n).astype(int)
            assert sorted(strata.tolist()) == list(range(n))

    def test_single_point(self, rng):
        assert lhs_unit(1, 4, rng).shape == (1, 4)

    def test_maximin_improves_on_first(self, rng):
        """The maximin selection never returns a worse design than iteration 1."""

        def min_dist(pts):
            d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
            np.fill_diagonal(d, np.inf)
            return d.min()

        best = lhs_unit(12, 2, np.random.default_rng(0), iterations=20)
        one = lhs_unit(12, 2, np.random.default_rng(0), iterations=1)
        assert min_dist(best) >= min_dist(one) - 1e-12

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            lhs_unit(0, 2, rng)
        with pytest.raises(ValueError):
            lhs_unit(2, 0, rng)


class TestSamplers:
    def test_lhs_sampler_feasible(self, mixed_space):
        out = LHSSampler(mixed_space, seed=0).sample(20)
        assert len(out) == 20
        assert all(mixed_space.is_feasible(c) for c in out)

    def test_lhs_sampler_reproducible(self, mixed_space):
        a = LHSSampler(mixed_space, seed=42).sample(5)
        b = LHSSampler(mixed_space, seed=42).sample(5)
        assert a == b

    def test_random_sampler_feasible(self, mixed_space):
        out = RandomSampler(mixed_space, seed=1).sample(15)
        assert len(out) == 15
        assert all(mixed_space.is_feasible(c) for c in out)

    def test_extra_bindings(self):
        sp = Space([Integer("p", 1, 64)], constraints=["p <= cap"])
        out = RandomSampler(sp, seed=0).sample(10, extra={"cap": 8})
        assert all(c["p"] <= 8 for c in out)

    def test_infeasible_space_raises(self, rng):
        sp = Space([Real("x", 0, 1)], constraints=["x > 2"])
        with pytest.raises(RuntimeError):
            sample_feasible(sp, 1, rng, max_tries=100)

    def test_sample_feasible_count(self, mixed_space, rng):
        out = sample_feasible(mixed_space, 7, rng)
        assert len(out) == 7
