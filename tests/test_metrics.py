"""Unit tests for the evaluation metrics (repro.core.metrics)."""

import numpy as np
import pytest

from repro.core import dominates, hypervolume_2d, mean_stability, pareto_mask, stability, win_task


class TestDominance:
    def test_dominates(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert dominates([1.0, 2.0], [1.0, 3.0])
        assert not dominates([1.0, 3.0], [3.0, 1.0])
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_pareto_mask(self):
        Y = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0], [3.0, 3.0]])
        assert pareto_mask(Y).tolist() == [True, True, True, False]

    def test_pareto_mask_duplicates_kept(self):
        Y = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert pareto_mask(Y).tolist() == [True, True, False]

    def test_pareto_mask_single_objective(self):
        Y = np.array([[3.0], [1.0], [2.0]])
        assert pareto_mask(Y).tolist() == [False, True, False]


class TestWinTask:
    def test_fraction(self):
        assert win_task([1, 1, 5], [2, 2, 2]) == pytest.approx(2 / 3)

    def test_tie_is_not_win(self):
        assert win_task([1.0], [1.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            win_task([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            win_task([], [])


class TestStability:
    def test_ideal_is_one(self):
        """Finding the global best immediately gives stability 1."""
        assert stability([2.0, 5.0, 9.0], y_star=2.0) == pytest.approx(1.0)

    def test_late_convergence_larger(self):
        early = stability([2.0, 2.0, 2.0, 2.0], 2.0)
        late = stability([8.0, 8.0, 8.0, 2.0], 2.0)
        assert late > early

    def test_uses_running_minimum(self):
        # trajectory [4, 2, 6] -> running min [4, 2, 2] -> mean 8/3
        assert stability([4.0, 2.0, 6.0], 2.0) == pytest.approx((4 + 2 + 2) / 3 / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            stability([], 1.0)
        with pytest.raises(ValueError):
            stability([1.0], 0.0)

    def test_mean_stability(self):
        m = mean_stability([[2.0, 2.0], [4.0, 2.0]], [2.0, 2.0])
        assert m == pytest.approx((1.0 + 1.5) / 2)
        with pytest.raises(ValueError):
            mean_stability([[1.0]], [1.0, 2.0])


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d(np.array([[1.0, 1.0]]), [2.0, 2.0]) == pytest.approx(1.0)

    def test_two_points(self):
        hv = hypervolume_2d(np.array([[0.0, 1.0], [1.0, 0.0]]), [2.0, 2.0])
        # (2-0)*(2-1) + (2-1)*(1-0) = 2 + 1 = 3
        assert hv == pytest.approx(3.0)

    def test_dominated_point_no_extra_volume(self):
        base = hypervolume_2d(np.array([[0.0, 0.0]]), [2.0, 2.0])
        more = hypervolume_2d(np.array([[0.0, 0.0], [1.0, 1.0]]), [2.0, 2.0])
        assert more == pytest.approx(base)

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d(np.array([[3.0, 3.0]]), [2.0, 2.0]) == 0.0

    def test_better_front_more_volume(self):
        a = hypervolume_2d(np.array([[1.0, 1.0]]), [4.0, 4.0])
        b = hypervolume_2d(np.array([[0.5, 0.5]]), [4.0, 4.0])
        assert b > a

    def test_requires_two_objectives(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.array([[1.0, 1.0, 1.0]]), [2.0, 2.0, 2.0])
