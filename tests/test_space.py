"""Unit tests for Space and Constraint (repro.core.space)."""

import numpy as np
import pytest

from repro.core import Categorical, Constraint, Integer, Real, Space


@pytest.fixture
def space():
    return Space(
        [Real("x", 0.0, 2.0), Integer("p", 1, 16), Integer("p_r", 1, 16)],
        constraints=["p_r <= p"],
    )


class TestSpaceBasics:
    def test_dimension(self, space):
        assert space.dimension == 3
        assert len(space) == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Space([Real("x", 0, 1), Integer("x", 0, 1)])

    def test_getitem_by_name_and_index(self, space):
        assert space["x"].name == "x"
        assert space[1].name == "p"
        assert "p_r" in space
        assert "nope" not in space

    def test_iteration_order(self, space):
        assert [p.name for p in space] == ["x", "p", "p_r"]


class TestConversions:
    def test_to_dict_from_sequence(self, space):
        d = space.to_dict([1.0, 4, 2])
        assert d == {"x": 1.0, "p": 4, "p_r": 2}

    def test_to_dict_from_mapping_reorders(self, space):
        d = space.to_dict({"p_r": 2, "x": 1.0, "p": 4})
        assert list(d) == ["x", "p", "p_r"]

    def test_to_dict_missing_key(self, space):
        with pytest.raises(KeyError):
            space.to_dict({"x": 1.0, "p": 4})

    def test_to_dict_wrong_length(self, space):
        with pytest.raises(ValueError):
            space.to_dict([1.0, 4])

    def test_normalize_denormalize_roundtrip(self, space):
        cfg = {"x": 1.5, "p": 8, "p_r": 3}
        back = space.denormalize(space.normalize(cfg))
        assert back["x"] == pytest.approx(1.5)
        assert back["p"] == 8
        assert back["p_r"] == 3

    def test_denormalize_shape_check(self, space):
        with pytest.raises(ValueError):
            space.denormalize([0.5, 0.5])

    def test_normalize_many(self, space):
        rows = [{"x": 0.0, "p": 1, "p_r": 1}, {"x": 2.0, "p": 16, "p_r": 16}]
        U = space.normalize_many(rows)
        assert U.shape == (2, 3)
        assert U[0, 0] == 0.0 and U[1, 0] == 1.0

    def test_denormalize_many(self, space):
        out = space.denormalize_many(np.array([[0.5, 0.5, 0.5], [0.0, 0.0, 0.0]]))
        assert len(out) == 2 and out[1]["p"] == 1

    def test_round_trip_snaps(self, space):
        got = space.round_trip({"x": 0.7, "p": 7.6, "p_r": 2.2})
        assert got["p"] == 8 and got["p_r"] == 2


class TestConstraints:
    def test_string_constraint(self, space):
        assert space.is_feasible({"x": 0.0, "p": 8, "p_r": 4})
        assert not space.is_feasible({"x": 0.0, "p": 4, "p_r": 8})

    def test_callable_constraint(self):
        sp = Space([Integer("a", 0, 9), Integer("b", 0, 9)], constraints=[lambda a, b: a + b < 10])
        assert sp.is_feasible({"a": 3, "b": 4})
        assert not sp.is_feasible({"a": 9, "b": 9})

    def test_callable_subset_kwargs(self):
        """Callable constraints may accept only some parameters."""
        sp = Space([Integer("a", 0, 9), Integer("b", 0, 9)], constraints=[lambda a: a > 2])
        assert sp.is_feasible({"a": 5, "b": 0})
        assert not sp.is_feasible({"a": 0, "b": 9})

    def test_extra_bindings_visible(self):
        """Constraints may reference task parameters via `extra`."""
        sp = Space([Integer("p", 1, 64)], constraints=["p <= m"])
        assert sp.is_feasible({"p": 10}, extra={"m": 32})
        assert not sp.is_feasible({"p": 10}, extra={"m": 5})

    def test_constraint_uses_numpy(self):
        sp = Space([Real("x", 0, 10)], constraints=["np.sqrt(x) < 2"])
        assert sp.is_feasible({"x": 3.0})
        assert not sp.is_feasible({"x": 5.0})

    def test_constraint_repr(self):
        c = Constraint("a < b")
        assert "a < b" in repr(c)


class TestIntrospection:
    def test_categorical_mask(self):
        sp = Space([Real("x", 0, 1), Categorical("c", ["u", "v"])])
        assert sp.categorical_mask.tolist() == [False, True]

    def test_cardinalities(self):
        sp = Space([Real("x", 0, 1), Integer("k", 0, 4), Categorical("c", ["u", "v"])])
        cards = sp.cardinalities
        assert np.isinf(cards[0]) and cards[1] == 5 and cards[2] == 2

    def test_grid_cross_product(self):
        sp = Space([Integer("a", 0, 1), Categorical("c", ["u", "v"])])
        g = sp.grid(2)
        assert len(g) == 4
        assert {"a": 0, "c": "u"} in g and {"a": 1, "c": "v"} in g

    def test_grid_too_large(self):
        sp = Space([Integer(f"a{i}", 0, 99) for i in range(4)])
        with pytest.raises(ValueError):
            sp.grid(100)
