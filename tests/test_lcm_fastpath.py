"""Tests for the vectorized LCM hot path (repro.core.lcm).

Pins the fast likelihood/gradient against the retained reference
implementation, checks analytic gradients against finite differences across
randomized shapes, and covers the fit-capture, block-extension,
jitter-escalation and predict-cache machinery.
"""

import numpy as np
import pytest
from scipy import linalg as sla

from repro.core import LCM
from repro.core.kernels import gaussian_kernel_batch, gaussian_kernel, pairwise_sq_diffs


def _case(rng, delta, beta, n):
    X = rng.random((n, beta))
    tidx = rng.integers(0, delta, n)
    y = np.sin(3.0 * X[:, 0]) + 0.3 * tidx + 0.05 * rng.normal(size=n)
    return X, y, tidx


class TestKernelBatch:
    def test_matches_per_latent_kernels(self, rng):
        sqd = pairwise_sq_diffs(rng.random((9, 3)), rng.random((7, 3)))
        ls = np.exp(rng.normal(size=(4, 3)))
        Kall = gaussian_kernel_batch(sqd, ls)
        assert Kall.shape == (4, 9, 7)
        for q in range(4):
            assert np.allclose(Kall[q], gaussian_kernel(sqd, ls[q]))

    def test_out_buffer_reused(self, rng):
        sqd = pairwise_sq_diffs(rng.random((5, 2)))
        ls = np.exp(rng.normal(size=(2, 2)))
        out = np.empty((2, 5, 5))
        got = gaussian_kernel_batch(sqd, ls, out=out)
        assert got is out

    def test_rejects_bad_lengthscales(self, rng):
        sqd = pairwise_sq_diffs(rng.random((4, 2)))
        with pytest.raises(ValueError):
            gaussian_kernel_batch(sqd, np.array([[0.5, -1.0]]))
        with pytest.raises(ValueError):
            gaussian_kernel_batch(sqd, np.ones((1, 3)))  # dim mismatch


class TestEquivalence:
    """The vectorized path must be numerically identical to the reference."""

    @pytest.mark.parametrize(
        "delta,beta,q,n",
        [(2, 2, 2, 24), (3, 4, 2, 30), (4, 6, 3, 40), (1, 3, 1, 16), (5, 5, 3, 36)],
    )
    def test_fast_matches_reference(self, rng, delta, beta, q, n):
        X, y, tidx = _case(rng, delta, beta, n)
        sqd = pairwise_sq_diffs(X)
        m = LCM(delta, beta, n_latent=q, seed=3)
        for restart in range(3):
            theta = m._initial_theta(y, restart=restart)
            f_fast, g_fast = m._nll_and_grad(theta, sqd, y, tidx)
            f_ref, g_ref = m._nll_and_grad_reference(theta, sqd, y, tidx)
            assert abs(f_fast - f_ref) < 1e-8
            assert np.max(np.abs(g_fast - g_ref)) < 1e-6

    def test_workspace_reuse_does_not_corrupt(self, rng):
        """Back-to-back evaluations at different θ reuse buffers safely."""
        X, y, tidx = _case(rng, 3, 2, 20)
        sqd = pairwise_sq_diffs(X)
        m = LCM(3, 2, n_latent=2, seed=0)
        thetas = [m._initial_theta(y, restart=r) for r in range(4)]
        expected = [m._nll_and_grad_reference(t, sqd, y, tidx) for t in thetas]
        for theta, (f_ref, g_ref) in zip(thetas, expected):
            f, g = m._nll_and_grad(theta, sqd, y, tidx)
            assert abs(f - f_ref) < 1e-8
            assert np.max(np.abs(g - g_ref)) < 1e-6

    def test_diverged_theta_returns_sentinel(self, rng):
        """A non-PD covariance reports the divergence sentinel, not a crash."""
        X, y, tidx = _case(rng, 2, 1, 8)
        X[1] = X[0]  # duplicate rows
        tidx[1] = tidx[0]
        m = LCM(2, 1, n_latent=1, seed=0, jitter=0.0)
        theta = m.params.pack(
            np.full((1, 1), 0.3),
            np.ones((2, 1)),
            np.full((2, 1), 1e-18),
            np.full(2, 1e-18),
        )
        f, g = m._nll_and_grad(theta, pairwise_sq_diffs(X), y, tidx)
        assert f >= 1e24 and np.all(g == 0)


class TestGradientFiniteDifference:
    @pytest.mark.parametrize("delta,beta,q,n", [(2, 3, 2, 14), (4, 2, 3, 18), (1, 4, 1, 10)])
    def test_fd_matches_randomized_cases(self, rng, delta, beta, q, n):
        X, y, tidx = _case(rng, delta, beta, n)
        sqd = pairwise_sq_diffs(X)
        m = LCM(delta, beta, n_latent=q, seed=11)
        theta = m._initial_theta(y, restart=1)
        _, g = m._nll_and_grad(theta, sqd, y, tidx)
        eps = 1e-6
        num = np.zeros_like(theta)
        for k in range(theta.shape[0]):
            tp, tm = theta.copy(), theta.copy()
            tp[k] += eps
            tm[k] -= eps
            fp, _ = m._nll_and_grad(tp, sqd, y, tidx)
            fm, _ = m._nll_and_grad(tm, sqd, y, tidx)
            num[k] = (fp - fm) / (2 * eps)
        assert np.max(np.abs(g - num) / (1.0 + np.abs(num))) < 1e-5


class TestFitCapture:
    def test_fit_factorization_is_consistent(self, toy_multitask_data):
        """The captured (L, α) equal a from-scratch factorization at θ*."""
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=2).fit(X, y, tidx)
        Sigma, _, _ = m._covariance(m.theta, pairwise_sq_diffs(X), tidx)
        Sigma[np.diag_indices(X.shape[0])] += m.jitter_used_
        L = sla.cholesky(Sigma, lower=True)
        assert np.allclose(m._L, L, atol=1e-10)
        assert np.allclose(m._alpha, sla.cho_solve((L, True), y), atol=1e-8)
        assert m.jitter_used_ == m.jitter

    def test_log_likelihood_matches_reference_nll(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=2).fit(X, y, tidx)
        f_ref, _ = m._nll_and_grad_reference(m.theta, pairwise_sq_diffs(X), y, tidx)
        assert m.log_likelihood_ == pytest.approx(-f_ref, rel=1e-9)


class TestJitterEscalation:
    def test_refactorize_does_not_compound_jitter(self):
        """Each escalation retries from the base diagonal, and the final
        factorization uses exactly the reported ``jitter_used_``."""
        # two identical points in one task with ~zero noise -> singular Σ
        X = np.array([[0.5], [0.5], [0.1]])
        y = np.array([1.0, 1.0, 0.0])
        tidx = np.array([0, 0, 0])
        m = LCM(1, 1, n_latent=1, seed=0, jitter=1e-300)
        m.X, m.y, m.task_index = X, y, tidx
        m.theta = m.params.pack(
            np.full((1, 1), 0.3), np.ones((1, 1)), np.full((1, 1), 1e-18), np.full(1, 1e-18)
        )
        m._refactorize(pairwise_sq_diffs(X))
        assert np.isfinite(m.jitter_used_) and m.jitter_used_ > m.jitter
        Sigma, _, _ = m._covariance(m.theta, pairwise_sq_diffs(X), tidx)
        Sigma[np.diag_indices(3)] += m.jitter_used_
        # the known, reported jitter reproduces the factorization exactly
        assert np.allclose(m._L @ m._L.T, Sigma, atol=1e-12)
        assert np.allclose(m._alpha, sla.cho_solve((m._L, True), y))

    def test_refactorize_raises_beyond_cap(self):
        X = np.array([[0.5], [0.5]])
        m = LCM(1, 1, n_latent=1, seed=0, jitter=1e-300)
        m.X, m.y, m.task_index = X, np.array([np.inf, -np.inf]), np.array([0, 0])
        m.theta = m.params.pack(
            np.full((1, 1), 1e6), np.full((1, 1), np.nan), np.full((1, 1), 1.0), np.full(1, 1.0)
        )
        with pytest.raises(Exception):
            m._refactorize(pairwise_sq_diffs(X))


class TestExtend:
    def test_extend_matches_cold_factorization(self, rng):
        delta, beta, n = 3, 2, 30
        X, y, tidx = _case(rng, delta, beta, n)
        m = LCM(delta, beta, n_latent=2, seed=0, n_start=2).fit(X[:22], y[:22], tidx[:22])
        m.extend(X[22:], y[22:], tidx[22:])
        Sigma, _, _ = m._covariance(m.theta, pairwise_sq_diffs(X), tidx)
        Sigma[np.diag_indices(n)] += m.jitter_used_
        L = sla.cholesky(Sigma, lower=True)
        assert np.allclose(m._L, L, atol=1e-9)
        assert np.allclose(m._alpha, sla.cho_solve((L, True), y), atol=1e-8)
        nll_ref, _ = m._nll_and_grad_reference(m.theta, pairwise_sq_diffs(X), y, tidx)
        assert m.log_likelihood_ == pytest.approx(-nll_ref, rel=1e-9)

    def test_extend_predictions_match_cold_fit_at_same_theta(self, rng):
        delta, beta, n = 2, 2, 24
        X, y, tidx = _case(rng, delta, beta, n)
        warm = LCM(delta, beta, n_latent=2, seed=0, n_start=2).fit(X[:18], y[:18], tidx[:18])
        warm.extend(X[18:], y[18:], tidx[18:])
        # a cold posterior assembled from scratch at the same θ must agree
        cold = LCM(delta, beta, n_latent=2, seed=0)
        cold.X, cold.y, cold.task_index, cold.theta = X, y, tidx, warm.theta
        cold._refactorize(pairwise_sq_diffs(X))
        Xq = rng.random((5, beta))
        mu_w, var_w = warm.predict(0, Xq)
        mu_c, var_c = cold.predict(0, Xq)
        assert np.allclose(mu_w, mu_c, atol=1e-6)
        assert np.allclose(var_w, var_c, atol=1e-6)

    def test_extend_validation(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=1, seed=0, n_start=1)
        with pytest.raises(RuntimeError):
            m.extend(X[:2], y[:2], tidx[:2])
        m.fit(X, y, tidx)
        with pytest.raises(ValueError):
            m.extend(X[:2], y[:1], tidx[:2])
        with pytest.raises(ValueError):
            m.extend(np.zeros((2, 3)), y[:2], tidx[:2])  # wrong dimension
        with pytest.raises(ValueError):
            m.extend(X[:2], y[:2], [0, 9])  # task out of range
        n0 = m.y.shape[0]
        m.extend(np.empty((0, 1)), np.empty(0), np.empty(0, dtype=int))
        assert m.y.shape[0] == n0  # no-op append


class TestPredictCache:
    def test_cached_and_cold_predictions_identical(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tidx)
        Xq = X[:4] + 0.01
        mu1, var1 = m.predict(0, Xq)
        assert 0 in m._pred_cache
        mu2, var2 = m.predict(0, Xq)
        assert np.array_equal(mu1, mu2) and np.array_equal(var1, var2)
        m._pred_cache.clear()
        mu3, var3 = m.predict(0, Xq)
        assert np.allclose(mu1, mu3) and np.allclose(var1, var3)

    def test_cache_invalidated_by_fit_and_extend(self, toy_multitask_data):
        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tidx)
        m.predict(0, X[:2])
        m.predict(1, X[:2])
        assert len(m._pred_cache) == 2
        m.extend(np.array([[0.35]]), np.array([0.2]), [0])
        assert not m._pred_cache
        mu, var = m.predict(0, X[:2])
        assert mu.shape == (2,) and np.all(var >= 0)
        m.fit(X, y, tidx)
        assert not m._pred_cache

    def test_pickle_roundtrip_drops_caches(self, toy_multitask_data):
        import pickle

        X, y, tidx = toy_multitask_data
        m = LCM(2, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tidx)
        m.predict(0, X[:2])
        clone = pickle.loads(pickle.dumps(m))
        assert not clone._pred_cache
        mu0, var0 = m.predict(1, X[:3])
        mu1, var1 = clone.predict(1, X[:3])
        assert np.allclose(mu0, mu1) and np.allclose(var0, var1)
