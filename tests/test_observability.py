"""Tests for the observability layer: metrics registry, spans, telemetry log.

Covers the MetricsRegistry instruments (labels, snapshot/merge, Prometheus
rendering), span nesting and aggregation, concurrency guarantees of both the
registry and the campaign log (exact counts, strictly increasing unique
sequence numbers), the upgraded CampaignEvent (timestamps, structured
fields, tolerant ``total()`` parsing), and the JSONL export round-trip.
"""

import json
import threading

import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    SpanRecorder,
    current_recorder,
    install_recorder,
    maybe_span,
    recording,
)
from repro.observability.spans import _NULL
from repro.runtime.trace import CampaignLog, CampaignEvent, JsonlEventWriter


# -- MetricsRegistry -----------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("requests_total")
        reg.inc("requests_total", 4)
        snap = reg.snapshot()
        assert snap["counters"] == [
            {"name": "requests_total", "labels": {}, "value": 5.0}
        ]

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("requests_total", -1)

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.inc("http_total", method="GET")
        reg.inc("http_total", method="POST")
        reg.inc("http_total", method="GET")
        snap = {tuple(c["labels"].items()): c["value"] for c in reg.snapshot()["counters"]}
        assert snap[(("method", "GET"),)] == 2.0
        assert snap[(("method", "POST"),)] == 1.0

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("bad name")
        with pytest.raises(ValueError):
            reg.inc("ok_name", **{"bad-label": 1})

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(10)
        g.add(-3)
        assert reg.snapshot()["gauges"][0]["value"] == 7.0

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"][0]
        assert snap["buckets"] == [0.1, 1.0, 10.0]
        assert snap["counts"] == [1.0, 1.0, 1.0]  # 50.0 only hits +Inf
        assert snap["count"] == 4.0
        assert snap["sum"] == pytest.approx(55.55)

    def test_histogram_default_buckets(self):
        reg = MetricsRegistry()
        reg.observe("span_seconds", 0.002)
        assert reg.snapshot()["histograms"][0]["buckets"] == list(DEFAULT_BUCKETS)

    def test_histogram_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.observe("lat_seconds", 1.0, buckets=[1.0, 2.0])
        with pytest.raises(ValueError):
            reg.observe("lat_seconds", 1.0, buckets=[5.0])

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("evals_total", 2)
        b.inc("evals_total", 3)
        a.observe("lat", 0.5, buckets=[1.0])
        b.observe("lat", 2.0, buckets=[1.0])
        a.set_gauge("depth", 1)
        b.set_gauge("depth", 9)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"][0]["value"] == 5.0
        assert snap["gauges"][0]["value"] == 9.0  # last writer wins
        h = snap["histograms"][0]
        assert h["count"] == 2.0 and h["sum"] == pytest.approx(2.5)

    def test_merge_accepts_plain_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("evals_total")
        a.merge(json.loads(b.render_json()))
        assert a.snapshot()["counters"][0]["value"] == 1.0

    def test_render_text_prometheus_format(self):
        reg = MetricsRegistry()
        reg.inc("http_total", 3, method="GET", status="200")
        reg.set_gauge("depth", 2.5)
        reg.observe("lat_seconds", 0.5, buckets=[1.0])
        text = reg.render_text()
        assert "# TYPE http_total counter" in text
        assert 'http_total{method="GET",status="200"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_render_text_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.inc("c_total", path='a"b\\c')
        assert 'path="a\\"b\\\\c"' in reg.render_text()

    def test_histogram_buckets_render_cumulatively(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.5, 2.5):
            reg.observe("lat", v, buckets=[1.0, 2.0, 3.0])
        text = reg.render_text()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="3"} 3' in text

    def test_concurrent_increments_exact(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                reg.inc("hits_total")
                reg.observe("lat", 0.01, buckets=[1.0])

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"][0]["value"] == n_threads * per_thread
        assert snap["histograms"][0]["count"] == n_threads * per_thread


# -- spans ---------------------------------------------------------------------


class TestSpans:
    def test_maybe_span_is_noop_without_recorder(self):
        assert current_recorder() is None
        assert maybe_span("anything", answer=42) is _NULL
        with maybe_span("anything") as sp:
            sp.annotate(ignored=True)  # must not raise

    def test_recording_scope_installs_and_restores(self):
        rec = SpanRecorder()
        with recording(rec):
            assert current_recorder() is rec
            with maybe_span("outer"):
                with maybe_span("inner"):
                    pass
        assert current_recorder() is None
        spans = {s.name: s for s in rec.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].dur_s >= 0.0
        assert spans["inner"].t_wall > 0 and spans["inner"].t_mono > 0

    def test_install_recorder_returns_previous(self):
        a, b = SpanRecorder(), SpanRecorder()
        assert install_recorder(a) is None
        assert install_recorder(b) is a
        assert install_recorder(None) is b
        assert current_recorder() is None

    def test_spans_feed_log_and_metrics(self):
        log, metrics = CampaignLog(), MetricsRegistry()
        rec = SpanRecorder(log=log, metrics=metrics)
        with recording(rec):
            with maybe_span("phase.modeling", n=12):
                pass
        ev = log.of_kind("span")[0]
        assert ev.fields["name"] == "phase.modeling"
        assert ev.fields["n"] == 12
        assert ev.fields["dur_s"] >= 0.0
        hist = metrics.snapshot()["histograms"][0]
        assert hist["name"] == "repro_span_seconds"
        assert hist["labels"] == {"span": "phase.modeling"}

    def test_aggregate_spans_fold_and_flush(self):
        log = CampaignLog()
        rec = SpanRecorder(log=log)
        with recording(rec):
            for _ in range(100):
                with maybe_span("model.predict", aggregate=True):
                    pass
        # recording() flushes on exit: one summary event, zero span events
        assert log.count("span") == 0
        summaries = log.of_kind("span-summary")
        assert len(summaries) == 1
        assert summaries[0].fields["name"] == "model.predict"
        assert summaries[0].fields["count"] == 100
        assert summaries[0].fields["total_s"] >= 0.0
        assert rec.totals().get("model.predict", (0, 0.0))[0] == 0  # reset by flush

    def test_totals_combines_spans_and_aggregates(self):
        rec = SpanRecorder()
        with recording(rec):
            with maybe_span("a"):
                pass
            with maybe_span("b", aggregate=True):
                pass
            with maybe_span("b", aggregate=True):
                pass
            totals = rec.totals()
        assert totals["a"][0] == 1
        assert totals["b"][0] == 2

    def test_nesting_is_per_thread(self):
        rec = SpanRecorder()
        errors = []

        def work(name):
            try:
                for _ in range(50):
                    with rec.span(f"outer.{name}"):
                        with rec.span(f"inner.{name}"):
                            pass
            except Exception as e:  # pragma: no cover - diagnostic
                errors.append(e)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = {s.span_id: s for s in rec.spans}
        assert len(spans) == 4 * 50 * 2
        for s in spans.values():
            if s.name.startswith("inner."):
                parent = spans[s.parent_id]
                # each inner span's parent is an outer span of the SAME thread
                assert parent.name == "outer." + s.name.split(".", 1)[1]


# -- CampaignLog / CampaignEvent -----------------------------------------------


class TestCampaignLog:
    def test_events_carry_timestamps_and_fields(self):
        log = CampaignLog()
        log.record("model-fit", "objective 0: n_starts=3", n_starts=3, n=40)
        ev = log.events[0]
        assert ev.t_wall > 0 and ev.t_mono > 0
        assert ev.fields == {"n_starts": 3, "n": 40}
        assert ev.detail.startswith("objective 0")

    def test_total_prefers_structured_fields(self):
        log = CampaignLog()
        # detail disagrees with the structured field: fields win
        log.record("model-fit", "n_starts=999", n_starts=3)
        assert log.total("model-fit", "n_starts") == 3

    def test_total_strips_trailing_punctuation(self):
        log = CampaignLog()
        for detail in ("n_starts=8,", "n_starts=4; done", "spent n_starts=2."):
            log.record("model-fit", detail)
        assert log.total("model-fit", "n_starts") == 14

    def test_total_ignores_malformed_tokens(self):
        log = CampaignLog()
        log.record("model-fit", "n_starts=oops")
        log.record("model-fit", "n_starts=5")
        assert log.total("model-fit", "n_starts") == 5

    def test_concurrent_records_exact_and_ordered(self):
        log = CampaignLog()
        n_threads, per_thread = 8, 300

        def work(tid):
            for i in range(per_thread):
                log.record("retry", f"t{tid} i{i}")

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = log.events
        assert len(events) == n_threads * per_thread
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)  # strictly increasing, no duplicates
        assert log.count("retry") == n_threads * per_thread

    def test_event_dict_round_trip(self):
        ev = CampaignEvent(3, "span", "x 1ms", t_wall=12.5, t_mono=0.25,
                           fields={"name": "x", "dur_s": 0.001})
        back = CampaignEvent.from_dict(ev.to_dict())
        assert back == ev

    def test_from_dict_tolerates_legacy_payload(self):
        back = CampaignEvent.from_dict({"seq": 1, "kind": "retry", "detail": "d"})
        assert back.kind == "retry" and back.t_wall == 0.0 and back.fields == {}
        with pytest.raises(ValueError):
            CampaignEvent.from_dict({"detail": "kindless"})


class TestJsonlExport:
    def test_dump_and_load_round_trip(self, tmp_path):
        log = CampaignLog()
        log.record("retry", "attempt 1", attempt=1)
        log.record("span", "phase.modeling 3ms", name="phase.modeling", dur_s=0.003)
        path = tmp_path / "events.jsonl"
        log.dump_jsonl(str(path))
        loaded = CampaignLog.load_jsonl(str(path))
        assert [e.kind for e in loaded.events] == ["retry", "span"]
        assert loaded.events[1].fields["dur_s"] == 0.003

    def test_load_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "retry"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            CampaignLog.load_jsonl(str(path))

    def test_streaming_sink_writes_every_event(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        log = CampaignLog()
        sink = JsonlEventWriter(str(path))
        log.add_sink(sink)
        log.record("retry", "a")
        log.record("timeout", "b", budget_s=1.5)
        sink.close()
        assert sink.count == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["retry", "timeout"]
        assert lines[1]["fields"]["budget_s"] == 1.5

    def test_sink_preserves_seq_order_under_threads(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        log = CampaignLog()
        log.add_sink(JsonlEventWriter(str(path)))

        def work():
            for _ in range(200):
                log.record("retry", "x")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [json.loads(l)["seq"] for l in path.read_text().splitlines()]
        assert seqs == sorted(seqs) and len(seqs) == 800
