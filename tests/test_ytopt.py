"""Tests for the ytopt-style tuner and the from-scratch random forest."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Categorical, Integer, Real, Space, TuningProblem
from repro.tuners import YtoptTuner, make_tuner, run_tuner
from repro.tuners.ytopt import RandomForestRegressor, RegressionTree


class TestRegressionTree:
    def test_fits_piecewise_constant_exactly(self):
        X = np.array([[0.1], [0.2], [0.8], [0.9]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = RegressionTree(min_samples_leaf=1, seed=0).fit(X, y)
        assert np.allclose(tree.predict(X), y)
        assert tree.predict(np.array([[0.05]]))[0] == 1.0
        assert tree.predict(np.array([[0.95]]))[0] == 5.0

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).random((10, 2))
        tree = RegressionTree(seed=0).fit(X, np.full(10, 3.0))
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), 3.0)

    def test_depth_cap(self):
        rng = np.random.default_rng(1)
        X = rng.random((200, 1))
        y = rng.random(200)
        tree = RegressionTree(max_depth=3, min_samples_leaf=1, seed=0).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self):
        X = np.linspace(0, 1, 7)[:, None]
        y = np.arange(7.0)
        tree = RegressionTree(max_depth=10, min_samples_leaf=3, seed=0).fit(X, y)
        # leaves must hold >= 3 of the 7 samples: at most one split
        assert tree.depth() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((2, 1)), np.zeros(3))
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_reduces_variance_on_smooth_function(self, rng):
        X = rng.random((120, 2))
        y = np.sin(5 * X[:, 0]) + X[:, 1]
        tree = RegressionTree(max_depth=8, seed=0).fit(X, y)
        resid = y - tree.predict(X)
        assert resid.var() < 0.2 * y.var()


class TestRandomForest:
    def test_better_than_single_tree_out_of_sample(self, rng):
        f = lambda X: np.sin(6 * X[:, 0]) * X[:, 1]
        Xtr, Xte = rng.random((150, 2)), rng.random((80, 2))
        ytr, yte = f(Xtr), f(Xte)
        tree = RegressionTree(max_depth=10, min_samples_leaf=1, seed=0).fit(Xtr, ytr)
        forest = RandomForestRegressor(n_trees=30, max_depth=10, seed=0).fit(Xtr, ytr)
        rmse_t = np.sqrt(np.mean((tree.predict(Xte) - yte) ** 2))
        rmse_f = np.sqrt(np.mean((forest.predict(Xte) - yte) ** 2))
        assert rmse_f <= rmse_t * 1.05  # bagging never much worse, usually better

    def test_uncertainty_larger_off_data(self, rng):
        X = np.hstack([0.45 + 0.1 * rng.random((60, 1))])  # data clustered centrally
        y = np.sin(20 * X[:, 0])
        forest = RandomForestRegressor(n_trees=25, seed=1).fit(X, y)
        _, sd_in = forest.predict(np.array([[0.5]]), return_std=True)
        _, sd_out = forest.predict(np.array([[0.02]]), return_std=True)
        # extrapolation at least as uncertain as interpolation (trees
        # saturate off-data, so a weak inequality is the honest property)
        assert sd_out[0] >= 0.0 and sd_in[0] >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 1)))

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_prediction_within_target_range(self, seed):
        """Tree averages can never leave the observed target range."""
        rng = np.random.default_rng(seed)
        X = rng.random((40, 3))
        y = rng.normal(size=40)
        forest = RandomForestRegressor(n_trees=10, seed=seed).fit(X, y)
        pred = forest.predict(rng.random((30, 3)))
        assert pred.min() >= y.min() - 1e-12
        assert pred.max() <= y.max() + 1e-12


class TestYtoptTuner:
    def _problem(self):
        ts = Space([Integer("t", 0, 5)])
        ps = Space(
            [Real("x", 0.0, 1.0), Categorical("alg", ["a", "b"])],
            constraints=["x < 0.9 or alg == 'a'"],
        )
        return TuningProblem(
            ts,
            ps,
            lambda t, c: (c["x"] - 0.3) ** 2 + (0.1 if c["alg"] == "b" else 0.0) + 0.001,
        )

    def test_budget_and_feasibility(self):
        rec = YtoptTuner().tune(self._problem(), {"t": 1}, 18, seed=0)
        assert len(rec) == 18
        prob = self._problem()
        assert all(prob.tuning_space.is_feasible(c) for c in rec.configs)

    def test_finds_good_solution(self):
        rec = YtoptTuner().tune(self._problem(), {"t": 1}, 25, seed=1)
        cfg, val = rec.best()
        assert val < 0.05
        assert cfg["alg"] == "a"

    def test_reproducible(self):
        a = YtoptTuner().tune(self._problem(), {"t": 1}, 10, seed=5).best()[1]
        b = YtoptTuner().tune(self._problem(), {"t": 1}, 10, seed=5).best()[1]
        assert a == b


class TestRegistry:
    def test_all_registered_tuners_run(self):
        prob = TuningProblem(
            Space([Integer("t", 0, 3)]),
            Space([Real("x", 0.0, 1.0)]),
            lambda t, c: (c["x"] - 0.5) ** 2 + 0.01,
        )
        from repro.tuners import TUNERS

        for name in TUNERS:
            rec = run_tuner(name, prob, {"t": 1}, 6, seed=2)
            assert len(rec) == 6, name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_tuner("caffeinated")
