"""Tests for the fusion-code surrogates (M3D_C1, NIMROD)."""

import numpy as np
import pytest

from repro.apps.fusion import M3DC1, NIMROD
from repro.core.sampling import sample_feasible
from repro.runtime import cori_haswell

KW = dict(machine=cori_haswell(1), plane_size=200, seed=0)


class TestM3DC1:
    @pytest.fixture(scope="class")
    def app(self):
        return M3DC1(**KW)

    def test_beta_five(self, app):
        assert app.tuning_space().dimension == 5  # Table 2

    def test_task_is_step_count(self, app):
        assert app.task_space().names == ["t"]

    def test_runtime_grows_with_steps(self, app):
        cfg = app.default_config({"t": 1})
        y1 = app.objective({"t": 1}, cfg)
        y10 = app.objective({"t": 10}, cfg)
        assert y10 > 3 * y1

    def test_rowperm_matters(self, app):
        """NOROWPERM weakens the preconditioner ⇒ more iterations ⇒ slower."""
        cfg = app.default_config({"t": 5})
        good = app.objective({"t": 5}, dict(cfg, ROWPERM="LargeDiag_MC64"))
        bad = app.objective({"t": 5}, dict(cfg, ROWPERM="NOROWPERM"))
        assert bad > good

    def test_colperm_changes_runtime(self, app):
        cfg = app.default_config({"t": 5})
        y_nat = app.objective({"t": 5}, dict(cfg, COLPERM="NATURAL"))
        y_mmd = app.objective({"t": 5}, dict(cfg, COLPERM="MMD_AT_PLUS_A"))
        assert y_nat != y_mmd

    def test_landscape_nontrivial(self, app):
        rng = np.random.default_rng(0)
        ys = [app.objective({"t": 3}, c) for c in sample_feasible(app.tuning_space(), 12, rng)]
        assert max(ys) / min(ys) > 1.2

    def test_multitask_structure(self, app):
        """Short tasks are much cheaper — the premise of the Sec. 6.5 setup."""
        cfg = app.default_config({"t": 1})
        assert app.objective({"t": 1}, cfg) < 0.5 * app.objective({"t": 10}, cfg)


class TestNIMROD:
    @pytest.fixture(scope="class")
    def app(self):
        return NIMROD(**KW)

    def test_beta_seven(self, app):
        assert app.tuning_space().dimension == 7  # Table 2

    def test_assembly_blocking_valley(self, app):
        """nxbl/nybl have an interior optimum (cache vs overhead)."""
        times = {b: app._assembly_time(b, b) for b in (1, 4, 32)}
        assert times[4] < times[1]
        assert times[4] < times[32]

    def test_runtime_grows_with_steps(self, app):
        cfg = app.default_config({"t": 1})
        assert app.objective({"t": 15}, cfg) > 5 * app.objective({"t": 1}, cfg)

    def test_default_feasible(self, app):
        assert app.tuning_space().is_feasible(app.default_config({"t": 3}))
