"""Tests for the ASCII figure renderer (repro.reporting)."""

import json

import pytest

from repro.reporting import bar_chart, line_chart, main, render_results_dir, scatter_plot


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], title="T", width=10)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_reference_marker(self):
        out = bar_chart(["a"], [2.0], width=10, reference=1.0)
        assert "|" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_empty(self):
        assert "(empty)" in bar_chart([], [], title="x")


class TestScatterPlot:
    def test_points_placed(self):
        out = scatter_plot({"s": ([0.0, 1.0], [0.0, 1.0])}, width=20, height=10)
        body = "\n".join(out.splitlines()[:-2])  # strip axis + legend rows
        assert body.count("*") == 2
        assert "s" in out.splitlines()[-1]  # legend

    def test_two_series_glyphs(self):
        out = scatter_plot(
            {"a": ([0.0], [0.0]), "b": ([1.0], [1.0])}, width=20, height=8
        )
        assert "*" in out and "o" in out

    def test_log_axes(self):
        out = scatter_plot(
            {"s": ([1.0, 10.0, 100.0], [1.0, 10.0, 100.0])},
            logx=True,
            logy=True,
        )
        body = "\n".join(out.splitlines()[:-2])
        assert body.count("*") == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            scatter_plot({"s": ([0.0], [0.0, 1.0])})

    def test_too_many_series(self):
        with pytest.raises(ValueError):
            scatter_plot({f"s{i}": ([0.0], [0.0]) for i in range(9)})

    def test_degenerate_single_point(self):
        out = scatter_plot({"s": ([5.0], [5.0])})
        assert "*" in out

    def test_line_chart_shares_x(self):
        out = line_chart([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "*" in out and "o" in out


class TestRenderResultsDir:
    def test_renders_known_payloads(self, tmp_path):
        (tmp_path / "fig6_pdgeqrf.json").write_text(
            json.dumps(
                {"gptune": [1.0, 2.0], "opentuner": [2.0, 2.0], "hpbandster": [1.5, 4.0]}
            )
        )
        (tmp_path / "fig3_scaling.json").write_text(
            json.dumps(
                {"measured": [{"N": 10, "modeling_s": 0.1, "search_s": 0.05},
                              {"N": 20, "modeling_s": 0.9, "search_s": 0.1}]}
            )
        )
        (tmp_path / "fig7_right_multitask.json").write_text(
            json.dumps(
                {"Si2": {"front_multi": [[1e-3, 1e5], [2e-3, 5e4]],
                         "front_single": [[1.5e-3, 1.2e5]]}}
            )
        )
        report = render_results_dir(str(tmp_path))
        assert "OpenTuner/GPTune" in report
        assert "Fig. 3" in report
        assert "Pareto fronts" in report

    def test_missing_dir(self):
        with pytest.raises(FileNotFoundError):
            render_results_dir("/nonexistent/dir")

    def test_unrenderable_payload_flagged(self, tmp_path):
        (tmp_path / "fig6_x.json").write_text(json.dumps({"bogus": 1}))
        assert "unrenderable" in render_results_dir(str(tmp_path))

    def test_main_prints(self, tmp_path, capsys):
        (tmp_path / "fig6_a.json").write_text(
            json.dumps({"gptune": [1.0], "opentuner": [2.0], "hpbandster": [1.0]})
        )
        assert main([str(tmp_path)]) == 0
        assert "ratio" in capsys.readouterr().out
