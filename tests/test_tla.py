"""Tests for transfer-learning autotuning (repro.core.tla) and the
frozen/preload extensions of the MLA driver."""

import numpy as np
import pytest

from repro.core import GPTune, Integer, Options, Real, Space, TransferLearner, TuningProblem

FAST = Options(seed=0, n_start=1, pso_iters=8, ei_candidates=12, lbfgs_maxiter=50)


def quadratic_problem(counter=None):
    """Optimum moves smoothly with the task: x* = t/10."""
    ts = Space([Integer("t", 0, 10)])
    ps = Space([Real("x", 0.0, 1.0)])

    def obj(t, c):
        if counter is not None:
            counter["n"] += 1
        return (c["x"] - t["t"] / 10.0) ** 2 + 0.01

    return TuningProblem(ts, ps, obj, name="quad")


@pytest.fixture
def source_result():
    prob = quadratic_problem()
    return prob, GPTune(prob, FAST).tune([{"t": 2}, {"t": 4}, {"t": 8}], 12)


class TestTLA0:
    def test_predicts_interpolated_optimum(self, source_result):
        prob, res = source_result
        tla = TransferLearner(prob, res.data)
        cfg = tla.predict_config({"t": 6})
        # true optimum at x = 0.6; sources bracket it at 0.4 and 0.8
        assert abs(cfg["x"] - 0.6) < 0.15

    def test_exact_task_match_returns_source_best(self, source_result):
        prob, res = source_result
        tla = TransferLearner(prob, res.data)
        cfg = tla.predict_config({"t": 4})
        assert cfg == res.best(1)[0]

    def test_zero_evaluations_spent(self):
        counter = {"n": 0}
        prob_counting = quadratic_problem(counter)
        res = GPTune(prob_counting, FAST).tune([{"t": 2}, {"t": 8}], 8)
        spent = counter["n"]
        tla = TransferLearner(prob_counting, res.data)
        tla.predict_config({"t": 5})
        assert counter["n"] == spent

    def test_empty_source_rejected(self):
        prob = quadratic_problem()
        from repro.core import TuningData

        empty = TuningData(prob.task_space, prob.tuning_space, [{"t": 1}])
        with pytest.raises(ValueError):
            TransferLearner(prob, empty)

    def test_space_mismatch_rejected(self, source_result):
        prob, res = source_result
        other = TuningProblem(
            prob.task_space,
            Space([Real("z", 0.0, 1.0)]),
            lambda t, c: 0.0,
        )
        with pytest.raises(ValueError):
            TransferLearner(other, res.data)


class TestTLAMLA:
    def test_new_task_gets_full_budget_sources_frozen(self):
        counter = {"n": 0}
        prob = quadratic_problem(counter)
        src = GPTune(prob, FAST).tune([{"t": 2}, {"t": 8}], 10)
        spent = counter["n"]

        tla = TransferLearner(prob, src.data)
        res = tla.tune({"t": 5}, n_samples=6, options=FAST)
        assert counter["n"] - spent == 6  # only the new task evaluated
        new_idx = res.data.n_tasks - 1
        assert res.data.n_samples(new_idx) == 6
        # source data present but unchanged
        for i in range(new_idx):
            assert res.data.n_samples(i) == 10

    def test_transfer_finds_new_optimum(self):
        prob = quadratic_problem()
        src = GPTune(prob, FAST).tune([{"t": 2}, {"t": 4}, {"t": 8}], 12)
        res = TransferLearner(prob, src.data).tune({"t": 6}, 8, options=FAST)
        cfg, val = res.best(res.data.n_tasks - 1)
        assert abs(cfg["x"] - 0.6) < 0.12
        assert val < 0.03

    def test_max_source_tasks_pruning(self):
        prob = quadratic_problem()
        src = GPTune(prob, FAST).tune([{"t": 0}, {"t": 2}, {"t": 9}], 8)
        res = TransferLearner(prob, src.data).tune(
            {"t": 1}, 4, options=FAST, max_source_tasks=2
        )
        assert res.data.n_tasks == 3  # 2 nearest sources + the new task
        kept = {t["t"] for t in res.data.tasks}
        assert kept == {0, 2, 1}  # t=9 was pruned


class TestFrozenPreloadDriver:
    def test_frozen_without_data_rejected(self):
        prob = quadratic_problem()
        with pytest.raises(ValueError):
            GPTune(prob, FAST).tune([{"t": 1}, {"t": 2}], 4, frozen=[0])

    def test_all_frozen_rejected(self):
        prob = quadratic_problem()
        recs = [{"task": {"t": 1}, "x": {"x": 0.5}, "y": [0.2]}]
        with pytest.raises(ValueError):
            GPTune(prob, FAST).tune([{"t": 1}], 4, preload=recs, frozen=[0])

    def test_frozen_index_validation(self):
        prob = quadratic_problem()
        with pytest.raises(ValueError):
            GPTune(prob, FAST).tune([{"t": 1}], 4, frozen=[5])

    def test_preload_counts_toward_budget(self):
        counter = {"n": 0}
        prob = quadratic_problem(counter)
        recs = [
            {"task": {"t": 1}, "x": {"x": 0.1 * i}, "y": [(0.1 * i - 0.1) ** 2 + 0.01]}
            for i in range(5)
        ]
        res = GPTune(prob, FAST).tune([{"t": 1}], 8, preload=recs)
        assert counter["n"] == 3  # 8 budget − 5 preloaded
        assert res.data.n_samples(0) == 8
