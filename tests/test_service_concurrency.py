"""Concurrency stress tests: many writers, one store, zero lost records.

The whole point of the sharded store is that concurrent campaigns
(processes or machines) can append to one archive without trampling each
other — the scenario that silently lost data under the old
whole-store-rewrite HistoryDB.  These tests hammer one store from multiple
processes and threads and then verify exact record accounting, including
across a compaction.
"""

import json
import multiprocessing
import threading

import pytest

from repro.core import HistoryDB
from repro.service import ShardedStore

N_PROCS = 4
N_RECORDS = 25


def _proc_worker(root: str, worker: int, n: int) -> None:
    """Append n uniquely-tagged records, one lock round-trip each."""
    store = ShardedStore(root)
    for j in range(n):
        store.append(
            "stress",
            [{"task": {"w": worker}, "x": {"j": j}, "y": [float(worker * 1000 + j)]}],
        )


def _expected_ys(n_workers: int, n: int):
    return {float(w * 1000 + j) for w in range(n_workers) for j in range(n)}


class TestProcessConcurrency:
    @pytest.mark.parametrize("compact_midway", [False, True])
    def test_no_lost_or_duplicated_records(self, tmp_path, compact_midway):
        root = str(tmp_path / "db")
        procs = [
            multiprocessing.Process(target=_proc_worker, args=(root, w, N_RECORDS))
            for w in range(N_PROCS)
        ]
        for p in procs:
            p.start()
        if compact_midway:
            # compaction racing live appenders must not drop their records
            store = ShardedStore(root)
            for _ in range(5):
                store.compact("stress")
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = ShardedStore(root)
        store.compact("stress")
        records = store.records("stress")
        ys = [r["y"][0] for r in records]
        assert len(ys) == N_PROCS * N_RECORDS  # nothing lost
        assert len(set(ys)) == len(ys)  # nothing duplicated
        assert set(ys) == _expected_ys(N_PROCS, N_RECORDS)

    def test_every_line_is_valid_json_after_stress(self, tmp_path):
        root = str(tmp_path / "db")
        procs = [
            multiprocessing.Process(target=_proc_worker, args=(root, w, 10))
            for w in range(N_PROCS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        store = ShardedStore(root)
        with open(store.shard_path("stress"), encoding="utf-8") as fh:
            for line in fh:
                row = json.loads(line)  # no torn/interleaved writes
                assert {"task", "x", "y", "rid"} <= set(row)


class TestThreadConcurrency:
    def test_historydb_shim_is_thread_safe(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        errors = []

        def worker(w):
            try:
                for j in range(N_RECORDS):
                    db.append(
                        "stress",
                        [{"task": {"w": w}, "x": {"j": j}, "y": [float(w * 1000 + j)]}],
                    )
            except Exception as e:  # pragma: no cover - failure reporting
                errors.append(e)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(N_PROCS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        ys = {r["y"][0] for r in db.records("stress")}
        assert ys == _expected_ys(N_PROCS, N_RECORDS)
        assert db.count("stress") == N_PROCS * N_RECORDS
