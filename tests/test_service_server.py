"""Tests for the crowd-tuning HTTP service (server + client) and the
acceptance scenario: two concurrent GPTune campaigns sharing one archive
through the service, with no lost or corrupted records."""

import json
import threading
import urllib.request

import pytest

from repro.apps.analytical import AnalyticalApp
from repro.core import GPTune, Options
from repro.service import ServiceClient, ShardedStore
from repro.service.client import ServiceError, StaleEtagError
from repro.service.server import make_server

REC = {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]}
REC2 = {"task": {"m": 20}, "x": {"b": 8}, "y": [2.5]}


@pytest.fixture
def service(tmp_path):
    server = make_server(str(tmp_path / "db"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}"), server.store
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestRoundTrips:
    def test_empty_store(self, service):
        client, _ = service
        assert client.problems() == []
        assert client.records("qr") == []
        assert client.count("qr") == 0
        assert client.etag("qr") == "empty"

    def test_append_and_read_back(self, service):
        client, store = service
        out = client.append("qr", [REC, REC2])
        assert out["appended"] == 2
        assert len(out["rids"]) == 2
        got = client.records("qr")
        assert [r["y"] for r in got] == [[1.5], [2.5]]
        assert all("rid" in r for r in got)
        # the client write is visible to direct store readers and vice versa
        assert store.count("qr") == 2
        assert client.problems() == ["qr"]

    def test_rid_push_is_idempotent_over_the_wire(self, service):
        client, _ = service
        client.append("qr", [REC])
        synced = client.records("qr")
        out = client.append("qr", synced)  # replay with rids: deduplicated
        assert out["appended"] == 0
        assert client.count("qr") == 1

    def test_conditional_get_304(self, service):
        client, _ = service
        client.append("qr", [REC])
        etag = client.etag("qr")
        assert client.records("qr", etag=etag) is None  # 304: keep cache
        client.append("qr", [REC2])
        fresh = client.records("qr", etag=etag)  # shard moved: full body
        assert len(fresh) == 2

    def test_if_match_append_succeeds_on_current_etag(self, service):
        client, _ = service
        client.append("qr", [REC])
        out = client.append("qr", [REC2], if_match=client.etag("qr"))
        assert out["appended"] == 1

    def test_stale_etag_rejected_with_412(self, service):
        client, _ = service
        client.append("qr", [REC])
        stale = client.etag("qr")
        client.append("qr", [REC2])  # another campaign writes in between
        with pytest.raises(StaleEtagError) as err:
            client.append("qr", [REC], if_match=stale)
        assert err.value.status == 412
        assert err.value.etag == client.etag("qr")
        assert client.count("qr") == 2  # rejected append wrote nothing

    def test_query_endpoint(self, service):
        client, _ = service
        client.append("qr", [REC, REC2])
        matches = client.query("qr", {"m": 18}, k=1)
        assert len(matches) == 1
        assert matches[0]["task"] == {"m": 20}
        assert [r["y"] for r in matches[0]["records"]] == [[2.5]]

    def test_compact_endpoint(self, service):
        client, _ = service
        client.append("qr", [REC, REC2])
        assert client.compact("qr") == {"kept": 2, "duplicates": 0, "torn": 0}

    def test_stats(self, service):
        client, _ = service
        client.append("a", [REC])
        client.append("b", [REC, REC2])
        stats = client.stats()
        assert stats["n_records"] == 3
        assert stats["problems"]["b"]["count"] == 2

    def test_unknown_endpoint_404(self, service):
        client, _ = service
        status, payload, _ = client._request("GET", client.base_url + "/v1/nope")
        assert status == 404
        with pytest.raises(ServiceError):
            client._check(status, payload)

    def test_malformed_record_400(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client.append("qr", [{"task": {}, "x": {}}])  # no y
        assert err.value.status == 400
        assert client.count("qr") == 0


class TestMetricsEndpoint:
    """GET /metrics serves Prometheus text fed by per-request instrumentation."""

    def test_scrape_exposes_request_counters(self, service):
        client, _ = service
        client.append("qr", [REC])
        client.problems()
        status, _, _ = client._request("GET", client.base_url + "/v1/nope")
        assert status == 404

        resp = urllib.request.urlopen(client.base_url + "/metrics")
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = resp.read().decode("utf-8")

        assert "# TYPE repro_http_requests_total counter" in text
        assert ('repro_http_requests_total{endpoint="records",method="POST",'
                'status="200"} 1') in text
        assert ('repro_http_requests_total{endpoint="problems",method="GET",'
                'status="200"} 1') in text
        assert ('repro_http_requests_total{endpoint="nope",method="GET",'
                'status="404"} 1') in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_request_seconds_bucket{endpoint="problems",method="GET",le="+Inf"} 1' in text
        assert 'repro_http_request_seconds_count{endpoint="problems",method="GET"} 1' in text

        # every sample line is parseable exposition: name{labels} value
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            assert name_part[0].isalpha() or name_part[0] == "_"

    def test_metrics_scrape_counts_itself_next_time(self, service):
        client, _ = service
        urllib.request.urlopen(client.base_url + "/metrics").read()
        text = urllib.request.urlopen(client.base_url + "/metrics").read().decode()
        assert ('repro_http_requests_total{endpoint="metrics",method="GET",'
                'status="200"}') in text


class TestCrowdTuning:
    """Acceptance: concurrent campaigns share one archive via the service."""

    def test_two_concurrent_campaigns_lose_nothing(self, service, tmp_path):
        client, store = service
        problem = AnalyticalApp(seed=0).problem()
        budget = 6
        results, errors = {}, []

        def campaign(name, task, seed):
            try:
                tuner = GPTune(
                    problem,
                    Options(seed=seed, n_start=2),
                    history=ServiceClient(client.base_url),
                )
                results[name] = tuner.tune([task], budget)
            except Exception as e:  # pragma: no cover - failure reporting
                errors.append((name, e))

        threads = [
            threading.Thread(target=campaign, args=("a", {"t": 2.0}, 0)),
            threading.Thread(target=campaign, args=("b", {"t": 4.0}, 1)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert errors == []

        # every evaluation of both campaigns landed in the shared archive
        archived = client.records(problem.name)
        assert len(archived) == 2 * budget
        rids = [r["rid"] for r in archived]
        assert len(set(rids)) == len(rids)
        archived_ys = {r["y"][0] for r in archived}
        for name in ("a", "b"):
            res = results[name]
            for y in res.data.Y[0]:
                assert float(y[0]) in archived_ys

        # and the shard is clean: every line parses, compaction finds no junk
        with open(store.shard_path(problem.name), encoding="utf-8") as fh:
            for line in fh:
                json.loads(line)
        assert client.compact(problem.name)["kept"] == 2 * budget

    def test_campaign_resumes_from_service_archive(self, service):
        client, _ = service
        problem = AnalyticalApp(seed=0).problem()
        GPTune(problem, Options(seed=0, n_start=2), history=client).tune(
            [{"t": 2.0}], 4
        )
        # a later campaign on the same task reuses archived evaluations
        # toward its budget instead of re-running them
        res = GPTune(problem, Options(seed=1, n_start=2), history=client).tune(
            [{"t": 2.0}], 6
        )
        assert len(res.data.X[0]) == 6
        assert client.count(problem.name) == 6  # 4 archived + 2 fresh


class TestKeepAliveAndRetries:
    def test_connection_is_pooled_across_requests(self, service):
        client, _ = service
        client.append("qr", [REC])
        client.records("qr")
        client.problems()
        client.stats()
        assert client._pool.created == 1  # one TCP connection did it all

    def test_get_retries_on_dead_pooled_connection(self, service):
        client, _ = service
        client.append("qr", [REC])
        # poison the pool with a connection the server no longer knows
        conn = client._pool.get()
        conn.close()
        client._pool.put(conn)
        assert len(client.records("qr")) == 1  # retried on a fresh conn

    def test_close_empties_pool_but_client_stays_usable(self, service):
        client, _ = service
        client.problems()
        client.close()
        assert client.problems() == []


class TestBackpressureHTTP:
    @pytest.fixture
    def saturable(self, tmp_path):
        from repro.service.server import make_server

        server = make_server(str(tmp_path / "db"), port=0, max_inflight=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield ServiceClient(f"http://{host}:{port}"), server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_saturated_server_answers_429_with_retry_after(self, saturable):
        client, server = saturable
        # exhaust the admission slots by hand: requests now get 429
        taken = 0
        while server.admit():
            taken += 1
        try:
            with pytest.raises(ServiceError) as err:
                client.problems()
            assert err.value.status == 429
            assert err.value.retry_after > 0
        finally:
            for _ in range(taken):
                server.release()
        assert client.problems() == []  # slots back: served again

    def test_metrics_endpoint_exempt_from_admission(self, saturable):
        client, server = saturable
        taken = 0
        while server.admit():
            taken += 1
        try:
            resp = urllib.request.urlopen(client.base_url + "/metrics")
            assert resp.status == 200  # scraping survives saturation
        finally:
            for _ in range(taken):
                server.release()

    def test_write_queue_backpressure_maps_to_429(self, tmp_path):
        from repro.service.server import make_server
        from repro.service.batch import BackpressureError

        server = make_server(str(tmp_path / "db"), port=0, max_pending=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            def full_submit(problem, records, timeout=60.0):
                raise BackpressureError("write queue full", retry_after=0.25)

            server.batcher.submit = full_submit
            with pytest.raises(ServiceError) as err:
                client.append("qr", [REC])
            assert err.value.status == 429
            assert err.value.retry_after == 0.25
        finally:
            client.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestScrapeGauges:
    def test_scrape_exposes_service_gauges(self, service):
        client, _ = service
        client.append("qr", [REC])
        client.records("qr")
        client.records("qr")  # hot read: fills + hits the cache
        text = urllib.request.urlopen(client.base_url + "/metrics").read().decode()
        assert "# TYPE repro_service_write_queue_depth gauge" in text
        assert "# TYPE repro_service_requests_inflight gauge" in text
        assert "# TYPE repro_service_read_cache_bytes gauge" in text
        assert "repro_service_read_cache_hits_total" in text
        assert "repro_service_commits_total" in text
        assert "# TYPE repro_service_batch_records histogram" in text
        assert "# TYPE repro_service_flush_seconds histogram" in text


class TestConsistencyUnderCompaction:
    """Etag-conditional reads and writes racing compact() never tear."""

    def test_reads_racing_compaction_stay_consistent(self, service):
        from repro.service.store import _etag_of

        client, store = service
        client.append("qr", [REC, REC2])
        stop = threading.Event()
        churn_errors = []

        def churn():
            i = 0
            try:
                while not stop.is_set():
                    store.compact("qr")
                    client.append("qr", [{"task": {"m": i}, "x": {"b": i},
                                          "y": [float(i)]}])
                    i += 1
            except Exception as e:  # pragma: no cover - failure reporting
                churn_errors.append(e)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for _ in range(60):
                status, payload, headers = client._request(
                    "GET", client._url("records", "qr")
                )
                assert status == 200
                rows = payload["records"]
                served_etag = headers.get("etag", "").strip('"')
                # the etag served MUST be the etag OF the rows served —
                # a torn view pairs one version's etag with another's rows
                assert served_etag == _etag_of(r["rid"] for r in rows)
        finally:
            stop.set()
            churner.join(timeout=30)
        assert churn_errors == []

    def test_if_match_append_racing_compaction_never_corrupts(self, service):
        client, store = service
        client.append("qr", [REC])
        stop = threading.Event()

        def compact_loop():
            while not stop.is_set():
                store.compact("qr")

        churner = threading.Thread(target=compact_loop)
        churner.start()
        appended, stale = 0, 0
        try:
            for i in range(40):
                etag = client.etag("qr")
                try:
                    out = client.append(
                        "qr",
                        [{"task": {"m": i}, "x": {"b": i}, "y": [float(i)]}],
                        if_match=etag,
                    )
                    appended += out["appended"]
                except StaleEtagError:
                    stale += 1  # legal outcome of the race; data unharmed
        finally:
            stop.set()
            churner.join(timeout=30)
        # every successful append is present exactly once
        rows = client.records("qr")
        rids = [r["rid"] for r in rows]
        assert len(rids) == len(set(rids))
        assert len(rows) == 1 + appended
        # compaction never produced junk
        assert client.compact("qr")["kept"] == 1 + appended

    def test_304_racing_compaction(self, service):
        client, store = service
        client.append("qr", [REC])
        etag = client.etag("qr")
        store.compact("qr")  # compaction preserves the rid set
        assert client.records("qr", etag=etag) is None  # still 304
        client.append("qr", [REC2])
        assert len(client.records("qr", etag=etag)) == 2  # moved: full body
