"""Tests for the SuperLU_DIST substrate (matrices, symbolic, simulator)."""

import numpy as np
import pytest
from scipy import sparse

from repro.apps.superlu import (
    COLPERM_CHOICES,
    PARSEC_STATS,
    SuperLUDIST,
    knn_matrix,
    ordering,
    parsec_matrix,
    supernodes,
    symbolic_cholesky,
)
from repro.runtime import cori_haswell

SCALE = 0.02  # tiny matrices: fast tests, same code paths


class TestMatrices:
    def test_knn_symmetric_pattern(self):
        A = knn_matrix(100, 5, seed=0)
        assert (abs(A - A.T)).nnz == 0  # values symmetric too by construction

    def test_knn_diagonally_dominant(self):
        A = knn_matrix(80, 6, seed=1)
        d = A.diagonal()
        off = np.asarray(abs(A).sum(axis=1)).ravel() - np.abs(d)
        assert np.all(d > off - 1e-12)
        assert np.all(d > 0)

    def test_knn_nonsingular(self):
        A = knn_matrix(50, 4, seed=2)
        x = np.ones(50)
        from scipy.sparse.linalg import spsolve

        y = spsolve(A.tocsc(), x)
        assert np.allclose(A @ y, x, atol=1e-8)

    def test_parsec_names(self):
        assert set(PARSEC_STATS) == {
            "Si2", "SiH4", "SiNa", "Na5", "benzene", "Si10H16", "Si5H12", "SiO",
        }
        with pytest.raises(KeyError):
            parsec_matrix("NotAMatrix")

    def test_parsec_relative_sizes_preserved(self):
        a = parsec_matrix("Si2", scale=SCALE)
        b = parsec_matrix("SiO", scale=SCALE)
        assert b.shape[0] > a.shape[0]

    def test_parsec_cached(self):
        assert parsec_matrix("Si2", scale=SCALE) is parsec_matrix("Si2", scale=SCALE)

    def test_knn_validation(self):
        with pytest.raises(ValueError):
            knn_matrix(1, 3)


class TestOrdering:
    @pytest.fixture(scope="class")
    def A(self):
        return knn_matrix(150, 6, seed=3)

    @pytest.mark.parametrize("colperm", COLPERM_CHOICES)
    def test_valid_permutation(self, A, colperm):
        p = ordering(A, colperm)
        assert sorted(p.tolist()) == list(range(A.shape[0]))

    def test_unknown_colperm(self, A):
        with pytest.raises(ValueError):
            ordering(A, "COLAMD-NOPE")

    def test_mmd_reduces_fill_vs_natural(self, A):
        fill_nat = symbolic_cholesky(A, ordering(A, "NATURAL")).fill_nnz
        fill_mmd = symbolic_cholesky(A, ordering(A, "MMD_AT_PLUS_A")).fill_nnz
        assert fill_mmd < fill_nat

    def test_nd_reduces_fill_vs_natural(self, A):
        fill_nat = symbolic_cholesky(A, ordering(A, "NATURAL")).fill_nnz
        fill_nd = symbolic_cholesky(A, ordering(A, "METIS_AT_PLUS_A")).fill_nnz
        assert fill_nd < fill_nat


class TestSymbolic:
    def test_exact_fill_small_case(self):
        """Arrow matrix: natural order fills the dense arrow row only."""
        n = 6
        A = sparse.lil_matrix((n, n))
        A.setdiag(4.0)
        for i in range(1, n):
            A[0, i] = A[i, 0] = -1.0
        sym = symbolic_cholesky(sparse.csc_matrix(A), np.arange(n))
        # eliminating column 0 connects all others: L is completely dense
        assert sym.fill_nnz == n * (n + 1) // 2
        # reversed (arrow last) has no fill at all: |L| = nnz pattern
        perm = np.array([1, 2, 3, 4, 5, 0])
        sym2 = symbolic_cholesky(sparse.csc_matrix(A), perm)
        assert sym2.fill_nnz == 2 * n - 1

    def test_etree_parents_increase(self):
        A = knn_matrix(60, 4, seed=4)
        sym = symbolic_cholesky(A, np.arange(60))
        ok = (sym.parent == -1) | (sym.parent > np.arange(60))
        assert np.all(ok)

    def test_col_counts_bounds(self):
        A = knn_matrix(60, 4, seed=5)
        sym = symbolic_cholesky(A, np.arange(60))
        assert np.all(sym.col_counts >= 1)
        assert np.all(sym.col_counts <= 60 - np.arange(60))
        assert sym.fill_nnz == sym.col_counts.sum()

    def test_subtree_sizes(self):
        A = knn_matrix(60, 4, seed=6)
        sym = symbolic_cholesky(A, np.arange(60))
        roots = sym.parent == -1
        assert sym.subtree_size[roots].sum() == 60

    def test_invalid_perm(self):
        A = knn_matrix(10, 3, seed=0)
        with pytest.raises(ValueError):
            symbolic_cholesky(A, np.zeros(10, dtype=int))


class TestSupernodes:
    @pytest.fixture(scope="class")
    def sym(self):
        A = knn_matrix(200, 6, seed=7)
        return symbolic_cholesky(A, ordering(A, "MMD_AT_PLUS_A"))

    def test_partition_covers_all_columns(self, sym):
        part = supernodes(sym, nsup=32, nrel=8)
        assert part.widths.sum() == sym.n
        assert part.starts[0] == 0
        assert np.all(np.diff(part.starts) == part.widths[:-1])

    def test_nsup_caps_width(self, sym):
        part = supernodes(sym, nsup=16, nrel=64)
        assert part.widths.max() <= 16

    def test_relaxation_merges_more(self, sym):
        few = supernodes(sym, nsup=64, nrel=1).n_supernodes
        many = supernodes(sym, nsup=64, nrel=32).n_supernodes
        assert many <= few

    def test_relaxed_fill_nonnegative(self, sym):
        assert supernodes(sym, nsup=64, nrel=32).relaxed_fill >= 0

    def test_nsup_one_every_column_alone(self, sym):
        part = supernodes(sym, nsup=1, nrel=0)
        assert part.n_supernodes == sym.n


class TestSimulator:
    @pytest.fixture(scope="class")
    def app(self):
        return SuperLUDIST(
            machine=cori_haswell(8),
            matrices=["Si2", "SiNa"],
            objectives=("time", "memory"),
            scale=SCALE,
            seed=0,
        )

    def test_spaces(self, app):
        assert app.tuning_space().dimension == 6  # β = 6 per Table 2
        assert app.task_space().dimension == 1

    def test_objectives_shape(self, app):
        y = app.objective({"matrix": "Si2"}, app.default_config({"matrix": "Si2"}))
        assert y.shape == (2,)
        assert y[0] > 0 and y[1] > 0

    def test_time_only_mode(self):
        app = SuperLUDIST(matrices=["Si2"], objectives=("time",), scale=SCALE)
        y = app.objective({"matrix": "Si2"}, app.default_config({"matrix": "Si2"}))
        assert np.isscalar(y)

    def test_invalid_objectives(self):
        with pytest.raises(ValueError):
            SuperLUDIST(objectives=("runtime",))
        with pytest.raises(ValueError):
            SuperLUDIST(matrices=["NotReal"])

    def test_colperm_changes_both_objectives(self, app):
        base = app.default_config({"matrix": "SiNa"})
        t = {"matrix": "SiNa"}
        y_nat = app.objective(t, {**base, "COLPERM": "NATURAL"})
        y_mmd = app.objective(t, {**base, "COLPERM": "MMD_AT_PLUS_A"})
        assert y_mmd[1] < y_nat[1]  # less fill => less memory

    def test_lookahead_tradeoff(self, app):
        """More look-ahead: less stall time, more buffer memory."""
        base = app.default_config({"matrix": "SiNa"})
        t = {"matrix": "SiNa"}
        lo = app._factorization(t, {**base, "LOOK": 1})
        hi = app._factorization(t, {**base, "LOOK": 20})
        assert hi[0] < lo[0]
        assert hi[1] > lo[1]

    def test_nsup_memory_tradeoff(self, app):
        """Tab. 5 structure: small NSUP saves memory vs big NSUP."""
        base = app.default_config({"matrix": "SiNa"})
        t = {"matrix": "SiNa"}
        small = app._factorization(t, {**base, "NSUP": 16})
        big = app._factorization(t, {**base, "NSUP": 512})
        assert small[1] < big[1]

    def test_symbolic_cached(self, app):
        t = {"matrix": "Si2"}
        cfg = app.default_config(t)
        app.objective(t, cfg)
        n_before = len(app._symbolic_cache)
        app.objective(t, {**cfg, "NSUP": 64})  # same COLPERM: cache hit
        assert len(app._symbolic_cache) == n_before

    def test_evaluate_default(self, app):
        time_s, mem_b = app.evaluate_default("Si2")
        assert time_s > 0 and mem_b > 0
