"""Property-based tests on the runtime and surrogate layers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.hypre.amg import build_hierarchy, poisson3d
from repro.apps.hypre.gmres import gmres
from repro.core import LCM
from repro.runtime import Machine, run_spmd
from repro.runtime import costmodel as cm

MACH = Machine(nodes=2, cores_per_node=4)


class TestSimMPIProperties:
    @given(st.integers(min_value=1, max_value=6),
           st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=6, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_makespan_equals_max_work_without_comm(self, nranks, works):
        def fn(comm):
            comm.compute(works[comm.rank])

        _, t = run_spmd(nranks, fn, machine=MACH)
        assert t == max(works[:nranks])

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_agrees_on_all_ranks(self, nranks, base):
        def fn(comm):
            return comm.allreduce(base + comm.rank)

        results, _ = run_spmd(nranks, fn, machine=MACH)
        expected = sum(base + r for r in range(nranks))
        assert all(r == expected for r in results)

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_barrier_clock_agreement(self, nranks):
        def fn(comm):
            comm.compute(float(comm.rank))
            comm.barrier()
            return comm.clock.now

        results, _ = run_spmd(nranks, fn, machine=MACH)
        assert max(results) - min(results) < 1e-12

    @given(st.integers(min_value=1, max_value=4096), st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_collective_costs_nonnegative_and_monotone_in_p(self, nbytes, p):
        t1 = cm.bcast_time(MACH, nbytes, p)
        t2 = cm.bcast_time(MACH, nbytes, 2 * p)
        assert t1 >= 0.0
        assert t2 >= t1  # more ranks never cheaper


class TestLCMProperties:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_posterior_interpolates_clean_data(self, seed):
        """With noise-free smooth data the posterior mean at training points
        stays close to the observations (whatever the random seed)."""
        rng = np.random.default_rng(seed)
        X = np.sort(rng.random(10))[:, None]
        y = np.sin(3 * X[:, 0])
        lcm = LCM(1, 1, seed=seed, n_start=2, maxiter=80).fit(
            X, y, np.zeros(10, dtype=int)
        )
        mu, var = lcm.predict(0, X)
        assert np.max(np.abs(mu - y)) < 0.3
        assert np.all(var >= 0)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_variance_never_negative_off_data(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.random((8, 2))
        y = rng.normal(size=8)
        lcm = LCM(2, 2, seed=seed, n_start=1, maxiter=50).fit(
            X, y, np.array([0, 0, 0, 0, 1, 1, 1, 1])
        )
        _, var = lcm.predict(1, rng.random((20, 2)))
        assert np.all(var >= 0)


class TestAMGProperties:
    @given(st.integers(min_value=4, max_value=7), st.floats(min_value=0.1, max_value=0.6))
    @settings(max_examples=8, deadline=None)
    def test_amg_gmres_always_converges_on_poisson(self, n, theta):
        A = poisson3d(n, n, n)
        H = build_hierarchy(A, strong_threshold=theta)
        b = np.ones(A.shape[0])
        res = gmres(A, b, M=H, rtol=1e-8, maxiter=120)
        assert res.converged
        assert res.iterations <= 60  # AMG keeps Poisson iteration counts low

    @given(st.integers(min_value=4, max_value=7))
    @settings(max_examples=6, deadline=None)
    def test_hierarchy_sizes_strictly_decrease(self, n):
        H = build_hierarchy(poisson3d(n, n, n))
        sizes = [lv.A.shape[0] for lv in H.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
