"""Unit tests for the group-commit write batcher (repro.service.batch):
coalescing, backpressure, batch atomicity across flush failures, the
crash-between-accept-and-flush durability contract, and the exclusive
section optimistic writers use."""

import threading
import time

import pytest

from repro.observability import MetricsRegistry
from repro.service import BackpressureError, ShardedStore, WriteBatcher

REC = {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]}


def _rec(i):
    return {"task": {"m": i}, "x": {"b": i}, "y": [float(i)]}


@pytest.fixture
def store(tmp_path):
    return ShardedStore(str(tmp_path / "db"))


class TestGroupCommit:
    def test_submit_commits_and_returns_rids_and_etag(self, store):
        batcher = WriteBatcher(store, flush_interval=0.001)
        rids, etag = batcher.submit("qr", [REC, _rec(2)])
        batcher.close()
        assert len(rids) == 2
        assert etag == store.etag("qr")
        assert store.count("qr") == 2

    def test_concurrent_submits_share_commits(self, store):
        metrics = MetricsRegistry()
        batcher = WriteBatcher(store, flush_interval=0.02, metrics=metrics)
        n = 24

        def submit(i):
            batcher.submit("qr", [_rec(i)])

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()

        assert store.count("qr") == n
        rids = [r["rid"] for r in store.records("qr", with_rid=True)]
        assert len(set(rids)) == n  # nothing lost, nothing duplicated
        commits = metrics.counter_value("repro_service_commits_total")
        assert 1 <= commits < n  # coalesced: far fewer fsyncs than submits
        assert metrics.counter_value(
            "repro_service_committed_records_total"
        ) == float(n)
        assert batcher.depth() == 0
        assert metrics.gauge_value("repro_service_write_queue_depth") == 0.0

    def test_flush_bytes_triggers_early_commit(self, store):
        # interval is effectively infinite; the byte threshold must flush
        batcher = WriteBatcher(store, flush_interval=60.0, flush_bytes=1)
        rids, _ = batcher.submit("qr", [REC], timeout=10)
        batcher.close()
        assert len(rids) == 1

    def test_rid_dedup_inside_one_batch(self, store):
        batcher = WriteBatcher(store, flush_interval=0.05)
        fixed = dict(REC, rid="deadbeef")
        results = {}

        def submit(name):
            results[name] = batcher.submit("qr", [fixed])

        threads = [
            threading.Thread(target=submit, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()

        assert store.count("qr") == 1
        won = [name for name, (rids, _) in results.items() if rids]
        assert len(won) == 1  # exactly one batch-mate claimed the rid

    def test_validation_happens_before_enqueue(self, store):
        batcher = WriteBatcher(store, flush_interval=0.001)
        with pytest.raises(ValueError):
            batcher.submit("qr", [{"task": {}, "x": {}}])  # no y
        # the malformed record never reached the queue, the shard is clean
        assert batcher.depth() == 0
        assert store.count("qr") == 0
        batcher.close()


class TestBackpressure:
    def test_queue_bound_raises_with_retry_hint(self, store, monkeypatch):
        batcher = WriteBatcher(store, flush_interval=60.0, max_pending=2)
        # park two records in the queue without waiting for their flush
        entries_in = threading.Barrier(3)

        def submit_bg():
            entries_in.wait()
            batcher.submit("qr", [_rec(1)], timeout=30)

        threads = [threading.Thread(target=submit_bg) for _ in range(2)]
        for t in threads:
            t.start()
        entries_in.wait()
        deadline = time.monotonic() + 5
        while batcher.depth() < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert batcher.depth() == 2

        with pytest.raises(BackpressureError) as err:
            batcher.submit("qr", [_rec(3)])
        assert err.value.retry_after > 0

        batcher.flush()  # release the parked writers
        for t in threads:
            t.join(timeout=10)
        batcher.close()
        assert store.count("qr") == 2

    def test_submit_after_close_rejected(self, store):
        batcher = WriteBatcher(store)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit("qr", [REC])


class TestAtomicityAndCrashes:
    def test_failed_flush_propagates_to_every_waiter(self, store):
        batcher = WriteBatcher(store, flush_interval=0.05)
        real_append = store.append

        def broken_append(problem, records):
            raise OSError("disk gone")

        store.append = broken_append
        errors = {}

        def submit(name):
            try:
                batcher.submit("qr", [_rec(ord(name))], timeout=10)
            except Exception as e:
                errors[name] = e

        threads = [
            threading.Thread(target=submit, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert set(errors) == {"a", "b"}
        assert all(isinstance(e, OSError) for e in errors.values())

        # the shard file stayed untouched and the batcher still works
        store.append = real_append
        assert store.count("qr") == 0
        rids, _ = batcher.submit("qr", [REC])
        assert len(rids) == 1
        batcher.close()

    def test_crash_between_accept_and_flush_loses_nothing_acked(self, tmp_path):
        """Queue-accepted-but-unflushed records are not yet durable — and
        were never acknowledged, so a crash there breaks no promise."""
        root = str(tmp_path / "db")
        store = ShardedStore(root)
        batcher = WriteBatcher(store, flush_interval=60.0)

        acked = []

        def submit_acked():
            acked.append(batcher.submit("qr", [_rec(1)], timeout=30))

        t = threading.Thread(target=submit_acked)
        t.start()
        deadline = time.monotonic() + 5
        while batcher.depth() < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        batcher.flush()  # this one is acknowledged, so it must be durable
        t.join(timeout=10)
        assert len(acked) == 1

        # a second record is accepted into the queue but never flushed;
        # "crash" = abandon the batcher without close(), reopen the store
        timed_out = []

        def submit_unflushed():
            try:
                batcher.submit("qr", [_rec(2)], timeout=0.05)
            except TimeoutError:
                timed_out.append(True)

        t2 = threading.Thread(target=submit_unflushed)
        t2.start()
        deadline = time.monotonic() + 5
        while batcher.depth() < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert batcher.depth() == 1  # accepted, never acknowledged
        t2.join(timeout=10)
        assert timed_out == [True]

        survivor = ShardedStore(root)
        rows = survivor.records("qr", with_rid=True)
        assert [r["rid"] for r in rows] == list(acked[0][0])  # acked only

    def test_close_flushes_pending(self, store):
        batcher = WriteBatcher(store, flush_interval=60.0)
        done = []

        def submit():
            done.append(batcher.submit("qr", [REC], timeout=30))

        t = threading.Thread(target=submit)
        t.start()
        deadline = time.monotonic() + 5
        while batcher.depth() < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        batcher.close()
        t.join(timeout=10)
        assert len(done) == 1
        assert store.count("qr") == 1


class TestExclusive:
    def test_exclusive_drains_queue_then_blocks_flusher(self, store):
        batcher = WriteBatcher(store, flush_interval=60.0)
        submitted = []

        def submit():
            submitted.append(batcher.submit("qr", [_rec(1)], timeout=30))

        t = threading.Thread(target=submit)
        t.start()
        deadline = time.monotonic() + 5
        while batcher.depth() < 1 and time.monotonic() < deadline:
            time.sleep(0.005)

        with batcher.exclusive("qr"):
            # entering drained the queue: the parked submit was committed
            assert batcher.depth() == 0
            assert store.count("qr") == 1
            etag = store.etag("qr")
            # check-and-append is atomic wrt batched writers in-process
            assert etag == store.etag("qr")
            store.append("qr", [_rec(2)])
        t.join(timeout=10)
        batcher.close()
        assert store.count("qr") == 2
        assert len(submitted) == 1
