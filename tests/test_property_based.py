"""Property-based tests (hypothesis) on the core data structures/invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Categorical, Integer, Real, Space
from repro.core.kernels import gaussian_kernel, pairwise_sq_diffs
from repro.core.metrics import pareto_mask, stability, win_task
from repro.core.sampling import lhs_unit
from repro.core.search.nsga2 import crowding_distance, fast_non_dominated_sort
from repro.core.search.penalty import PenalizedAcquisition, local_penalty

# -- strategies ----------------------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
unit = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def real_params(draw):
    lb = draw(st.floats(min_value=-1e6, max_value=1e6 - 1, allow_nan=False))
    width = draw(st.floats(min_value=1e-3, max_value=1e6))
    return Real("x", lb, lb + width)


@st.composite
def integer_params(draw):
    lb = draw(st.integers(min_value=-1000, max_value=1000))
    ub = lb + draw(st.integers(min_value=0, max_value=2000))
    return Integer("k", lb, ub)


@st.composite
def categorical_params(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return Categorical("c", [f"cat{i}" for i in range(n)])


# -- parameter invariants ----------------------------------------------------


class TestParameterProperties:
    @given(real_params(), unit)
    @settings(max_examples=100, deadline=None)
    def test_real_denorm_norm_identity(self, p, u):
        """normalize(denormalize(u)) == u for reals (up to float error)."""
        assert abs(p.normalize(p.denormalize(u)) - u) < 1e-6

    @given(integer_params(), unit)
    @settings(max_examples=100, deadline=None)
    def test_integer_denormalize_in_bounds(self, p, u):
        v = p.denormalize(u)
        assert p.lb <= v <= p.ub

    @given(integer_params(), unit)
    @settings(max_examples=100, deadline=None)
    def test_integer_roundtrip_fixed_point(self, p, u):
        """denormalize∘normalize is a fixed point on native values."""
        v = p.denormalize(u)
        assert p.denormalize(p.normalize(v)) == v

    @given(categorical_params(), unit)
    @settings(max_examples=100, deadline=None)
    def test_categorical_roundtrip_fixed_point(self, p, u):
        v = p.denormalize(u)
        assert p.denormalize(p.normalize(v)) == v

    @given(real_params(), unit, unit)
    @settings(max_examples=50, deadline=None)
    def test_real_denormalize_monotone(self, p, u1, u2):
        lo, hi = min(u1, u2), max(u1, u2)
        assert p.denormalize(lo) <= p.denormalize(hi)


# -- space invariants ---------------------------------------------------------


class TestSpaceProperties:
    @given(st.lists(unit, min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_space_roundtrip_idempotent(self, u):
        sp = Space([Real("x", -5, 5), Integer("k", 0, 9), Categorical("c", ["a", "b", "c"])])
        cfg = sp.denormalize(np.array(u))
        cfg2 = sp.round_trip(cfg)
        assert cfg == cfg2


# -- sampler invariants ----------------------------------------------------


class TestSamplingProperties:
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_lhs_stratification_always_holds(self, n, d, seed):
        pts = lhs_unit(n, d, np.random.default_rng(seed))
        assert pts.shape == (n, d)
        for j in range(d):
            strata = np.floor(pts[:, j] * n).astype(int)
            strata = np.minimum(strata, n - 1)
            assert sorted(strata.tolist()) == list(range(n))


# -- kernel invariants -----------------------------------------------------


class TestKernelProperties:
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_kernel_psd_and_bounded(self, n, d, seed):
        rng = np.random.default_rng(seed)
        X = rng.random((n, d))
        ls = rng.uniform(0.05, 2.0, d)
        K = gaussian_kernel(pairwise_sq_diffs(X), ls)
        assert np.all(K <= 1.0 + 1e-12) and np.all(K > 0)
        assert np.allclose(K, K.T)
        w = np.linalg.eigvalsh(K + 1e-8 * np.eye(n))
        assert w.min() > -1e-6


# -- metric invariants -----------------------------------------------------


class TestMetricProperties:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_pareto_mask_nonempty_and_mutually_nondominating(self, n, m, seed):
        rng = np.random.default_rng(seed)
        Y = rng.random((n, m))
        mask = pareto_mask(Y)
        assert mask.any()
        front = Y[mask]
        # no front point strictly dominates another
        le = np.all(front[:, None, :] <= front[None, :, :], axis=2)
        lt = np.any(front[:, None, :] < front[None, :, :], axis=2)
        dom = le & lt
        assert not dom.any()

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_stability_at_least_one(self, traj):
        """Stability normalized by the trajectory's own best is >= 1."""
        y_star = min(traj)
        assert stability(traj, y_star) >= 1.0 - 1e-12

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20),
           st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_win_task_antisymmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert win_task(a, b) + win_task(b, a) <= 1.0 + 1e-12


# -- NSGA-II machinery ----------------------------------------------------


class TestSortingProperties:
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_fronts_partition_population(self, n, m, seed):
        rng = np.random.default_rng(seed)
        F = rng.random((n, m))
        fronts = fast_non_dominated_sort(F)
        allidx = np.concatenate(fronts)
        assert sorted(allidx.tolist()) == list(range(n))

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_earlier_fronts_not_dominated_by_later(self, n, seed):
        rng = np.random.default_rng(seed)
        F = rng.random((n, 2))
        fronts = fast_non_dominated_sort(F)
        for r in range(len(fronts) - 1):
            for i in fronts[r + 1]:
                dominated_by_front = any(
                    np.all(F[j] <= F[i]) and np.any(F[j] < F[i]) for j in fronts[r]
                )
                assert dominated_by_front

    @given(st.integers(min_value=1, max_value=25), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_crowding_nonnegative(self, n, seed):
        rng = np.random.default_rng(seed)
        d = crowding_distance(rng.random((n, 2)))
        assert np.all(d >= 0)


# -- pending-point penalties (async search) -------------------------------


@st.composite
def penalty_cases(draw):
    """Candidates, pending points, and a radius — all on the unit cube."""
    dim = draw(st.integers(min_value=1, max_value=4))
    point = st.lists(unit, min_size=dim, max_size=dim)
    n = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=5))
    X = np.array(draw(st.lists(point, min_size=n, max_size=n)))
    P = np.array(draw(st.lists(point, min_size=m, max_size=m)))
    r = draw(st.floats(min_value=0.01, max_value=0.9))
    return X, P, r


def _dist(X, P):
    return np.sqrt(np.sum((X[:, None, :] - P[None, :, :]) ** 2, axis=2))


class TestPendingPenaltyProperties:
    """The four contract properties of the local pending-point penalty
    (module docstring of :mod:`repro.core.search.penalty`)."""

    @given(penalty_cases())
    @settings(max_examples=100, deadline=None)
    def test_penalized_never_exceeds_unpenalized(self, case):
        X, P, r = case
        base = np.ones(X.shape[0]) * 2.5  # a positive acquisition value
        acq = PenalizedAcquisition(lambda x: base.copy(), P, r)
        assert np.all(acq(X) <= base + 1e-15)

    @given(penalty_cases())
    @settings(max_examples=100, deadline=None)
    def test_strictly_lower_within_radius(self, case):
        X, P, r = case
        d = _dist(X, P).min(axis=1)
        inside = d <= 0.99 * r  # strictly inside, away from float ties at r
        acq = PenalizedAcquisition(lambda x: np.ones(x.shape[0]), P, r)
        vals = acq(X)
        assert np.all(vals[inside] < 1.0)

    @given(penalty_cases())
    @settings(max_examples=100, deadline=None)
    def test_identical_beyond_radius(self, case):
        X, P, r = case
        d = _dist(X, P).min(axis=1)
        outside = d >= 1.01 * r  # clearly beyond, away from float ties at r
        base = np.full(X.shape[0], 3.7)
        acq = PenalizedAcquisition(lambda x: base.copy(), P, r)
        vals = acq(X)
        assert np.array_equal(vals[outside], base[outside])

    @given(penalty_cases(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_pending_order_invariance_is_bit_exact(self, case, seed):
        X, P, r = case
        perm = np.random.default_rng(seed).permutation(P.shape[0])
        assert np.array_equal(
            local_penalty(X, P, r), local_penalty(X, P[perm], r)
        )

    @given(penalty_cases())
    @settings(max_examples=50, deadline=None)
    def test_infeasible_sentinels_pass_through(self, case):
        X, P, r = case
        # -inf (infeasible) must survive unscaled: -inf * 0 would be nan
        acq = PenalizedAcquisition(lambda x: np.full(x.shape[0], -np.inf), P, r)
        vals = acq(X)
        assert np.all(np.isneginf(vals))
