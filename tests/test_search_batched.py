"""Lockstep batched search phase: cross-task posterior, batched EI/PSO,
driver mode selection, and batched-vs-sequential campaign parity."""

import numpy as np
import pytest

from repro.core import (
    BatchedEIAcquisition,
    BatchedParticleSwarm,
    EIAcquisition,
    GPTune,
    Options,
    Real,
    Space,
    TuningProblem,
)
from repro.core.lcm import LCM
from repro.core.mla import IndependentGPs


def _fitted_lcm(rng, n=50, delta=3, beta=2, q=2):
    X = rng.random((n, beta))
    tidx = rng.integers(0, delta, n)
    y = np.sin(3.0 * X[:, 0]) + 0.3 * tidx + 0.05 * rng.normal(size=n)
    return LCM(delta, beta, n_latent=q, seed=0, n_start=1, maxiter=30).fit(X, y, tidx)


class TestPredictTasks:
    """predict_tasks ≡ per-task predict to 1e-10 on random fits."""

    @pytest.mark.parametrize("delta,beta,q,n", [(2, 2, 1, 24), (3, 2, 2, 40), (4, 3, 3, 60)])
    def test_shared_block_equivalence(self, rng, delta, beta, q, n):
        m = _fitted_lcm(rng, n=n, delta=delta, beta=beta, q=q)
        Xs = rng.random((17, beta))
        tasks = list(range(delta))
        mu_b, var_b = m.predict_tasks(tasks, Xs)
        assert mu_b.shape == var_b.shape == (delta, 17)
        for t in tasks:
            mu, var = m.predict(t, Xs)
            assert np.allclose(mu_b[t], mu, atol=1e-10)
            assert np.allclose(var_b[t], var, atol=1e-10)

    def test_per_task_blocks_equivalence(self, rng):
        m = _fitted_lcm(rng, delta=3)
        blocks = rng.random((3, 11, 2))
        mu_b, var_b = m.predict_tasks([0, 1, 2], blocks)
        assert mu_b.shape == var_b.shape == (3, 11)
        for t in range(3):
            mu, var = m.predict(t, blocks[t])
            assert np.allclose(mu_b[t], mu, atol=1e-10)
            assert np.allclose(var_b[t], var, atol=1e-10)

    def test_task_subset_and_order(self, rng):
        """Any subset of tasks, in any order (frozen tasks are skipped)."""
        m = _fitted_lcm(rng, delta=4, q=2)
        Xs = rng.random((9, 2))
        mu_b, var_b = m.predict_tasks([3, 1], Xs)
        for row, t in enumerate([3, 1]):
            mu, var = m.predict(t, Xs)
            assert np.allclose(mu_b[row], mu, atol=1e-10)
            assert np.allclose(var_b[row], var, atol=1e-10)

    def test_variance_nonnegative(self, rng):
        m = _fitted_lcm(rng)
        _, var = m.predict_tasks([0, 1, 2], rng.random((30, 2)))
        assert np.all(var >= 0.0)

    def test_validation(self, rng):
        m = _fitted_lcm(rng, delta=2)
        with pytest.raises(ValueError):
            m.predict_tasks([0, 5], rng.random((4, 2)))
        with pytest.raises(ValueError):
            m.predict_tasks([], rng.random((4, 2)))
        with pytest.raises(ValueError):
            m.predict_tasks([0, 1], rng.random((3, 4, 2)))  # 3 blocks, 2 tasks
        with pytest.raises(RuntimeError):
            LCM(2, 2, seed=0).predict_tasks([0], rng.random((4, 2)))


class TestBatchedParticleSwarm:
    def test_finds_per_task_maxima(self):
        targets = np.array([[0.2, 0.8], [0.7, 0.3], [0.5, 0.5]])

        def f(X):  # (T, P, d) -> (T, P)
            return -np.sum((X - targets[:, None, :]) ** 2, axis=2)

        pso = BatchedParticleSwarm(dim=2, n_tasks=3, n_particles=30, iterations=40, seed=0)
        x, v = pso.maximize(f)
        assert x.shape == (3, 2) and v.shape == (3,)
        assert np.allclose(x, targets, atol=0.05)

    def test_respects_bounds(self):
        def f(X):
            return X[..., 0]

        x, _ = BatchedParticleSwarm(dim=1, n_tasks=2, n_particles=10, iterations=30, seed=1).maximize(f)
        assert np.all((x >= 0.0) & (x <= 1.0))
        assert np.all(x[:, 0] > 0.95)

    def test_seed_reproducible(self):
        f = lambda X: -np.sum((X - 0.5) ** 2, axis=2)
        a = BatchedParticleSwarm(2, 3, 10, 10, seed=5).maximize(f)
        b = BatchedParticleSwarm(2, 3, 10, 10, seed=5).maximize(f)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_x0_incumbents_never_lost(self):
        """Injected per-task seeds survive via elitist personal bests."""
        targets = np.array([[0.1, 0.9], [0.9, 0.1]])
        f = lambda X: -np.sum((X - targets[:, None, :]) ** 2, axis=2)
        pso = BatchedParticleSwarm(dim=2, n_tasks=2, n_particles=5, iterations=2, seed=0)
        _, v = pso.maximize(f, x0=targets)
        assert np.all(v >= -1e-12)

    def test_top_batch_per_task(self):
        f = lambda X: -np.sum((X - 0.5) ** 2, axis=2)
        pso = BatchedParticleSwarm(dim=2, n_tasks=2, n_particles=20, iterations=10, seed=2)
        pso.maximize(f)
        tops = pso.top_batch(3, min_dist=0.01)
        assert len(tops) == 2
        for arr in tops:
            assert 1 <= arr.shape[0] <= 3 and arr.shape[1] == 2
            for a in range(arr.shape[0]):
                for b in range(a + 1, arr.shape[0]):
                    assert np.linalg.norm(arr[a] - arr[b]) >= 0.01

    def test_top_batch_before_maximize_raises(self):
        with pytest.raises(RuntimeError):
            BatchedParticleSwarm(2, 2, seed=0).top_batch(2)


class TestBatchedEIAcquisition:
    def test_matches_per_task_ei(self, rng):
        m = _fitted_lcm(rng, delta=3)
        ybest = np.array([0.2, 0.5, -0.1])
        batched = BatchedEIAcquisition(
            lambda X: m.predict_tasks([0, 1, 2], X), y_best=ybest
        )
        blocks = rng.random((3, 8, 2))
        ei = batched(blocks)
        assert ei.shape == (3, 8)
        for t in range(3):
            ref = EIAcquisition(lambda X, t=t: m.predict(t, X), y_best=float(ybest[t]))
            assert np.allclose(ei[t], ref(blocks[t]), atol=1e-10)

    def test_per_task_feasibility_masks(self, rng):
        m = _fitted_lcm(rng, delta=2)
        feas = [lambda X: X[:, 0] < 0.5, None]
        batched = BatchedEIAcquisition(
            lambda X: m.predict_tasks([0, 1], X),
            y_best=np.array([1.0, 1.0]),
            feasibility=feas,
        )
        blocks = np.stack([np.array([[0.1, 0.5], [0.9, 0.5]])] * 2)
        ei = batched(blocks)
        assert np.isfinite(ei[0, 0]) and ei[0, 1] == -np.inf
        assert np.all(np.isfinite(ei[1]))

    def test_shape_validation(self, rng):
        m = _fitted_lcm(rng, delta=2)
        acq = BatchedEIAcquisition(
            lambda X: m.predict_tasks([0, 1], X), y_best=np.zeros(2)
        )
        with pytest.raises(ValueError):
            acq(rng.random((4, 2)))  # missing task axis


def _analytical_problem():
    return TuningProblem(
        task_space=Space([Real("t", 0.0, 1.0)]),
        tuning_space=Space([Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)]),
        objective=lambda task, cfg: 1.0
        + (cfg["x"] - 0.2 - 0.3 * task["t"]) ** 2
        + (cfg["y"] - 0.7 * task["t"]) ** 2,
        name="batched-search-analytical",
    )


TASKS = [{"t": 0.15}, {"t": 0.5}, {"t": 0.85}]
BASE = dict(seed=3, n_start=1, pso_iters=8, ei_candidates=12, lbfgs_maxiter=50)


def _campaign(**kw):
    opts = Options(**{**BASE, **kw})
    return GPTune(_analytical_problem(), opts).tune(TASKS, 12)


class TestBatchedCampaign:
    def test_batched_within_5pct_of_sequential(self):
        batched = _campaign(search_batched=True)
        sequential = _campaign(search_batched=False)
        assert np.all(batched.best_values() <= sequential.best_values() * 1.05)

    def test_batched_deterministic(self):
        a = _campaign(search_batched=True)
        b = _campaign(search_batched=True)
        assert a.data.to_records() == b.data.to_records()

    def test_sequential_deterministic(self):
        a = _campaign(search_batched=False)
        b = _campaign(search_batched=False)
        assert a.data.to_records() == b.data.to_records()

    def test_executor_thread_deterministic_and_close(self):
        a = _campaign(search_batched=False, search_backend="thread")
        b = _campaign(search_batched=False, search_backend="thread")
        assert a.data.to_records() == b.data.to_records()
        sequential = _campaign(search_batched=False)
        assert np.all(a.best_values() <= sequential.best_values() * 1.05)

    def test_search_mode_events_and_spans(self):
        for expect, kw in (
            ("batched", dict(search_batched=True)),
            ("sequential", dict(search_batched=False)),
            ("executor", dict(search_batched=False, search_backend="thread")),
        ):
            res = _campaign(telemetry=True, **kw)
            modes = [e for e in res.events.events if e.kind == "search-mode"]
            assert [e.fields.get("mode") for e in modes] == [expect]
            assert modes[0].fields.get("algo") == "pso-ei"
            spans = [
                e
                for e in res.events.events
                if e.kind == "span" and e.fields.get("name") == "phase.search"
            ]
            assert spans and all(s.fields.get("mode") == expect for s in spans)

    def test_batch_evals_diverse_proposals(self):
        res = _campaign(search_batched=True, batch_evals=2)
        assert min(res.data.n_samples(i) for i in range(3)) >= 12

    def test_multiobjective_batched_matches_modes(self):
        prob = TuningProblem(
            task_space=Space([Real("t", 0.0, 1.0)]),
            tuning_space=Space([Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)]),
            objective=lambda task, cfg: [
                (cfg["x"] - task["t"]) ** 2 + 0.1,
                (cfg["y"] - 0.5) ** 2 + 0.1,
            ],
            n_objectives=2,
            name="batched-search-mo",
        )
        opts = dict(seed=0, n_start=1, nsga_pop=10, nsga_gens=3, pareto_batch=2, lbfgs_maxiter=40)
        for expect, kw in (
            ("batched", dict(search_batched=True)),
            ("sequential", dict(search_batched=False)),
        ):
            res = GPTune(prob, Options(**opts, **kw)).tune([{"t": 0.2}, {"t": 0.8}], 10)
            modes = [e.fields.get("mode") for e in res.events.events if e.kind == "search-mode"]
            assert modes == [expect]
            for i in range(2):
                front, _ = res.pareto_front(i)
                assert len(front) >= 1


class TestModeSelection:
    def test_non_lcm_models_disable_batching(self):
        tuner = GPTune(_analytical_problem(), Options(seed=0))
        fallback = IndependentGPs([None])
        assert tuner._select_search_mode([fallback], None) == "sequential"
        tuner2 = GPTune(
            _analytical_problem(), Options(seed=0, search_backend="thread")
        )
        assert tuner2._select_search_mode([fallback], None) == "executor"

    def test_featurizer_disables_batching(self, rng):
        tuner = GPTune(_analytical_problem(), Options(seed=0))
        lcm = _fitted_lcm(rng)
        assert tuner._select_search_mode([lcm], object()) == "sequential"
        assert tuner._select_search_mode([lcm], None) == "batched"

    def test_search_batched_off_prefers_backend(self, rng):
        lcm = _fitted_lcm(rng)
        tuner = GPTune(
            _analytical_problem(),
            Options(seed=0, search_batched=False, search_backend="process"),
        )
        assert tuner._select_search_mode([lcm], None) == "executor"
