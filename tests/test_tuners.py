"""Tests for the baseline tuners (OpenTuner-style, HpBandSter-style, etc.)."""

import numpy as np
import pytest

from repro.core import Integer, Options, Real, Space, TuningProblem
from repro.tuners import (
    GPTuneTuner,
    GridSearchTuner,
    HpBandSterTuner,
    OpenTunerTuner,
    RandomSearchTuner,
    TuneRecord,
)
from repro.tuners.hpbandster import ProductKDE
from repro.tuners.opentuner import (
    DifferentialEvolutionTechnique,
    GeneticAlgorithmTechnique,
    NelderMeadTechnique,
    PatternSearchTechnique,
    SimulatedAnnealingTechnique,
)


def smooth_problem():
    ts = Space([Integer("t", 0, 10)])
    ps = Space([Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)])
    return TuningProblem(
        ts,
        ps,
        lambda t, c: (c["x"] - 0.3) ** 2 + (c["y"] - 0.7) ** 2 + 0.001,
        name="bowl",
    )


ALL_TUNERS = [
    RandomSearchTuner(),
    GridSearchTuner(),
    OpenTunerTuner(),
    HpBandSterTuner(),
]


class TestTuneRecord:
    def test_best_and_trajectory(self):
        r = TuneRecord({"t": 1})
        for v in [5.0, 2.0, 7.0]:
            r.add({"x": v}, v)
        assert r.best()[1] == 2.0
        assert r.trajectory().tolist() == [5.0, 2.0, 2.0]
        assert len(r) == 3

    def test_empty_best_raises(self):
        with pytest.raises(ValueError):
            TuneRecord({"t": 1}).best()

    def test_objective_shape_check(self):
        r = TuneRecord({"t": 1}, n_objectives=2)
        with pytest.raises(ValueError):
            r.add({"x": 1}, 1.0)


class TestBudgets:
    @pytest.mark.parametrize("tuner", ALL_TUNERS, ids=lambda t: t.name)
    def test_exact_budget(self, tuner):
        rec = tuner.tune(smooth_problem(), {"t": 1}, 17, seed=0)
        assert len(rec) == 17

    @pytest.mark.parametrize("tuner", ALL_TUNERS, ids=lambda t: t.name)
    def test_reproducible(self, tuner):
        a = tuner.tune(smooth_problem(), {"t": 1}, 10, seed=3).best()[1]
        b = tuner.tune(smooth_problem(), {"t": 1}, 10, seed=3).best()[1]
        assert a == b

    @pytest.mark.parametrize("tuner", ALL_TUNERS, ids=lambda t: t.name)
    def test_beats_worst_case(self, tuner):
        """Every tuner finds something decent on a smooth bowl in 30 evals."""
        rec = tuner.tune(smooth_problem(), {"t": 1}, 30, seed=0)
        assert rec.best()[1] < 0.3

    def test_constraints_respected(self):
        ts = Space([Integer("t", 0, 10)])
        ps = Space([Integer("p", 1, 16), Integer("q", 1, 16)], constraints=["q <= p"])
        prob = TuningProblem(ts, ps, lambda t, c: c["p"] / c["q"], name="c")
        for tuner in ALL_TUNERS:
            rec = tuner.tune(prob, {"t": 1}, 12, seed=1)
            assert all(c["q"] <= c["p"] for c in rec.configs)


class TestOpenTunerEnsemble:
    def test_all_arms_get_played(self):
        tuner = OpenTunerTuner()
        rec = tuner.tune(smooth_problem(), {"t": 1}, 12, seed=0)
        assert len(rec) == 12  # ≥ number of techniques, each played once

    def test_single_technique_subset(self):
        tuner = OpenTunerTuner(techniques=[GeneticAlgorithmTechnique])
        rec = tuner.tune(smooth_problem(), {"t": 1}, 15, seed=0)
        assert rec.best()[1] < 0.5

    def test_empty_techniques_rejected(self):
        with pytest.raises(ValueError):
            OpenTunerTuner(techniques=[])

    @pytest.mark.parametrize(
        "cls",
        [
            GeneticAlgorithmTechnique,
            DifferentialEvolutionTechnique,
            SimulatedAnnealingTechnique,
            NelderMeadTechnique,
            PatternSearchTechnique,
        ],
    )
    def test_each_technique_solo_improves_over_start(self, cls):
        prob = smooth_problem()
        space, task = prob.tuning_space, {"t": 1}
        tech = cls(space, task, np.random.default_rng(0))
        best = np.inf
        first = None
        for _ in range(25):
            cfg = tech.ask()
            val = prob.evaluate(task, cfg)[0]
            tech.tell(cfg, val, mine=True)
            best = min(best, val)
            first = val if first is None else first
        assert best <= first
        assert best < 0.6


class TestTPE:
    def test_kde_pdf_positive_and_normalized_shape(self, rng):
        data = rng.random((20, 2))
        kde = ProductKDE(data)
        q = rng.random((10, 2))
        p = kde.pdf(q)
        assert p.shape == (10,) and np.all(p > 0)

    def test_kde_peaks_at_data(self, rng):
        data = np.full((10, 1), 0.5) + 0.01 * rng.normal(size=(10, 1))
        kde = ProductKDE(data)
        assert kde.pdf(np.array([[0.5]]))[0] > kde.pdf(np.array([[0.05]]))[0]

    def test_kde_sampling_stays_in_cube(self, rng):
        data = rng.random((15, 3))
        s = ProductKDE(data).sample(200, rng)
        assert s.shape == (200, 3)
        assert np.all((0 <= s) & (s <= 1))

    def test_kde_categorical_kernel(self, rng):
        # one categorical dim with 3 choices, all data in category 0
        data = np.full((10, 1), 1.0 / 6.0)  # centre of cell 0
        kde = ProductKDE(data, categorical_mask=np.array([True]), cardinalities=np.array([3.0]))
        p_same = kde.pdf(np.array([[1.0 / 6.0]]))[0]
        p_other = kde.pdf(np.array([[5.0 / 6.0]]))[0]
        assert p_same > p_other

    def test_kde_empty_rejected(self):
        with pytest.raises(ValueError):
            ProductKDE(np.empty((0, 2)))

    def test_tpe_validation(self):
        with pytest.raises(ValueError):
            HpBandSterTuner(gamma=1.5)

    def test_tpe_model_phase_reached(self):
        """After min_points the tuner must use the KDE path without error."""
        tuner = HpBandSterTuner(min_points=4, random_fraction=0.0)
        rec = tuner.tune(smooth_problem(), {"t": 1}, 20, seed=0)
        assert len(rec) == 20


class TestGPTuneAdapter:
    def test_single_task_mode(self):
        opts = Options(seed=0, n_start=1, pso_iters=5, ei_candidates=10)
        rec = GPTuneTuner(opts).tune(smooth_problem(), {"t": 1}, 8, seed=0)
        assert len(rec) == 8

    def test_multitask_mode_reports_requested_task(self):
        opts = Options(seed=0, n_start=1, pso_iters=5, ei_candidates=10)
        tuner = GPTuneTuner(opts, tasks=[{"t": 2}, {"t": 8}])
        rec = tuner.tune(smooth_problem(), {"t": 2}, 6, seed=0)
        assert rec.task == {"t": 2}
        assert len(rec) == 6


class TestPSOTechnique:
    def test_solo_improves(self):
        from repro.tuners.opentuner import PSOTechnique

        prob = smooth_problem()
        tech = PSOTechnique(prob.tuning_space, {"t": 1}, np.random.default_rng(0),
                            swarm_size=4)
        best = np.inf
        for _ in range(30):
            cfg = tech.ask()
            val = prob.evaluate({"t": 1}, cfg)[0]
            tech.tell(cfg, val, mine=True)
            best = min(best, val)
        assert best < 0.3

    def test_in_default_ensemble(self):
        from repro.tuners.opentuner import DEFAULT_TECHNIQUES, PSOTechnique

        assert PSOTechnique in DEFAULT_TECHNIQUES

    def test_absorbs_foreign_results(self):
        from repro.tuners.opentuner import PSOTechnique

        prob = smooth_problem()
        tech = PSOTechnique(prob.tuning_space, {"t": 1}, np.random.default_rng(1))
        tech.tell({"x": 0.3, "y": 0.7}, 0.001, mine=False)
        assert tech.gbest_f == 0.001
