"""Tests for hyperband / successive halving (repro.tuners.hpbandster.hyperband)."""

import numpy as np
import pytest

from repro.core import Integer, Real, Space, TuningProblem
from repro.tuners.hpbandster import HyperbandTuner, SuccessiveHalvingTuner


def fidelity_problem():
    """y(t, x) = (x − 0.3)² + noise/steps: low fidelity = noisy estimate.

    Task 'steps' is the fidelity axis, as for the paper's fusion codes.
    """
    ts = Space([Integer("steps", 1, 27)])
    ps = Space([Real("x", 0.0, 1.0)])

    def obj(t, c):
        base = (c["x"] - 0.3) ** 2 + 0.01
        # deterministic pseudo-noise shrinking with fidelity
        wobble = 0.3 * np.sin(37.0 * c["x"]) / t["steps"]
        return base + abs(wobble)

    return TuningProblem(ts, ps, obj, name="fid")


def with_fidelity(task, budget):
    return {"steps": max(1, int(round(task["steps"] * budget)))}


class TestSuccessiveHalving:
    def test_rung_ladder(self):
        sh = SuccessiveHalvingTuner(with_fidelity, eta=3.0, min_budget=1 / 9)
        assert sh.rungs() == pytest.approx([1 / 9, 1 / 3, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalvingTuner(with_fidelity, eta=1.0)
        with pytest.raises(ValueError):
            SuccessiveHalvingTuner(with_fidelity, min_budget=0.0)

    def test_bracket_keeps_best(self):
        from repro.tuners.base import TuneRecord

        prob = fidelity_problem()
        sh = SuccessiveHalvingTuner(with_fidelity, eta=2.0, min_budget=0.25)
        configs = [{"x": v} for v in (0.05, 0.3, 0.6, 0.95)]
        record = TuneRecord({"steps": 27})
        survivors, cost = sh.run_bracket(prob, {"steps": 27}, configs, record)
        # the config nearest the optimum survives to full fidelity
        assert any(abs(c["x"] - 0.3) < 0.01 for c in survivors)
        assert cost > 0
        # cost in fidelity units is below evaluating all at full budget ×rungs
        assert cost < len(configs) * len(sh.rungs())

    def test_tune_budget_and_quality(self):
        prob = fidelity_problem()
        sh = SuccessiveHalvingTuner(with_fidelity, eta=3.0, min_budget=1 / 9)
        rec = sh.tune(prob, {"steps": 27}, n_samples=14, seed=0)
        assert len(rec) >= 1  # full-fidelity evaluations recorded
        assert rec.best()[1] < 0.2

    def test_cheaper_than_full_fidelity_grid(self):
        """SH evaluates many configs for the cost of a few full runs."""
        prob = fidelity_problem()
        evals = {"n": 0}
        orig = prob.objective

        def counting(t, c):
            evals["n"] += 1
            return orig(t, c)

        prob2 = TuningProblem(prob.task_space, prob.tuning_space, counting, name="fid")
        sh = SuccessiveHalvingTuner(with_fidelity, eta=3.0, min_budget=1 / 9)
        rec = sh.tune(prob2, {"steps": 27}, n_samples=9, seed=1)
        assert evals["n"] > 9  # more configs touched than full-fidelity budget


class TestHyperband:
    def test_tune_runs_and_finds_optimum_region(self):
        prob = fidelity_problem()
        hb = HyperbandTuner(with_fidelity, eta=3.0, min_budget=1 / 9, model=False)
        rec = hb.tune(prob, {"steps": 27}, n_samples=20, seed=2)
        assert rec.best()[1] < 0.15

    def test_bohb_mode_at_least_as_good_on_average(self):
        prob = fidelity_problem()
        plain, bohb = [], []
        for seed in range(3):
            plain.append(
                HyperbandTuner(with_fidelity, model=False)
                .tune(prob, {"steps": 27}, 18, seed=seed)
                .best()[1]
            )
            bohb.append(
                HyperbandTuner(with_fidelity, model=True)
                .tune(prob, {"steps": 27}, 18, seed=seed)
                .best()[1]
            )
        assert np.mean(bohb) <= np.mean(plain) + 0.05

    def test_fusion_fidelity_integration(self):
        """The paper's actual fidelity axis: fusion time steps."""
        from repro.apps.fusion import M3DC1
        from repro.runtime import cori_haswell

        app = M3DC1(machine=cori_haswell(1), plane_size=150, seed=0)
        hb = HyperbandTuner(
            lambda task, b: {"t": max(1, int(round(task["t"] * b)))},
            eta=3.0,
            min_budget=1 / 9,
        )
        rec = hb.tune(app.problem(), {"t": 9}, n_samples=12, seed=3)
        default = app.objective({"t": 9}, app.default_config({"t": 9}))
        assert rec.best()[1] <= default * 1.1
