"""Unit tests for performance-model incorporation (repro.core.perfmodel)."""

import numpy as np
import pytest

from repro.core import CallableModel, LinearPerformanceModel, ModelFeaturizer


class TestCallableModel:
    def test_predict(self):
        m = CallableModel(lambda task, cfg: task["m"] * cfg["x"])
        assert m.predict({"m": 3}, {"x": 2.0}) == 6.0

    def test_update_is_noop(self):
        m = CallableModel(lambda task, cfg: 1.0)
        m.update([], [], np.array([]))  # must not raise


class TestLinearPerformanceModel:
    def test_initial_coefficients(self):
        m = LinearPerformanceModel([lambda t, c: 2.0], initial_coefficients=[3.0])
        assert m.predict({}, {}) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearPerformanceModel([])
        with pytest.raises(ValueError):
            LinearPerformanceModel([lambda t, c: 1.0], initial_coefficients=[1.0, 2.0])

    def test_nnls_recovers_coefficients(self, rng):
        """With y = 2·φ1 + 5·φ2 the update recovers (2, 5)."""
        feats = [lambda t, c: c["a"], lambda t, c: c["b"]]
        m = LinearPerformanceModel(feats)
        cfgs = [{"a": float(a), "b": float(b)} for a, b in rng.random((20, 2)) * 10]
        y = np.array([2.0 * c["a"] + 5.0 * c["b"] for c in cfgs])
        m.update([{}] * len(cfgs), cfgs, y)
        assert m.coefficients == pytest.approx([2.0, 5.0], rel=1e-6)
        assert m.n_updates == 1

    def test_nonnegativity_enforced(self, rng):
        feats = [lambda t, c: c["a"]]
        m = LinearPerformanceModel(feats)
        cfgs = [{"a": float(a)} for a in rng.random(10) + 0.1]
        y = -np.array([c["a"] for c in cfgs])  # negative target
        m.update([{}] * 10, cfgs, y)
        assert m.coefficients[0] >= 0.0

    def test_underdetermined_keeps_estimate(self):
        m = LinearPerformanceModel([lambda t, c: 1.0, lambda t, c: 2.0])
        before = m.coefficients.copy()
        m.update([{}], [{}], np.array([1.0]))  # 1 sample < 2 features
        assert np.allclose(m.coefficients, before)
        assert m.n_updates == 0


class TestModelFeaturizer:
    def test_wraps_plain_callables(self):
        f = ModelFeaturizer([lambda t, c: 1.0])
        assert f.n_features == 1
        assert f.raw({}, {}).tolist() == [1.0]

    def test_enrich_appends_columns(self, rng):
        f = ModelFeaturizer([lambda t, c: c["x"], lambda t, c: 2 * c["x"]])
        cfgs = [{"x": 0.2}, {"x": 0.8}]
        X = rng.random((2, 3))
        Xe = f.enrich({}, cfgs, X, observe=True)
        assert Xe.shape == (2, 5)
        # scaled to [0, 1] over the observed range
        assert Xe[:, 3].min() == pytest.approx(0.0)
        assert Xe[:, 3].max() == pytest.approx(1.0)

    def test_scaling_consistent_for_candidates(self, rng):
        f = ModelFeaturizer([lambda t, c: c["x"]])
        train = [{"x": 0.0}, {"x": 1.0}]
        f.enrich({}, train, rng.random((2, 1)), observe=True)
        cand = f.enrich({}, [{"x": 0.5}], rng.random((1, 1)), observe=False)
        assert cand[0, 1] == pytest.approx(0.5)

    def test_out_of_range_candidates_clipped(self, rng):
        f = ModelFeaturizer([lambda t, c: c["x"]])
        f.enrich({}, [{"x": 0.0}, {"x": 1.0}], rng.random((2, 1)), observe=True)
        cand = f.enrich({}, [{"x": 100.0}], rng.random((1, 1)), observe=False)
        assert cand[0, 1] <= 2.0

    def test_update_hyperparameters_delegates(self, rng):
        lin = LinearPerformanceModel([lambda t, c: c["a"]])
        f = ModelFeaturizer([lin])
        cfgs = [{"a": float(a)} for a in rng.random(5) + 0.5]
        y = np.array([3.0 * c["a"] for c in cfgs])
        f.update_hyperparameters([{}] * 5, cfgs, y)
        assert lin.coefficients[0] == pytest.approx(3.0, rel=1e-6)
