"""Unit tests for performance-model incorporation (repro.core.perfmodel)."""

import numpy as np
import pytest

from repro.core import CallableModel, LinearPerformanceModel, ModelFeaturizer


class TestCallableModel:
    def test_predict(self):
        m = CallableModel(lambda task, cfg: task["m"] * cfg["x"])
        assert m.predict({"m": 3}, {"x": 2.0}) == 6.0

    def test_update_is_noop(self):
        m = CallableModel(lambda task, cfg: 1.0)
        m.update([], [], np.array([]))  # must not raise


class TestLinearPerformanceModel:
    def test_initial_coefficients(self):
        m = LinearPerformanceModel([lambda t, c: 2.0], initial_coefficients=[3.0])
        assert m.predict({}, {}) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearPerformanceModel([])
        with pytest.raises(ValueError):
            LinearPerformanceModel([lambda t, c: 1.0], initial_coefficients=[1.0, 2.0])

    def test_nnls_recovers_coefficients(self, rng):
        """With y = 2·φ1 + 5·φ2 the update recovers (2, 5)."""
        feats = [lambda t, c: c["a"], lambda t, c: c["b"]]
        m = LinearPerformanceModel(feats)
        cfgs = [{"a": float(a), "b": float(b)} for a, b in rng.random((20, 2)) * 10]
        y = np.array([2.0 * c["a"] + 5.0 * c["b"] for c in cfgs])
        m.update([{}] * len(cfgs), cfgs, y)
        assert m.coefficients == pytest.approx([2.0, 5.0], rel=1e-6)
        assert m.n_updates == 1

    def test_nonnegativity_enforced(self, rng):
        feats = [lambda t, c: c["a"]]
        m = LinearPerformanceModel(feats)
        cfgs = [{"a": float(a)} for a in rng.random(10) + 0.1]
        y = -np.array([c["a"] for c in cfgs])  # negative target
        m.update([{}] * 10, cfgs, y)
        assert m.coefficients[0] >= 0.0

    def test_underdetermined_keeps_estimate(self):
        m = LinearPerformanceModel([lambda t, c: 1.0, lambda t, c: 2.0])
        before = m.coefficients.copy()
        m.update([{}], [{}], np.array([1.0]))  # 1 sample < 2 features
        assert np.allclose(m.coefficients, before)
        assert m.n_updates == 0


class TestModelFeaturizer:
    def test_wraps_plain_callables(self):
        f = ModelFeaturizer([lambda t, c: 1.0])
        assert f.n_features == 1
        assert f.raw({}, {}).tolist() == [1.0]

    def test_enrich_appends_columns(self, rng):
        f = ModelFeaturizer([lambda t, c: c["x"], lambda t, c: 2 * c["x"]])
        cfgs = [{"x": 0.2}, {"x": 0.8}]
        X = rng.random((2, 3))
        Xe = f.enrich({}, cfgs, X, observe=True)
        assert Xe.shape == (2, 5)
        # scaled to [0, 1] over the observed range
        assert Xe[:, 3].min() == pytest.approx(0.0)
        assert Xe[:, 3].max() == pytest.approx(1.0)

    def test_scaling_consistent_for_candidates(self, rng):
        f = ModelFeaturizer([lambda t, c: c["x"]])
        train = [{"x": 0.0}, {"x": 1.0}]
        f.enrich({}, train, rng.random((2, 1)), observe=True)
        cand = f.enrich({}, [{"x": 0.5}], rng.random((1, 1)), observe=False)
        assert cand[0, 1] == pytest.approx(0.5)

    def test_out_of_range_candidates_clipped(self, rng):
        f = ModelFeaturizer([lambda t, c: c["x"]])
        f.enrich({}, [{"x": 0.0}, {"x": 1.0}], rng.random((2, 1)), observe=True)
        cand = f.enrich({}, [{"x": 100.0}], rng.random((1, 1)), observe=False)
        assert cand[0, 1] <= 2.0

    def test_update_hyperparameters_delegates(self, rng):
        lin = LinearPerformanceModel([lambda t, c: c["a"]])
        f = ModelFeaturizer([lin])
        cfgs = [{"a": float(a)} for a in rng.random(5) + 0.5]
        y = np.array([3.0 * c["a"] for c in cfgs])
        f.update_hyperparameters([{}] * 5, cfgs, y)
        assert lin.coefficients[0] == pytest.approx(3.0, rel=1e-6)


class TestModelState:
    def test_callable_token_constant(self):
        m = CallableModel(lambda t, c: c["x"])
        assert m.state_token() == m.state_token() is not None

    def test_linear_token_tracks_coefficients_only(self):
        lin = LinearPerformanceModel([lambda t, c: c["a"]])
        t0 = lin.state_token()
        cfgs = [{"a": float(a)} for a in (0.5, 1.0, 1.5)]
        lin.update([{}] * 3, cfgs, np.array([1.0, 2.0, 3.0]))
        assert lin.state_token() != t0
        # an update converging to identical coefficients keeps the token
        lin.update([{}] * 3, cfgs, np.array([1.0, 2.0, 3.0]))
        n = lin.n_updates
        lin.update([{}] * 3, cfgs, np.array([1.0, 2.0, 3.0]))
        assert lin.n_updates == n + 1
        assert lin.state_token() == lin.state_token()

    def test_linear_state_roundtrip(self):
        lin = LinearPerformanceModel([lambda t, c: c["a"], lambda t, c: 1.0])
        cfgs = [{"a": float(a)} for a in (0.2, 0.7, 1.3, 2.0)]
        lin.update([{}] * 4, cfgs, np.array([0.5, 1.6, 2.7, 4.1]))
        st = lin.get_state()
        other = LinearPerformanceModel([lambda t, c: c["a"], lambda t, c: 1.0])
        other.set_state(st)
        np.testing.assert_array_equal(other.coefficients, lin.coefficients)
        assert other.n_updates == lin.n_updates

    def test_featurizer_state_roundtrip(self):
        lin = LinearPerformanceModel([lambda t, c: c["x"]])
        f = ModelFeaturizer([lin])
        f.enrich({}, [{"x": 0.1}, {"x": 0.9}], np.zeros((2, 1)), observe=True)
        st = f.get_state()
        g = ModelFeaturizer([LinearPerformanceModel([lambda t, c: c["x"]])])
        g.set_state(st)
        np.testing.assert_array_equal(g._lo, f._lo)
        np.testing.assert_array_equal(g._hi, f._hi)
        X = np.array([[0.5]])
        np.testing.assert_array_equal(
            g.enrich({}, [{"x": 0.5}], X, observe=False),
            f.enrich({}, [{"x": 0.5}], X, observe=False),
        )

    def test_featurizer_token_ignores_normalization_range(self):
        f = ModelFeaturizer([CallableModel(lambda t, c: c["x"])])
        t0 = f.state_token()
        f.observe(np.array([[0.3], [0.9]]))
        # raw rows don't depend on the running range, only on model state
        assert f.state_token() == t0


class TestIncrementalFeatRows:
    """The driver's `_feat_rows` cache must equal a from-scratch rebuild."""

    def _setup(self):
        from repro.core import GPTune, Integer, Options, Real, Space, TuningProblem
        from repro.core.data import TuningData

        lin = LinearPerformanceModel([lambda t, c: float(c["x"]), lambda t, c: 1.0])
        problem = TuningProblem(
            Space([Integer("t", 0, 5)]),
            Space([Real("x", 0.0, 1.0)]),
            lambda t, c: (c["x"] - 0.4) ** 2,
            models=[lin],
        )
        tuner = GPTune(problem, Options(seed=7))
        data = TuningData(
            problem.task_space, problem.tuning_space, [{"t": 1}, {"t": 3}]
        )
        featurizer = ModelFeaturizer(problem.models)
        return tuner, data, featurizer, lin

    @staticmethod
    def _scratch(data, featurizer):
        rows = [
            featurizer.raw(data.tasks[i], data.X[i][k])
            for i in range(data.n_tasks)
            for k in range(data.n_samples(i))
        ]
        return np.vstack(rows) if rows else np.empty((0, featurizer.n_features))

    def test_incremental_matches_from_scratch(self, rng):
        tuner, data, featurizer, lin = self._setup()
        for step in range(4):
            for i in range(data.n_tasks):
                for x in rng.random(3):
                    data.add(i, {"x": float(x)}, float(x))
            got = tuner._feat_rows(data, featurizer)
            np.testing.assert_array_equal(got, self._scratch(data, featurizer))
            # second call with no new data returns identical rows
            np.testing.assert_array_equal(
                tuner._feat_rows(data, featurizer), got
            )

    def test_cache_invalidated_on_model_update(self, rng):
        tuner, data, featurizer, lin = self._setup()
        for i in range(data.n_tasks):
            for x in rng.random(4):
                data.add(i, {"x": float(x)}, float(x))
        tuner._feat_rows(data, featurizer)
        cfgs = [x for xs in data.X for x in xs]
        tasks = [data.tasks[i] for i in range(data.n_tasks) for _ in data.X[i]]
        y = np.array([y[0] for ys in data.Y for y in ys])
        featurizer.update_hyperparameters(tasks, cfgs, y)
        got = tuner._feat_rows(data, featurizer)
        np.testing.assert_array_equal(got, self._scratch(data, featurizer))

    def test_cache_reset_on_new_campaign_data(self, rng):
        tuner, data, featurizer, lin = self._setup()
        for x in rng.random(3):
            data.add(0, {"x": float(x)}, float(x))
        tuner._feat_rows(data, featurizer)
        _, data2, _, _ = self._setup()
        data2.add(0, {"x": 0.5}, 0.5)
        got = tuner._feat_rows(data2, featurizer)
        np.testing.assert_array_equal(got, self._scratch(data2, featurizer))
