"""Unit tests for the history database (repro.core.history)."""

import json
import os

import pytest

from repro.core import HistoryDB


@pytest.fixture
def db(tmp_path):
    return HistoryDB(str(tmp_path / "history.json"))


REC = {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]}


class TestHistoryDB:
    def test_empty(self, db):
        assert db.problems() == []
        assert db.records("p") == []
        assert db.count("p") == 0

    def test_append_and_query(self, db):
        db.append("qr", [REC])
        assert db.problems() == ["qr"]
        assert db.count("qr") == 1
        assert db.records("qr")[0]["y"] == [1.5]

    def test_persistence_across_instances(self, db):
        db.append("qr", [REC, REC])
        reopened = HistoryDB(db.path)
        assert reopened.count("qr") == 2

    def test_records_returns_copies(self, db):
        db.append("qr", [REC])
        recs = db.records("qr")
        recs[0]["y"] = [999]
        assert db.records("qr")[0]["y"] == [1.5]

    def test_malformed_record_rejected(self, db):
        with pytest.raises(ValueError):
            db.append("qr", [{"task": {}, "x": {}}])  # no y

    def test_clear(self, db):
        db.append("qr", [REC])
        db.clear("qr")
        assert db.count("qr") == 0
        db.clear("never-existed")  # no error

    def test_atomic_write_no_tmp_left(self, db, tmp_path):
        db.append("qr", [REC])
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []

    def test_malformed_file_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            HistoryDB(str(p))

    def test_corrupted_file_error_names_path(self, tmp_path):
        p = tmp_path / "trunc.json"
        p.write_text('{"qr": [{"task": {"m": 10}, "x"')  # truncated mid-write
        with pytest.raises(ValueError, match="trunc.json"):
            HistoryDB(str(p))

    def test_corrupted_file_preserved_in_sidecar(self, tmp_path):
        p = tmp_path / "trunc.json"
        bad = '{"qr": [{"task": {"m": 10}, "x"'
        p.write_text(bad)
        with pytest.raises(ValueError, match="corrupt"):
            HistoryDB(str(p))
        backup = tmp_path / "trunc.json.corrupt"
        assert backup.exists()
        assert backup.read_text() == bad
        # the original is untouched, so nothing is silently discarded
        assert p.read_text() == bad

    def test_multiple_problems(self, db):
        db.append("a", [REC])
        db.append("b", [REC, REC])
        assert db.problems() == ["a", "b"]
        assert db.count("b") == 2
