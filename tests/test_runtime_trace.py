"""Tests for the simulated-runtime tracer (repro.runtime.trace)."""

import pytest

from repro.runtime import Machine, run_spmd
from repro.runtime.trace import TraceEvent, Tracer, traced

MACH = Machine(nodes=2, cores_per_node=4)


def _traced_job(tracer):
    def fn(comm):
        c = traced(comm, tracer)
        c.compute(1.0 * (comm.rank + 1))
        c.barrier()
        if comm.rank == 0:
            c.send("payload", dest=1)
        elif comm.rank == 1:
            c.recv(source=0)
        c.allreduce(comm.rank)

    return fn


class TestTraceEvent:
    def test_duration(self):
        e = TraceEvent(0, 1.0, 3.5, "compute")
        assert e.duration == 2.5

    def test_negative_duration_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.record(TraceEvent(0, 2.0, 1.0, "compute"))


class TestTracer:
    def test_events_collected_per_rank(self):
        tracer = Tracer()
        run_spmd(2, _traced_job(tracer), machine=MACH)
        ranks = {e.rank for e in tracer.events}
        assert ranks == {0, 1}
        kinds = {e.kind for e in tracer.events}
        assert {"compute", "collective"} <= kinds
        assert "send" in kinds and "recv" in kinds

    def test_events_sorted(self):
        tracer = Tracer()
        run_spmd(2, _traced_job(tracer), machine=MACH)
        ev = tracer.events
        for a, b in zip(ev, ev[1:]):
            assert (a.rank, a.t_start) <= (b.rank, b.t_start)

    def test_rank_summary_split(self):
        tracer = Tracer()
        run_spmd(2, _traced_job(tracer), machine=MACH)
        summary = tracer.rank_summary()
        assert summary[0]["compute"] == pytest.approx(1.0)
        assert summary[1]["compute"] == pytest.approx(2.0)
        # rank 0 waits at the barrier for the slower rank 1
        assert summary[0]["comm"] >= 1.0

    def test_critical_rank(self):
        tracer = Tracer()
        run_spmd(2, _traced_job(tracer), machine=MACH)
        assert tracer.critical_rank() in (0, 1)
        assert Tracer().critical_rank() is None

    def test_gantt_rendering(self):
        tracer = Tracer()
        run_spmd(2, _traced_job(tracer), machine=MACH)
        chart = tracer.gantt(width=40)
        lines = chart.splitlines()
        assert lines[0].startswith("rank   0 |")
        assert "#" in chart and "~" in chart
        assert Tracer().gantt() == "(no events)"

    def test_proxy_passthrough(self):
        tracer = Tracer()

        def fn(comm):
            c = traced(comm, tracer)
            return (c.Get_rank(), c.Get_size())  # untraced attribute access

        results, _ = run_spmd(2, fn, machine=MACH)
        assert results == [(0, 2), (1, 2)]
