"""Determinism regressions.

Two invariants guard the resilience subsystem:

* the executor backend is an implementation detail — ``serial``, ``thread``
  and ``process`` runs with the same seed produce identical evaluation sets
  and best configs;
* a campaign killed at iteration k and resumed from its checkpoint produces
  exactly the evaluation set of an uninterrupted run (the checkpoint captures
  the seed-tree position, so resumed runs take identical decisions).

The async streaming engine extends both to the queue (``TestAsyncDeterminism``,
``TestAsyncKillResume``): under a deterministic scheduler the campaign is a
pure function of the seed — shuffling completion order inside a drain batch
changes nothing (the engine re-sorts by submission sequence), and a campaign
killed mid-flight resumes bit-identically because the checkpoint carries the
in-flight set with each evaluation's remaining virtual duration.
"""

import os

import numpy as np
import pytest

from repro import cli
from repro.core import GPTune, Integer, Options, Real, RunCheckpoint, Space, TuningProblem
from repro.runtime.async_engine import SimScheduler
from repro.runtime.simclock import SimClock


def _objective(t, c):
    x = float(c["x"])
    return (x - 0.35) ** 2 + 0.05 * np.sin(8.0 * x) + 0.01 * float(t["t"])


TASKS = [{"t": 1}, {"t": 4}]
BUDGET = 8


def _options(**kw):
    base = dict(seed=11, n_start=2, pso_iters=6, ei_candidates=10, lbfgs_maxiter=40)
    base.update(kw)
    return Options(**base)


def _problem():
    return TuningProblem(
        Space([Integer("t", 0, 10)]), Space([Real("x", 0.0, 1.0)]), _objective
    )


def _run(**kw):
    return GPTune(_problem(), _options(**kw)).tune(TASKS, BUDGET)


def _assert_same_data(a, b):
    for i in range(len(TASKS)):
        xa = [tuple(sorted(d.items())) for d in a.data.X[i]]
        xb = [tuple(sorted(d.items())) for d in b.data.X[i]]
        assert xa == xb
        np.testing.assert_array_equal(np.asarray(a.data.Y[i]), np.asarray(b.data.Y[i]))
        cfg_a, val_a = a.best(i)
        cfg_b, val_b = b.best(i)
        assert cfg_a == cfg_b and val_a == val_b


@pytest.fixture(scope="module")
def serial_result():
    return _run(backend="serial")


class TestBackendDeterminism:
    def test_serial_is_reproducible(self, serial_result):
        _assert_same_data(serial_result, _run(backend="serial"))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial(self, serial_result, backend):
        _assert_same_data(serial_result, _run(backend=backend, n_workers=2))


class _Kill(Exception):
    pass


def _kill_at(k):
    def callback(iteration, data, models):
        if iteration == k:
            raise _Kill(f"simulated crash at iteration {k}")

    return callback


class TestKillResume:
    @pytest.mark.parametrize("k", [1, 2])
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, serial_result, k):
        path = str(tmp_path / "run.ck.json")
        tuner = GPTune(_problem(), _options(checkpoint_path=path))
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(k))
        assert os.path.exists(path)

        fresh = GPTune(_problem(), _options(checkpoint_path=path))
        resumed = fresh.resume(path)
        _assert_same_data(serial_result, resumed)
        assert len(resumed.events.of_kind("resume")) == 1

    def test_resume_completed_run_adds_nothing(self, tmp_path):
        path = str(tmp_path / "run.ck.json")
        done = GPTune(_problem(), _options(checkpoint_path=path)).tune(TASKS, BUDGET)
        resumed = GPTune(_problem(), _options()).resume(path)
        assert len(resumed.data) == len(done.data)

    def test_resume_rejects_wrong_problem(self, tmp_path):
        path = str(tmp_path / "run.ck.json")
        tuner = GPTune(_problem(), _options(checkpoint_path=path))
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(1))
        ck = RunCheckpoint.load(path)
        other = TuningProblem(
            Space([Integer("t", 0, 10)]),
            Space([Real("x", 0.0, 1.0)]),
            _objective,
            name="other-problem",
        )
        with pytest.raises(ValueError, match="checkpoint"):
            GPTune(other, _options()).resume(ck)


def _duration(task, cfg):
    """Deterministic heavy-ish virtual durations: longer for larger x/task."""
    return 1.0 + 3.0 * float(cfg["x"]) + 2.0 * float(task)


def _async_options(**kw):
    base = dict(async_eval=True, max_inflight=3)
    base.update(kw)
    return _options(**base)


def _async_run(shuffle_seed=None, **kw):
    sched = SimScheduler(_duration, clock=SimClock(), shuffle_seed=shuffle_seed)
    return GPTune(_problem(), _async_options(**kw), scheduler=sched).tune(TASKS, BUDGET)


class TestAsyncDeterminism:
    @pytest.fixture(scope="class")
    def async_result(self):
        return _async_run()

    def test_async_is_reproducible(self, async_result):
        _assert_same_data(async_result, _async_run())

    def test_completion_order_shuffle_is_invisible(self, async_result):
        """Shuffling each drain batch (a stand-in for OS completion races)
        cannot change the campaign: the engine re-sorts by sequence id."""
        _assert_same_data(async_result, _async_run(shuffle_seed=123))
        _assert_same_data(async_result, _async_run(shuffle_seed=987654321))

    def test_exact_budget_no_duplicates(self, async_result):
        for i in range(len(TASKS)):
            assert async_result.data.n_samples(i) == BUDGET
            keys = [tuple(sorted(d.items())) for d in async_result.data.X[i]]
            assert len(keys) == len(set(keys))


class TestAsyncKillResume:
    @pytest.mark.parametrize("k", [2, 4])
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, k):
        ref = _async_run()
        path = str(tmp_path / "async.ck.json")
        tuner = GPTune(
            _problem(),
            _async_options(checkpoint_path=path),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(k))
        ck = RunCheckpoint.load(path)
        assert ck.pending, "async checkpoint must carry the in-flight set"
        assert all(e["eta"] is not None for e in ck.pending)

        # the resumed campaign gets a *fresh* scheduler and clock: relative
        # completion times survive via the checkpointed etas
        fresh = GPTune(
            _problem(),
            _async_options(checkpoint_path=path),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        resumed = fresh.resume(path)
        _assert_same_data(ref, resumed)
        assert len(resumed.events.of_kind("resume")) == 1

    def test_lockstep_resume_of_pending_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "async.ck.json")
        tuner = GPTune(
            _problem(),
            _async_options(checkpoint_path=path),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(2))
        with pytest.raises(ValueError, match="in-flight"):
            GPTune(_problem(), _options()).resume(path)

    @pytest.mark.parametrize("k", [2, 4])
    def test_kill_and_resume_with_refit_interval(self, tmp_path, k):
        """Posterior-extension campaigns resume bit-identically: the
        checkpoint carries each objective's warm θ/transform and the chunk
        boundaries of every extend applied since the last full fit."""
        ref = _async_run(refit_interval=3)
        path = str(tmp_path / "async-ri.ck.json")
        tuner = GPTune(
            _problem(),
            _async_options(checkpoint_path=path, refit_interval=3),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(k))
        ck = RunCheckpoint.load(path)
        assert ck.version == 2 and ck.modeling is not None

        fresh = GPTune(
            _problem(),
            _async_options(checkpoint_path=path, refit_interval=3),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        _assert_same_data(ref, fresh.resume(path))

    def test_resume_when_problem_stops_qualifying(self, tmp_path):
        """An async-written checkpoint (pending non-empty) resumed after the
        problem stopped qualifying for streaming names the real cause, not
        the misleading lockstep in-flight error."""
        path = str(tmp_path / "async-mo.ck.json")
        tuner = GPTune(
            _mo_problem(),
            _async_options(checkpoint_path=path),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(2))
        assert RunCheckpoint.load(path).pending
        # same problem, now carrying performance models: γ > 1 + models is
        # the one shape the streaming loop does not support
        degraded = _mo_problem(models=[lambda t, c: float(c["x"])])
        with pytest.raises(ValueError, match="no longer qualifies"):
            GPTune(
                degraded,
                _async_options(),
                scheduler=SimScheduler(_duration, clock=SimClock()),
            ).resume(path)


def _mo_objective(t, c):
    x = float(c["x"])
    return [
        (x - 0.35) ** 2 + 0.05 * np.sin(8.0 * x) + 0.01 * float(t["t"]),
        (x - 0.8) ** 2 + 0.02 * float(t["t"]),
    ]


def _mo_problem(models=None):
    return TuningProblem(
        Space([Integer("t", 0, 10)]),
        Space([Real("x", 0.0, 1.0)]),
        _mo_objective,
        n_objectives=2,
        models=models,
    )


def _mo_async_run(shuffle_seed=None, **kw):
    sched = SimScheduler(_duration, clock=SimClock(), shuffle_seed=shuffle_seed)
    return GPTune(_mo_problem(), _async_options(**kw), scheduler=sched).tune(
        TASKS, BUDGET
    )


class TestAsyncMultiObjective:
    """γ > 1 campaigns stream through the per-task NSGA-II path with the
    same determinism guarantees as the single-objective EI path."""

    @pytest.fixture(scope="class")
    def mo_result(self):
        return _mo_async_run()

    def test_streams_not_falls_back(self, mo_result):
        assert len(mo_result.events.of_kind("async-start")) == 1
        assert len(mo_result.events.of_kind("async-fallback")) == 0

    def test_same_seed_is_reproducible(self, mo_result):
        _assert_same_data(mo_result, _mo_async_run())

    def test_completion_order_shuffle_is_invisible(self, mo_result):
        _assert_same_data(mo_result, _mo_async_run(shuffle_seed=123))
        _assert_same_data(mo_result, _mo_async_run(shuffle_seed=987654321))

    def test_exact_budget_no_duplicates(self, mo_result):
        for i in range(len(TASKS)):
            assert mo_result.data.n_samples(i) == BUDGET
            keys = [tuple(sorted(d.items())) for d in mo_result.data.X[i]]
            assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("k", [2, 4])
    def test_kill_and_resume_with_refit_interval(self, tmp_path, k):
        ref = _mo_async_run(refit_interval=3)
        path = str(tmp_path / "mo-async.ck.json")
        tuner = GPTune(
            _mo_problem(),
            _async_options(checkpoint_path=path, refit_interval=3),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(k))
        fresh = GPTune(
            _mo_problem(),
            _async_options(checkpoint_path=path, refit_interval=3),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        _assert_same_data(ref, fresh.resume(path))


def _model_problem():
    from repro.core.perfmodel import LinearPerformanceModel

    return TuningProblem(
        Space([Integer("t", 0, 10)]),
        Space([Real("x", 0.0, 1.0)]),
        _objective,
        models=[
            LinearPerformanceModel(
                [lambda t, c: float(c["x"]), lambda t, c: 0.1 * float(t["t"]) + 0.1]
            )
        ],
    )


def _model_async_run(shuffle_seed=None, **kw):
    sched = SimScheduler(_duration, clock=SimClock(), shuffle_seed=shuffle_seed)
    return GPTune(_model_problem(), _async_options(**kw), scheduler=sched).tune(
        TASKS, BUDGET
    )


class TestAsyncPerfModels:
    """Model-enriched campaigns stream: one persistent featurizer enriches
    training rows, candidates, and pending points, its state rides the
    checkpoint, and it is frozen during posterior-extension phases."""

    @pytest.fixture(scope="class")
    def model_result(self):
        return _model_async_run()

    def test_streams_not_falls_back(self, model_result):
        assert len(model_result.events.of_kind("async-start")) == 1
        assert len(model_result.events.of_kind("async-fallback")) == 0

    def test_same_seed_is_reproducible(self, model_result):
        _assert_same_data(model_result, _model_async_run())

    def test_completion_order_shuffle_is_invisible(self, model_result):
        _assert_same_data(model_result, _model_async_run(shuffle_seed=4321))

    @pytest.mark.parametrize("k", [2, 4])
    def test_kill_and_resume_with_refit_interval(self, tmp_path, k):
        """The hardest resume: featurizer hyperparameters + normalization
        range AND the warm posterior must both come back bit-identical."""
        ref = _model_async_run(refit_interval=3)
        path = str(tmp_path / "model-async.ck.json")
        tuner = GPTune(
            _model_problem(),
            _async_options(checkpoint_path=path, refit_interval=3),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(k))
        ck = RunCheckpoint.load(path)
        assert ck.modeling is not None and "featurizer" in ck.modeling
        fresh = GPTune(
            _model_problem(),
            _async_options(checkpoint_path=path, refit_interval=3),
            scheduler=SimScheduler(_duration, clock=SimClock()),
        )
        _assert_same_data(ref, fresh.resume(path))


class TestAsyncRefitInterval:
    def test_async_refit_secs_is_reproducible(self):
        a = _async_run(async_refit_secs=4.0)
        _assert_same_data(a, _async_run(async_refit_secs=4.0))
        _assert_same_data(a, _async_run(async_refit_secs=4.0, shuffle_seed=99))

    def test_async_refit_secs_skips_modeling_phases(self):
        eager = _async_run()
        lazy = _async_run(async_refit_secs=8.0)
        n_fits = lambda r: len(r.events.of_kind("model-fit")) + len(
            r.events.of_kind("model-extend")
        )
        assert n_fits(lazy) < n_fits(eager)
        for i in range(len(TASKS)):
            assert lazy.data.n_samples(i) == BUDGET


class TestCliResume:
    def test_tune_then_resume_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "cli.ck.json")
        argv = [
            "tune", "--app", "analytical", "--random-tasks", "1",
            "--samples", "6", "--seed", "3", "--checkpoint", path,
        ]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert "Popt" in first and os.path.exists(path)

        assert cli.main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out and "Popt" in out

    def test_resume_requires_checkpoint_flag(self):
        with pytest.raises(SystemExit):
            cli.main(["tune", "--app", "analytical", "--resume"])

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main([
                "tune", "--app", "analytical", "--resume",
                "--checkpoint", str(tmp_path / "missing.json"),
            ])
