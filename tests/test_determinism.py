"""Determinism regressions.

Two invariants guard the resilience subsystem:

* the executor backend is an implementation detail — ``serial``, ``thread``
  and ``process`` runs with the same seed produce identical evaluation sets
  and best configs;
* a campaign killed at iteration k and resumed from its checkpoint produces
  exactly the evaluation set of an uninterrupted run (the checkpoint captures
  the seed-tree position, so resumed runs take identical decisions).
"""

import os

import numpy as np
import pytest

from repro import cli
from repro.core import GPTune, Integer, Options, Real, RunCheckpoint, Space, TuningProblem


def _objective(t, c):
    x = float(c["x"])
    return (x - 0.35) ** 2 + 0.05 * np.sin(8.0 * x) + 0.01 * float(t["t"])


TASKS = [{"t": 1}, {"t": 4}]
BUDGET = 8


def _options(**kw):
    base = dict(seed=11, n_start=2, pso_iters=6, ei_candidates=10, lbfgs_maxiter=40)
    base.update(kw)
    return Options(**base)


def _problem():
    return TuningProblem(
        Space([Integer("t", 0, 10)]), Space([Real("x", 0.0, 1.0)]), _objective
    )


def _run(**kw):
    return GPTune(_problem(), _options(**kw)).tune(TASKS, BUDGET)


def _assert_same_data(a, b):
    for i in range(len(TASKS)):
        xa = [tuple(sorted(d.items())) for d in a.data.X[i]]
        xb = [tuple(sorted(d.items())) for d in b.data.X[i]]
        assert xa == xb
        np.testing.assert_array_equal(np.asarray(a.data.Y[i]), np.asarray(b.data.Y[i]))
        cfg_a, val_a = a.best(i)
        cfg_b, val_b = b.best(i)
        assert cfg_a == cfg_b and val_a == val_b


@pytest.fixture(scope="module")
def serial_result():
    return _run(backend="serial")


class TestBackendDeterminism:
    def test_serial_is_reproducible(self, serial_result):
        _assert_same_data(serial_result, _run(backend="serial"))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial(self, serial_result, backend):
        _assert_same_data(serial_result, _run(backend=backend, n_workers=2))


class _Kill(Exception):
    pass


def _kill_at(k):
    def callback(iteration, data, models):
        if iteration == k:
            raise _Kill(f"simulated crash at iteration {k}")

    return callback


class TestKillResume:
    @pytest.mark.parametrize("k", [1, 2])
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, serial_result, k):
        path = str(tmp_path / "run.ck.json")
        tuner = GPTune(_problem(), _options(checkpoint_path=path))
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(k))
        assert os.path.exists(path)

        fresh = GPTune(_problem(), _options(checkpoint_path=path))
        resumed = fresh.resume(path)
        _assert_same_data(serial_result, resumed)
        assert len(resumed.events.of_kind("resume")) == 1

    def test_resume_completed_run_adds_nothing(self, tmp_path):
        path = str(tmp_path / "run.ck.json")
        done = GPTune(_problem(), _options(checkpoint_path=path)).tune(TASKS, BUDGET)
        resumed = GPTune(_problem(), _options()).resume(path)
        assert len(resumed.data) == len(done.data)

    def test_resume_rejects_wrong_problem(self, tmp_path):
        path = str(tmp_path / "run.ck.json")
        tuner = GPTune(_problem(), _options(checkpoint_path=path))
        with pytest.raises(_Kill):
            tuner.tune(TASKS, BUDGET, callback=_kill_at(1))
        ck = RunCheckpoint.load(path)
        other = TuningProblem(
            Space([Integer("t", 0, 10)]),
            Space([Real("x", 0.0, 1.0)]),
            _objective,
            name="other-problem",
        )
        with pytest.raises(ValueError, match="checkpoint"):
            GPTune(other, _options()).resume(ck)


class TestCliResume:
    def test_tune_then_resume_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "cli.ck.json")
        argv = [
            "tune", "--app", "analytical", "--random-tasks", "1",
            "--samples", "6", "--seed", "3", "--checkpoint", path,
        ]
        assert cli.main(argv) == 0
        first = capsys.readouterr().out
        assert "Popt" in first and os.path.exists(path)

        assert cli.main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out and "Popt" in out

    def test_resume_requires_checkpoint_flag(self):
        with pytest.raises(SystemExit):
            cli.main(["tune", "--app", "analytical", "--resume"])

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main([
                "tune", "--app", "analytical", "--resume",
                "--checkpoint", str(tmp_path / "missing.json"),
            ])
