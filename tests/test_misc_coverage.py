"""Assorted coverage: W-cycles, categorical task sampling, CLI --models."""

import numpy as np
import pytest

from repro.apps.hypre.amg import build_hierarchy, poisson3d
from repro.apps.hypre.gmres import gmres
from repro.apps.superlu import SuperLUDIST
from repro.runtime import cori_haswell


class TestWCycle:
    def test_w_cycle_converges_at_most_v_iterations(self):
        A = poisson3d(8, 8, 8)
        b = np.ones(A.shape[0])
        v = gmres(A, b, M=build_hierarchy(A, cycle_type="V"), maxiter=100)
        w = gmres(A, b, M=build_hierarchy(A, cycle_type="W"), maxiter=100)
        assert w.converged and v.converged
        assert w.iterations <= v.iterations

    def test_invalid_cycle_type(self):
        with pytest.raises(ValueError):
            build_hierarchy(poisson3d(3, 3, 3), cycle_type="F")


class TestCategoricalTaskSampling:
    def test_sample_tasks_over_matrix_names(self):
        app = SuperLUDIST(
            machine=cori_haswell(1), matrices=["Si2", "SiNa", "Na5"], scale=0.02
        )
        tasks = app.sample_tasks(20, seed=0)
        names = {t["matrix"] for t in tasks}
        assert names <= {"Si2", "SiNa", "Na5"}
        assert len(names) >= 2  # sampling covers the categories


class TestCLIModels:
    def test_tune_with_models_flag(self, capsys):
        from repro.cli import main

        rc = main(
            ["tune", "--app", "pdgeqrf", "--tasks", "3000,3000", "--samples", "6",
             "--n-start", "1", "--models"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Popt" in out and "Oopt" in out


class TestApplicationRepeats:
    def test_best_of_repeats_not_worse_than_single(self):
        from repro.apps.scalapack import PDGEQRF

        one = PDGEQRF(machine=cori_haswell(1), repeats=1, seed=0, mn_max=8000)
        three = PDGEQRF(machine=cori_haswell(1), repeats=3, seed=0, mn_max=8000)
        t = {"m": 4000, "n": 4000}
        cfg = {"b": 64, "p": 16, "p_r": 4}
        # best-of-3 includes the single draw among its candidates
        assert three.objective(t, cfg) <= one.objective(t, cfg)

    def test_evaluation_counter(self):
        from repro.apps.synthetic import SphereApp

        app = SphereApp(dim=1)
        before = app.n_evaluations
        app.objective({"t": 1}, {"x0": 0.5})
        app.objective({"t": 1}, {"x0": 0.6})
        assert app.n_evaluations == before + 2
