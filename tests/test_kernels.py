"""Unit tests for kernels (repro.core.kernels)."""

import numpy as np
import pytest

from repro.core.kernels import gaussian_kernel, gaussian_kernel_with_grad, pairwise_sq_diffs


class TestPairwiseSqDiffs:
    def test_shape_and_values(self):
        X1 = np.array([[0.0, 0.0], [1.0, 2.0]])
        X2 = np.array([[1.0, 1.0]])
        D = pairwise_sq_diffs(X1, X2)
        assert D.shape == (2, 1, 2)
        assert D[0, 0].tolist() == [1.0, 1.0]
        assert D[1, 0].tolist() == [0.0, 1.0]

    def test_self_diagonal_zero(self, rng):
        X = rng.random((5, 3))
        D = pairwise_sq_diffs(X)
        assert np.allclose(D[np.arange(5), np.arange(5)], 0.0)


class TestGaussianKernel:
    def test_unit_diagonal(self, rng):
        X = rng.random((6, 2))
        K = gaussian_kernel(pairwise_sq_diffs(X), np.array([0.5, 0.5]))
        assert np.allclose(np.diag(K), 1.0)
        assert np.all((K > 0) & (K <= 1))

    def test_symmetry(self, rng):
        X = rng.random((6, 2))
        K = gaussian_kernel(pairwise_sq_diffs(X), np.array([0.3, 0.7]))
        assert np.allclose(K, K.T)

    def test_positive_definite(self, rng):
        X = rng.random((10, 3))
        K = gaussian_kernel(pairwise_sq_diffs(X), np.full(3, 0.4))
        w = np.linalg.eigvalsh(K + 1e-10 * np.eye(10))
        assert w.min() > 0

    def test_lengthscale_effect(self):
        """Shorter lengthscales decay correlations faster."""
        X = np.array([[0.0], [0.5]])
        D = pairwise_sq_diffs(X)
        near = gaussian_kernel(D, np.array([1.0]))[0, 1]
        far = gaussian_kernel(D, np.array([0.1]))[0, 1]
        assert far < near

    def test_exact_value(self):
        X = np.array([[0.0], [1.0]])
        K = gaussian_kernel(pairwise_sq_diffs(X), np.array([1.0]))
        assert K[0, 1] == pytest.approx(np.exp(-0.5))

    def test_variance_scaling(self):
        X = np.array([[0.0], [1.0]])
        K = gaussian_kernel(pairwise_sq_diffs(X), np.array([1.0]), variance=4.0)
        assert K[0, 0] == pytest.approx(4.0)

    def test_nonpositive_lengthscale_raises(self):
        X = np.array([[0.0], [1.0]])
        with pytest.raises(ValueError):
            gaussian_kernel(pairwise_sq_diffs(X), np.array([0.0]))


class TestKernelGradient:
    def test_gradient_matches_finite_differences(self, rng):
        X = rng.random((5, 3))
        sqd = pairwise_sq_diffs(X)
        ls = np.array([0.3, 0.7, 1.2])
        K, dK = gaussian_kernel_with_grad(sqd, ls)
        assert dK.shape == (3, 5, 5)
        eps = 1e-6
        for j in range(3):
            lp, lm = ls.copy(), ls.copy()
            lp[j] *= np.exp(eps)
            lm[j] *= np.exp(-eps)
            num = (gaussian_kernel(sqd, lp) - gaussian_kernel(sqd, lm)) / (2 * eps)
            assert np.allclose(dK[j], num, atol=1e-6)

    def test_gradient_zero_on_diagonal(self, rng):
        X = rng.random((4, 2))
        _, dK = gaussian_kernel_with_grad(pairwise_sq_diffs(X), np.array([0.5, 0.5]))
        for j in range(2):
            assert np.allclose(np.diag(dK[j]), 0.0)
