"""Failure-injection tests for the resilience subsystem.

Covers the matrix (exception / NaN / timeout / worker death) ×
(retry succeeds / retries exhausted → penalty), backoff-schedule determinism
under a fixed seed, checkpoint persistence, and the model degradation ladder
(LCM → per-task GP → random search).
"""

import dataclasses
import os
import signal
import time

import numpy as np
import pytest
from scipy import linalg as sla

from repro.apps.analytical import analytical_function
from repro.core import (
    GPTune,
    IndependentGPs,
    Integer,
    Options,
    Real,
    RetryPolicy,
    RunCheckpoint,
    Space,
    TuningProblem,
)
from repro.runtime.resilience import (
    EvalTimeoutError,
    FatalEvaluationError,
    atomic_write_json,
    run_with_retries,
)

FAST = Options(seed=0, n_start=1, pso_iters=6, ei_candidates=10, lbfgs_maxiter=40)


def _spaces():
    return Space([Integer("t", 0, 10)]), Space([Real("x", 0.0, 1.0)])


class _FlakyObjective:
    """Fails the first ``fail_times`` calls per distinct config, then works."""

    def __init__(self, kind, fail_times=1):
        self.kind = kind
        self.fail_times = fail_times
        self.calls = {}

    def __call__(self, t, c):
        key = round(float(c["x"]), 9)
        n = self.calls.get(key, 0)
        self.calls[key] = n + 1
        if n < self.fail_times:
            if self.kind == "exception":
                raise RuntimeError("application crashed")
            if self.kind == "nan":
                return float("nan")
            if self.kind == "timeout":
                time.sleep(0.3)
        return (float(c["x"]) - 0.4) ** 2


class _WorkerKiller:
    """Kills the first worker process that evaluates it (never the parent)."""

    def __init__(self, marker, parent_pid):
        self.marker = marker
        self.parent_pid = parent_pid

    def __call__(self, t, c):
        if os.getpid() != self.parent_pid and not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return (float(c["x"]) - 0.4) ** 2


class TestRetryPolicy:
    def test_exponential_schedule(self):
        p = RetryPolicy(max_attempts=4, backoff=0.1, backoff_factor=2.0)
        assert p.schedule(3) == pytest.approx([0.1, 0.2, 0.4])

    def test_no_backoff_by_default(self):
        assert RetryPolicy(max_attempts=3).schedule(2) == [0.0, 0.0]

    def test_jitter_deterministic_under_fixed_seed(self):
        a = RetryPolicy(max_attempts=3, backoff=0.1, jitter=0.5, seed=42)
        b = RetryPolicy(max_attempts=3, backoff=0.1, jitter=0.5, seed=42)
        c = RetryPolicy(max_attempts=3, backoff=0.1, jitter=0.5, seed=43)
        assert a.schedule(5) == b.schedule(5)
        assert a.schedule(5) != c.schedule(5)

    def test_jitter_bounds(self):
        p = RetryPolicy(max_attempts=2, backoff=0.2, backoff_factor=1.0, jitter=0.5, seed=1)
        for attempt, d in enumerate(p.schedule(4), start=1):
            assert 0.2 <= d <= 0.2 * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestRunWithRetries:
    def test_success_first_try(self):
        out = run_with_retries(lambda: [1.0])
        assert not out.failed
        assert out.attempts == 1
        assert out.events == []

    def test_flaky_call_recovers(self):
        state = {"n": 0}

        def call():
            state["n"] += 1
            if state["n"] < 3:
                raise OSError("flaky")
            return [2.5]

        slept = []
        policy = RetryPolicy(max_attempts=3, backoff=0.01)
        out = run_with_retries(call, policy, sleep=slept.append)
        assert not out.failed and out.attempts == 3
        assert out.value[0] == 2.5
        assert [k for k, _ in out.events] == ["exception", "retry", "exception", "retry"]
        assert slept == pytest.approx(policy.schedule(2))

    def test_exhausted_keeps_last_error(self):
        def call():
            raise RuntimeError("persistent")

        out = run_with_retries(call, RetryPolicy(max_attempts=2))
        assert out.failed and out.failure_kind == "exception"
        assert isinstance(out.error, RuntimeError)
        assert out.value is None
        assert [k for k, _ in out.events] == [
            "exception", "retry", "exception", "eval-failure",
        ]
        # each per-attempt record names what that attempt raised
        assert all(
            "RuntimeError: persistent" in d for k, d in out.events if k == "exception"
        )

    def test_nonfinite_is_retryable(self):
        state = {"n": 0}

        def call():
            state["n"] += 1
            return [float("inf")] if state["n"] == 1 else [1.0]

        out = run_with_retries(call, RetryPolicy(max_attempts=2))
        assert not out.failed and out.attempts == 2

    def test_timeout_kind(self):
        out = run_with_retries(
            lambda: time.sleep(0.5) or [1.0], RetryPolicy(max_attempts=1, timeout=0.05)
        )
        assert out.failed and out.failure_kind == "timeout"

    def test_timeout_event_sequence_pinned(self):
        out = run_with_retries(
            lambda: time.sleep(0.2) or [1.0], RetryPolicy(max_attempts=2, timeout=0.02)
        )
        assert out.failed and out.failure_kind == "timeout"
        assert [k for k, _ in out.events] == [
            "timeout", "retry", "timeout", "eval-failure",
        ]

    def test_nonfinite_event_sequence_pinned(self):
        out = run_with_retries(lambda: [float("nan")], RetryPolicy(max_attempts=2))
        assert out.failed and out.failure_kind == "nonfinite"
        assert [k for k, _ in out.events] == [
            "nonfinite", "retry", "nonfinite", "eval-failure",
        ]


class TestEvalWorkerPool:
    """The shared timed-evaluation worker pool (the zombie-thread fix)."""

    def test_timed_out_workers_are_reused_not_leaked(self):
        """50 simulated timeouts must not grow the worker population.

        Each objective outlives its timeout but *does* finish; the abandoned
        worker must then rejoin the pool and serve the next evaluation.  The
        old fresh-executor-per-evaluation design spawned one thread per
        timeout here.
        """
        import threading

        from repro.runtime.resilience import _EVAL_POOL

        created_before = _EVAL_POOL.created
        policy = RetryPolicy(max_attempts=1, timeout=0.002)
        for _ in range(50):
            out = run_with_retries(lambda: time.sleep(0.02) or [1.0], policy)
            assert out.failed and out.failure_kind == "timeout"
            time.sleep(0.025)  # let the abandoned objective finish + worker park
        # a couple of workers at most — not one per timeout
        assert _EVAL_POOL.created - created_before <= 3
        live = [
            t for t in threading.enumerate()
            if t.name.startswith("repro-eval-worker")
        ]
        assert len(live) <= _EVAL_POOL.max_idle + 1
        assert all(t.daemon for t in live)

    def test_worker_result_after_timeout_is_discarded(self):
        calls = []

        def obj():
            calls.append(1)
            time.sleep(0.03)
            return [7.0]

        out = run_with_retries(obj, RetryPolicy(max_attempts=1, timeout=0.005))
        assert out.failed and out.value is None
        time.sleep(0.05)  # the background completion must not resurface
        assert out.value is None and len(calls) == 1

    def test_objective_raising_timeouterror_propagates_as_is(self):
        def obj():
            raise TimeoutError("from inside the objective")

        out = run_with_retries(obj, RetryPolicy(max_attempts=1, timeout=5.0))
        # classified as the objective's own failure, not an eval timeout
        assert out.failed
        assert "from inside the objective" in out.message

    def test_fatal_error_never_retried(self):
        state = {"n": 0}

        def call():
            state["n"] += 1
            raise FatalEvaluationError("wrong shape")

        with pytest.raises(FatalEvaluationError):
            run_with_retries(call, RetryPolicy(max_attempts=5))
        assert state["n"] == 1


class TestFailureMatrix:
    """(exception / NaN / timeout) × (retry succeeds / retries exhausted)."""

    KINDS = [("exception", "exception"), ("nan", "nonfinite"), ("timeout", "timeout")]

    @pytest.mark.parametrize("kind,expected", KINDS)
    def test_retry_succeeds(self, kind, expected):
        ts, ps = _spaces()
        obj = _FlakyObjective(kind, fail_times=1)
        prob = TuningProblem(ts, ps, obj, failure_value=100.0)
        policy = RetryPolicy(max_attempts=2, timeout=0.05 if kind == "timeout" else None)
        out = prob.evaluate_outcome({"t": 1}, {"x": 0.5}, retry=policy)
        assert not out.failed
        assert out.attempts == 2
        assert out.value[0] == pytest.approx((0.5 - 0.4) ** 2)
        assert prob.n_failures == 0
        assert any(k == "retry" for k, _ in out.events)

    @pytest.mark.parametrize("kind,expected", KINDS)
    def test_retries_exhausted_becomes_penalty(self, kind, expected):
        ts, ps = _spaces()
        obj = _FlakyObjective(kind, fail_times=10)
        prob = TuningProblem(ts, ps, obj, failure_value=100.0)
        policy = RetryPolicy(max_attempts=2, timeout=0.05 if kind == "timeout" else None)
        out = prob.evaluate_outcome({"t": 1}, {"x": 0.5}, retry=policy)
        assert out.failed and out.failure_kind == expected
        assert out.value[0] == 100.0
        assert prob.n_failures == 1
        assert any(k == "eval-failure" for k, _ in out.events)

    def test_exhausted_without_failure_value_reraises(self):
        ts, ps = _spaces()
        prob = TuningProblem(ts, ps, _FlakyObjective("exception", fail_times=10))
        with pytest.raises(RuntimeError, match="application crashed"):
            prob.evaluate_outcome({"t": 1}, {"x": 0.5}, retry=RetryPolicy(max_attempts=2))

    def test_timeout_without_failure_value_raises_timeout(self):
        ts, ps = _spaces()
        prob = TuningProblem(ts, ps, _FlakyObjective("timeout", fail_times=10))
        with pytest.raises(EvalTimeoutError):
            prob.evaluate_outcome(
                {"t": 1}, {"x": 0.5}, retry=RetryPolicy(max_attempts=1, timeout=0.05)
            )

    def test_worker_death_during_tuning(self, tmp_path):
        """A killed evaluation worker is replaced and the campaign finishes."""
        ts, ps = _spaces()
        obj = _WorkerKiller(str(tmp_path / "died"), os.getpid())
        prob = TuningProblem(ts, ps, obj, failure_value=100.0)
        opts = FAST.replace(
            backend="process", n_workers=2, batch_evals=2, model_restarts_parallel=False
        )
        res = GPTune(prob, opts).tune([{"t": 1}], 8)
        assert res.data.n_samples(0) >= 8
        assert len(res.events.of_kind("worker-death")) >= 1


class TestTunerRetryIntegration:
    def test_retries_counted_in_stats_and_trace(self):
        ts, ps = _spaces()
        obj = _FlakyObjective("exception", fail_times=1)
        prob = TuningProblem(ts, ps, obj, failure_value=100.0)
        res = GPTune(prob, FAST.replace(retry_attempts=2)).tune([{"t": 1}], 8)
        assert res.data.n_samples(0) >= 8
        n_injected = sum(1 for v in obj.calls.values() if v > 1)
        assert res.stats["n_retries"] == n_injected
        assert len(res.events.of_kind("retry")) == n_injected
        # every transient failure recovered: no penalties in the data
        assert all(y[0] < 100.0 for y in res.data.Y[0])
        assert res.stats["n_eval_failures"] == 0


class _Transient30:
    """Deterministic transient failures on ~30% of first-time evaluations."""

    def __init__(self, rate=0.3):
        self.rate = rate
        self.seen = set()
        self.injected = 0

    def __call__(self, t, c):
        key = (round(float(t["t"]), 9), round(float(c["x"]), 9))
        first = key not in self.seen
        self.seen.add(key)
        u = np.random.default_rng(abs(hash(key)) % 2**32).random()
        if first and u < self.rate:
            self.injected += 1
            raise RuntimeError("transient crash")
        return float(analytical_function(t["t"], c["x"]))


class TestAcceptance:
    def test_30pct_failure_rate_with_2_attempt_retry_completes_budget(self):
        """Acceptance criterion: 30% injected failures, 2 attempts, full budget,
        and the trace records every retry."""
        ts = Space([Real("t", 0.0, 10.0)])
        ps = Space([Real("x", 0.0, 1.0)])
        obj = _Transient30(rate=0.3)
        prob = TuningProblem(ts, ps, obj, failure_value=1e3)
        opts = FAST.replace(seed=5, retry_attempts=2)
        res = GPTune(prob, opts).tune([{"t": 1.0}, {"t": 4.0}], 12)
        for i in range(2):
            assert res.data.n_samples(i) >= 12
        assert obj.injected > 0, "failure injection never triggered"
        assert len(res.events.of_kind("retry")) == obj.injected
        assert res.stats["n_retries"] == obj.injected
        # transient failures all recovered on the second attempt
        assert res.stats["n_eval_failures"] == 0
        assert all(y[0] < 1e3 for ys in res.data.Y for y in ys)


class TestCheckpointPersistence:
    def _checkpoint(self):
        return RunCheckpoint(
            problem="p",
            entropy=123,
            spawn_count=4,
            n_samples=10,
            tasks=[{"t": 1}],
            frozen=[],
            iteration=2,
            stats={"objective_time": 1.0},
            X=[[{"x": 0.5}]],
            Y=[[[0.25]]],
        )

    def test_roundtrip(self, tmp_path):
        p = str(tmp_path / "ck.json")
        ck = self._checkpoint()
        ck.save(p)
        loaded = RunCheckpoint.load(p)
        assert loaded == ck

    def test_version_derived_from_modeling(self):
        assert self._checkpoint().version == 1
        ck = self._checkpoint()
        ck.modeling = {"fit_iter": 1, "warm": {}}
        # version is set at construction time; save() serializes the field
        ck2 = RunCheckpoint(**{
            f.name: getattr(ck, f.name)
            for f in dataclasses.fields(RunCheckpoint)
            if f.name != "version"
        })
        assert ck2.version == 2

    def test_modeling_roundtrip_is_version_2(self, tmp_path):
        p = str(tmp_path / "ck.json")
        ck = self._checkpoint()
        ck.modeling = {
            "fit_iter": 5,
            "warm": {
                "0": {
                    "theta": [0.1, -0.2, 1.5],
                    "transform": {"kind": "log", "mean": 0.3, "std": 1.1},
                    "chunks": [[4], [6]],
                }
            },
            "featurizer": {"lo": [0.0], "hi": [2.0], "models": [None]},
        }
        ck.version = 2
        ck.save(p)
        loaded = RunCheckpoint.load(p)
        assert loaded.version == 2
        assert loaded.modeling == ck.modeling

    def test_version_1_file_without_modeling_still_loads(self, tmp_path):
        # a checkpoint written before the modeling field existed
        p = str(tmp_path / "ck.json")
        self._checkpoint().save(p)
        import json

        raw = json.load(open(p))
        assert raw["version"] == 1 and "modeling" not in raw
        loaded = RunCheckpoint.load(p)
        assert loaded.modeling is None and loaded.version == 1

    def test_unsupported_version_rejected(self, tmp_path):
        p = str(tmp_path / "ck.json")
        self._checkpoint().save(p)
        import json

        raw = json.load(open(p))
        raw["version"] = 99
        (tmp_path / "ck.json").write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="version 99"):
            RunCheckpoint.load(p)

    def test_no_tmp_leftovers(self, tmp_path):
        p = str(tmp_path / "ck.json")
        self._checkpoint().save(p)
        assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []

    def test_corrupted_checkpoint_names_path(self, tmp_path):
        p = tmp_path / "ck.json"
        p.write_text('{"problem": "p", "entr')
        with pytest.raises(ValueError, match="ck.json"):
            RunCheckpoint.load(str(p))

    def test_missing_fields_rejected(self, tmp_path):
        p = tmp_path / "ck.json"
        p.write_text('{"problem": "p"}')
        with pytest.raises(ValueError, match="missing fields"):
            RunCheckpoint.load(str(p))

    def test_atomic_write_json_handles_numpy(self, tmp_path):
        p = str(tmp_path / "o.json")
        atomic_write_json(p, {"a": np.int64(3), "b": np.array([1.0, 2.0])})
        import json

        assert json.load(open(p)) == {"a": 3, "b": [1.0, 2.0]}


class TestDegradationLadder:
    def _problem(self):
        ts, ps = _spaces()
        return TuningProblem(ts, ps, lambda t, c: (c["x"] - 0.4) ** 2 + 0.01 * t["t"])

    def test_lcm_failure_falls_back_to_per_task_gps(self, monkeypatch):
        def boom(self, *a, **k):
            raise sla.LinAlgError("cholesky breakdown")

        monkeypatch.setattr("repro.core.lcm.LCM.fit", boom)
        res = GPTune(self._problem(), FAST).tune([{"t": 1}, {"t": 3}], 6)
        assert res.data.n_samples(0) >= 6 and res.data.n_samples(1) >= 6
        assert isinstance(res.models[0], IndependentGPs)
        downgrades = res.events.of_kind("model-downgrade")
        assert downgrades and "per-task gp" in downgrades[0].detail

    def test_double_failure_falls_back_to_random_search(self, monkeypatch):
        def boom(self, *a, **k):
            raise sla.LinAlgError("cholesky breakdown")

        monkeypatch.setattr("repro.core.lcm.LCM.fit", boom)
        monkeypatch.setattr("repro.core.gp.GaussianProcess.fit", boom)
        res = GPTune(self._problem(), FAST).tune([{"t": 1}], 6)
        assert res.data.n_samples(0) >= 6
        assert res.models[0] is None
        details = [e.detail for e in res.events.of_kind("model-downgrade")]
        assert any("per-task gp" in d for d in details)
        assert any("random search" in d for d in details)

    def test_fallback_disabled_propagates(self, monkeypatch):
        def boom(self, *a, **k):
            raise sla.LinAlgError("cholesky breakdown")

        monkeypatch.setattr("repro.core.lcm.LCM.fit", boom)
        with pytest.raises(sla.LinAlgError):
            GPTune(self._problem(), FAST.replace(model_fallback=False)).tune([{"t": 1}], 6)

    def test_multiobjective_degradation_random_search(self, monkeypatch):
        def boom(self, *a, **k):
            raise sla.LinAlgError("cholesky breakdown")

        monkeypatch.setattr("repro.core.lcm.LCM.fit", boom)
        monkeypatch.setattr("repro.core.gp.GaussianProcess.fit", boom)
        ts, ps = _spaces()
        prob = TuningProblem(
            ts, ps, lambda t, c: [c["x"], (c["x"] - 1.0) ** 2], n_objectives=2
        )
        res = GPTune(prob, FAST).tune([{"t": 1}], 6)
        assert res.data.n_samples(0) >= 6
