"""Tests for the 2-D block-cyclic distribution (repro.apps.scalapack.blockcyclic)."""

import numpy as np
import pytest

from repro.apps.scalapack.blockcyclic import (
    factorization_imbalance,
    global_index,
    local_index,
    local_loads,
    numroc,
    owner,
)


class TestNumroc:
    def test_totals_conserved(self):
        """Sum of local extents equals the global dimension."""
        for n in (1, 7, 64, 1000):
            for nb in (1, 3, 32):
                for p in (1, 2, 5):
                    assert sum(numroc(n, nb, i, p) for i in range(p)) == n

    def test_single_process_owns_all(self):
        assert numroc(100, 8, 0, 1) == 100

    def test_even_distribution(self):
        # 8 blocks of 4 over 2 procs: 4 blocks each
        assert numroc(32, 4, 0, 2) == 16
        assert numroc(32, 4, 1, 2) == 16

    def test_remainder_block(self):
        # 10 elements, blocks of 4, 2 procs: blocks [4,4,2] -> p0 gets 4+2, p1 gets 4
        assert numroc(10, 4, 0, 2) == 6
        assert numroc(10, 4, 1, 2) == 4

    def test_isrcproc_shift(self):
        a = [numroc(10, 4, i, 2, isrcproc=0) for i in range(2)]
        b = [numroc(10, 4, i, 2, isrcproc=1) for i in range(2)]
        assert sorted(a) == sorted(b) and a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            numroc(10, 0, 0, 2)
        with pytest.raises(ValueError):
            numroc(10, 4, 5, 2)


class TestIndexMaps:
    @pytest.mark.parametrize("nb,p", [(1, 3), (4, 2), (7, 5)])
    def test_roundtrip_all_indices(self, nb, p):
        n = 53
        for g in range(n):
            pr = owner(g, nb, p)
            loc = local_index(g, nb, p)
            assert global_index(loc, nb, pr, p) == g

    def test_local_indices_contiguous_per_owner(self):
        nb, p, n = 4, 3, 40
        per_owner = {}
        for g in range(n):
            per_owner.setdefault(owner(g, nb, p), []).append(local_index(g, nb, p))
        for i, locs in per_owner.items():
            assert sorted(locs) == list(range(numroc(n, nb, i, p)))

    def test_owner_cycles(self):
        # blocks of 2 over 3 procs: indices 0,1->p0; 2,3->p1; 4,5->p2; 6,7->p0
        assert [owner(g, 2, 3) for g in range(8)] == [0, 0, 1, 1, 2, 2, 0, 0]


class TestLoads:
    def test_total_elements(self):
        L = local_loads(100, 80, 8, 8, 3, 2)
        assert L.shape == (3, 2)
        assert L.sum() == 100 * 80

    def test_uniform_when_commensurate(self):
        L = local_loads(64, 64, 8, 8, 2, 2)
        assert np.all(L == L[0, 0])


class TestImbalance:
    def test_at_least_one(self):
        for args in [(4000, 4000, 64, 4, 4), (1000, 500, 32, 8, 2), (300, 300, 128, 2, 2)]:
            assert factorization_imbalance(*args) >= 1.0 - 1e-12

    def test_perfect_when_single_process(self):
        assert factorization_imbalance(2048, 2048, 64, 1, 1) == pytest.approx(1.0)

    def test_oversized_blocks_hurt(self):
        good = factorization_imbalance(4096, 4096, 32, 4, 4)
        bad = factorization_imbalance(4096, 4096, 1024, 4, 4)
        assert bad > good

    def test_elongated_grid_hurts_square_matrix(self):
        square = factorization_imbalance(4096, 4096, 64, 4, 4)
        skinny = factorization_imbalance(4096, 4096, 64, 16, 1)
        assert skinny > square

    def test_validation(self):
        with pytest.raises(ValueError):
            factorization_imbalance(0, 10, 4, 2, 2)
