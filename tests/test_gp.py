"""Unit tests for the single-task GP (repro.core.gp)."""

import numpy as np
import pytest

from repro.core import GaussianProcess
from repro.core.kernels import pairwise_sq_diffs


class TestFit:
    def test_interpolates_smooth_function(self, rng):
        X = np.linspace(0, 1, 12)[:, None]
        y = np.sin(4 * X[:, 0])
        gp = GaussianProcess(seed=0, n_start=2).fit(X, y)
        mu, var = gp.predict(X)
        assert np.max(np.abs(mu - y)) < 0.05
        assert np.all(var >= 0)

    def test_prediction_between_points(self, rng):
        X = np.linspace(0, 1, 15)[:, None]
        y = np.sin(4 * X[:, 0])
        gp = GaussianProcess(seed=0, n_start=2).fit(X, y)
        Xq = np.array([[0.33], [0.66]])
        mu, _ = gp.predict(Xq)
        assert np.allclose(mu, np.sin(4 * Xq[:, 0]), atol=0.1)

    def test_variance_grows_away_from_data(self):
        X = np.array([[0.4], [0.5], [0.6]])
        y = np.array([0.0, 0.1, 0.0])
        gp = GaussianProcess(seed=0, n_start=2).fit(X, y)
        _, var_near = gp.predict(np.array([[0.5]]))
        _, var_far = gp.predict(np.array([[0.0]]))
        assert var_far[0] > var_near[0]

    def test_shape_validation(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_lengthscales_property(self, rng):
        X = rng.random((10, 2))
        y = X[:, 0]
        gp = GaussianProcess(seed=0, n_start=1).fit(X, y)
        assert gp.lengthscales.shape == (2,)
        with pytest.raises(RuntimeError):
            GaussianProcess().lengthscales

    def test_ard_discovers_irrelevant_dimension(self, rng):
        """The lengthscale of a dimension y ignores should grow large."""
        X = rng.random((30, 2))
        y = np.sin(5 * X[:, 0])  # dimension 1 is irrelevant
        gp = GaussianProcess(seed=0, n_start=3).fit(X, y)
        ls = gp.lengthscales
        assert ls[1] > ls[0]


class TestGradients:
    def test_nll_gradient_matches_fd(self, rng):
        X = rng.random((8, 2))
        y = np.sin(3 * X[:, 0]) + 0.1 * rng.normal(size=8)
        gp = GaussianProcess(seed=1)
        sqd = pairwise_sq_diffs(X)
        theta = np.array([0.1, np.log(0.4), np.log(0.8), np.log(1e-3)])
        _, g = gp._nll_and_grad(theta, sqd, y)
        eps = 1e-6
        for k in range(theta.shape[0]):
            tp, tm = theta.copy(), theta.copy()
            tp[k] += eps
            tm[k] -= eps
            fp, _ = gp._nll_and_grad(tp, sqd, y)
            fm, _ = gp._nll_and_grad(tm, sqd, y)
            assert g[k] == pytest.approx((fp - fm) / (2 * eps), rel=1e-4, abs=1e-6)

    def test_loglikelihood_improves_with_restarts(self, rng):
        X = rng.random((12, 1))
        y = np.sin(6 * X[:, 0])
        ll1 = GaussianProcess(seed=3, n_start=1).fit(X, y).log_likelihood_
        ll5 = GaussianProcess(seed=3, n_start=5).fit(X, y).log_likelihood_
        assert ll5 >= ll1 - 1e-6
