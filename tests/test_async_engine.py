"""Straggler/fault battery for the asynchronous evaluation engine.

Three layers are exercised:

* engine invariants — the bounded in-flight cap is enforced, drain batches
  are published in submission-sequence order regardless of scheduler-side
  completion races, and the checkpoint snapshot reflects the in-flight set;
* scheduler faults — an evaluation that dies mid-flight becomes a penalty
  (``failure_value``) without stalling the queue, the retry ladder composes
  with the queue unchanged, and a killed process-pool worker triggers a
  rebuild + resubmission;
* streaming behaviour — a 50×-median straggler holds exactly one slot while
  every other task keeps completing, so the campaign makespan tracks the
  straggler, not the sum of all evaluations.
"""

import os

import numpy as np
import pytest

from repro.core import GPTune, Integer, Options, Real, Space, TuningProblem
from repro.runtime.async_engine import (
    AsyncEvalEngine,
    CompletedEval,
    ProcessScheduler,
    SerialScheduler,
    SimScheduler,
    ThreadScheduler,
    make_scheduler,
)
from repro.runtime.executor import WorkerError
from repro.runtime.simclock import SimClock

TASKS = [{"t": 1}, {"t": 4}]


def _objective(t, c):
    x = float(c["x"])
    return (x - 0.35) ** 2 + 0.05 * np.sin(8.0 * x) + 0.01 * float(t["t"])


def _problem(**kw):
    return TuningProblem(
        Space([Integer("t", 0, 10)]), Space([Real("x", 0.0, 1.0)]), _objective, **kw
    )


def _options(**kw):
    base = dict(
        seed=11,
        n_start=2,
        pso_iters=6,
        ei_candidates=10,
        lbfgs_maxiter=40,
        async_eval=True,
        max_inflight=3,
    )
    base.update(kw)
    return Options(**base)


def _assert_no_duplicates(res):
    """No config is ever evaluated twice for the same task."""
    for i in range(len(res.data.X)):
        keys = [tuple(sorted(d.items())) for d in res.data.X[i]]
        assert len(keys) == len(set(keys)), f"task {i} evaluated a config twice"


def _echo(payload):
    return payload


# -- engine invariants --------------------------------------------------------


class TestEngineInvariants:
    def test_submit_past_cap_raises(self):
        eng = AsyncEvalEngine(_echo, SerialScheduler(), max_inflight=2)
        eng.submit(0, {"x": 0.1})
        eng.submit(0, {"x": 0.2})
        assert not eng.can_submit
        with pytest.raises(RuntimeError, match="max_inflight"):
            eng.submit(0, {"x": 0.3})

    def test_max_inflight_validation(self):
        with pytest.raises(ValueError):
            AsyncEvalEngine(_echo, SerialScheduler(), max_inflight=0)

    def test_drain_publishes_in_sequence_order(self):
        # equal durations + seeded shuffle: the scheduler hands the batch
        # back in adversarial order, the engine must re-sort by seq
        sched = SimScheduler(lambda task, cfg: 1.0, shuffle_seed=7)
        eng = AsyncEvalEngine(_echo, sched, max_inflight=5)
        for k in range(5):
            eng.submit(0, {"x": k / 10.0})
        batch, _ = eng.drain()
        assert [ce.seq for ce in batch] == [0, 1, 2, 3, 4]
        assert all(isinstance(ce, CompletedEval) for ce in batch)
        assert [ce.config["x"] for ce in batch] == [0.0, 0.1, 0.2, 0.3, 0.4]

    def test_drain_with_nothing_inflight_is_empty(self):
        eng = AsyncEvalEngine(_echo, SerialScheduler(), max_inflight=2)
        assert eng.drain() == ([], 0.0)

    def test_counters_and_peak(self):
        sched = SimScheduler(lambda task, cfg: float(cfg["d"]))
        eng = AsyncEvalEngine(_echo, sched, max_inflight=3)
        eng.submit(0, {"d": 1.0})
        eng.submit(1, {"d": 2.0})
        eng.submit(0, {"d": 3.0})
        assert eng.peak_inflight == 3 and eng.submitted == 3
        batch, _ = eng.drain()  # only the d=1 evaluation lands
        assert len(batch) == 1 and eng.completed == 1 and eng.inflight == 2
        assert sorted(eng.inflight_tasks()) == [0, 1]

    def test_pending_snapshot_tracks_remaining_eta(self):
        sched = SimScheduler(lambda task, cfg: float(cfg["d"]))
        eng = AsyncEvalEngine(_echo, sched, max_inflight=3)
        eng.submit(0, {"d": 1.0})
        eng.submit(1, {"d": 5.0})
        eng.drain()  # advances virtual time to t=1
        snap = eng.pending_snapshot()
        assert len(snap) == 1
        seq, task, cfg, eta = snap[0]
        assert task == 1 and cfg == {"d": 5.0} and eta == pytest.approx(4.0)

    def test_resubmitted_eta_overrides_duration(self):
        # resume path: a checkpointed eta must win over duration(task, cfg)
        sched = SimScheduler(lambda task, cfg: 100.0)
        eng = AsyncEvalEngine(_echo, sched, max_inflight=2)
        eng.submit(0, {"x": 0.5}, eta=2.0)
        assert sched.remaining(0) == pytest.approx(2.0)


class TestSchedulers:
    def test_make_scheduler_types(self):
        assert isinstance(make_scheduler("serial"), SerialScheduler)
        assert isinstance(make_scheduler("thread", 2), ThreadScheduler)
        assert isinstance(make_scheduler("process", 2), ProcessScheduler)

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_scheduler("quantum")

    def test_wait_with_nothing_inflight_raises(self):
        for sched in (SerialScheduler(), SimScheduler(lambda t, c: 1.0)):
            with pytest.raises(RuntimeError):
                sched.wait()

    def test_serial_scheduler_wraps_failures(self):
        def boom(payload):
            raise RuntimeError("dead")

        eng = AsyncEvalEngine(boom, SerialScheduler(), max_inflight=1)
        with pytest.raises(WorkerError, match="evaluation 0 failed"):
            eng.submit(0, {"x": 0.1})

    def test_thread_scheduler_streams_stragglers(self):
        import time as _time

        def work(payload):
            _time.sleep(payload[1]["d"])
            return payload[0]

        sched = ThreadScheduler(n_workers=3)
        eng = AsyncEvalEngine(work, sched, max_inflight=3)
        try:
            eng.submit(0, {"d": 0.5})  # the straggler
            eng.submit(1, {"d": 0.01})
            eng.submit(2, {"d": 0.01})
            fast, _ = eng.drain()
            # both quick evaluations land while the straggler is in flight
            assert {ce.task for ce in fast} <= {1, 2} and eng.inflight >= 1
            while eng.inflight:
                eng.drain()
            assert eng.completed == 3
        finally:
            eng.shutdown()

    def test_thread_scheduler_wraps_worker_exception(self):
        def boom(payload):
            raise ValueError("exploded")

        sched = ThreadScheduler(n_workers=1)
        eng = AsyncEvalEngine(boom, sched, max_inflight=1)
        try:
            eng.submit(0, {"x": 0.1})
            with pytest.raises(WorkerError, match="evaluation 0 failed"):
                eng.drain()
        finally:
            eng.shutdown()


# -- process-pool worker death ------------------------------------------------


def _die_once(payload):
    """Kill the worker process on the first attempt, succeed on the second.

    The marker file records that the first attempt happened, so the
    resubmission (on the rebuilt pool) takes the surviving branch.
    Module-level so it pickles into the process pool.
    """
    task, cfg = payload
    marker = cfg["marker"]
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return task * 10


class TestProcessWorkerDeath:
    def test_killed_worker_is_resubmitted(self, tmp_path):
        events = []
        sched = ProcessScheduler(
            n_workers=2, on_event=lambda kind, detail: events.append(kind)
        )
        eng = AsyncEvalEngine(_die_once, sched, max_inflight=2)
        try:
            eng.submit(0, {"marker": str(tmp_path / "m0")})
            eng.submit(1, {"marker": str(tmp_path / "m1")})
            results = {}
            while eng.inflight:
                batch, _ = eng.drain()
                results.update({ce.task: ce.outcome for ce in batch})
            assert results == {0: 0, 1: 10}
            assert "worker-death" in events
        finally:
            eng.shutdown()

    def test_gives_up_after_max_restarts(self):
        sched = ProcessScheduler(n_workers=1, max_pool_restarts=0)
        eng = AsyncEvalEngine(_crash_forever, sched, max_inflight=1)
        try:
            eng.submit(0, {"x": 0.0})
            with pytest.raises(WorkerError, match="worker died"):
                eng.drain()
        finally:
            eng.shutdown()


def _crash_forever(payload):
    """A worker that always dies — exhausts the pool-restart budget."""
    os._exit(1)


# -- streaming campaigns under faults ----------------------------------------


class _StragglerDuration:
    """Virtual durations with one 50×-median straggler.

    Every evaluation takes 2 virtual seconds except the first task-0
    evaluation, which takes 100 (50× the median).
    """

    def __init__(self, straggler=100.0, base=2.0):
        self.straggler = float(straggler)
        self.base = float(base)
        self.calls = 0

    def __call__(self, task, cfg):
        if task == 0:
            self.calls += 1
            if self.calls == 1:
                return self.straggler
        return self.base


class TestStragglerCampaign:
    BUDGET = 6

    def _run(self, problem=None, duration=None, **kw):
        clock = SimClock()
        duration = duration if duration is not None else _StragglerDuration()
        sched = SimScheduler(duration, clock=clock)
        tuner = GPTune(problem or _problem(), _options(**kw), scheduler=sched)
        return tuner.tune(TASKS, self.BUDGET), clock

    def test_straggler_holds_one_slot_not_the_campaign(self):
        res, clock = self._run()
        for i in range(len(TASKS)):
            assert res.data.n_samples(i) == self.BUDGET
        _assert_no_duplicates(res)
        # the straggler bounds the makespan: the campaign cannot finish
        # before it lands, but everything else overlapped it.  Serial
        # execution of the same work would take 100 + 2*(2*BUDGET-1) = 122;
        # streaming finishes within a couple of rounds of the straggler.
        n_evals = sum(res.data.n_samples(i) for i in range(len(TASKS)))
        serial_makespan = 100.0 + 2.0 * (n_evals - 1)
        assert 100.0 <= clock.now <= 110.0 < serial_makespan

    def test_other_tasks_stream_past_the_straggler(self):
        res, _clock = self._run()
        # task 1 reaches its full budget strictly before the straggler
        # lands: every absorb round is an async-drain event, and task-1
        # completions keep arriving while the straggler is in flight
        drains = res.events.of_kind("async-drain")
        assert len(drains) >= 3  # streamed in many small rounds, no barrier
        stop = res.events.of_kind("async-stop")[0]
        assert stop.fields["completed"] == 2 * self.BUDGET

    def test_max_inflight_never_exceeded(self):
        res, _clock = self._run(max_inflight=3)
        stop = res.events.of_kind("async-stop")[0]
        assert 1 <= stop.fields["peak_inflight"] <= 3
        # every drain observed the cap too
        for ev in res.events.of_kind("async-drain"):
            assert ev.fields["inflight"] <= 3

    def test_straggler_dies_mid_eval(self):
        # the straggler crashes instead of finishing: with failure_value it
        # becomes a penalty observation and the campaign still completes
        def obj(t, c):
            if float(c["x"]) > 0.8:
                raise RuntimeError("node died mid-evaluation")
            return _objective(t, c)

        problem = TuningProblem(
            Space([Integer("t", 0, 10)]),
            Space([Real("x", 0.0, 1.0)]),
            obj,
            failure_value=100.0,
        )
        res, _clock = self._run(problem=problem)
        for i in range(len(TASKS)):
            assert res.data.n_samples(i) == self.BUDGET
        _assert_no_duplicates(res)
        ys = [y[0] for i in range(len(TASKS)) for y in res.data.Y[i]]
        assert all(np.isfinite(v) for v in ys)
        best = min(res.best(i)[1] for i in range(len(TASKS)))
        assert best < 100.0  # the tuner found real observations too

    def test_retry_ladder_composes_with_queue(self):
        # first attempt on every config fails; retry_attempts=2 makes the
        # second succeed — inside the scheduler, through the same queue
        attempts = {}

        def obj(t, c):
            key = (float(t["t"]), round(float(c["x"]), 9))
            attempts[key] = attempts.get(key, 0) + 1
            if attempts[key] == 1:
                raise RuntimeError("transient fault")
            return _objective(t, c)

        problem = TuningProblem(
            Space([Integer("t", 0, 10)]), Space([Real("x", 0.0, 1.0)]), obj
        )
        res, _clock = self._run(
            problem=problem, retry_attempts=2, retry_backoff=0.0
        )
        for i in range(len(TASKS)):
            assert res.data.n_samples(i) == self.BUDGET
        assert res.stats["n_retries"] >= 2 * self.BUDGET  # one retry per eval
        # per-attempt events surface in the campaign log via _record
        assert len(res.events.of_kind("retry")) >= 2 * self.BUDGET
        assert len(res.events.of_kind("exception")) >= 2 * self.BUDGET

    def test_campaign_without_scheduler_injection(self):
        # default path: make_scheduler builds from options.backend
        res = GPTune(_problem(), _options(backend="serial")).tune(TASKS, 4)
        for i in range(len(TASKS)):
            assert res.data.n_samples(i) == 4
        _assert_no_duplicates(res)
        start = res.events.of_kind("async-start")[0]
        assert start.fields["scheduler"] == "SerialScheduler"

    def test_multiobjective_streams(self):
        # γ > 1 used to silently fall back to lockstep; it now streams
        # through the per-task NSGA-II path
        problem = TuningProblem(
            Space([Integer("t", 0, 10)]),
            Space([Real("x", 0.0, 1.0)]),
            lambda t, c: [c["x"], 1.0 - c["x"]],
            n_objectives=2,
        )
        res = GPTune(problem, _options()).tune([{"t": 1}], 6)
        assert len(res.events.of_kind("async-fallback")) == 0
        assert len(res.events.of_kind("async-start")) == 1
        assert res.data.n_samples(0) >= 6
        _assert_no_duplicates(res)

    def test_perf_model_campaign_streams(self):
        # performance models used to force lockstep; enrichment is now
        # threaded through the async fit/extend path
        problem = _problem(models=[lambda t, c: float(t["t"]) * float(c["x"])])
        res = GPTune(problem, _options()).tune(TASKS, 6)
        assert len(res.events.of_kind("async-fallback")) == 0
        assert len(res.events.of_kind("async-start")) == 1
        for i in range(len(TASKS)):
            assert res.data.n_samples(i) == 6
        _assert_no_duplicates(res)

    def test_unsupported_combo_raises_without_escape_hatch(self):
        # the one remaining unsupported shape (γ > 1 + models) must fail
        # fast, not silently demote to lockstep
        problem = TuningProblem(
            Space([Integer("t", 0, 10)]),
            Space([Real("x", 0.0, 1.0)]),
            lambda t, c: [c["x"], 1.0 - c["x"]],
            n_objectives=2,
            models=[lambda t, c: float(c["x"])],
        )
        with pytest.raises(ValueError, match="allow_async_fallback"):
            GPTune(problem, _options()).tune([{"t": 1}], 6)
        res = GPTune(problem, _options(allow_async_fallback=True)).tune([{"t": 1}], 6)
        ev = res.events.of_kind("async-fallback")
        assert len(ev) == 1 and "reason" in ev[0].fields
        assert len(res.events.of_kind("async-start")) == 0
        assert res.data.n_samples(0) >= 6  # lockstep multi-objective batches
