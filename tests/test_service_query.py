"""Tests for the archive query API (repro.service.query) and the
cross-campaign transfer path it powers.

The acceptance scenario: campaign A tunes a few tasks of the analytical
function (Eq. 11) and archives every evaluation through the history
service; campaign B — a separate HistoryDB instance, standing in for a
different process or user — pulls A's records for an unseen task and its
transfer-learned result beats cold-start random search at equal budget.
"""

import os

import numpy as np
import pytest

from repro.apps.analytical import AnalyticalApp
from repro.core import GPTune, HistoryDB, Options, Real, Space, TransferLearner
from repro.service import ShardedStore
from repro.service.query import (
    archive_source,
    group_by_task,
    nearest_tasks,
    source_data_from_records,
)
from repro.tuners import RandomSearchTuner


def _rec(t, x, y):
    return {"task": {"t": t}, "x": {"x": x}, "y": [float(y)]}


RECORDS = [
    _rec(1.0, 0.1, 0.5),
    _rec(2.0, 0.2, 0.6),
    _rec(1.0, 0.3, 0.4),
    _rec(3.0, 0.4, 0.7),
]


class TestGroupByTask:
    def test_groups_and_preserves_first_seen_order(self):
        groups = group_by_task(RECORDS)
        assert [t for t, _ in groups] == [{"t": 1.0}, {"t": 2.0}, {"t": 3.0}]
        assert [len(recs) for _, recs in groups] == [2, 1, 1]

    def test_empty(self):
        assert group_by_task([]) == []


class TestNearestTasks:
    def test_space_free_numeric_ranking(self):
        near = nearest_tasks(RECORDS, {"t": 2.2})
        assert [t["t"] for t, _, _ in near] == [2.0, 3.0, 1.0]
        assert near[0][2] < near[1][2] < near[2][2]

    def test_exact_match_sorts_first_with_zero_distance(self):
        near = nearest_tasks(RECORDS, {"t": 3.0})
        assert near[0][0] == {"t": 3.0}
        assert near[0][2] == 0.0

    def test_k_caps_result(self):
        near = nearest_tasks(RECORDS, {"t": 1.1}, k=2)
        assert len(near) == 2
        assert near[0][0] == {"t": 1.0}

    def test_space_aware_uses_normalized_coordinates(self):
        space = Space([Real("t", 0.0, 10.0)])
        near = nearest_tasks(RECORDS, {"t": 2.2}, task_space=space)
        assert [t["t"] for t, _, _ in near] == [2.0, 3.0, 1.0]
        # distance is in normalized units of the declared space
        assert near[0][2] == pytest.approx(0.2 / 10.0)

    def test_non_numeric_dimensions_contribute_mismatch(self):
        records = [
            {"task": {"kind": "a", "n": 1}, "x": {"x": 0.1}, "y": [1.0]},
            {"task": {"kind": "b", "n": 1}, "x": {"x": 0.2}, "y": [2.0]},
        ]
        near = nearest_tasks(records, {"kind": "b", "n": 1})
        assert near[0][0]["kind"] == "b"
        assert near[0][2] == 0.0
        assert near[1][2] > 0.0

    def test_empty_records(self):
        assert nearest_tasks([], {"t": 1.0}) == []


class TestSourceData:
    def _problem(self):
        return AnalyticalApp(seed=0).problem()

    def test_builds_tuning_data_over_distinct_tasks(self):
        data = source_data_from_records(self._problem(), RECORDS)
        assert data.n_tasks == 3
        assert data.n_samples() == 4
        assert data.tasks[0] == {"t": 1.0}

    def test_empty_records_raise(self):
        with pytest.raises(ValueError):
            source_data_from_records(self._problem(), [])

    def test_archive_source_prunes_to_nearest_tasks(self, tmp_path):
        store = ShardedStore(str(tmp_path / "db"))
        store.append("analytical", RECORDS)
        data = archive_source(
            self._problem(), store, new_task={"t": 2.2}, max_tasks=2
        )
        assert data.n_tasks == 2
        assert {t["t"] for t in data.tasks} == {2.0, 3.0}


class TestFromArchive:
    def test_exact_task_match_reuses_records_without_crashing(self, tmp_path):
        problem = AnalyticalApp(seed=0).problem()
        db = HistoryDB(str(tmp_path / "h.json"))
        GPTune(problem, Options(seed=0, n_start=2), history=db).tune(
            [{"t": 2.0}, {"t": 3.0}], 8
        )
        tla = TransferLearner.from_archive(problem, db)
        # the new task IS an archived source task: its records must preload
        # the new row instead of colliding with a frozen duplicate
        res = tla.tune({"t": 2.0}, 4, options=Options(seed=7, n_start=2))
        new = res.data.n_tasks - 1
        assert res.data.tasks[new] == {"t": 2.0}
        # archived evaluations (8 per task) + fresh budget all land on the row
        assert len(res.data.X[new]) >= 4

    def test_missing_problem_raises(self, tmp_path):
        problem = AnalyticalApp(seed=0).problem()
        with pytest.raises(ValueError):
            TransferLearner.from_archive(problem, HistoryDB(str(tmp_path / "h.json")))


class TestCrossCampaignTransfer:
    """Acceptance: archived knowledge beats cold-start random search."""

    SOURCES = [2.8, 2.9, 3.0]
    NEW_TASK = 2.95
    BUDGET_A = 32
    BUDGET_B = 8
    SEEDS = (0, 3, 5)

    def test_campaign_b_beats_cold_start_random_search(self, tmp_path):
        problem = AnalyticalApp(seed=0).problem()
        tla_best, rand_best = [], []
        for seed in self.SEEDS:
            path = str(tmp_path / f"h{seed}.json")
            # campaign A: archives every evaluation through the service store
            a_db = HistoryDB(path)
            GPTune(problem, Options(seed=seed, n_start=2), history=a_db).tune(
                [{"t": t} for t in self.SOURCES], self.BUDGET_A
            )
            # campaign B: a *fresh* HistoryDB over the same store — the
            # records cross the process boundary via the shard files
            b_db = HistoryDB(path)
            tla = TransferLearner.from_archive(
                problem, b_db, new_task={"t": self.NEW_TASK}, max_source_tasks=2
            )
            res = tla.tune(
                {"t": self.NEW_TASK},
                self.BUDGET_B,
                options=Options(seed=seed + 100, n_start=2),
            )
            tla_best.append(res.best(res.data.n_tasks - 1)[1])
            rand = RandomSearchTuner().tune(
                problem, {"t": self.NEW_TASK}, self.BUDGET_B, seed=seed + 100
            )
            rand_best.append(rand.best()[1])
        wins = sum(t < r for t, r in zip(tla_best, rand_best))
        assert wins >= 2, (tla_best, rand_best)
        assert np.mean(tla_best) < np.mean(rand_best), (tla_best, rand_best)

    def test_archive_survives_on_disk_between_campaigns(self, tmp_path):
        problem = AnalyticalApp(seed=0).problem()
        path = str(tmp_path / "h.json")
        db = HistoryDB(path)
        GPTune(problem, Options(seed=0, n_start=2), history=db).tune(
            [{"t": 2.8}], 4
        )
        del db
        assert os.path.isdir(path + ".d")
        assert HistoryDB(path).count(problem.name) == 4
