"""Failure-injection tests: crashing/NaN objectives under tuning."""

import numpy as np
import pytest

from repro.core import GPTune, Integer, Options, Real, Space, TuningProblem

FAST = Options(seed=0, n_start=1, pso_iters=8, ei_candidates=12, lbfgs_maxiter=50)


def _spaces():
    return Space([Integer("t", 0, 10)]), Space([Real("x", 0.0, 1.0)])


class TestFailureValue:
    def test_exception_becomes_penalty(self):
        ts, ps = _spaces()

        def obj(t, c):
            if c["x"] > 0.8:
                raise RuntimeError("application crashed")
            return c["x"]

        prob = TuningProblem(ts, ps, obj, failure_value=100.0)
        assert prob.evaluate({"t": 1}, {"x": 0.9})[0] == 100.0
        assert prob.evaluate({"t": 1}, {"x": 0.2})[0] == pytest.approx(0.2)
        assert prob.n_failures == 1

    def test_nan_becomes_penalty(self):
        ts, ps = _spaces()
        prob = TuningProblem(
            ts, ps, lambda t, c: float("nan") if c["x"] > 0.5 else 1.0, failure_value=50.0
        )
        assert prob.evaluate({"t": 1}, {"x": 0.9})[0] == 50.0

    def test_without_failure_value_reraises(self):
        ts, ps = _spaces()

        def obj(t, c):
            raise RuntimeError("boom")

        prob = TuningProblem(ts, ps, obj)
        with pytest.raises(RuntimeError):
            prob.evaluate({"t": 1}, {"x": 0.5})

    def test_failure_value_validation(self):
        ts, ps = _spaces()
        with pytest.raises(ValueError):
            TuningProblem(ts, ps, lambda t, c: 0.0, failure_value=float("inf"))
        with pytest.raises(ValueError):
            TuningProblem(
                ts, ps, lambda t, c: [0.0, 0.0], n_objectives=2, failure_value=[1.0, 2.0, 3.0]
            )

    def test_scalar_broadcast_multiobjective(self):
        ts, ps = _spaces()
        prob = TuningProblem(
            ts, ps, lambda t, c: 1 / 0, n_objectives=2, failure_value=9.0
        )
        y = prob.evaluate({"t": 1}, {"x": 0.5})
        assert y.tolist() == [9.0, 9.0]


class TestTuningThroughFailures:
    def test_mla_survives_crashing_region(self):
        """A third of the space crashes; the tuner still finds the optimum
        in the surviving region and steers away from the penalty zone."""
        ts, ps = _spaces()

        def obj(t, c):
            if c["x"] > 0.66:
                raise RuntimeError("segfault")
            return (c["x"] - 0.4) ** 2 + 0.01

        prob = TuningProblem(ts, ps, obj, failure_value=10.0)
        res = GPTune(prob, FAST).tune([{"t": 1}], 14)
        cfg, val = res.best(0)
        assert cfg["x"] <= 0.66
        assert abs(cfg["x"] - 0.4) < 0.15
        assert val < 0.05
        assert prob.n_failures >= 1  # it did touch the bad region

    def test_failures_recorded_in_data(self):
        ts, ps = _spaces()
        prob = TuningProblem(
            ts, ps, lambda t, c: 1 / 0 if c["x"] > 0.5 else 1.0, failure_value=5.0
        )
        res = GPTune(prob, FAST).tune([{"t": 1}], 6)
        ys = [y[0] for y in res.data.Y[0]]
        assert all(y in (1.0, 5.0) for y in ys)
