"""Tests for the surrogate-model cache (repro.service.modelcache) and its
MLA integration.

Acceptance: a campaign warm-started from a populated cache performs
strictly fewer L-BFGS multi-starts than an identical cold campaign, as
counted by the ``model-fit`` events' ``n_starts`` field.
"""

import shutil

import pytest

from repro.apps.analytical import AnalyticalApp
from repro.core import GPTune, HistoryDB, Options
from repro.service import SurrogateCache
from repro.service.modelcache import CachedFit


def _fit(fps, ll=-1.0, problem="p", objective=0, shape=(2, 1, 2)):
    return CachedFit(
        problem, objective, shape[0], shape[1], shape[2],
        theta=[0.1, 0.2, 0.3], log_likelihood=ll, fingerprints=fps,
    )


class TestCachedFit:
    def test_key_ignores_fingerprint_order(self):
        assert _fit(["a", "b"]).key == _fit(["b", "a"]).key

    def test_key_changes_with_shape_and_data(self):
        base = _fit(["a", "b"])
        assert base.key != _fit(["a", "c"]).key
        assert base.key != _fit(["a", "b"], shape=(3, 1, 2)).key
        assert base.key != _fit(["a", "b"], objective=1).key

    def test_json_round_trip(self):
        fit = _fit(["a", "b"], ll=-2.5)
        back = CachedFit.from_json(fit.to_json())
        assert back.key == fit.key
        assert back.theta == fit.theta
        assert back.log_likelihood == -2.5
        assert back.fingerprints == frozenset(["a", "b"])


class TestSurrogateCache:
    @pytest.fixture
    def cache(self, tmp_path):
        return SurrogateCache(str(tmp_path / "fits.jsonl"))

    def test_empty_lookup(self, cache):
        assert len(cache) == 0
        assert cache.lookup("p", 0, ["a"], 2, 1, 2) is None
        assert cache.lookup("p", 0, [], 2, 1, 2) is None

    def test_put_and_exact_lookup(self, cache):
        fit = _fit(["a", "b"])
        cache.put(fit)
        got = cache.lookup("p", 0, ["a", "b"], 2, 1, 2)
        assert got is not None and got.key == fit.key

    def test_put_is_idempotent_per_key(self, cache):
        cache.put(_fit(["a", "b"]))
        cache.put(_fit(["b", "a"]))
        assert len(cache) == 1

    def test_subset_and_superset_match(self, cache):
        cache.put(_fit(["a", "b", "c"]))
        # cached ⊃ query (campaign resumed with less data than the fit saw)
        assert cache.lookup("p", 0, ["a", "b"], 2, 1, 2) is not None
        # cached ⊂ query (campaign gathered a few more points since)
        assert cache.lookup("p", 0, ["a", "b", "c", "d"], 2, 1, 2) is not None
        # overlapping but neither subset nor superset: no reuse
        assert cache.lookup("p", 0, ["a", "b", "z"], 2, 1, 2) is None

    def test_min_overlap_gates_weak_matches(self, cache):
        cache.put(_fit(["a"]))
        # Jaccard 1/4 < 0.5: a fit on one of four records is too stale
        assert cache.lookup("p", 0, ["a", "b", "c", "d"], 2, 1, 2) is None
        assert cache.lookup("p", 0, ["a", "b"], 2, 1, 2) is not None

    def test_shape_mismatch_never_matches(self, cache):
        cache.put(_fit(["a", "b"]))
        assert cache.lookup("p", 0, ["a", "b"], 3, 1, 2) is None
        assert cache.lookup("p", 0, ["a", "b"], 2, 2, 2) is None
        assert cache.lookup("p", 0, ["a", "b"], 2, 1, 3) is None
        assert cache.lookup("p", 1, ["a", "b"], 2, 1, 2) is None
        assert cache.lookup("other", 0, ["a", "b"], 2, 1, 2) is None

    def test_largest_overlap_wins(self, cache):
        small = _fit(["a", "b"], ll=0.0)
        big = _fit(["a", "b", "c"], ll=-9.0)
        cache.put(small)
        cache.put(big)
        got = cache.lookup("p", 0, ["a", "b", "c"], 2, 1, 2)
        assert got.key == big.key  # exact beats subset despite worse ll

    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "fits.jsonl")
        SurrogateCache(path).put(_fit(["a", "b"]))
        assert SurrogateCache(path).lookup("p", 0, ["a", "b"], 2, 1, 2) is not None

    def test_compact_keeps_latest_per_problem(self, cache):
        for i in range(6):
            cache.put(_fit([f"f{i}"], problem="p"))
        cache.put(_fit(["x"], problem="q"))
        assert cache.compact(keep_latest=2) == 3  # 2 for p + 1 for q
        assert len(cache) == 3
        assert cache.lookup("p", 0, ["f5"], 2, 1, 2) is not None
        assert cache.lookup("p", 0, ["f0"], 2, 1, 2) is None

    def test_bad_min_overlap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SurrogateCache(str(tmp_path / "c.jsonl"), min_overlap=0.0)

    def test_torn_line_is_skipped(self, cache):
        cache.put(_fit(["a", "b"]))
        with open(cache.path, "a", encoding="utf-8") as fh:
            fh.write('{"problem": "p", "objecti')
        fresh = SurrogateCache(cache.path)
        assert len(fresh) == 1


class TestWarmStartAcceptance:
    """Warm campaign spends strictly fewer multi-starts than a cold one."""

    def _campaign(self, db, cache_path, seed, budget):
        problem = AnalyticalApp(seed=0).problem()
        tuner = GPTune(
            problem,
            Options(seed=seed, n_start=2, model_cache_path=cache_path),
            history=db,
        )
        tuner.tune([{"t": 2.0}], budget)
        return tuner.events

    def test_cache_hit_reduces_lbfgs_starts(self, tmp_path):
        # a prior campaign populates archive + cache
        db_path = str(tmp_path / "h.json")
        warm_cache = str(tmp_path / "warm.jsonl")
        self._campaign(HistoryDB(db_path), warm_cache, seed=0, budget=6)
        assert len(SurrogateCache(warm_cache)) >= 1

        # two identical follow-up campaigns, each over its own copy of the
        # primed archive (a shared one would hand the second campaign the
        # first's fresh evaluations and zero its budget) — one with the
        # populated cache, one starting a fresh cache file
        db2_path = str(tmp_path / "h2.json")
        shutil.copytree(db_path + ".d", db2_path + ".d")
        warm = self._campaign(HistoryDB(db_path), warm_cache, seed=42, budget=10)
        cold = self._campaign(
            HistoryDB(db2_path), str(tmp_path / "cold.jsonl"), seed=42, budget=10
        )

        assert warm.count("model-cache-hit") >= 1
        warm_starts = warm.total("model-fit", "n_starts")
        cold_starts = cold.total("model-fit", "n_starts")
        assert warm_starts < cold_starts, (warm_starts, cold_starts)

    def test_cold_campaign_stores_fits(self, tmp_path):
        cache_path = str(tmp_path / "fits.jsonl")
        events = self._campaign(
            HistoryDB(str(tmp_path / "h.json")), cache_path, seed=0, budget=6
        )
        assert events.count("model-fit") >= 1
        assert events.count("model-cache-store") >= 1
        assert len(SurrogateCache(cache_path)) == events.count("model-cache-store")


class TestLookupMemo:
    @pytest.fixture
    def cache(self, tmp_path):
        return SurrogateCache(str(tmp_path / "fits.jsonl"))

    def test_repeated_lookup_is_memoized(self, cache):
        cache.put(_fit(["a", "b"]))
        first = cache.lookup("p", 0, ["a", "b"], 2, 1, 2)
        assert first is not None
        assert len(cache._lookup_memo) == 1
        again = cache.lookup("p", 0, ["b", "a"], 2, 1, 2)  # same query set
        assert again is not None
        assert again.key == first.key
        assert len(cache._lookup_memo) == 1  # one memo entry served both

    def test_memo_remembers_misses(self, cache):
        cache.put(_fit(["a", "b"]))
        assert cache.lookup("other", 0, ["a", "b"], 2, 1, 2) is None
        assert len(cache._lookup_memo) == 1  # misses memoized too
        assert cache.lookup("other", 0, ["a", "b"], 2, 1, 2) is None

    def test_put_invalidates_memo(self, cache):
        cache.put(_fit(["a", "b"]))
        partial = cache.lookup("p", 0, ["a", "b", "c"], 2, 1, 2)
        assert partial is not None  # subset match serves as warm start
        cache.put(_fit(["a", "b", "c"]))  # an exact fit arrives later
        best = cache.lookup("p", 0, ["a", "b", "c"], 2, 1, 2)
        assert best.key == _fit(["a", "b", "c"]).key  # memo was invalidated

    def test_foreign_write_invalidates_memo(self, tmp_path):
        path = str(tmp_path / "fits.jsonl")
        reader = SurrogateCache(path)
        assert reader.lookup("p", 0, ["a", "b"], 2, 1, 2) is None
        SurrogateCache(path).put(_fit(["a", "b"]))  # another process writes
        assert reader.lookup("p", 0, ["a", "b"], 2, 1, 2) is not None

    def test_compact_invalidates_memo(self, cache):
        cache.put(_fit(["a", "b"]))
        assert cache.lookup("p", 0, ["a", "b"], 2, 1, 2) is not None
        cache.compact()
        assert cache.lookup("p", 0, ["a", "b"], 2, 1, 2) is not None
