"""Integration-level tests for the MLA driver (repro.core.mla)."""

import numpy as np
import pytest

from repro.core import GPTune, HistoryDB, Integer, Options, Real, Space, TuningProblem

FAST = Options(seed=0, n_start=1, pso_iters=8, ei_candidates=12, lbfgs_maxiter=50)


def quadratic_problem():
    """y(t, x) = (x − t/10)², minimum 0 at x = t/10 — easy and smooth."""
    ts = Space([Integer("t", 0, 10)])
    ps = Space([Real("x", 0.0, 1.0)])
    return TuningProblem(ts, ps, lambda t, c: (c["x"] - t["t"] / 10.0) ** 2 + 0.01, name="quad")


class TestSingleObjective:
    def test_budget_respected(self):
        res = GPTune(quadratic_problem(), FAST).tune([{"t": 5}], n_samples=8)
        assert res.data.n_samples(0) == 8

    def test_finds_smooth_minimum(self):
        res = GPTune(quadratic_problem(), FAST).tune([{"t": 5}], n_samples=14)
        cfg, val = res.best(0)
        assert abs(cfg["x"] - 0.5) < 0.1
        assert val < 0.02

    def test_multitask_all_tasks_tuned(self):
        tasks = [{"t": 2}, {"t": 5}, {"t": 8}]
        res = GPTune(quadratic_problem(), FAST).tune(tasks, n_samples=10)
        for i, t in enumerate(tasks):
            assert res.data.n_samples(i) == 10
            cfg, val = res.best(i)
            assert abs(cfg["x"] - t["t"] / 10.0) < 0.15

    def test_outperforms_or_matches_initial_design(self):
        """BO iterations must never lose to the LHS half (monotone best)."""
        res = GPTune(quadratic_problem(), FAST).tune([{"t": 3}], n_samples=12)
        traj = res.trajectory(0)
        assert traj[-1] <= traj[5]

    def test_stats_populated(self):
        res = GPTune(quadratic_problem(), FAST).tune([{"t": 5}], n_samples=6)
        for key in ("objective_time", "modeling_time", "search_time", "total_time"):
            assert res.stats[key] >= 0.0
        assert res.stats["modeling_time"] > 0.0

    def test_best_values_vector(self):
        res = GPTune(quadratic_problem(), FAST).tune([{"t": 2}, {"t": 8}], n_samples=6)
        assert res.best_values().shape == (2,)

    def test_reproducible_with_seed(self):
        r1 = GPTune(quadratic_problem(), FAST).tune([{"t": 4}], n_samples=8)
        r2 = GPTune(quadratic_problem(), FAST).tune([{"t": 4}], n_samples=8)
        assert r1.best(0)[1] == r2.best(0)[1]

    def test_minimum_budget_validation(self):
        with pytest.raises(ValueError):
            GPTune(quadratic_problem(), FAST).tune([{"t": 1}], n_samples=1)

    def test_constraint_respected_throughout(self):
        ts = Space([Integer("m", 4, 32)])
        ps = Space(
            [Integer("p", 1, 32), Integer("p_r", 1, 32)], constraints=["p_r <= p", "p <= m"]
        )
        prob = TuningProblem(
            ts, ps, lambda t, c: 1.0 / c["p"] + abs(c["p_r"] - 2) * 0.01 + 0.001, name="cons"
        )
        res = GPTune(prob, FAST).tune([{"m": 16}], n_samples=10)
        for cfg in res.data.X[0]:
            assert cfg["p_r"] <= cfg["p"] <= 16

    def test_no_duplicate_evaluations_in_continuous_space(self):
        res = GPTune(quadratic_problem(), FAST).tune([{"t": 5}], n_samples=10)
        keys = {tuple(np.round(res.data.tuning_space.normalize(x), 9)) for x in res.data.X[0]}
        assert len(keys) == 10

    def test_log_transform_handles_runtime_scales(self):
        """Objectives spanning decades fit fine with y_transform='log'."""
        ts = Space([Integer("t", 1, 3)])
        ps = Space([Real("x", 0.0, 1.0)])
        prob = TuningProblem(
            ts, ps, lambda t, c: 10.0 ** (3 * c["x"]) * t["t"], name="scales"
        )
        opts = FAST.replace(y_transform="log")
        res = GPTune(prob, opts).tune([{"t": 1}, {"t": 3}], n_samples=10)
        assert res.best(0)[0]["x"] < 0.3


class TestPerformanceModels:
    def test_model_enrichment_runs_and_helps_shape(self):
        """With a perfect model feature the tuner solves the task quickly."""
        ts = Space([Integer("t", 0, 10)])
        ps = Space([Real("x", 0.0, 1.0)])
        truth = lambda t, c: (c["x"] - t["t"] / 10.0) ** 2 + 0.01
        prob = TuningProblem(ts, ps, truth, models=[truth], name="modeled")
        res = GPTune(prob, FAST).tune([{"t": 6}], n_samples=10)
        assert res.best(0)[1] < 0.05


class TestHistory:
    def test_history_archives_and_reuses(self, tmp_path):
        db = HistoryDB(str(tmp_path / "h.json"))
        prob = quadratic_problem()
        GPTune(prob, FAST, history=db).tune([{"t": 5}], n_samples=6)
        assert db.count("quad") == 6
        # a second run reuses the archive: only the missing budget is spent
        evals = {"n": 0}
        orig = prob.objective

        def counting(t, c):
            evals["n"] += 1
            return orig(t, c)

        prob2 = TuningProblem(
            prob.task_space, prob.tuning_space, counting, name="quad"
        )
        res = GPTune(prob2, FAST, history=db).tune([{"t": 5}], n_samples=8)
        assert res.data.n_samples(0) >= 8
        assert evals["n"] <= 4  # 6 came from the archive


class TestMultiObjective:
    def _mo_problem(self):
        ts = Space([Integer("t", 1, 4)])
        ps = Space([Real("x", 0.0, 1.0)])
        return TuningProblem(
            ts,
            ps,
            lambda t, c: [c["x"] ** 2 + 0.01, (c["x"] - 1.0) ** 2 + 0.01],
            n_objectives=2,
            name="mo",
        )

    def test_pareto_front_returned(self):
        opts = FAST.replace(nsga_pop=16, nsga_gens=8, pareto_batch=2)
        res = GPTune(self._mo_problem(), opts).tune([{"t": 1}], n_samples=14)
        cfgs, front = res.pareto_front(0)
        assert len(cfgs) >= 3
        assert front.shape[1] == 2
        # the front should span the tradeoff, not collapse to one end
        assert front[:, 0].max() - front[:, 0].min() > 0.1

    def test_batchsize_k_respected(self):
        opts = FAST.replace(nsga_pop=12, nsga_gens=5, pareto_batch=3)
        res = GPTune(self._mo_problem(), opts).tune([{"t": 1}], n_samples=10)
        assert res.data.n_samples(0) >= 10
        assert len(res.models) == 2


class TestAnytime:
    def test_callback_stops_early(self):
        calls = []

        def cb(iteration, data, stats):
            calls.append(iteration)
            return iteration >= 2

        res = GPTune(quadratic_problem(), FAST).tune([{"t": 5}], 40, callback=cb)
        assert calls == [1, 2]
        # budget not exhausted: initial design (20) + 2 BO iterations
        assert res.data.n_samples(0) == 22

    def test_callback_continue_runs_to_budget(self):
        res = GPTune(quadratic_problem(), FAST).tune(
            [{"t": 5}], 8, callback=lambda i, d, s: False
        )
        assert res.data.n_samples(0) == 8

    def test_max_seconds_caps_runtime(self):
        import time

        opts = FAST.replace(max_seconds=1e-9)  # expires after iteration 1
        t0 = time.perf_counter()
        res = GPTune(quadratic_problem(), opts).tune([{"t": 5}], 200)
        assert time.perf_counter() - t0 < 30
        assert res.data.n_samples(0) < 200

    def test_max_seconds_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            Options(max_seconds=0.0)


class TestBatchEvaluations:
    def test_batch_evals_counted_and_diverse(self):
        opts = FAST.replace(batch_evals=3)
        res = GPTune(quadratic_problem(), opts).tune([{"t": 5}], 12)
        assert res.data.n_samples(0) >= 12
        keys = {tuple(np.round(res.data.tuning_space.normalize(x), 9))
                for x in res.data.X[0]}
        assert len(keys) == res.data.n_samples(0)  # no duplicates

    def test_batch_with_thread_executor_matches_quality(self):
        serial = GPTune(quadratic_problem(), FAST.replace(batch_evals=2)).tune(
            [{"t": 4}], 10
        )
        threaded = GPTune(
            quadratic_problem(),
            FAST.replace(batch_evals=2, backend="thread", n_workers=2),
        ).tune([{"t": 4}], 10)
        # same final quality ballpark; counts identical
        assert threaded.data.n_samples(0) == serial.data.n_samples(0)
        assert threaded.best(0)[1] < 0.05 and serial.best(0)[1] < 0.05

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            Options(batch_evals=0)

    def test_pso_top_batch_diverse(self):
        from repro.core import ParticleSwarm

        f = lambda X: -np.sum((X - 0.5) ** 2, axis=1)
        pso = ParticleSwarm(dim=2, n_particles=20, iterations=15, seed=0)
        pso.maximize(f)
        batch = pso.top_batch(4, min_dist=0.05)
        assert 1 <= batch.shape[0] <= 4
        for a in range(batch.shape[0]):
            for b in range(a + 1, batch.shape[0]):
                assert np.linalg.norm(batch[a] - batch[b]) >= 0.05

    def test_top_batch_before_maximize(self):
        from repro.core import ParticleSwarm

        with pytest.raises(RuntimeError):
            ParticleSwarm(dim=2).top_batch(2)
