"""Tests for consistent-hash routing over shard server processes
(repro.service.router): ring determinism and minimal movement, the
supervisor's spawn/kill/auto-restart lifecycle, exactly-once appends
through backend restarts, topology bootstrap, and store rebalancing."""

import json
import time
import urllib.request

import pytest

from repro.service import (
    HashRing,
    RouterClient,
    ShardSupervisor,
    ShardedStore,
    rebalance_stores,
    shard_id,
)

REC = {"task": {"m": 10}, "x": {"b": 4}, "y": [1.5]}


def _rec(i):
    return {"task": {"m": i}, "x": {"b": i}, "y": [float(i)]}


class TestHashRing:
    def test_deterministic_and_total(self):
        nodes = [shard_id(i) for i in range(4)]
        ring = HashRing(nodes)
        again = HashRing(list(reversed(nodes)))
        keys = [f"problem-{i}" for i in range(200)]
        assert [ring.node_for(k) for k in keys] == [
            again.node_for(k) for k in keys
        ]
        assert set(ring.node_for(k) for k in keys) <= set(nodes)

    def test_every_node_gets_keys(self):
        ring = HashRing([shard_id(i) for i in range(4)])
        groups = ring.assignment([f"p{i}" for i in range(400)])
        assert sorted(groups) == [shard_id(i) for i in range(4)]
        assert all(len(v) > 0 for v in groups.values())

    def test_adding_a_node_moves_few_keys(self):
        keys = [f"p{i}" for i in range(400)]
        four = HashRing([shard_id(i) for i in range(4)])
        five = HashRing([shard_id(i) for i in range(5)])
        moved = sum(1 for k in keys if four.node_for(k) != five.node_for(k))
        # theory: ~1/5 of keys move; anything near a full reshuffle means
        # the ring hashes node identity wrong
        assert moved / len(keys) < 0.40
        # keys that moved all went TO the new node, never between old ones
        for k in keys:
            if four.node_for(k) != five.node_for(k):
                assert five.node_for(k) == shard_id(4)

    def test_stable_shard_ids_not_urls(self):
        # the ring must key on stable ids so a backend restarted on a new
        # port keeps its data assignment
        assert shard_id(3) == "shard-03"
        ring = HashRing([shard_id(0), shard_id(1)])
        assert set(ring.nodes) == {"shard-00", "shard-01"}


class TestRebalance:
    def test_moves_only_reassigned_problems(self, tmp_path):
        root = str(tmp_path)
        old_ids = [shard_id(i) for i in range(2)]
        new_ids = [shard_id(i) for i in range(3)]
        old_ring = HashRing(old_ids)
        problems = [f"prob{i}" for i in range(8)]
        for p in problems:
            ShardedStore(f"{root}/{old_ring.node_for(p)}").append(p, [REC])

        out = rebalance_stores(root, old_ids, new_ids)
        new_ring = HashRing(new_ids)
        moved = {p for p, _, _ in out["moved"]}
        for p in problems:
            owner = ShardedStore(f"{root}/{new_ring.node_for(p)}")
            assert owner.count(p) == 1  # exactly one copy, in the owner
            if old_ring.node_for(p) != new_ring.node_for(p):
                assert p in moved
                assert ShardedStore(
                    f"{root}/{old_ring.node_for(p)}"
                ).count(p) == 0
            else:
                assert p not in moved

    def test_idempotent(self, tmp_path):
        root = str(tmp_path)
        old_ids, new_ids = [shard_id(0)], [shard_id(0), shard_id(1)]
        for i in range(6):
            ShardedStore(f"{root}/{shard_id(0)}").append(f"p{i}", [REC])
        first = rebalance_stores(root, old_ids, new_ids)
        second = rebalance_stores(root, old_ids, new_ids)
        assert second["moved"] == []
        assert len(first["moved"]) >= 1


@pytest.fixture
def topology(tmp_path):
    with ShardSupervisor(
        str(tmp_path / "db"), 2, server_kwargs={"flush_interval": 0.001}
    ) as sup:
        yield sup, sup.serve_topology()


class TestSupervisorAndRouter:
    def test_routed_round_trip(self, topology):
        sup, topo_url = topology
        client = RouterClient(topo_url)
        problems = [f"prob{i}" for i in range(6)]
        for i, p in enumerate(problems):
            out = client.append(p, [_rec(i)])
            assert out["appended"] == 1
        assert client.problems() == sorted(problems)
        for i, p in enumerate(problems):
            rows = client.records(p)
            assert [r["y"] for r in rows] == [[float(i)]]
            assert client.count(p) == 1
        # both backends own some problems (6 problems, 2 shards)
        owners = {client.shard_for(p) for p in problems}
        assert len(owners) == 2
        stats = client.stats()
        assert stats["n_records"] == len(problems)
        client.close()

    def test_topology_endpoint_serves_generation(self, topology):
        sup, topo_url = topology
        with urllib.request.urlopen(topo_url + "/v1/topology") as resp:
            topo = json.loads(resp.read().decode())
        assert sorted(topo["shards"]) == [shard_id(0), shard_id(1)]
        assert topo["generation"] == sup.generation

    def test_data_lands_in_owner_shard_only(self, topology):
        sup, topo_url = topology
        client = RouterClient(topo_url)
        client.append("solo", [REC])
        owner = client.shard_for("solo")
        client.close()
        for sid in (shard_id(0), shard_id(1)):
            direct = ShardedStore(f"{sup.root}/{sid}")
            assert direct.count("solo") == (1 if sid == owner else 0)

    def test_kill_restart_append_exactly_once(self, topology):
        sup, topo_url = topology
        sup.watch(interval=0.02)
        client = RouterClient(topo_url)
        client.append("prob", [_rec(1)])
        victim = client.shard_for("prob")
        gen_before = sup.generation

        sup.kill(victim)
        # the routed append retries through the restart; client-side rids
        # make the retry exactly-once even if a first attempt half-landed
        out = client.append("prob", [_rec(2)])
        assert out["appended"] == 1

        deadline = time.monotonic() + 10
        while sup.generation == gen_before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sup.generation > gen_before  # restart bumped the topology

        client.refresh()
        rows = client.records("prob")
        assert sorted(r["y"][0] for r in rows) == [1.0, 2.0]
        rids = [r["rid"] for r in rows]
        assert len(set(rids)) == 2
        client.close()

    def test_router_accepts_plain_mapping(self, topology):
        sup, _ = topology
        client = RouterClient(sup.topology()["shards"])
        client.append("prob", [REC])
        assert client.count("prob") == 1
        client.close()

    def test_router_rejects_empty_topology(self):
        with pytest.raises(ValueError):
            RouterClient({})
