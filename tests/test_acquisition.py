"""Unit tests for Expected Improvement (repro.core.acquisition)."""

import numpy as np
import pytest
from scipy import stats

from repro.core import EIAcquisition, expected_improvement


class TestExpectedImprovement:
    def test_closed_form_value(self):
        mu, var, best = np.array([0.0]), np.array([1.0]), 1.0
        z = (best - mu[0]) / 1.0
        expected = (best - mu[0]) * stats.norm.cdf(z) + 1.0 * stats.norm.pdf(z)
        assert expected_improvement(mu, var, best)[0] == pytest.approx(expected)

    def test_zero_variance_deterministic(self):
        ei = expected_improvement(np.array([0.5, 2.0]), np.array([0.0, 0.0]), 1.0)
        assert ei[0] == pytest.approx(0.5)
        assert ei[1] == 0.0

    def test_nonnegative(self, rng):
        mu = rng.normal(size=50)
        var = rng.random(50)
        assert np.all(expected_improvement(mu, var, 0.0) >= 0)

    def test_monotone_in_mean(self):
        """Lower predicted mean (better) gives higher EI at equal variance."""
        ei = expected_improvement(np.array([0.0, 1.0]), np.array([0.5, 0.5]), 1.0)
        assert ei[0] > ei[1]

    def test_monotone_in_variance_when_worse_than_best(self):
        """More uncertainty helps when the mean is unpromising."""
        ei = expected_improvement(np.array([2.0, 2.0]), np.array([0.01, 1.0]), 1.0)
        assert ei[1] > ei[0]


class TestEIAcquisition:
    def _predict(self, X):
        X = np.atleast_2d(X)
        return X[:, 0], 0.1 * np.ones(X.shape[0])

    def test_call_shape(self):
        acq = EIAcquisition(self._predict, y_best=0.5)
        vals = acq(np.array([[0.1], [0.9]]))
        assert vals.shape == (2,)
        assert vals[0] > vals[1]  # lower predicted mean wins

    def test_feasibility_masks_to_minus_inf(self):
        acq = EIAcquisition(
            self._predict,
            y_best=0.5,
            feasibility=lambda X: np.atleast_2d(X)[:, 0] < 0.5,
        )
        vals = acq(np.array([[0.1], [0.9]]))
        assert np.isfinite(vals[0])
        assert vals[1] == -np.inf


class TestExpectedImprovementShapes:
    """Dtype/shape contract after the astype-copy removal."""

    def test_float64_output_from_integer_inputs(self):
        ei = expected_improvement(np.array([0, 1]), np.array([1, 1]), 2)
        assert ei.dtype == np.float64
        assert ei.shape == (2,)

    def test_2d_task_axis_with_broadcast_y_best(self):
        mu = np.array([[0.0, 1.0], [2.0, 3.0]])
        var = np.full((2, 2), 0.5)
        y_best = np.array([[1.0], [4.0]])
        ei = expected_improvement(mu, var, y_best)
        assert ei.shape == (2, 2)
        # each row must equal the scalar-incumbent result for that row
        for t in range(2):
            row = expected_improvement(mu[t], var[t], float(y_best[t, 0]))
            assert np.allclose(ei[t], row)

    def test_all_zero_variance_fast_return(self):
        mu = np.array([[0.5, 2.0], [1.0, 0.0]])
        var = np.zeros((2, 2))
        ei = expected_improvement(mu, var, 1.0)
        assert ei.dtype == np.float64
        assert np.allclose(ei, np.maximum(1.0 - mu, 0.0))

    def test_mixed_zero_variance_matches_elementwise(self):
        mu = np.array([0.5, 0.5])
        var = np.array([0.0, 0.3])
        ei = expected_improvement(mu, var, 1.0)
        assert ei[0] == pytest.approx(0.5)
        assert ei[1] > ei[0]  # uncertainty adds exploration value
