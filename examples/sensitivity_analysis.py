#!/usr/bin/env python
"""Which hypre parameters actually matter?  Sobol analysis on the surrogate.

After a short MLA run over the 12-parameter BoomerAMG+GMRES space, the
fitted LCM posterior is a millisecond-cheap stand-in for the application —
cheap enough for variance-based global sensitivity analysis.  First-order
(S1) and total-order (ST) Sobol indices are printed per parameter; large
ST − S1 gaps mean the parameter matters mostly through interactions.

Run:  python examples/sensitivity_analysis.py
"""

from repro import GPTune, Options
from repro.apps.hypre import HypreApp
from repro.core import surrogate_sensitivity
from repro.runtime import cori_haswell


def main():
    app = HypreApp(machine=cori_haswell(1), grid_range=(8, 24), solve_cap=729, seed=0)
    task = {"n1": 16, "n2": 16, "n3": 16}

    print("tuning 16x16x16 Poisson with 24 evaluations...")
    result = GPTune(app.problem(), Options(seed=3, n_start=3)).tune([task], 24)
    print(f"best runtime {result.best(0)[1]*1e3:.3f} ms\n")

    sens = surrogate_sensitivity(result.models[0], result.data, task=0, n_base=512, seed=1)
    print(f"{'parameter':>18} {'S1':>7} {'ST':>7}")
    for name, idx in sens.items():
        bar = "#" * int(30 * idx["ST"])
        print(f"{name:>18} {idx['S1']:>7.3f} {idx['ST']:>7.3f}  {bar}")

    top = next(iter(sens))
    print(f"\nmost influential parameter for this task: {top!r}")


if __name__ == "__main__":
    main()
