#!/usr/bin/env python
"""Crowd tuning: many campaigns, one shared history service.

This walkthrough stands up the tuning-history service in-process (in real
deployments: ``repro serve --root /shared/tuning-db`` on a hub machine),
then plays three roles against it over plain HTTP:

1. **User A** tunes two tasks of the analytical function (Eq. 11) and
   archives every evaluation through the service.
2. **User B** — a different client, nominally on another machine — tunes a
   third task against the *same* archive.  The shard locks behind the
   service keep concurrent writers safe; here the runs are sequential so
   the output is deterministic.
3. **User C** never runs a campaign at all: they query the service for the
   archived tasks nearest to a brand-new task and transfer-learn from the
   crowd's records (:meth:`TransferLearner.from_archive`).

Run:  python examples/crowd_tuning.py
"""

import tempfile
import threading

from repro import GPTune, Options, ServiceClient, TransferLearner
from repro.apps.analytical import AnalyticalApp
from repro.service.server import make_server


def main():
    root = tempfile.mkdtemp(prefix="crowd_tuning_")
    server = make_server(root, port=0)  # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    print(f"history service at {url} (store: {root})")

    app = AnalyticalApp(seed=0)
    problem = app.problem()

    # -- user A: archive two tasks -----------------------------------------
    client_a = ServiceClient(url)
    GPTune(problem, Options(seed=0, n_start=2), history=client_a).tune(
        [{"t": 2.8}, {"t": 3.0}], n_samples=8
    )
    print(f"user A archived {client_a.count(problem.name)} evaluations")

    # -- user B: a second campaign joins the same archive -------------------
    client_b = ServiceClient(url)
    GPTune(problem, Options(seed=1, n_start=2), history=client_b).tune(
        [{"t": 2.9}], n_samples=8
    )
    print(f"user B raised the archive to {client_b.count(problem.name)} evaluations")

    # -- user C: no campaign — query and transfer ---------------------------
    client_c = ServiceClient(url)
    new_task = {"t": 2.95}
    for match in client_c.query(problem.name, new_task, k=2):
        print(
            f"user C: archived task {match['task']} is {match['distance']:.3f} away "
            f"({len(match['records'])} records)"
        )
    tla = TransferLearner.from_archive(problem, client_c, new_task=new_task)
    cfg = tla.predict_config(new_task)
    y = problem.evaluate(new_task, cfg)
    print(
        f"user C: transferred config for t={new_task['t']} without tuning: "
        f"x={cfg['x']:.4f} -> y={float(y[0]):.4f}"
    )

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
