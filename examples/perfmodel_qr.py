#!/usr/bin/env python
"""Coarse performance models for PDGEQRF (Sec. 3.3 / Fig. 4 right).

Attaches the Eq. (7) analytical model — flop, message and volume counts
from Eqs. (8)–(10) with machine coefficients t_flop/t_msg/t_vol fitted
on-the-fly by non-negative least squares — and compares tuning with and
without it at a tiny budget, where the model matters most.

Run:  python examples/perfmodel_qr.py
"""

from repro import GPTune, Options
from repro.apps.scalapack import PDGEQRF
from repro.runtime import cori_haswell


def main():
    app = PDGEQRF(machine=cori_haswell(16), mn_max=20000, seed=0)
    tasks = app.sample_tasks(4, seed=42)
    opts = Options(seed=9, n_start=2)
    budget = 8

    plain = GPTune(app.problem(with_models=False), opts).tune(tasks, budget)
    modeled = GPTune(app.problem(with_models=True), opts).tune(tasks, budget)

    print(f"budget = {budget} evaluations/task\n")
    print(f"{'task':>14} {'no model':>10} {'with model':>11} {'ratio':>7}")
    for i, t in enumerate(tasks):
        a, b = plain.best(i)[1], modeled.best(i)[1]
        print(f"{t['m']:>6}x{t['n']:<7} {a:>10.3f} {b:>11.3f} {a/b:>7.2f}")

    model = app.models()[0]
    print("\nfitted Eq. (7) coefficients after a model-update phase:")
    import numpy as np

    cfgs = [x for xs in modeled.data.X for x in xs]
    tsks = [modeled.data.tasks[i] for i in range(len(tasks)) for _ in modeled.data.X[i]]
    ys = np.array([y[0] for ys_ in modeled.data.Y for y in ys_])
    model.update(tsks, cfgs, ys)
    print(f"  t_flop = {model.coefficients[0]:.3e} s/flop")
    print(f"  t_msg  = {model.coefficients[1]:.3e} s/message")
    print(f"  t_vol  = {model.coefficients[2]:.3e} s/word")


if __name__ == "__main__":
    main()
