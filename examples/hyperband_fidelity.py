#!/usr/bin/env python
"""Multi-fidelity tuning with hyperband on a fusion code.

The paper disabled HpBandSter's multi-armed-bandit mode because it
"requires running applications with varying fidelity/budgets" — but the
fusion codes have exactly such a budget: the number of time steps.  This
example runs the implemented hyperband/BOHB tuner on M3D_C1 with the step
count as the fidelity axis, and compares it against the TPE-only mode (the
paper's comparison configuration) at an equal full-fidelity-equivalent
budget.

Run:  python examples/hyperband_fidelity.py
"""

from repro.apps.fusion import M3DC1
from repro.runtime import cori_haswell
from repro.tuners import HpBandSterTuner
from repro.tuners.hpbandster import HyperbandTuner


def main():
    app = M3DC1(machine=cori_haswell(1), plane_size=300, seed=0)
    prob = app.problem()
    task = {"t": 9}  # the expensive production-like task
    budget = 15  # full-fidelity-equivalent evaluation units

    def with_fidelity(t, b):
        """Reduced-fidelity variant: fewer time steps (paper's Sec. 6.5 axis)."""
        return {"t": max(1, int(round(t["t"] * b)))}

    hb = HyperbandTuner(with_fidelity, eta=3.0, min_budget=1 / 9, model=True)
    rec_hb = hb.tune(prob, task, n_samples=budget, seed=1)

    tpe = HpBandSterTuner()
    rec_tpe = tpe.tune(prob, task, n_samples=budget, seed=1)

    default = app.objective(task, app.default_config(task))
    print(f"task t={task['t']} (9 time steps), budget = {budget} full-fidelity units\n")
    print(f"hyperband+BOHB best:   {rec_hb.best()[1]*1e3:8.3f} ms "
          f"({len(rec_hb)} full-fidelity evals recorded, many more cheap ones)")
    print(f"TPE-only best:         {rec_tpe.best()[1]*1e3:8.3f} ms "
          f"({len(rec_tpe)} full-fidelity evals)")
    print(f"default configuration: {default*1e3:8.3f} ms")

    cfg = rec_hb.best()[0]
    print(f"\nhyperband's winning configuration: COLPERM={cfg['COLPERM']}, "
          f"ROWPERM={cfg['ROWPERM']}, NSUP={cfg['NSUP']}, p_r={cfg['p_r']}")


if __name__ == "__main__":
    main()
