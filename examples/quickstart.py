#!/usr/bin/env python
"""Quickstart: tune the paper's analytical function (Eq. 11) with GPTune.

Mirrors the artifact appendix's first example — minimize the highly
non-convex Eq. (11) for a handful of tasks t with a small evaluation
budget, then compare against the true minima found by dense scanning.

Run:  python examples/quickstart.py
"""

from repro import GPTune, Options
from repro.apps.analytical import AnalyticalApp, true_minimum


def main():
    app = AnalyticalApp()
    tuner = GPTune(app.problem(), Options(seed=0, verbose=False))

    tasks = [{"t": 0.0}, {"t": 1.0}, {"t": 2.0}]
    result = tuner.tune(tasks, n_samples=30)

    print(f"{'t':>5} {'x found':>10} {'y found':>10} {'y true':>10}")
    for i, task in enumerate(tasks):
        cfg, val = result.best(i)
        _, ystar = true_minimum(task["t"], resolution=50_001)
        print(f"{task['t']:>5.1f} {cfg['x']:>10.4f} {val:>10.4f} {ystar:>10.4f}")

    s = result.stats
    print(
        f"\ntuner time breakdown: modeling {s['modeling_time']:.2f}s, "
        f"search {s['search_time']:.2f}s, "
        f"{len(result.data)} total evaluations"
    )


if __name__ == "__main__":
    main()
