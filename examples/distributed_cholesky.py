#!/usr/bin/env python
"""Executing Sec. 4.3's parallel covariance factorization, end to end.

Builds a real LCM covariance over δ = 6 analytical tasks and factorizes it
with the 1-D block-cyclic distributed Cholesky running on simulated MPI
ranks — the "factorization of the covariance matrix … parallelized using
ScaLAPACK" of the paper, reproduced as executable code whose virtual clocks
yield the parallel times.  A traced run renders the rank timelines.

Run:  python examples/distributed_cholesky.py
"""

import numpy as np

from repro.apps.analytical import analytical_function
from repro.core import LCM
from repro.core.kernels import pairwise_sq_diffs
from repro.runtime import cori_haswell
from repro.runtime.distributed_linalg import cholesky_spmd, distributed_cholesky
from repro.runtime.mpi import run_spmd
from repro.runtime.trace import Tracer, traced


def build_covariance(delta=6, eps=96, seed=0):
    rng = np.random.default_rng(seed)
    X, y, tid = [], [], []
    for i in range(delta):
        xs = rng.random(eps)
        X.append(xs[:, None])
        y.append(analytical_function(0.5 * i, xs))
        tid.extend([i] * eps)
    X, y, tid = np.vstack(X), np.concatenate(y), np.array(tid)
    lcm = LCM(delta, 1, n_latent=2, seed=seed, n_start=1)
    theta = lcm._initial_theta(y, restart=0)
    Sigma, _, _ = lcm._covariance(theta, pairwise_sq_diffs(X), tid)
    Sigma[np.diag_indices(Sigma.shape[0])] += 1e-4
    return Sigma


def main():
    Sigma = build_covariance()
    n = Sigma.shape[0]
    print(f"LCM covariance: {n} x {n} (N = εδ samples)\n")

    times = {}
    for p in (1, 2, 4):
        L, t = distributed_cholesky(Sigma, p, block=64, machine=cori_haswell(1))
        times[p] = t
        resid = np.abs(L @ L.T - Sigma).max()
        print(f"p={p}: simulated {t*1e3:8.3f} ms   speedup {times[1]/t:4.2f}x   "
              f"max residual {resid:.2e}")

    print("\nper-rank timeline at p=4 ('#' compute, '~' communication):")
    tracer = Tracer()

    def traced_job(comm):
        cholesky_spmd(traced(comm, tracer), Sigma, block=64)

    run_spmd(4, traced_job, machine=cori_haswell(1))
    print(tracer.gantt(width=56))
    summary = tracer.rank_summary()
    for r, s in sorted(summary.items()):
        print(f"rank {r}: compute {s['compute']*1e3:.3f} ms, comm {s['comm']*1e3:.3f} ms")


if __name__ == "__main__":
    main()
