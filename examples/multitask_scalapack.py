#!/usr/bin/env python
"""Multitask learning on ScaLAPACK PDGEQRF (the Sec. 6.5 workload).

Tunes the dense QR block size and process grid jointly over several matrix
shapes on a simulated 64-node Cori allocation, then shows the classic MLA
win: similar per-task minima to single-task tuning at a fraction of the
application time, plus the fitted between-task correlation matrix that
explains *why* the transfer works.

Run:  python examples/multitask_scalapack.py
"""

import numpy as np

from repro import GPTune, Options
from repro.apps.scalapack import PDGEQRF
from repro.runtime import cori_haswell


def main():
    app = PDGEQRF(machine=cori_haswell(64), mn_max=40000, seed=0)
    big_task = {"m": 23324, "n": 26545}
    others = app.sample_tasks(5, seed=3)
    for t in others:  # the co-tuned tasks are cheaper, as in the paper
        t["m"], t["n"] = min(t["m"], 16000), min(t["n"], 16000)
    tasks = [big_task] + others

    opts = Options(seed=1, n_start=2, verbose=False)
    multi = GPTune(app.problem(), opts).tune(tasks, n_samples=8)
    single = GPTune(app.problem(), opts).tune([big_task], n_samples=8 * len(tasks))

    print(f"{'task':>14} {'best s':>9} {'config'}")
    for i, t in enumerate(tasks):
        cfg, val = multi.best(i)
        print(f"{t['m']:>6}x{t['n']:<7} {val:>9.3f} b={cfg['b']} p={cfg['p']} p_r={cfg['p_r']}")

    print(f"\nbig task: single-task best {single.best(0)[1]:.3f}s "
          f"(budget {8*len(tasks)}) vs multitask best {multi.best(0)[1]:.3f}s (budget 8)")
    print(f"simulated application time: single {single.stats['objective_time']:.0f}s, "
          f"multitask {multi.stats['objective_time']:.0f}s")

    corr = multi.models[0].task_correlation()
    print("\nfitted between-task correlations (first row vs big task):")
    print(np.array2string(corr[0], precision=2))


if __name__ == "__main__":
    main()
