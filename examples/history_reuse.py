#!/usr/bin/env python
"""Archiving and reusing tuning data across executions (GPTune goal #3).

First run: tune a SuperLU_DIST task and archive every evaluation in a JSON
history database.  Second run (a fresh tuner instance, as if days later):
the archived evaluations seed the surrogate for free, so the tuner spends
its whole new budget on Bayesian-optimization samples instead of repeating
the initial design — "allowing tuning to improve over time" (Sec. 1).

Run:  python examples/history_reuse.py
"""

import os
import shutil
import tempfile

from repro import GPTune, HistoryDB, Options
from repro.apps.superlu import SuperLUDIST
from repro.runtime import cori_haswell


def main():
    path = os.path.join(tempfile.gettempdir(), "gptune_history_demo.json")
    # a fresh demo each run: drop the legacy file and the sharded store dir
    for stale in (path, path + ".d"):
        if os.path.isdir(stale):
            shutil.rmtree(stale)
        elif os.path.exists(stale):
            os.unlink(stale)

    app = SuperLUDIST(machine=cori_haswell(8), matrices=["SiNa"], scale=0.05, seed=0)
    task = [{"matrix": "SiNa"}]

    db = HistoryDB(path)
    first = GPTune(app.problem(), Options(seed=5), history=db).tune(task, n_samples=10)
    print(f"run 1: best {first.best(0)[1]*1e3:.3f} ms after 10 evaluations "
          f"({db.count('superlu_dist')} archived)")

    evals_before = app.n_evaluations
    db2 = HistoryDB(path)
    second = GPTune(app.problem(), Options(seed=99), history=db2).tune(task, n_samples=16)
    new_evals = app.n_evaluations - evals_before
    print(f"run 2: best {second.best(0)[1]*1e3:.3f} ms with a 16-evaluation budget, "
          f"of which only {new_evals} were newly run (10 came from the archive)")
    print(f"archive now holds {db2.count('superlu_dist')} evaluations at {path}")


if __name__ == "__main__":
    main()
