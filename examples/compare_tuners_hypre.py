#!/usr/bin/env python
"""Tuner comparison on hypre (the Tab. 4 workload, small scale).

Runs GPTune's MLA against the OpenTuner-style ensemble and the
HpBandSter-style TPE tuner on a few 3-D Poisson tasks, with a *real*
from-scratch AMG + GMRES measuring convergence, and reports the paper's two
metrics: WinTask (final performance) and stability (anytime performance).

Run:  python examples/compare_tuners_hypre.py
"""

import numpy as np

from repro import GPTune, Options
from repro.apps.hypre import HypreApp
from repro.core.metrics import mean_stability, win_task
from repro.runtime import cori_haswell
from repro.tuners import HpBandSterTuner, OpenTunerTuner


def main():
    app = HypreApp(machine=cori_haswell(1), grid_range=(8, 32), solve_cap=1000, seed=0)
    prob = app.problem()
    tasks = [
        {"n1": 12, "n2": 20, "n3": 16},
        {"n1": 24, "n2": 10, "n3": 10},
        {"n1": 16, "n2": 16, "n3": 16},
    ]
    eps = 10

    mla = GPTune(prob, Options(seed=31, n_start=2)).tune(tasks, eps)
    gpt_best = mla.best_values()
    gpt_traj = [[y[0] for y in mla.data.Y[i]] for i in range(len(tasks))]

    ot = [OpenTunerTuner().tune(prob, t, eps, seed=41 + i) for i, t in enumerate(tasks)]
    hb = [HpBandSterTuner().tune(prob, t, eps, seed=61 + i) for i, t in enumerate(tasks)]
    ot_best = np.array([r.best()[1] for r in ot])
    hb_best = np.array([r.best()[1] for r in hb])

    print(f"{'task':>12} {'GPTune':>9} {'OpenTuner':>10} {'HpBandSter':>11}")
    for i, t in enumerate(tasks):
        lbl = f"{t['n1']}x{t['n2']}x{t['n3']}"
        print(f"{lbl:>12} {gpt_best[i]:>9.4f} {ot_best[i]:>10.4f} {hb_best[i]:>11.4f}")

    y_star = np.minimum(np.minimum(gpt_best, ot_best), hb_best)
    print(f"\nWinTask vs OpenTuner:  {100*win_task(gpt_best, ot_best):.0f}%")
    print(f"WinTask vs HpBandSter: {100*win_task(gpt_best, hb_best):.0f}%")
    print(f"mean stability: GPTune {mean_stability(gpt_traj, y_star):.3f}, "
          f"OT {mean_stability([r.values[:, 0] for r in ot], y_star):.3f}, "
          f"HB {mean_stability([r.values[:, 0] for r in hb], y_star):.3f} "
          "(lower is better)")


if __name__ == "__main__":
    main()
