#!/usr/bin/env python
"""Multi-objective tuning of SuperLU_DIST (time, memory) — Sec. 6.7.

Runs Algorithm 2 (NSGA-II search over per-objective LCMs) on the Si2
PARSEC matrix, prints the discovered Pareto front, and contrasts it with
the paper's default configuration — which, as in Fig. 7, is far from
optimal in both dimensions.

Run:  python examples/multiobjective_superlu.py
"""

from repro import GPTune, Options
from repro.apps.superlu import SuperLUDIST
from repro.runtime import cori_haswell


def main():
    app = SuperLUDIST(
        machine=cori_haswell(8),
        matrices=["Si2"],
        objectives=("time", "memory"),
        scale=0.05,
        seed=0,
    )
    opts = Options(seed=2, pareto_batch=3, nsga_pop=24, nsga_gens=12)
    result = GPTune(app.problem(), opts).tune([{"matrix": "Si2"}], n_samples=24)

    default_t, default_m = app.evaluate_default("Si2")
    print(f"default config:     time {default_t*1e3:8.3f} ms   memory {default_m/1e6:8.3f} MB")

    configs, front = result.pareto_front(0)
    print(f"\nPareto front ({len(configs)} points):")
    for cfg, (t, m) in sorted(zip(configs, front.tolist()), key=lambda z: z[1][0]):
        print(
            f"  time {t*1e3:8.3f} ms   memory {m/1e6:8.3f} MB   "
            f"COLPERM={cfg['COLPERM']:<16} NSUP={cfg['NSUP']:<4} LOOK={cfg['LOOK']}"
        )

    best_t = front[:, 0].min()
    best_m = front[:, 1].min()
    print(
        f"\nimprovement over default: {100*(1-best_t/default_t):.0f}% time, "
        f"{100*(1-best_m/default_m):.0f}% memory "
        "(paper reports 83% / 93% on real Cori)"
    )


if __name__ == "__main__":
    main()
