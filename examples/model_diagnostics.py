#!/usr/bin/env python
"""Can the surrogate be trusted?  LOO cross-validation of the fitted LCM.

After a short multitask run on the Branin family, the fitted model is
checked with exact leave-one-out residuals (computed from the Cholesky
factor — no refits): RMSE, calibration of standardized residuals, and the
log predictive density, overall and per task.  The same diagnostics flag a
deliberately broken model (shuffled outputs) as untrustworthy.

Run:  python examples/model_diagnostics.py
"""

import numpy as np

from repro.apps.synthetic import BraninApp
from repro.core import GPTune, LCM, Options, loo_diagnostics


def main():
    app = BraninApp()
    tasks = [{"t": 0.0}, {"t": 1.0}, {"t": 2.0}]
    result = GPTune(app.problem(), Options(seed=0, n_start=2)).tune(tasks, 16)
    lcm = result.models[0]

    d = loo_diagnostics(lcm)
    print("fitted LCM leave-one-out diagnostics:")
    print(f"  RMSE                {d['rmse']:.4f}  (transformed units)")
    print(f"  std-resid mean/std  {d['mean_std_resid']:+.3f} / {d['std_std_resid']:.3f}"
          "   (calibrated ≈ 0 / 1)")
    print(f"  log predictive      {d['log_predictive']:.2f}")
    for i in range(len(tasks)):
        print(f"  task {i} (t={tasks[i]['t']}): RMSE {d[f'rmse_task_{i}']:.4f}")

    # sanity contrast: the same inputs with shuffled outputs must look bad
    rng = np.random.default_rng(0)
    X, y, tidx = result.data.stacked()
    y_shuffled = rng.permutation(y)
    broken = LCM(len(tasks), X.shape[1], seed=0, n_start=2).fit(
        X, (y_shuffled - y_shuffled.mean()) / (y_shuffled.std() or 1), tidx
    )
    db = loo_diagnostics(broken)
    print(f"\nshuffled-output control: RMSE {db['rmse']:.4f}, "
          f"log predictive {db['log_predictive']:.2f}")
    print("=> the real model predicts held-out points far better than chance"
          if db["log_predictive"] < d["log_predictive"]
          else "=> WARNING: diagnostics failed to separate signal from noise")


if __name__ == "__main__":
    main()
