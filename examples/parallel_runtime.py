#!/usr/bin/env python
"""The GPTune parallel programming model (Fig. 1) on the simulated runtime.

Demonstrates Sec. 4's architecture without an MPI installation: a single
master rank runs the driver, *spawns* a worker group through the simulated
MPI layer (thread-per-rank, α-β-costed), broadcasts hyperparameter restart
seeds, and gathers the per-restart log-likelihoods — the level-1 modeling
parallelism of Sec. 4.3.  Simulated times come from the Cori machine model.

Run:  python examples/parallel_runtime.py
"""

import numpy as np

from repro.apps.analytical import analytical_function
from repro.core import LCM
from repro.runtime import cori_haswell, run_spmd


def make_dataset(seed=0, delta=4, eps=8):
    rng = np.random.default_rng(seed)
    X, y, tid = [], [], []
    for i in range(delta):
        xs = rng.random(eps)
        X.append(xs[:, None])
        y.append(analytical_function(0.5 * i, xs))
        tid.extend([i] * eps)
    return np.vstack(X), np.concatenate(y), np.array(tid)


def worker(comm):
    """One worker rank: fit the LCM from its assigned restart seed."""
    parent = comm.Get_parent()
    payload = parent.worker_recv_bcast(comm)
    X, y, tid, seeds = payload
    seed = seeds[comm.rank]
    # each rank runs ONE restart; restart_offset makes them distinct
    lcm = LCM(4, 1, n_latent=2, seed=seed, n_start=1, maxiter=60,
              restart_offset=comm.rank)
    lcm.fit(X, y, tid)
    comm.compute(0.05 * X.shape[0])  # charge modeled covariance-factorization time
    parent.worker_send_result(comm, (seed, lcm.log_likelihood_))


def master(comm):
    X, y, tid = make_dataset()
    n_workers = 4
    inter = comm.Spawn(worker, nprocs=n_workers)
    inter.bcast_to_workers((X, y, tid, list(range(n_workers))))
    results = inter.gather_from_workers()
    child_makespan = inter.Disconnect()
    best_seed, best_ll = max(results, key=lambda r: r[1])
    return results, best_seed, best_ll, child_makespan


def main():
    results, t = run_spmd(1, master, machine=cori_haswell(1))
    restarts, best_seed, best_ll, child_makespan = results[0]
    print("per-restart log-likelihoods (gathered over the inter-communicator):")
    for seed, ll in restarts:
        marker = "  <- selected" if seed == best_seed else ""
        print(f"  restart seed {seed}: log-likelihood {ll:10.4f}{marker}")
    print(f"\nsimulated worker-group makespan: {child_makespan:.3f}s "
          f"(vs ~{4 * child_makespan:.3f}s if the 4 restarts ran serially)")
    print(f"simulated master wall time:     {t:.3f}s")


if __name__ == "__main__":
    main()
