#!/usr/bin/env python
"""Transfer learning autotuning: tune a new PDSYEVX size from old data.

GPTune's archive is more than a cache — completed tuning data for sizes
m ∈ {3000, 4500, 6000} can tune an unseen m = 5200 either with **zero** new
runs (TLA-0: interpolate the per-size optima over the task space) or with a
handful (TLA-MLA: the new task joins the LCM while the source tasks stay
frozen).  Both are compared here against tuning the new size from scratch.

Run:  python examples/transfer_learning.py
"""

from repro import GPTune, Options
from repro.apps.scalapack import PDSYEVX
from repro.core import TransferLearner
from repro.runtime import cori_haswell


def main():
    app = PDSYEVX(machine=cori_haswell(1), m_max=8000, seed=0)
    prob = app.problem()
    opts = Options(seed=0, n_start=2)

    sources = [{"m": 3000}, {"m": 4500}, {"m": 6000}]
    print("tuning source tasks (16 evaluations each)...")
    src = GPTune(prob, opts).tune(sources, n_samples=16)
    for i, t in enumerate(sources):
        print(f"  m={t['m']}: best {src.best(i)[1]:.3f}s at {src.best(i)[0]}")

    new_task = {"m": 5200}
    tla = TransferLearner(prob, src.data)

    cfg0 = tla.predict_config(new_task)
    y0 = app.objective(new_task, cfg0)
    print(f"\nTLA-0 (0 new runs):      {y0:.3f}s at {cfg0}")

    res = tla.tune(new_task, n_samples=6, options=opts.replace(seed=8))
    cfg1, y1 = res.best(res.data.n_tasks - 1)
    print(f"TLA-MLA (6 new runs):    {y1:.3f}s at {cfg1}")

    scratch = GPTune(prob, opts.replace(seed=8)).tune([new_task], n_samples=6)
    print(f"from scratch (6 runs):   {scratch.best(0)[1]:.3f}s at {scratch.best(0)[0]}")

    default = app.objective(new_task, app.default_config(new_task))
    print(f"default configuration:   {default:.3f}s")


if __name__ == "__main__":
    main()
