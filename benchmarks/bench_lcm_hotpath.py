"""Micro-benchmarks and regression gates for the LCM modeling hot path.

Times the three operations that dominate GPTune's tuner overhead — one
likelihood+gradient evaluation, one full ``fit``, and batched ``predict`` —
at several sample counts, comparing the vectorized fast path against the
retained loop-based reference implementation
(:meth:`repro.core.lcm.LCM._nll_and_grad_reference`).  Results are printed
as a table and dumped to ``BENCH_lcm.json``.

``--check`` runs the deterministic CI gates (wall-clock numbers stay
informational, so the job cannot be flaky):

* **equivalence** — the vectorized nll/grad must match the reference within
  1e-8 (nll) / 1e-6 (grad ∞-norm) on randomized (δ, β, Q, θ) cases;
* **warm-refit accounting** — a 20-iteration single-objective campaign with
  ``refit_warm_start`` + ``refit_interval=2`` must spend strictly fewer
  L-BFGS multi-starts than the cold baseline (counted from the campaign
  log's ``model-fit`` events) while reaching an incumbent no worse than 5%
  above the cold run's.

Run::

    PYTHONPATH=src python benchmarks/bench_lcm_hotpath.py            # full timings
    PYTHONPATH=src python benchmarks/bench_lcm_hotpath.py --check    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import GPTune, Options, Real, Space, TuningProblem
from repro.core.kernels import pairwise_sq_diffs
from repro.core.lcm import LCM
from repro.reporting import phase_breakdown

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_lcm.json"
)

#: the acceptance-point shape: N=400 stacked samples, δ=4 tasks, β=6 dims
DELTA, BETA, Q = 4, 6, 3

#: randomized shapes for the equivalence gate: (δ, β, Q, N)
EQUIV_CASES = [(2, 2, 2, 24), (3, 4, 2, 30), (4, 6, 3, 40), (1, 3, 1, 16), (5, 5, 3, 36)]


def _synthetic(rng, n, delta=DELTA, beta=BETA):
    X = rng.random((n, beta))
    tidx = np.sort(rng.integers(0, delta, n))
    y = np.sin(3.0 * X[:, 0]) + 0.3 * tidx + 0.05 * rng.normal(size=n)
    return X, y, tidx


def _best_of(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_nll_grad(sizes, repeats):
    """Single nll+grad evaluation: fast path vs reference, per N."""
    rng = np.random.default_rng(0)
    out = {}
    for n in sizes:
        X, y, tidx = _synthetic(rng, n)
        sqd = pairwise_sq_diffs(X)
        m = LCM(DELTA, BETA, n_latent=Q, seed=0)
        theta = m._initial_theta(y, restart=1)
        m._nll_and_grad(theta, sqd, y, tidx)  # warm the workspace
        t_fast = _best_of(lambda: m._nll_and_grad(theta, sqd, y, tidx), repeats)
        t_ref = _best_of(
            lambda: m._nll_and_grad_reference(theta, sqd, y, tidx), max(2, repeats // 2)
        )
        out[str(n)] = {
            "fast_s": t_fast,
            "reference_s": t_ref,
            "speedup": t_ref / t_fast if t_fast > 0 else float("inf"),
        }
        print(f"  nll+grad N={n:<4} fast {t_fast*1e3:8.2f} ms   "
              f"ref {t_ref*1e3:8.2f} ms   speedup {t_ref/t_fast:5.2f}x")
    return out


def bench_fit(sizes):
    """One full fit (n_start=1, capped iterations) per N."""
    rng = np.random.default_rng(1)
    out = {}
    for n in sizes:
        X, y, tidx = _synthetic(rng, n)
        m = LCM(DELTA, BETA, n_latent=Q, seed=0, n_start=1, maxiter=30)
        t0 = time.perf_counter()
        m.fit(X, y, tidx)
        out[str(n)] = {"fit_s": time.perf_counter() - t0}
        print(f"  fit      N={n:<4} {out[str(n)]['fit_s']*1e3:8.2f} ms")
    return out


def bench_predict(n, batch, calls):
    """Batched predict throughput, with and without the weight cache."""
    rng = np.random.default_rng(2)
    X, y, tidx = _synthetic(rng, n)
    m = LCM(DELTA, BETA, n_latent=Q, seed=0, n_start=1, maxiter=30).fit(X, y, tidx)
    Xstar = rng.random((batch, BETA))
    m.predict(0, Xstar)  # populate the cache

    t0 = time.perf_counter()
    for _ in range(calls):
        m.predict(0, Xstar)
    t_cached = (time.perf_counter() - t0) / calls

    t0 = time.perf_counter()
    for _ in range(calls):
        m._pred_cache.clear()
        m.predict(0, Xstar)
    t_cold = (time.perf_counter() - t0) / calls
    print(f"  predict  N={n} batch={batch}: cached {t_cached*1e6:7.1f} us/call   "
          f"cold {t_cold*1e6:7.1f} us/call")
    return {
        "n": n,
        "batch": batch,
        "cached_s_per_call": t_cached,
        "uncached_s_per_call": t_cold,
    }


def check_equivalence():
    """Gate: fast path ≡ reference within 1e-8 (nll) / 1e-6 (grad ∞-norm)."""
    rng = np.random.default_rng(7)
    worst_nll, worst_grad = 0.0, 0.0
    for delta, beta, q, n in EQUIV_CASES:
        X = rng.random((n, beta))
        tidx = rng.integers(0, delta, n)
        y = np.sin(3.0 * X[:, 0]) + 0.3 * tidx + 0.05 * rng.normal(size=n)
        sqd = pairwise_sq_diffs(X)
        m = LCM(delta, beta, n_latent=q, seed=3)
        for restart in range(3):
            theta = m._initial_theta(y, restart=restart)
            f_fast, g_fast = m._nll_and_grad(theta, sqd, y, tidx)
            f_ref, g_ref = m._nll_and_grad_reference(theta, sqd, y, tidx)
            worst_nll = max(worst_nll, abs(f_fast - f_ref))
            worst_grad = max(worst_grad, float(np.max(np.abs(g_fast - g_ref))))
    passed = worst_nll < 1e-8 and worst_grad < 1e-6
    print(f"  equivalence: |Δnll| <= {worst_nll:.3e} (gate 1e-8), "
          f"|Δgrad|∞ <= {worst_grad:.3e} (gate 1e-6)  "
          f"{'PASS' if passed else 'FAIL'}")
    return {
        "cases": len(EQUIV_CASES) * 3,
        "max_nll_diff": worst_nll,
        "max_grad_diff": worst_grad,
        "passed": passed,
    }


def _campaign(options):
    problem = TuningProblem(
        task_space=Space([Real("t", 0.0, 1.0)]),
        tuning_space=Space([Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)]),
        objective=lambda task, cfg: 1.0
        + (cfg["x"] - 0.2 - 0.3 * task["t"]) ** 2
        + (cfg["y"] - 0.7 * task["t"]) ** 2,
        name="bench-lcm-hotpath",
    )
    # n_samples=40 with initial_fraction=0.5 → 20 LHS + 20 BO iterations
    return GPTune(problem, options).tune([{"t": 0.2}, {"t": 0.8}], 40)


def check_warm_refit():
    """Gate: warm refits spend strictly fewer multi-starts, equal quality.

    Deterministic: the gate counts L-BFGS starts from ``model-fit`` events
    rather than comparing wall-clock times.  Both campaigns run with
    ``telemetry=True``, so the gate doubles as a regression check that span
    recording neither changes results nor breaks the driver; the recorded
    phase/model span totals are returned for the JSON payload.
    """
    base = dict(
        seed=0, n_start=2, lbfgs_maxiter=60, pso_iters=8, ei_candidates=16,
        telemetry=True,
    )
    cold = _campaign(Options(**base))
    warm = _campaign(Options(**base, refit_warm_start=True, refit_interval=2))
    cold_starts = cold.events.total("model-fit", "n_starts")
    warm_starts = warm.events.total("model-fit", "n_starts")
    extends = warm.events.count("model-extend")
    cold_best = cold.best_values()
    warm_best = warm.best_values()
    fewer = warm_starts < cold_starts
    quality = bool(np.all(warm_best <= cold_best * 1.05))
    passed = fewer and quality and extends > 0
    print(f"  warm refit: starts {cold_starts} -> {warm_starts}, "
          f"{extends} posterior extension(s), "
          f"best {[f'{v:.6f}' for v in cold_best]} -> "
          f"{[f'{v:.6f}' for v in warm_best]}  "
          f"{'PASS' if passed else 'FAIL'}")
    spans = {
        label: phase_breakdown(res.events.events)
        for label, res in (("cold", cold), ("warm", warm))
    }
    for label, bd in spans.items():
        phases = {k: v for k, v in sorted(bd.items()) if k.startswith(("phase.", "model."))}
        line = "  ".join(f"{k}={v['total_s'] * 1e3:.1f}ms" for k, v in phases.items())
        print(f"  spans[{label}]: {line}")
    return {
        "cold_starts": int(cold_starts),
        "warm_starts": int(warm_starts),
        "extend_events": int(extends),
        "cold_best": [float(v) for v in cold_best],
        "warm_best": [float(v) for v in warm_best],
        "passed": passed,
    }, spans


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="run the deterministic CI gates (plus quick timings)")
    ap.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = ap.parse_args(argv)

    sizes = [100, 300, 400, 600]
    repeats = 3 if args.check else 7

    print("== LCM hot-path micro-benchmarks ==")
    payload = {
        "config": {"delta": DELTA, "beta": BETA, "n_latent": Q, "sizes": sizes},
        "nll_grad": bench_nll_grad(sizes, repeats),
        "fit": bench_fit([100, 300] if args.check else [100, 300, 600]),
        "predict": bench_predict(n=300, batch=40, calls=50 if args.check else 200),
    }
    at400 = payload["nll_grad"]["400"]["speedup"]
    print(f"  nll+grad speedup at N=400, δ={DELTA}, β={BETA}: {at400:.2f}x "
          f"(informational target >= 3x)")

    ok = True
    if args.check:
        print("== deterministic gates ==")
        eq = check_equivalence()
        wr, spans = check_warm_refit()
        payload["checks"] = {
            "equivalence": eq,
            "warm_refit": wr,
            "passed": eq["passed"] and wr["passed"],
        }
        payload["spans"] = spans
        ok = payload["checks"]["passed"]

    os.makedirs(os.path.dirname(os.path.abspath(args.out)) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
