"""Ablation — the LCM's design choices.

Two design questions behind Sec. 3.1 that the paper asserts but does not
ablate (our substrate lets us):

1. **Shared LCM vs independent GPs**: with few samples per task, does the
   coregionalized model predict unseen configurations better than δ
   independent single-task GPs?  (This is the mechanism behind Fig. 5's
   "multitask matches single-task at a tenth of the per-task budget".)
2. **Number of latent functions Q**: fit quality (log-likelihood) and fit
   cost as Q grows from 1 to δ.
"""

import time

import numpy as np

from harness import fmt, print_table, save_results
from repro.apps.analytical import analytical_function
from repro.core import LCM, GaussianProcess

DELTA = 5
TRAIN = 6  # samples per task — deliberately scarce
TEST = 64


def _tasks():
    return [0.0 + 0.4 * i for i in range(DELTA)]  # related, slowly varying


def _data(rng):
    Xtr, ytr, tid = [], [], []
    for i, t in enumerate(_tasks()):
        xs = rng.random(TRAIN)
        Xtr.append(xs[:, None])
        ytr.append(analytical_function(t, xs))
        tid.extend([i] * TRAIN)
    return np.vstack(Xtr), np.concatenate(ytr), np.array(tid)


def test_ablation_lcm_vs_independent_gps(benchmark):
    rng = np.random.default_rng(17)
    X, y, tid = _data(rng)
    xq = np.linspace(0, 1, TEST)[:, None]

    lcm = LCM(DELTA, 1, n_latent=2, seed=0, n_start=3).fit(X, y, tid)
    rows, rmse_l, rmse_g = [], [], []
    for i, t in enumerate(_tasks()):
        truth = analytical_function(t, xq[:, 0])
        mu_l, _ = lcm.predict(i, xq)
        gp = GaussianProcess(seed=0, n_start=3).fit(X[tid == i], y[tid == i])
        mu_g, _ = gp.predict(xq)
        rl = float(np.sqrt(np.mean((mu_l - truth) ** 2)))
        rg = float(np.sqrt(np.mean((mu_g - truth) ** 2)))
        rmse_l.append(rl)
        rmse_g.append(rg)
        rows.append([fmt(t, 2), fmt(rl, 3), fmt(rg, 3), fmt(rg / rl, 3)])
    print_table(
        "Ablation: LCM vs independent GPs, out-of-sample RMSE (6 samples/task)",
        ["t", "RMSE LCM", "RMSE indep GP", "GP/LCM"],
        rows,
    )
    save_results("ablation_lcm_vs_gp", {"rmse_lcm": rmse_l, "rmse_gp": rmse_g})

    # knowledge sharing must not hurt on average with related tasks
    assert float(np.mean(rmse_l)) <= 1.1 * float(np.mean(rmse_g))
    benchmark(lambda: LCM(DELTA, 1, n_latent=2, seed=0, n_start=1).fit(X, y, tid))


def test_ablation_latent_count(benchmark):
    rng = np.random.default_rng(19)
    X, y, tid = _data(rng)
    rows, record = [], []
    for q in range(1, DELTA + 1):
        t0 = time.perf_counter()
        lcm = LCM(DELTA, 1, n_latent=q, seed=0, n_start=2).fit(X, y, tid)
        dt = time.perf_counter() - t0
        rows.append([q, fmt(lcm.log_likelihood_, 5), lcm.params.size, fmt(dt, 3)])
        record.append({"Q": q, "loglik": lcm.log_likelihood_, "n_hyper": lcm.params.size,
                       "fit_seconds": dt})
    print_table(
        "Ablation: latent-function count Q (fit quality vs cost)",
        ["Q", "log-likelihood", "#hyperparameters", "fit s"],
        rows,
    )
    save_results("ablation_latent_count", {"sweep": record})

    # more latents = strictly more expressive: best LL must not decrease
    # much going from Q=1 to the best Q (local optima allow small wiggles)
    lls = [r["loglik"] for r in record]
    assert max(lls[1:]) >= lls[0] - 1.0
    benchmark(lambda: None)
