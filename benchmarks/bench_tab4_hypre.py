"""Tab. 4 — hypre: final (WinTask) and anytime (stability) performance.

Paper setup: δ = 30 random 3-D Poisson tasks (10 ≤ n_i ≤ 100), three tuners
at ε_tot ∈ {10, 20, 30} on 1 and 4 Cori nodes.  GPTune wins 60–74% of tasks
(WinTask) and has the best mean stability on every row.

Downscaling: δ = 5 tasks with n_i ≤ 40, ε_tot ∈ {8, 14}, 1 node; the AMG
convergence measurement solves grids capped at ~1000 unknowns.
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.hypre import HypreApp
from repro.core import GPTune, Options
from repro.core.metrics import mean_stability, win_task
from repro.runtime import cori_haswell
from repro.tuners import HpBandSterTuner, OpenTunerTuner


def test_tab4_hypre(benchmark):
    app = HypreApp(machine=cori_haswell(1), grid_range=(8, 40), solve_cap=1000, seed=0)
    prob = app.problem()
    rng = np.random.default_rng(21)
    tasks = [
        {k: int(v) for k, v in t.items()}
        for t in (app.task_space().denormalize(rng.random(3)) for _ in range(5))
    ]

    rows, record = [], {}
    for eps in (8, 14):
        mla = GPTune(prob, Options(seed=31, **FAST_OPTS)).tune(tasks, eps)
        gpt_best = mla.best_values()
        gpt_traj = [[y[0] for y in mla.data.Y[i]] for i in range(len(tasks))]

        ot_recs = [OpenTunerTuner().tune(prob, t, eps, seed=41 + i) for i, t in enumerate(tasks)]
        hb_recs = [HpBandSterTuner().tune(prob, t, eps, seed=61 + i) for i, t in enumerate(tasks)]
        ot_best = np.array([r.best()[1] for r in ot_recs])
        hb_best = np.array([r.best()[1] for r in hb_recs])

        y_star = np.minimum(np.minimum(gpt_best, ot_best), hb_best)
        stab = {
            "GPTune": mean_stability(gpt_traj, y_star),
            "OT": mean_stability([r.values[:, 0] for r in ot_recs], y_star),
            "HB": mean_stability([r.values[:, 0] for r in hb_recs], y_star),
        }
        w_ot, w_hb = win_task(gpt_best, ot_best), win_task(gpt_best, hb_best)
        rows.append(
            [1, eps, f"{100*w_ot:.0f}%", f"{100*w_hb:.0f}%",
             fmt(stab["GPTune"], 3), fmt(stab["OT"], 3), fmt(stab["HB"], 3)]
        )
        record[str(eps)] = {
            "win_vs_ot": w_ot,
            "win_vs_hb": w_hb,
            "stability": stab,
            "gptune_best": gpt_best.tolist(),
            "ot_best": ot_best.tolist(),
            "hb_best": hb_best.tolist(),
        }

    print_table(
        "Tab. 4: hypre WinTask and mean stability "
        "(paper: GPTune wins 60-83% and has smallest stability everywhere)",
        ["nodes", "eps_tot", "WinTask vs OT", "WinTask vs HB",
         "stab GPTune", "stab OT", "stab HB"],
        rows,
    )
    save_results("tab4_hypre", record)

    # paper shape: GPTune's anytime performance (stability) leads the
    # baselines.  At our δ = 5 a single task flips a row, so the assertion
    # is on the mean across the ε settings (the table-level claim).
    mean = {
        name: float(np.mean([rec["stability"][name] for rec in record.values()]))
        for name in ("GPTune", "OT", "HB")
    }
    assert mean["GPTune"] <= mean["OT"] + 0.1
    assert mean["GPTune"] <= mean["HB"] + 0.1
    wins = [rec["win_vs_ot"] + rec["win_vs_hb"] for rec in record.values()]
    assert max(wins) >= 0.8  # wins a majority against at least one baseline
    benchmark(lambda: None)
