"""Ablation — search-phase and modeling-phase choices.

1. **EI by PSO vs EI by random candidates** (Sec. 3.1 argues for global
   evolutionary optimization of the cheap acquisition; HpBandSter's
   TPE-style candidate sampling is "faster, but less accurate", Sec. 5).
2. **Multi-start count n_start** for the L-BFGS hyperparameter fit
   (Sec. 4.3 distributes restarts over MPI ranks because they matter).
3. **Performance-model hyperparameter update on/off** — Sec. 3.3 warns "a
   bad hyperparameter estimate will result in worse tuning performance
   compared to no performance model"; we verify a *mis-calibrated frozen*
   model predicts worse than an updated one.
"""

import numpy as np

from harness import fmt, print_table, save_results
from repro.apps.analytical import analytical_function
from repro.core import LCM, EIAcquisition, LinearPerformanceModel, ParticleSwarm

DELTA, TRAIN = 4, 8


def _fit(rng, n_start=2, seed=0):
    X, y, tid = [], [], []
    for i in range(DELTA):
        xs = rng.random(TRAIN)
        X.append(xs[:, None])
        y.append(analytical_function(0.5 * i, xs))
        tid.extend([i] * TRAIN)
    X, y, tid = np.vstack(X), np.concatenate(y), np.array(tid)
    return LCM(DELTA, 1, n_latent=2, seed=seed, n_start=n_start).fit(X, y, tid), X, y, tid


def test_ablation_pso_vs_random_candidates(benchmark):
    rng = np.random.default_rng(23)
    lcm, X, y, tid = _fit(rng)
    rows, record = [], {}
    for i in range(DELTA):
        acq = EIAcquisition(lambda Xq, i=i: lcm.predict(i, Xq), y_best=float(y[tid == i].min()))
        budget = 24 * 15  # equal acquisition-evaluation budgets
        _, ei_pso = ParticleSwarm(1, n_particles=24, iterations=15, seed=i).maximize(acq)
        cand = rng.random((budget, 1))
        ei_rand = float(np.max(acq(cand)))
        rows.append([i, fmt(ei_pso, 4), fmt(ei_rand, 4)])
        record[str(i)] = {"pso": ei_pso, "random": ei_rand}
    print_table(
        "Ablation: max EI found, PSO vs equal-budget random candidates",
        ["task", "EI (PSO)", "EI (random)"],
        rows,
    )
    save_results("ablation_pso_vs_random", record)

    pso_wins = sum(1 for r in record.values() if r["pso"] >= r["random"] - 1e-12)
    assert pso_wins >= DELTA - 1  # PSO at least ties on nearly every task
    benchmark(lambda: None)


def test_ablation_multistart(benchmark):
    rows, lls = [], {}
    for n_start in (1, 2, 4):
        rng = np.random.default_rng(29)
        lcm, *_ = _fit(rng, n_start=n_start, seed=7)
        rows.append([n_start, fmt(lcm.log_likelihood_, 6)])
        lls[n_start] = lcm.log_likelihood_
    print_table("Ablation: L-BFGS multi-start count", ["n_start", "log-likelihood"], rows)
    save_results("ablation_multistart", {str(k): v for k, v in lls.items()})

    # more restarts can only improve the best-of restarts likelihood
    assert lls[4] >= lls[1] - 1e-6
    assert lls[2] >= lls[1] - 1e-6
    benchmark(lambda: None)


def test_ablation_perfmodel_update(benchmark):
    """Frozen-bad vs refitted model coefficients (Sec. 3.3's warning)."""
    rng = np.random.default_rng(31)
    true_c = np.array([3.0, 0.5])
    feats = [lambda t, c: c["a"], lambda t, c: c["b"]]
    cfgs = [{"a": float(a), "b": float(b)} for a, b in rng.random((30, 2))]
    y = np.array([true_c[0] * c["a"] + true_c[1] * c["b"] for c in cfgs])

    frozen = LinearPerformanceModel(feats, initial_coefficients=[0.01, 50.0])  # badly wrong
    updated = LinearPerformanceModel(feats, initial_coefficients=[0.01, 50.0])
    updated.update([{}] * len(cfgs), cfgs, y)

    err_frozen = np.sqrt(np.mean([(frozen.predict({}, c) - yy) ** 2 for c, yy in zip(cfgs, y)]))
    err_updated = np.sqrt(np.mean([(updated.predict({}, c) - yy) ** 2 for c, yy in zip(cfgs, y)]))
    print_table(
        "Ablation: performance-model hyperparameter update (Sec. 3.3)",
        ["variant", "RMSE"],
        [["frozen bad coefficients", fmt(err_frozen, 4)], ["on-the-fly NNLS update", fmt(err_updated, 4)]],
    )
    save_results("ablation_perfmodel_update", {"frozen": float(err_frozen), "updated": float(err_updated)})

    assert err_updated < 0.05 * err_frozen
    benchmark(lambda: None)
