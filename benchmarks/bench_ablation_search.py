"""Ablation + regression gates — search-phase and modeling-phase choices.

pytest-benchmark ablations:

1. **EI by PSO vs EI by random candidates** (Sec. 3.1 argues for global
   evolutionary optimization of the cheap acquisition; HpBandSter's
   TPE-style candidate sampling is "faster, but less accurate", Sec. 5).
2. **Multi-start count n_start** for the L-BFGS hyperparameter fit
   (Sec. 4.3 distributes restarts over MPI ranks because they matter).
3. **Performance-model hyperparameter update on/off** — Sec. 3.3 warns "a
   bad hyperparameter estimate will result in worse tuning performance
   compared to no performance model"; we verify a *mis-calibrated frozen*
   model predicts worse than an updated one.

Run as a script, this file is additionally the gated harness for the
lockstep batched search phase: it times the three search execution modes
(sequential reference, lockstep batched, executor-parallel) on an 8-task
campaign at the default PSO settings and writes
``benchmarks/results/BENCH_search.json`` with wall-clock search times and
``phase.search`` span totals.  ``--check`` runs the deterministic CI gates
(wall-clock speedups stay informational so the job cannot be flaky):

* **equivalence** — ``LCM.predict_tasks`` must match per-task ``predict``
  within 1e-10 on random fits (shared and per-task candidate blocks);
* **quality** — the fixed-seed batched campaign's incumbents must be within
  5% of the sequential reference's;
* **determinism** — rerunning batched and sequential campaigns with the
  same seed must reproduce every evaluation exactly, and the expected
  ``search-mode`` event must be recorded for each mode.

Run::

    PYTHONPATH=src python benchmarks/bench_ablation_search.py            # timings
    PYTHONPATH=src python benchmarks/bench_ablation_search.py --check    # CI gates
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from harness import fmt, print_table, save_results
from repro.apps.analytical import analytical_function
from repro.core import (
    LCM,
    EIAcquisition,
    GPTune,
    LinearPerformanceModel,
    Options,
    ParticleSwarm,
    Real,
    Space,
    TuningProblem,
)
from repro.reporting import phase_breakdown

DELTA, TRAIN = 4, 8

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_search.json"
)

#: the acceptance point: 8 tasks × default PSO settings (40 particles, 30 iters)
N_TASKS, N_SAMPLES = 8, 24

#: search execution modes compared by the harness
MODES = {
    "sequential": dict(search_batched=False, search_backend="serial"),
    "batched": dict(search_batched=True, search_backend="serial"),
    "executor": dict(search_batched=False, search_backend="thread", n_workers=4),
}


def _fit(rng, n_start=2, seed=0):
    X, y, tid = [], [], []
    for i in range(DELTA):
        xs = rng.random(TRAIN)
        X.append(xs[:, None])
        y.append(analytical_function(0.5 * i, xs))
        tid.extend([i] * TRAIN)
    X, y, tid = np.vstack(X), np.concatenate(y), np.array(tid)
    return LCM(DELTA, 1, n_latent=2, seed=seed, n_start=n_start).fit(X, y, tid), X, y, tid


def test_ablation_pso_vs_random_candidates(benchmark):
    rng = np.random.default_rng(23)
    lcm, X, y, tid = _fit(rng)
    rows, record = [], {}
    for i in range(DELTA):
        acq = EIAcquisition(lambda Xq, i=i: lcm.predict(i, Xq), y_best=float(y[tid == i].min()))
        budget = 24 * 15  # equal acquisition-evaluation budgets
        _, ei_pso = ParticleSwarm(1, n_particles=24, iterations=15, seed=i).maximize(acq)
        cand = rng.random((budget, 1))
        ei_rand = float(np.max(acq(cand)))
        rows.append([i, fmt(ei_pso, 4), fmt(ei_rand, 4)])
        record[str(i)] = {"pso": ei_pso, "random": ei_rand}
    print_table(
        "Ablation: max EI found, PSO vs equal-budget random candidates",
        ["task", "EI (PSO)", "EI (random)"],
        rows,
    )
    save_results("ablation_pso_vs_random", record)

    pso_wins = sum(1 for r in record.values() if r["pso"] >= r["random"] - 1e-12)
    assert pso_wins >= DELTA - 1  # PSO at least ties on nearly every task
    benchmark(lambda: None)


def test_ablation_multistart(benchmark):
    rows, lls = [], {}
    for n_start in (1, 2, 4):
        rng = np.random.default_rng(29)
        lcm, *_ = _fit(rng, n_start=n_start, seed=7)
        rows.append([n_start, fmt(lcm.log_likelihood_, 6)])
        lls[n_start] = lcm.log_likelihood_
    print_table("Ablation: L-BFGS multi-start count", ["n_start", "log-likelihood"], rows)
    save_results("ablation_multistart", {str(k): v for k, v in lls.items()})

    # more restarts can only improve the best-of restarts likelihood
    assert lls[4] >= lls[1] - 1e-6
    assert lls[2] >= lls[1] - 1e-6
    benchmark(lambda: None)


def test_ablation_perfmodel_update(benchmark):
    """Frozen-bad vs refitted model coefficients (Sec. 3.3's warning)."""
    rng = np.random.default_rng(31)
    true_c = np.array([3.0, 0.5])
    feats = [lambda t, c: c["a"], lambda t, c: c["b"]]
    cfgs = [{"a": float(a), "b": float(b)} for a, b in rng.random((30, 2))]
    y = np.array([true_c[0] * c["a"] + true_c[1] * c["b"] for c in cfgs])

    frozen = LinearPerformanceModel(feats, initial_coefficients=[0.01, 50.0])  # badly wrong
    updated = LinearPerformanceModel(feats, initial_coefficients=[0.01, 50.0])
    updated.update([{}] * len(cfgs), cfgs, y)

    err_frozen = np.sqrt(np.mean([(frozen.predict({}, c) - yy) ** 2 for c, yy in zip(cfgs, y)]))
    err_updated = np.sqrt(np.mean([(updated.predict({}, c) - yy) ** 2 for c, yy in zip(cfgs, y)]))
    print_table(
        "Ablation: performance-model hyperparameter update (Sec. 3.3)",
        ["variant", "RMSE"],
        [["frozen bad coefficients", fmt(err_frozen, 4)], ["on-the-fly NNLS update", fmt(err_updated, 4)]],
    )
    save_results("ablation_perfmodel_update", {"frozen": float(err_frozen), "updated": float(err_updated)})

    assert err_updated < 0.05 * err_frozen
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# Gated harness: lockstep batched search phase (script entry point)
# ---------------------------------------------------------------------------


def _search_problem():
    return TuningProblem(
        task_space=Space([Real("t", 0.0, 1.0)]),
        tuning_space=Space([Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)]),
        objective=lambda task, cfg: 1.0
        + (cfg["x"] - 0.2 - 0.3 * task["t"]) ** 2
        + (cfg["y"] - 0.7 * task["t"]) ** 2,
        name="bench-search-modes",
    )


def _search_tasks(n_tasks=N_TASKS):
    return [{"t": float(t)} for t in np.linspace(0.05, 0.95, n_tasks)]


def _search_campaign(**kw):
    """8-task campaign at *default* PSO settings (40 particles, 30 iters)."""
    opts = Options(seed=11, n_start=1, lbfgs_maxiter=40, telemetry=True, **kw)
    return GPTune(_search_problem(), opts).tune(_search_tasks(), N_SAMPLES)


def bench_search_modes(repeats):
    """Time every search mode; keep the result + fastest timings per mode."""
    out, results = {}, {}
    for mode, kw in MODES.items():
        best, res = None, None
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = _search_campaign(**kw)
            wall = time.perf_counter() - t0
            span = phase_breakdown(res.events.events).get(
                "phase.search", {"count": 0, "total_s": 0.0}
            )
            timing = {
                "search_s": float(res.stats["search_time"]),
                "campaign_s": wall,
                "span_phase_search_total_s": float(span["total_s"]),
                "span_phase_search_count": int(span["count"]),
                "best_values": [float(v) for v in res.best_values()],
            }
            if best is None or timing["search_s"] < best["search_s"]:
                best = timing
        out[mode], results[mode] = best, res
        print(f"  {mode:<10} search {best['search_s']*1e3:8.1f} ms   "
              f"phase.search span {best['span_phase_search_total_s']*1e3:8.1f} ms "
              f"({best['span_phase_search_count']} spans)   "
              f"campaign {best['campaign_s']:6.2f} s")
    seq, bat = out["sequential"]["search_s"], out["batched"]["search_s"]
    out["speedup_batched_vs_sequential"] = seq / bat if bat > 0 else float("inf")
    exe = out["executor"]["search_s"]
    out["speedup_executor_vs_sequential"] = seq / exe if exe > 0 else float("inf")
    print(f"  batched search-phase speedup at {N_TASKS} tasks x default PSO: "
          f"{out['speedup_batched_vs_sequential']:.2f}x (informational target >= 3x)")
    return out, results


def check_predict_tasks_equivalence():
    """Gate: ``predict_tasks`` ≡ per-task ``predict`` within 1e-10."""
    rng = np.random.default_rng(7)
    worst = 0.0
    for delta, beta, q, n in [(2, 2, 1, 24), (4, 3, 2, 48), (8, 2, 2, 64)]:
        X = rng.random((n, beta))
        tidx = rng.integers(0, delta, n)
        y = np.sin(3.0 * X[:, 0]) + 0.3 * tidx + 0.05 * rng.normal(size=n)
        m = LCM(delta, beta, n_latent=q, seed=3, n_start=1, maxiter=30).fit(X, y, tidx)
        tasks = list(range(delta))
        for Xstar in (rng.random((10, beta)), rng.random((delta, 6, beta))):
            mu, var = m.predict_tasks(tasks, Xstar)
            for s, t in enumerate(tasks):
                block = Xstar if Xstar.ndim == 2 else Xstar[s]
                mu1, var1 = m.predict(t, block)
                worst = max(worst, float(np.max(np.abs(mu[s] - mu1))),
                            float(np.max(np.abs(var[s] - var1))))
    passed = worst < 1e-10
    print(f"  equivalence: |Δposterior| <= {worst:.3e} (gate 1e-10)  "
          f"{'PASS' if passed else 'FAIL'}")
    return {"max_diff": worst, "passed": passed}


def check_campaign_gates(results):
    """Gates on the timed runs: quality, search-mode events, determinism."""
    seq, bat = results["sequential"], results["batched"]
    quality = bool(np.all(bat.best_values() <= seq.best_values() * 1.05))
    print(f"  quality: batched incumbents within 5% of sequential on all "
          f"{N_TASKS} tasks  {'PASS' if quality else 'FAIL'}")

    modes_ok = True
    for mode, res in results.items():
        seen = [e.fields.get("mode") for e in res.events.events
                if e.kind == "search-mode"]
        spans = [e for e in res.events.events
                 if e.kind == "span" and e.fields.get("name") == "phase.search"]
        ok = seen == [mode] and bool(spans) and all(
            s.fields.get("mode") == mode for s in spans
        )
        modes_ok = modes_ok and ok
        print(f"  telemetry[{mode}]: search-mode events {seen}, "
              f"{len(spans)} phase.search span(s)  {'PASS' if ok else 'FAIL'}")

    determinism = True
    for mode in ("sequential", "batched"):
        rerun = _search_campaign(**MODES[mode])
        same = rerun.data.to_records() == results[mode].data.to_records()
        determinism = determinism and same
        print(f"  determinism[{mode}]: same-seed rerun identical  "
              f"{'PASS' if same else 'FAIL'}")

    passed = quality and modes_ok and determinism
    return {
        "quality_within_5pct": quality,
        "search_mode_events": modes_ok,
        "same_seed_identical": determinism,
        "passed": passed,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Search-phase mode benchmark (sequential vs batched vs executor)"
    )
    ap.add_argument("--check", action="store_true",
                    help="run the deterministic CI gates (plus quick timings)")
    ap.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = ap.parse_args(argv)

    print(f"== search-phase modes: {N_TASKS} tasks x {N_SAMPLES} samples, "
          f"default PSO settings ==")
    timings, results = bench_search_modes(repeats=2 if args.check else 3)
    payload = {
        "config": {
            "n_tasks": N_TASKS,
            "n_samples": N_SAMPLES,
            "modes": {k: dict(v) for k, v in MODES.items()},
        },
        "modes": timings,
    }

    ok = True
    if args.check:
        print("== deterministic gates ==")
        eq = check_predict_tasks_equivalence()
        camp = check_campaign_gates(results)
        payload["checks"] = {
            "equivalence": eq,
            "campaign": camp,
            "passed": eq["passed"] and camp["passed"],
        }
        ok = payload["checks"]["passed"]

    os.makedirs(os.path.dirname(os.path.abspath(args.out)) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
