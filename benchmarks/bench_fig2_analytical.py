"""Fig. 2 — the analytical objective y(t, x) for four task values.

The paper plots Eq. (11) for t ∈ {0, 2, 4, 6} with the global minimum
marked.  This benchmark regenerates the four curves (as data series) and the
minima, timing the dense-scan minimizer; it asserts the property the figure
illustrates — larger t produces a more oscillatory, harder objective.
"""

import numpy as np

from harness import fmt, print_table, save_results
from repro.apps.analytical import analytical_function, true_minimum

TASKS = [0.0, 2.0, 4.0, 6.0]


def _oscillations(t: float, resolution: int = 8001) -> int:
    xs = np.linspace(0.0, 1.0, resolution)
    ys = analytical_function(t, xs)
    return int(np.sum(np.diff(np.sign(np.diff(ys))) != 0))


def test_fig2_curves_and_minima(benchmark):
    xs = np.linspace(0.0, 1.0, 2001)

    def scan_all():
        return {t: true_minimum(t, resolution=50_001) for t in TASKS}

    minima = benchmark(scan_all)

    rows = []
    series = {}
    for t in TASKS:
        ys = analytical_function(t, xs)
        series[str(t)] = {"x": xs.tolist()[::20], "y": ys.tolist()[::20]}
        xstar, ystar = minima[t]
        rows.append([t, fmt(xstar), fmt(ystar), _oscillations(t)])
    print_table(
        "Fig. 2: Eq. (11) minima per task (paper: four increasingly wiggly curves)",
        ["t", "x*", "y*", "#oscillations"],
        rows,
    )
    save_results(
        "fig2_analytical",
        {"minima": {str(t): list(minima[t]) for t in TASKS}, "series_downsampled": series},
    )

    # the figure's point: difficulty (oscillation count) grows with t
    osc = [_oscillations(t) for t in TASKS]
    assert osc == sorted(osc)
    assert all(0.0 <= minima[t][0] <= 1.0 for t in TASKS)
