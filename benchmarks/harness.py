"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at reduced
scale (see DESIGN.md §4 for the experiment index and per-benchmark
downscaling).  Results are printed as paper-style rows *and* dumped as JSON
under ``benchmarks/results/`` so EXPERIMENTS.md can cite exact numbers.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: fast-but-honest GPTune options used across the benchmark suite
FAST_OPTS = dict(n_start=2, lbfgs_maxiter=80, pso_iters=15, ei_candidates=24)


def save_results(name: str, payload: Dict[str, Any]) -> str:
    """Write a benchmark's payload to ``benchmarks/results/<name>.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
    return path


def print_table(title: str, headers, rows) -> None:
    """Print a fixed-width table resembling the paper's layout."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def fmt(x: float, nd: int = 4) -> str:
    """Compact float formatting for table cells."""
    return f"{x:.{nd}g}"
