"""Sparse inducing-point LCM vs the exact LCM: fit cost and tuning quality.

The exact LCM factorizes the full Nδ×Nδ task-stacked covariance — O(N³)
per likelihood evaluation — which caps multitask campaigns at a few
hundred observations.  The sparse backend (``repro.core.model.SparseLCM``)
fits θ on M inducing rows and assembles a Nyström/SoR posterior in
O(N·M²), turning the modeling phase linear in N.

This harness measures both claims at N≈2000 and gates the registry
semantics deterministically.  ``--check`` runs the CI gates and writes
``benchmarks/results/BENCH_model.json``:

* **fit-speedup** — at N≈2000 the sparse fit is ≥ 10× faster than the
  exact fit (same single restart, same L-BFGS iteration cap);
* **small-n-exact** — below ``sparse_threshold`` the ``auto`` policy
  selects the exact backend and an ``auto`` campaign reproduces the
  explicit ``exact-lcm`` campaign record-for-record (and incumbents to
  1e-8);
* **quality** — a forced-sparse campaign's incumbents land within 5% of
  the exact campaign's on every task;
* **sparse-determinism** — a same-seed forced-sparse async campaign
  reproduces every evaluation exactly;
* **sparse-resume** — a forced-sparse async campaign killed mid-flight
  and resumed from its checkpoint reproduces the uninterrupted
  evaluation set exactly.

Run::

    PYTHONPATH=src python benchmarks/bench_sparse_model.py           # timings
    PYTHONPATH=src python benchmarks/bench_sparse_model.py --check   # CI gates
"""

import argparse
import json
import math
import os
import time

import numpy as np

from harness import fmt, print_table
from repro.core import (
    GPTune,
    Integer,
    LCM,
    Options,
    Real,
    Space,
    SparseLCM,
    TuningProblem,
    select_backend,
)
from repro.runtime.async_engine import SimScheduler
from repro.runtime.simclock import SimClock

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_model.json"
)

#: the scaling point: far past any exact-LCM comfort zone
N_LARGE, N_TASKS_LARGE, N_DIMS, N_INDUCING = 2000, 4, 2, 128

#: L-BFGS cap shared by both fits so the comparison is per-iteration fair
FIT_MAXITER = 10

#: campaign shape for the quality/determinism gates
N_TASKS, N_SAMPLES, N_WORKERS = 4, 10, 4
TASKS = [{"t": i} for i in range(N_TASKS)]


def objective(t, c):
    """Smooth single-objective surface with a task-dependent optimum."""
    x = float(c["x"])
    mu = 0.2 + 0.06 * float(t["t"])
    return 1.0 + (x - mu) ** 2


def duration(task, cfg):
    """Deterministic virtual duration, a pure hash of (task, x)."""
    x = float(cfg["x"])
    u = math.sin(x * 12.9898 + float(task) * 78.233) * 43758.5453
    u -= math.floor(u)
    return 1.0 + 2.0 * u


def _problem():
    return TuningProblem(
        Space([Integer("t", 0, 16)]),
        Space([Real("x", 0.0, 1.0)]),
        objective,
    )


def _options(**kw):
    base = dict(
        seed=7, n_start=1, pso_iters=8, ei_candidates=12, lbfgs_maxiter=40
    )
    base.update(kw)
    return Options(**base)


def _synthetic(n, n_tasks, n_dims, seed=0):
    """Smooth correlated multitask data at arbitrary scale."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, n_dims))
    tidx = rng.integers(0, n_tasks, size=n)
    tidx[:n_tasks] = np.arange(n_tasks)  # every task observed
    y = (
        np.sin(3.0 * X[:, 0])
        + 0.5 * np.cos(2.0 * X[:, 1 % n_dims])
        + 0.3 * tidx
        + 0.05 * rng.normal(size=n)
    )
    return X, y, tidx


def time_fits():
    """Wall-clock one exact and one sparse fit at N_LARGE observations."""
    X, y, tidx = _synthetic(N_LARGE, N_TASKS_LARGE, N_DIMS)

    t0 = time.perf_counter()
    sparse = SparseLCM(
        N_TASKS_LARGE, N_DIMS, n_inducing=N_INDUCING,
        n_start=1, maxiter=FIT_MAXITER, seed=0,
    ).fit(X, y, tidx)
    t_sparse = time.perf_counter() - t0

    t0 = time.perf_counter()
    exact = LCM(
        N_TASKS_LARGE, N_DIMS, n_start=1, maxiter=FIT_MAXITER, seed=0
    ).fit(X, y, tidx)
    t_exact = time.perf_counter() - t0

    return t_exact, t_sparse, exact, sparse


def run_campaign(**opt_kw):
    opts = _options(**opt_kw)
    return GPTune(_problem(), opts).tune(TASKS, N_SAMPLES)


def run_sparse_async():
    opts = _options(
        model_backend="sparse-lcm", n_inducing=8,
        async_eval=True, max_inflight=N_WORKERS, n_workers=N_WORKERS,
    )
    clock = SimClock()
    tuner = GPTune(_problem(), opts, scheduler=SimScheduler(duration, clock=clock))
    res = tuner.tune(TASKS, N_SAMPLES)
    return res, clock.now


class _Kill(Exception):
    pass


def check_sparse_resume(reference):
    """Kill a forced-sparse async campaign mid-flight, resume, compare."""
    import tempfile

    def kill_at_3(rounds, data, stats):
        if rounds == 3:
            raise _Kill()

    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, "sparse.ck.json")
        opts = _options(
            model_backend="sparse-lcm", n_inducing=8,
            async_eval=True, max_inflight=N_WORKERS, n_workers=N_WORKERS,
            checkpoint_path=path,
        )
        tuner = GPTune(
            _problem(), opts, scheduler=SimScheduler(duration, clock=SimClock())
        )
        try:
            tuner.tune(TASKS, N_SAMPLES, callback=kill_at_3)
        except _Kill:
            pass
        fresh = GPTune(
            _problem(), opts, scheduler=SimScheduler(duration, clock=SimClock())
        )
        resumed = fresh.resume(path)
    return bool(resumed.data.to_records() == reference.data.to_records())


def check_gates(t_exact, t_sparse):
    """The five deterministic CI gates; prints PASS/FAIL per gate."""
    speedup = t_exact / t_sparse
    g_speed = bool(speedup >= 10.0)
    print(f"  fit-speedup: {fmt(speedup)}x at N={N_LARGE} "
          f"(exact {fmt(t_exact)}s vs sparse {fmt(t_sparse)}s)  "
          f"{'PASS' if g_speed else 'FAIL'}")

    auto_res = run_campaign(model_backend="auto")
    exact_res = run_campaign(model_backend="exact-lcm")
    small_n = N_TASKS * N_SAMPLES
    g_small = bool(
        select_backend("auto", small_n, _options().sparse_threshold) == "exact-lcm"
        and auto_res.data.to_records() == exact_res.data.to_records()
        and np.allclose(
            auto_res.best_values(), exact_res.best_values(), atol=1e-8
        )
    )
    print(f"  small-n-exact: auto selects exact below threshold and "
          f"reproduces the exact campaign  {'PASS' if g_small else 'FAIL'}")

    sparse_res = run_campaign(model_backend="sparse-lcm", n_inducing=8)
    g_quality = bool(
        np.all(sparse_res.best_values() <= exact_res.best_values() * 1.05)
    )
    print(f"  quality: forced-sparse incumbents within 5% of exact on all "
          f"{N_TASKS} tasks  {'PASS' if g_quality else 'FAIL'}")

    a1, m1 = run_sparse_async()
    a2, m2 = run_sparse_async()
    g_det = bool(a1.data.to_records() == a2.data.to_records() and m1 == m2)
    print(f"  sparse-determinism: same-seed async sparse rerun identical "
          f"(makespan {fmt(m1)}s virtual)  {'PASS' if g_det else 'FAIL'}")

    g_resume = check_sparse_resume(a1)
    print(f"  sparse-resume: killed-mid-flight sparse campaign resumes to "
          f"the identical evaluation set  {'PASS' if g_resume else 'FAIL'}")

    return {
        "fit_speedup_at_least_10x": g_speed,
        "small_n_selects_exact": g_small,
        "quality_within_5pct": g_quality,
        "same_seed_identical": g_det,
        "deterministic_resume": g_resume,
        "passed": g_speed and g_small and g_quality and g_det and g_resume,
    }, {
        "exact_best": [float(v) for v in exact_res.best_values()],
        "sparse_best": [float(v) for v in sparse_res.best_values()],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Sparse inducing-point LCM vs exact LCM fit cost"
    )
    ap.add_argument("--check", action="store_true",
                    help="run the deterministic CI gates")
    ap.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = ap.parse_args(argv)

    print(f"== exact vs sparse LCM fit: N={N_LARGE}, δ={N_TASKS_LARGE}, "
          f"M={N_INDUCING}, maxiter={FIT_MAXITER} ==")
    t_exact, t_sparse, exact, sparse = time_fits()
    print_table(
        "surrogate fit cost",
        ["backend", "fit (s)", "log-likelihood", "complexity"],
        [
            ["exact-lcm", fmt(t_exact), fmt(exact.log_likelihood_), "O(N^3)"],
            ["sparse-lcm", fmt(t_sparse), fmt(sparse.log_likelihood_),
             "O(N*M^2)"],
        ],
    )
    print(f"speedup {fmt(t_exact / t_sparse)}x")

    payload = {
        "config": {
            "n_large": N_LARGE,
            "n_tasks_large": N_TASKS_LARGE,
            "n_inducing": N_INDUCING,
            "fit_maxiter": FIT_MAXITER,
            "campaign": {"n_tasks": N_TASKS, "n_samples": N_SAMPLES},
        },
        "fit": {
            "exact_seconds": float(t_exact),
            "sparse_seconds": float(t_sparse),
            "speedup": float(t_exact / t_sparse),
            "exact_log_likelihood": float(exact.log_likelihood_),
            "sparse_log_likelihood": float(sparse.log_likelihood_),
        },
    }

    ok = True
    if args.check:
        print("== deterministic gates ==")
        payload["checks"], payload["campaigns"] = check_gates(t_exact, t_sparse)
        ok = payload["checks"]["passed"]

    os.makedirs(os.path.dirname(os.path.abspath(args.out)) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
