"""Tab. 5 + Fig. 7 — multi-objective tuning of SuperLU_DIST (time, memory).

Paper setup, 8 Cori nodes:

* Tab. 5 / Fig. 7 left (matrix Si2, ε_tot = 80): single-objective optima for
  time and memory differ wildly from the default (COLPERM 4, LOOK 10,
  p 256, p_r 16, NSUP 128, NREL 20) and land on/near the Pareto front found
  by the γ = 2 multi-objective MLA; tuning improves time by 83% and memory
  by 93% over default.
* Fig. 7 right (8 PARSEC matrices): the multitask multi-objective fronts
  dominate the single-task ones almost everywhere.

Downscaling: ε_tot = 24, four matrices for the right panel; dominance is
compared by 2-D hypervolume.
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.superlu import SuperLUDIST
from repro.core import GPTune, Options
from repro.core.metrics import hypervolume_2d, pareto_mask
from repro.runtime import cori_haswell

MATRICES = ["Si2", "SiH4", "SiNa", "Na5"]
EPS = 24


def _mo_options(seed):
    return Options(seed=seed, nsga_pop=24, nsga_gens=12, pareto_batch=3, **FAST_OPTS)


def test_tab5_fig7_left_si2(benchmark):
    app2 = SuperLUDIST(
        machine=cori_haswell(8), matrices=["Si2"], objectives=("time", "memory"), scale=0.04, seed=0
    )
    app_t = SuperLUDIST(
        machine=cori_haswell(8), matrices=["Si2"], objectives=("time",), scale=0.04, seed=0
    )
    app_m = SuperLUDIST(
        machine=cori_haswell(8), matrices=["Si2"], objectives=("memory",), scale=0.04, seed=0
    )
    task = [{"matrix": "Si2"}]

    mo = GPTune(app2.problem(), _mo_options(3)).tune(task, EPS)
    so_time = GPTune(app_t.problem(), Options(seed=3, **FAST_OPTS)).tune(task, EPS)
    so_mem = GPTune(app_m.problem(), Options(seed=3, **FAST_OPTS)).tune(task, EPS)

    default_t, default_m = app2.evaluate_default("Si2")
    cfg_t, best_t = so_time.best(0)
    cfg_m, best_m = so_mem.best(0)
    _, front = mo.pareto_front(0)

    print_table(
        "Tab. 5: default vs single-objective optima (paper: optima far from default)",
        ["setting", "COLPERM", "LOOK", "p", "p_r", "NSUP", "NREL"],
        [
            ["Default"] + [str(app2.default_config(task[0])[k]) for k in
                           ("COLPERM", "LOOK", "p", "p_r", "NSUP", "NREL")],
            ["Time-opt"] + [str(cfg_t[k]) for k in ("COLPERM", "LOOK", "p", "p_r", "NSUP", "NREL")],
            ["Memory-opt"] + [str(cfg_m[k]) for k in ("COLPERM", "LOOK", "p", "p_r", "NSUP", "NREL")],
        ],
    )
    print_table(
        "Fig. 7 left: Si2 objectives (paper: 83% time / 93% memory improvement)",
        ["point", "time s", "memory B"],
        [
            ["default", fmt(default_t), fmt(default_m)],
            ["single-obj time", fmt(best_t), "-"],
            ["single-obj memory", "-", fmt(best_m)],
        ]
        + [[f"pareto[{i}]", fmt(p[0]), fmt(p[1])] for i, p in enumerate(front[:8])],
    )
    save_results(
        "tab5_fig7_si2",
        {
            "default": [default_t, default_m],
            "time_opt": {"config": cfg_t, "time": best_t},
            "memory_opt": {"config": cfg_m, "memory": best_m},
            "pareto_front": front.tolist(),
            "time_improvement": 1.0 - best_t / default_t,
            "memory_improvement": 1.0 - best_m / default_m,
        },
    )

    # paper shapes: big improvements over default in both dimensions...
    assert best_t < 0.8 * default_t
    assert best_m < 0.6 * default_m
    # ...and the single-objective optima lie on/near the Pareto front:
    # the front's per-dimension extremes approach the dedicated optima
    # (within 2x — the front also covers the whole tradeoff, so its extreme
    # ends get only a fraction of the budget the single-objective runs got)
    assert front[:, 0].min() <= best_t * 2.0
    assert front[:, 1].min() <= best_m * 2.0
    benchmark(lambda: None)


def test_fig7_right_multitask_fronts(benchmark):
    app = SuperLUDIST(
        machine=cori_haswell(8),
        matrices=MATRICES,
        objectives=("time", "memory"),
        scale=0.04,
        seed=0,
    )
    tasks = [{"matrix": m} for m in MATRICES]
    multi = GPTune(app.problem(), _mo_options(5)).tune(tasks, EPS)

    rows, record = [], {}
    dominated_counts = []
    for i, m in enumerate(MATRICES):
        single = GPTune(app.problem(), _mo_options(50 + i)).tune([tasks[i]], EPS)
        _, f_multi = multi.pareto_front(i)
        _, f_single = single.pareto_front(0)
        ref = np.maximum(f_multi.max(axis=0), f_single.max(axis=0)) * 1.1
        hv_m = hypervolume_2d(f_multi, ref)
        hv_s = hypervolume_2d(f_single, ref)
        # count single-task points that dominate some multitask point
        both = np.vstack([f_multi, f_single])
        mask = pareto_mask(both)
        single_on_joint = int(mask[len(f_multi):].sum())
        dominated_counts.append(single_on_joint / max(len(f_single), 1))
        rows.append([m, len(f_multi), len(f_single), fmt(hv_m, 4), fmt(hv_s, 4)])
        record[m] = {
            "front_multi": f_multi.tolist(),
            "front_single": f_single.tolist(),
            "hv_multi": hv_m,
            "hv_single": hv_s,
        }

    print_table(
        "Fig. 7 right: multitask vs single-task Pareto fronts "
        "(paper: very few single-task points dominate multitask ones)",
        ["matrix", "|front| multi", "|front| single", "HV multi", "HV single"],
        rows,
    )
    save_results("fig7_right_multitask", record)

    # paper shape: multitask fronts are at least competitive in hypervolume
    hv_wins = sum(1 for m in MATRICES if record[m]["hv_multi"] >= 0.9 * record[m]["hv_single"])
    assert hv_wins >= len(MATRICES) // 2
    benchmark(lambda: None)
