"""Async streaming engine vs lockstep MLA under heavy-tailed evaluation times.

The lockstep loop (Algorithm 1) barriers every task on the slowest
evaluation of each batch; real application runs have heavy-tailed wall
times (a node allocation stall, a pathological configuration), so one
straggler holds the whole campaign.  The async engine
(``Options(async_eval=True)``) lets every other evaluation stream past it.

This harness makes that claim *deterministic*: evaluation durations are a
pure hash of ``(task, x)`` with a heavy tail (~7% of configurations take
50× the base time), executed on the virtual-clock
:class:`~repro.runtime.async_engine.SimScheduler`.  The async campaign's
makespan is the simulated clock at completion; the lockstep campaign's
makespan is the same durations pushed through the barrier schedule it
actually executed (per-batch LPT list scheduling over the same worker
count), reconstructed from its evaluation order.  No real sleeping, no
flakiness.

``--check`` runs the CI gates and writes
``benchmarks/results/BENCH_async.json``:

* **speedup** — async makespan ≥ 2× better than lockstep on the 8-task
  campaign;
* **quality** — async incumbents within 5% of the lockstep reference on
  every task (streaming must not cost tuning quality);
* **no-duplicates** — the async campaign never evaluates a configuration
  twice for the same task (pending-point penalty + dedup);
* **determinism** — a same-seed async rerun reproduces every evaluation
  exactly;
* **deterministic resume** — a campaign killed mid-flight (in-flight
  evaluations checkpointed with their remaining virtual durations) and
  resumed on a fresh scheduler reproduces the uninterrupted evaluation
  set exactly;
* **mo-speedup** — the *multi-objective* async campaign (per-task NSGA-II
  streaming) beats the lockstep NSGA-II barrier schedule by ≥ 1.5× on the
  same heavy-tailed durations;
* **mo-quality** — per task, the async campaign's 2-D Pareto hypervolume
  is within 5% of the lockstep reference (streaming must not cost front
  coverage).

Run::

    PYTHONPATH=src python benchmarks/bench_async_engine.py           # timings
    PYTHONPATH=src python benchmarks/bench_async_engine.py --check   # CI gates
"""

import argparse
import json
import math
import os

import numpy as np

from harness import fmt, print_table
from repro.core import GPTune, Integer, Options, Real, Space, TuningProblem
from repro.runtime.async_engine import SimScheduler
from repro.runtime.simclock import SimClock

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_async.json"
)

#: the acceptance point: 8 tasks, shared worker pool, per-task budget
N_TASKS, N_SAMPLES, N_WORKERS = 8, 10, 8
TASKS = [{"t": i} for i in range(N_TASKS)]

#: heavy-tail parameters: base ~U[1,3] virtual seconds, 50x for ~7% of configs
TAIL_FRACTION, TAIL_FACTOR = 0.07, 50.0


def objective(t, c):
    """Smooth single-objective surface with a task-dependent optimum."""
    x = float(c["x"])
    mu = 0.2 + 0.06 * float(t["t"])
    return 1.0 + (x - mu) ** 2


def duration(task, cfg):
    """Deterministic heavy-tailed virtual duration, a pure hash of (task, x).

    The same configuration costs the same whether the async or the lockstep
    campaign evaluates it, so the makespan comparison is apples-to-apples.
    """
    x = float(cfg["x"])
    u = math.sin(x * 12.9898 + float(task) * 78.233) * 43758.5453
    u -= math.floor(u)  # uniform-ish hash in [0, 1)
    d = 1.0 + 2.0 * u
    if u > 1.0 - TAIL_FRACTION:
        d *= TAIL_FACTOR
    return d


def _problem():
    return TuningProblem(
        Space([Integer("t", 0, N_TASKS)]),
        Space([Real("x", 0.0, 1.0)]),
        objective,
    )


def _options(**kw):
    base = dict(
        seed=5,
        n_start=2,
        pso_iters=8,
        ei_candidates=16,
        lbfgs_maxiter=40,
        n_workers=N_WORKERS,
    )
    base.update(kw)
    return Options(**base)


def run_async():
    """Async streaming campaign on the virtual clock; returns (result, makespan)."""
    clock = SimClock()
    sched = SimScheduler(duration, clock=clock)
    res = GPTune(
        _problem(),
        _options(async_eval=True, max_inflight=N_WORKERS),
        scheduler=sched,
    ).tune(TASKS, N_SAMPLES)
    return res, clock.now


def _lpt(durations, n_workers):
    """Longest-processing-time list-scheduling makespan over n_workers."""
    loads = [0.0] * n_workers
    for d in sorted(durations, reverse=True):
        k = loads.index(min(loads))
        loads[k] += d
    return max(loads) if durations else 0.0


def run_lockstep():
    """Lockstep campaign + its barrier-schedule makespan on the same durations.

    The lockstep loop evaluates the LHS design in one batch, then one
    proposal per task per iteration.  Each batch runs on ``N_WORKERS``
    workers (LPT); the barrier means batch walls add up — exactly the
    schedule ``ProcessBackend`` would execute, with the simulated durations
    substituted for real wall time.
    """
    res = GPTune(_problem(), _options(backend="serial")).tune(TASKS, N_SAMPLES)
    eps_init = max(2, int(round(N_SAMPLES * _options().initial_fraction)))
    design = [
        duration(i, res.data.X[i][k])
        for i in range(N_TASKS)
        for k in range(min(eps_init, len(res.data.X[i])))
    ]
    makespan = _lpt(design, N_WORKERS)
    for j in range(eps_init, N_SAMPLES):
        batch = [
            duration(i, res.data.X[i][j])
            for i in range(N_TASKS)
            if j < len(res.data.X[i])
        ]
        makespan += _lpt(batch, N_WORKERS)
    return res, makespan


def _no_duplicates(res):
    for i in range(N_TASKS):
        keys = [tuple(sorted(d.items())) for d in res.data.X[i]]
        if len(keys) != len(set(keys)):
            return False
    return True


class _Kill(Exception):
    pass


def check_deterministic_resume(async_res):
    """Kill the campaign mid-flight, resume from checkpoint, compare."""
    import tempfile

    def kill_at_3(rounds, data, stats):
        if rounds == 3:
            raise _Kill()

    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, "async.ck.json")
        opts = _options(
            async_eval=True, max_inflight=N_WORKERS, checkpoint_path=path
        )
        tuner = GPTune(
            _problem(), opts, scheduler=SimScheduler(duration, clock=SimClock())
        )
        try:
            tuner.tune(TASKS, N_SAMPLES, callback=kill_at_3)
        except _Kill:
            pass
        fresh = GPTune(
            _problem(), opts, scheduler=SimScheduler(duration, clock=SimClock())
        )
        resumed = fresh.resume(path)
    return bool(resumed.data.to_records() == async_res.data.to_records())


def mo_objective(t, c):
    """Two conflicting objectives: a task-dependent optimum vs a fixed one.

    The Pareto front spans ``x ∈ [0.2 + 0.06·t, 0.9]``, so front *coverage*
    (hypervolume) distinguishes a tuner that explores the trade-off from one
    that camps on a single compromise point.
    """
    x = float(c["x"])
    mu = 0.2 + 0.06 * float(t["t"])
    return [1.0 + (x - mu) ** 2, 1.0 + (x - 0.9) ** 2]


def _mo_problem():
    return TuningProblem(
        Space([Integer("t", 0, N_TASKS)]),
        Space([Real("x", 0.0, 1.0)]),
        mo_objective,
        n_objectives=2,
    )


def run_async_mo():
    """Multi-objective async campaign on the virtual clock."""
    clock = SimClock()
    sched = SimScheduler(duration, clock=clock)
    res = GPTune(
        _mo_problem(),
        _options(async_eval=True, max_inflight=N_WORKERS),
        scheduler=sched,
    ).tune(TASKS, N_SAMPLES)
    return res, clock.now


def run_lockstep_mo():
    """Lockstep NSGA-II campaign + its barrier-schedule makespan.

    Algorithm 2 evaluates the LHS design in one batch, then up to
    ``pareto_batch`` proposals per task per iteration; each iteration's
    proposals form one barrier batch (LPT over the shared workers), and the
    batch walls add up.
    """
    opts = _options(backend="serial")
    res = GPTune(_mo_problem(), opts).tune(TASKS, N_SAMPLES)
    eps_init = max(2, int(round(N_SAMPLES * opts.initial_fraction)))
    k = opts.pareto_batch
    design = [
        duration(i, res.data.X[i][r])
        for i in range(N_TASKS)
        for r in range(min(eps_init, len(res.data.X[i])))
    ]
    makespan = _lpt(design, N_WORKERS)
    j = eps_init
    while True:
        batch = [
            duration(i, res.data.X[i][r])
            for i in range(N_TASKS)
            for r in range(j, min(j + k, len(res.data.X[i])))
        ]
        if not batch:
            break
        makespan += _lpt(batch, N_WORKERS)
        j += k
    return res, makespan


def _hv2d(F, ref):
    """2-D hypervolume (minimization) of a point set against ``ref``.

    Standard sweep: sort by the first objective ascending and sum the
    rectangles each non-dominated point adds over the best second objective
    seen so far.  Points outside the reference box contribute nothing.
    """
    pts = sorted(
        (float(f[0]), float(f[1]))
        for f in F
        if f[0] <= ref[0] and f[1] <= ref[1]
    )
    hv, best1 = 0.0, float(ref[1])
    for f0, f1 in pts:
        if f1 < best1:
            hv += (ref[0] - f0) * (best1 - f1)
            best1 = f1
    return hv


def check_mo_gates():
    """Multi-objective streaming gates: makespan and Pareto hypervolume."""
    async_res, async_makespan = run_async_mo()
    lock_res, lock_makespan = run_lockstep_mo()

    speedup = lock_makespan / async_makespan
    g_speed = bool(speedup >= 1.5)
    print(f"  mo-speedup: {fmt(speedup)}x (lockstep {fmt(lock_makespan)}s vs "
          f"async {fmt(async_makespan)}s virtual)  "
          f"{'PASS' if g_speed else 'FAIL'}")

    hv_ratios = []
    for i in range(N_TASKS):
        Fa = np.asarray(async_res.data.Y[i], dtype=float)
        Fl = np.asarray(lock_res.data.Y[i], dtype=float)
        ref = np.max(np.vstack([Fa, Fl]), axis=0) + 0.1
        hv_a = _hv2d(async_res.pareto_front(i)[1], ref)
        hv_l = _hv2d(lock_res.pareto_front(i)[1], ref)
        hv_ratios.append(hv_a / hv_l if hv_l > 0 else 1.0)
    g_hv = bool(min(hv_ratios) >= 0.95)
    print(f"  mo-quality: per-task Pareto hypervolume within 5% of lockstep "
          f"(worst ratio {fmt(min(hv_ratios))})  {'PASS' if g_hv else 'FAIL'}")

    return {
        "makespan_virtual_s": float(async_makespan),
        "lockstep_makespan_virtual_s": float(lock_makespan),
        "speedup": float(speedup),
        "hypervolume_ratios": [float(r) for r in hv_ratios],
        "mo_speedup_at_least_1_5x": g_speed,
        "mo_hypervolume_within_5pct": g_hv,
    }


def check_gates(async_res, async_makespan, lock_res, lock_makespan):
    """The four deterministic CI gates; prints PASS/FAIL per gate."""
    speedup = lock_makespan / async_makespan
    g_speed = bool(speedup >= 2.0)
    print(f"  speedup: {fmt(speedup)}x (lockstep {fmt(lock_makespan)}s vs "
          f"async {fmt(async_makespan)}s virtual)  "
          f"{'PASS' if g_speed else 'FAIL'}")

    g_quality = bool(
        np.all(async_res.best_values() <= lock_res.best_values() * 1.05)
    )
    print(f"  quality: async incumbents within 5% of lockstep on all "
          f"{N_TASKS} tasks  {'PASS' if g_quality else 'FAIL'}")

    g_nodup = _no_duplicates(async_res)
    print(f"  no-duplicates: no config evaluated twice  "
          f"{'PASS' if g_nodup else 'FAIL'}")

    rerun, rerun_makespan = run_async()
    g_det = bool(
        rerun.data.to_records() == async_res.data.to_records()
        and rerun_makespan == async_makespan
    )
    print(f"  determinism: same-seed async rerun identical "
          f"(makespan {fmt(rerun_makespan)}s)  {'PASS' if g_det else 'FAIL'}")

    g_resume = check_deterministic_resume(async_res)
    print(f"  resume: killed-mid-flight campaign resumes to the identical "
          f"evaluation set  {'PASS' if g_resume else 'FAIL'}")

    mo = check_mo_gates()
    g_mo = mo["mo_speedup_at_least_1_5x"] and mo["mo_hypervolume_within_5pct"]

    return {
        "speedup_at_least_2x": g_speed,
        "quality_within_5pct": g_quality,
        "no_duplicate_evals": g_nodup,
        "same_seed_identical": g_det,
        "deterministic_resume": g_resume,
        "multi_objective": mo,
        "passed": g_speed and g_quality and g_nodup and g_det and g_resume
        and g_mo,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Async streaming vs lockstep MLA under heavy-tailed durations"
    )
    ap.add_argument("--check", action="store_true",
                    help="run the deterministic CI gates")
    ap.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = ap.parse_args(argv)

    print(f"== async vs lockstep: {N_TASKS} tasks x {N_SAMPLES} samples, "
          f"{N_WORKERS} workers, heavy tail {TAIL_FACTOR}x @ "
          f"{TAIL_FRACTION:.0%} ==")
    async_res, async_makespan = run_async()
    lock_res, lock_makespan = run_lockstep()

    stop = async_res.events.of_kind("async-stop")[0]
    drains = async_res.events.of_kind("async-drain")
    print_table(
        "simulated makespan",
        ["mode", "makespan (virtual s)", "evaluations", "best (mean)"],
        [
            ["lockstep", fmt(lock_makespan),
             sum(lock_res.data.n_samples(i) for i in range(N_TASKS)),
             fmt(float(np.mean(lock_res.best_values())))],
            ["async", fmt(async_makespan),
             sum(async_res.data.n_samples(i) for i in range(N_TASKS)),
             fmt(float(np.mean(async_res.best_values())))],
        ],
    )
    print(f"async: {len(drains)} drain round(s), "
          f"peak inflight {stop.fields['peak_inflight']}, "
          f"speedup {fmt(lock_makespan / async_makespan)}x")

    payload = {
        "config": {
            "n_tasks": N_TASKS,
            "n_samples": N_SAMPLES,
            "n_workers": N_WORKERS,
            "tail_fraction": TAIL_FRACTION,
            "tail_factor": TAIL_FACTOR,
        },
        "lockstep": {
            "makespan_virtual_s": float(lock_makespan),
            "best_values": [float(v) for v in lock_res.best_values()],
        },
        "async": {
            "makespan_virtual_s": float(async_makespan),
            "best_values": [float(v) for v in async_res.best_values()],
            "drain_rounds": len(drains),
            "peak_inflight": int(stop.fields["peak_inflight"]),
        },
        "speedup": float(lock_makespan / async_makespan),
    }

    ok = True
    if args.check:
        print("== deterministic gates ==")
        payload["checks"] = check_gates(
            async_res, async_makespan, lock_res, lock_makespan
        )
        ok = payload["checks"]["passed"]

    os.makedirs(os.path.dirname(os.path.abspath(args.out)) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=float)
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
