"""Tab. 3 (lower) — M3D_C1 and NIMROD: single-task vs multitask tuning.

Paper setup: the task parameter is the number of time steps.  M3D_C1:
single-task t = 3 with ε_tot = 80 vs multitask t = (1, 1, 1, 3) with
ε_tot = 20 each.  NIMROD: t = 15 / ε = 80 vs t = (3, 3, 3, 15) / ε = 20.
Multitask obtains a similar best runtime on the expensive task while the
total function-evaluation time drops by ~35% (12310 → 7797 s, 14710 → 9559 s).

Downscaling: ε_tot 24 → 6.
"""

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.fusion import M3DC1, NIMROD
from repro.core import GPTune, Options
from repro.runtime import cori_haswell


def _compare(app, single_task, multi_tasks, eps_single, eps_multi, seed):
    single = GPTune(app.problem(), Options(seed=seed, **FAST_OPTS)).tune(
        [single_task], eps_single
    )
    multi = GPTune(app.problem(), Options(seed=seed, **FAST_OPTS)).tune(
        multi_tasks, eps_multi
    )
    target = len(multi_tasks) - 1  # the expensive task is listed last
    return {
        "single_min": single.best(0)[1],
        "multi_min": multi.best(target)[1],
        "single_total": single.stats["objective_time"],
        "multi_total": multi.stats["objective_time"],
    }


def test_tab3_lower_fusion(benchmark):
    m3d = M3DC1(machine=cori_haswell(1), plane_size=300, seed=0)
    nim = NIMROD(machine=cori_haswell(6), plane_size=300, seed=0)

    res_m3d = _compare(m3d, {"t": 3}, [{"t": 1}, {"t": 1}, {"t": 1}, {"t": 3}], 24, 6, seed=4)
    res_nim = _compare(nim, {"t": 15}, [{"t": 3}, {"t": 3}, {"t": 3}, {"t": 15}], 24, 6, seed=4)

    rows = []
    for name, r in (("M3D_C1 (t=3)", res_m3d), ("NIMROD (t=15)", res_nim)):
        rows.append(
            [
                name,
                fmt(r["single_min"]), fmt(r["single_total"]),
                fmt(r["multi_min"]), fmt(r["multi_total"]),
            ]
        )
    print_table(
        "Tab. 3 lower: fusion codes, minimum runtime and total app time "
        "(paper: similar minima, ~35% less total time for multitask)",
        ["code", "single min", "single total", "multi min", "multi total"],
        rows,
    )
    save_results("tab3_fusion", {"m3dc1": res_m3d, "nimrod": res_nim})

    for r in (res_m3d, res_nim):
        # similar minima on the expensive task...
        assert r["multi_min"] <= 1.3 * r["single_min"]
        # ...at a significantly reduced total function-evaluation time
        assert r["multi_total"] < 0.8 * r["single_total"]

    # improvement over the default configuration (paper: 15–20%)
    d = m3d.objective({"t": 3}, m3d.default_config({"t": 3}))
    assert res_m3d["multi_min"] < d
    benchmark(lambda: None)
