"""Fig. 3 — modeling and search time, 1 vs 32 MPI processes.

The paper fits one LCM over δ = 20 tasks of the analytical function and
plots modeling/search phase time against the total sample count ε_tot,
observing O(ε³δ³) / O(ε²δ²) serial scaling and 32×/11× speedups at 32 MPI.

Here (single-core box) the experiment is reproduced in two halves:

1. **real measurement** — the serial LCM fit and PSO search are timed at
   growing sample counts (δ = 6, downscaled) and the empirical scaling
   exponents are checked against the paper's asymptotics;
2. **machine-model projection** — the Sec. 4.3 parallelization (restart
   distribution + ScaLAPACK covariance factorization; per-task search
   distribution) is priced by :mod:`repro.runtime.costmodel` at 1 and 32
   ranks on the Cori model, reproducing the speedup curves.
"""

import time

import numpy as np

from harness import fmt, print_table, save_results
from repro.apps.analytical import analytical_function
from repro.core import LCM, EIAcquisition, ParticleSwarm
from repro.runtime import cori_haswell
from repro.runtime import costmodel as cm

DELTA = 6
EPS = [8, 16, 32]
N_HYPER = 40


def _dataset(eps_per_task: int, rng):
    X, y, tidx = [], [], []
    for i in range(DELTA):
        t = i * 0.5
        xs = rng.random(eps_per_task)
        X.append(xs[:, None])
        y.append(analytical_function(t, xs))
        tidx.extend([i] * eps_per_task)
    return np.vstack(X), np.concatenate(y), np.array(tidx)


def test_fig3_serial_scaling_and_projected_speedup(benchmark):
    rng = np.random.default_rng(0)
    mach = cori_haswell(1)
    rows, record = [], {"measured": [], "projected": []}

    measured = []
    for eps in EPS:
        X, y, tidx = _dataset(eps, rng)
        N = X.shape[0]
        lcm = LCM(DELTA, 1, n_latent=2, seed=0, n_start=1, maxiter=40)
        t0 = time.perf_counter()
        lcm.fit(X, y, tidx)
        t_model = time.perf_counter() - t0

        t0 = time.perf_counter()
        for i in range(DELTA):
            acq = EIAcquisition(lambda Xq, i=i: lcm.predict(i, Xq), y_best=float(y[tidx == i].min()))
            ParticleSwarm(1, n_particles=24, iterations=10, seed=i).maximize(acq)
        t_search = time.perf_counter() - t0
        measured.append((N, t_model, t_search))

        p1_m = cm.lbfgs_modeling_time(mach, N, N_HYPER, n_starts=8, p=1)
        p32_m = cm.lbfgs_modeling_time(mach, N, N_HYPER, n_starts=8, p=32)
        p1_s = cm.search_phase_time(mach, DELTA, N, p=1)
        p32_s = cm.search_phase_time(mach, DELTA, N, p=32)
        rows.append(
            [N, fmt(t_model), fmt(t_search), fmt(p1_m / p32_m, 3), fmt(p1_s / p32_s, 3)]
        )
        record["measured"].append({"N": N, "modeling_s": t_model, "search_s": t_search})
        record["projected"].append(
            {"N": N, "modeling_speedup_32": p1_m / p32_m, "search_speedup_32": p1_s / p32_s}
        )

    print_table(
        "Fig. 3: LCM modeling/search scaling (paper: 32x and 11x speedups at 32 MPI)",
        ["N=εδ", "measured model s", "measured search s", "proj. model speedup", "proj. search speedup"],
        rows,
    )
    save_results("fig3_scaling", record)

    # paper shape 1: serial modeling grows superlinearly in N (O(N³) asymptotic)
    (n0, m0, _), (n2, m2, _) = measured[0], measured[-1]
    assert m2 / m0 > (n2 / n0) ** 1.2

    # paper shape 2: at the largest size, 32 ranks speed modeling up a lot
    # (ideal 32x for large covariances) and search speedup is capped at δ
    last = record["projected"][-1]
    assert last["modeling_speedup_32"] > 8.0
    assert last["search_speedup_32"] <= DELTA + 1e-9
    assert last["search_speedup_32"] > 2.0

    # keep one timed kernel for pytest-benchmark's table
    X, y, tidx = _dataset(EPS[0], rng)
    benchmark(lambda: LCM(DELTA, 1, n_latent=2, seed=0, n_start=1, maxiter=40).fit(X, y, tidx))


def test_fig3_distributed_covariance_factorization(benchmark):
    """The level-2 parallelism *executed*: the fitted LCM covariance is
    factorized by the real distributed Cholesky over simulated MPI ranks,
    and the simulated times show the compute-bound speedup followed by the
    small-matrix communication wall — the two regimes of Fig. 3."""
    import numpy as np

    from repro.core.kernels import pairwise_sq_diffs
    from repro.runtime.distributed_linalg import distributed_cholesky

    rng = np.random.default_rng(1)
    mach = cori_haswell(1)
    X, y, tidx = _dataset(128, rng)  # N = 768 — the paper's largest regime
    lcm = LCM(DELTA, 1, n_latent=2, seed=0, n_start=1)
    theta = lcm._initial_theta(y, restart=0)  # covariance only; no fit needed
    Sigma, _, _ = lcm._covariance(theta, pairwise_sq_diffs(X), tidx)
    Sigma[np.diag_indices(Sigma.shape[0])] += 1e-4

    rows, times = [], {}
    for p in (1, 2, 4):
        L, t = distributed_cholesky(Sigma, p, block=64, machine=mach)
        times[p] = t
        rows.append([p, fmt(t, 4), fmt(times[1] / t, 3)])
    assert np.allclose(L @ L.T, Sigma, atol=1e-6)
    print_table(
        "Fig. 3 companion: executed distributed Cholesky of the LCM covariance "
        f"(N = {Sigma.shape[0]})",
        ["ranks", "simulated s", "speedup"],
        rows,
    )
    save_results(
        "fig3_distributed_cholesky",
        {"N": int(Sigma.shape[0]), "times": {str(k): v for k, v in times.items()}},
    )
    assert times[4] < times[1]  # parallel factorization pays off at this N
    benchmark(lambda: distributed_cholesky(Sigma, 2, block=32, machine=mach))
