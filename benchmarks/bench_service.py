"""Crowd-tuning service under load: batching, sharding, and fault drills.

The tuning-history service is the paper's "shared database" (Sec. 1,
goal 3) made concurrent: many campaigns post one evaluation at a time and
read each other's history.  This harness measures the three throughput
levers of that deployment and drills its crash story:

* **group commit** — the seed append path pays one lock acquire + one
  ``write`` + one ``fsync`` per record; :class:`~repro.service.batch.
  WriteBatcher` coalesces concurrent submits into one commit per shard
  per flush window;
* **horizontal sharding** — ``repro serve --shards N`` runs N backend
  processes behind a consistent-hash router, multiplying both available
  GILs and independent fsync streams;
* **durability under faults** — a SIGKILLed backend must lose nothing it
  acknowledged and duplicate nothing the router retried (appends carry
  client-side rids, so retries are exactly-once).

**Determinism.**  On CI filesystems ``fsync`` is nearly free, which would
make a wall-clock batching gate measure the container's page cache rather
than the design.  Like ``bench_async_engine.py``'s virtual durations, the
microbenchmark therefore emulates production storage: ``os.fsync`` inside
the store pays a fixed ``FSYNC_EMU`` latency (3 ms — a fast cloud disk).
Real-disk numbers are reported alongside, unemulated and ungated.

``--check`` runs the CI gates and writes
``benchmarks/results/BENCH_service.json``:

* **batching** — ≥ 3× write throughput over the unbatched seed path under
  48 concurrent writers on emulated 3 ms-fsync storage;
* **coalescing** — ≥ 3 records per durable commit on average (the
  syscall-level statement of the same claim, immune to scheduling noise);
* **no-loss/no-dup (batching)** — both stores hold every acknowledged
  record exactly once;
* **scaling** — a 4-shard topology strictly out-throughputs 1 shard on a
  mixed append/read HTTP workload;
* **latency** — append p99 under the mixed workload stays below 2 s
  (generous; typical is tens of milliseconds);
* **fault drill** — with a backend SIGKILLed mid-load and auto-restarted,
  every acknowledged append is present exactly once and no rid is ever
  duplicated.

Run::

    PYTHONPATH=src python benchmarks/bench_service.py           # timings
    PYTHONPATH=src python benchmarks/bench_service.py --check   # CI gates
"""

import argparse
import json
import os
import shutil
import tempfile
import threading
import time

from harness import fmt, print_table
from repro.observability import MetricsRegistry
from repro.service import RouterClient, ShardSupervisor, ShardedStore, WriteBatcher
import repro.service.store as _store_mod

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "BENCH_service.json"
)

#: microbench shape: 48 writer threads over 4 problems, 20 records each
MICRO_THREADS, MICRO_RECORDS, MICRO_PROBLEMS = 48, 20, 4
#: emulated fsync latency (production-disk regime; see module docstring)
FSYNC_EMU = 0.003
#: group-commit window for the batched runs
FLUSH_INTERVAL = 0.001

#: HTTP workload shape: threads x ops, mixed 4:1 append:read, 8 problems
HTTP_THREADS, HTTP_OPS, HTTP_PROBLEMS = 12, 40, 8

#: fault drill shape
DRILL_SHARDS, DRILL_THREADS, DRILL_OPS, DRILL_PROBLEMS = 4, 8, 30, 8


def _record(i):
    return {"task": {"m": i}, "x": {"a": i, "b": i * 0.5}, "y": [float(i)]}


class _EmulatedDisk:
    """Patch the store module's ``os.fsync`` to cost ``FSYNC_EMU`` extra."""

    def __enter__(self):
        self._real = _store_mod.os.fsync

        def slow_fsync(fd, _real=self._real):
            _real(fd)
            time.sleep(FSYNC_EMU)

        _store_mod.os.fsync = slow_fsync
        return self

    def __exit__(self, *exc):
        _store_mod.os.fsync = self._real


# -- part 1: group commit vs the seed append path ----------------------------

def _drive_writers(write_one):
    """Run the microbench write pattern; returns elapsed seconds."""
    def work(t):
        prob = f"prob{t % MICRO_PROBLEMS}"
        for i in range(MICRO_RECORDS):
            write_one(prob, _record(t * 1000 + i))

    threads = [
        threading.Thread(target=work, args=(t,)) for t in range(MICRO_THREADS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _verify_store(store):
    """Every submitted record present exactly once; returns (ok, total)."""
    total, ok = 0, True
    per_problem = (MICRO_THREADS // MICRO_PROBLEMS) * MICRO_RECORDS
    for p in range(MICRO_PROBLEMS):
        rids = [r["rid"] for r in store.records(f"prob{p}", with_rid=True)]
        total += len(rids)
        if len(rids) != len(set(rids)) or len(rids) != per_problem:
            ok = False
    return ok, total


def bench_batching(root, emulate=True):
    """Unbatched seed path vs group commit; returns the result dict."""
    n = MICRO_THREADS * MICRO_RECORDS
    ctx = _EmulatedDisk() if emulate else _NullCtx()
    with ctx:
        un_store = ShardedStore(os.path.join(root, "unbatched"))
        un_elapsed = _drive_writers(
            lambda prob, rec: un_store.append(prob, [rec])
        )

        ba_store = ShardedStore(os.path.join(root, "batched"))
        metrics = MetricsRegistry()
        batcher = WriteBatcher(
            ba_store, flush_interval=FLUSH_INTERVAL, metrics=metrics
        )
        ba_elapsed = _drive_writers(
            lambda prob, rec: batcher.submit(prob, [rec])
        )
        batcher.close()

    un_ok, _ = _verify_store(un_store)
    ba_ok, _ = _verify_store(ba_store)
    commits = metrics.counter_value("repro_service_commits_total")
    committed = metrics.counter_value("repro_service_committed_records_total")
    return {
        "records": n,
        "unbatched_rec_per_s": n / un_elapsed,
        "batched_rec_per_s": n / ba_elapsed,
        "speedup": un_elapsed / ba_elapsed,
        "commits": int(commits),
        "records_per_commit": committed / max(commits, 1.0),
        "no_loss_no_dup": bool(un_ok and ba_ok),
    }


class _NullCtx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


# -- part 2: 1-shard vs 4-shard HTTP topology --------------------------------

def bench_scaling(root, n_shards):
    """Mixed append/read workload against an N-shard topology."""
    with ShardSupervisor(
        os.path.join(root, f"shards{n_shards}"),
        n_shards,
        server_kwargs={"flush_interval": FLUSH_INTERVAL},
    ) as sup:
        client = RouterClient(sup.serve_topology(), pool_size=HTTP_THREADS)
        latencies = []
        lat_lock = threading.Lock()

        def work(t):
            for i in range(HTTP_OPS):
                prob = f"prob{(t * HTTP_OPS + i) % HTTP_PROBLEMS}"
                t0 = time.perf_counter()
                client.append(prob, [_record(t * 1000 + i)])
                dt = time.perf_counter() - t0
                with lat_lock:
                    latencies.append(dt)
                if i % 4 == 0:
                    client.records(prob)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(HTTP_THREADS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        client.close()

    n_reads = sum(
        1 for t in range(HTTP_THREADS) for i in range(HTTP_OPS) if i % 4 == 0
    )
    n_ops = HTTP_THREADS * HTTP_OPS + n_reads
    latencies.sort()
    return {
        "shards": n_shards,
        "ops": n_ops,
        "ops_per_s": n_ops / elapsed,
        "append_p50_ms": latencies[len(latencies) // 2] * 1000.0,
        "append_p99_ms": latencies[int(len(latencies) * 0.99)] * 1000.0,
    }


# -- part 3: SIGKILL a backend mid-load --------------------------------------

def bench_fault_drill(root):
    """Kill one of 4 backends mid-load; count lost/duplicated acks."""
    with ShardSupervisor(
        os.path.join(root, "drill"),
        DRILL_SHARDS,
        server_kwargs={"flush_interval": FLUSH_INTERVAL},
    ) as sup:
        sup.watch(interval=0.05)
        client = RouterClient(sup.serve_topology(), pool_size=DRILL_THREADS)
        acked = []  # (problem, rid) pairs the service acknowledged
        ack_lock = threading.Lock()
        failures = [0]

        def work(t):
            for i in range(DRILL_OPS):
                prob = f"prob{(t * DRILL_OPS + i) % DRILL_PROBLEMS}"
                try:
                    out = client.append(prob, [_record(t * 1000 + i)])
                except Exception:
                    with ack_lock:
                        failures[0] += 1
                    continue
                with ack_lock:
                    for rid in out["rids"]:
                        acked.append((prob, rid))

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(DRILL_THREADS)
        ]
        for t in threads:
            t.start()
        time.sleep(0.3)  # let load build, then kill a live backend
        victim = sorted(sup.topology()["shards"])[1]
        sup.kill(victim)
        for t in threads:
            t.join()

        # read back through a fresh router view of the healed topology
        reader = RouterClient(sup.serve_topology())
        stored = {}  # (problem, rid) -> occurrences
        for p in range(DRILL_PROBLEMS):
            prob = f"prob{p}"
            for row in reader.records(prob):
                key = (prob, row["rid"])
                stored[key] = stored.get(key, 0) + 1
        reader.close()
        client.close()

    lost = [k for k in acked if k not in stored]
    duplicated = [k for k, n in stored.items() if n > 1]
    return {
        "killed": victim,
        "acked": len(acked),
        "failed_after_retries": failures[0],
        "stored": sum(stored.values()),
        "lost_acked": len(lost),
        "duplicated": len(duplicated),
    }


# -- driver -------------------------------------------------------------------

def check_gates(micro, scale1, scale4, drill):
    """The deterministic CI gates; prints PASS/FAIL per gate."""
    g_speed = bool(micro["speedup"] >= 3.0)
    print(f"  batching: {fmt(micro['speedup'])}x over unbatched seed path "
          f"(emulated {FSYNC_EMU * 1000:.0f} ms fsync)  "
          f"{'PASS' if g_speed else 'FAIL'}")

    g_coalesce = bool(micro["records_per_commit"] >= 3.0)
    print(f"  coalescing: {fmt(micro['records_per_commit'])} records per "
          f"commit ({micro['commits']} commits for {micro['records']} "
          f"records)  {'PASS' if g_coalesce else 'FAIL'}")

    g_intact = bool(micro["no_loss_no_dup"])
    print(f"  no-loss/no-dup: both stores hold every record exactly once  "
          f"{'PASS' if g_intact else 'FAIL'}")

    g_scale = bool(scale4["ops_per_s"] > scale1["ops_per_s"])
    print(f"  scaling: 4-shard {fmt(scale4['ops_per_s'])} ops/s > 1-shard "
          f"{fmt(scale1['ops_per_s'])} ops/s  "
          f"{'PASS' if g_scale else 'FAIL'}")

    worst_p99 = max(scale1["append_p99_ms"], scale4["append_p99_ms"])
    g_p99 = bool(worst_p99 < 2000.0)
    print(f"  latency: worst append p99 {fmt(worst_p99)} ms < 2000 ms  "
          f"{'PASS' if g_p99 else 'FAIL'}")

    g_drill = bool(
        drill["lost_acked"] == 0
        and drill["duplicated"] == 0
        and drill["acked"] > 0
    )
    print(f"  fault drill: {drill['killed']} SIGKILLed mid-load, "
          f"{drill['acked']} acked appends, {drill['lost_acked']} lost, "
          f"{drill['duplicated']} duplicated  "
          f"{'PASS' if g_drill else 'FAIL'}")

    gates = {
        "batching_3x": g_speed,
        "coalescing_3_per_commit": g_coalesce,
        "no_loss_no_dup": g_intact,
        "four_shards_beat_one": g_scale,
        "append_p99_under_2s": g_p99,
        "kill_drill_exactly_once": g_drill,
    }
    gates["passed"] = all(gates.values())
    return gates


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Tuning-history service load test: batching, sharding, faults"
    )
    ap.add_argument("--check", action="store_true",
                    help="run the deterministic CI gates")
    ap.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = ap.parse_args(argv)

    root = tempfile.mkdtemp(prefix="bench_service_")
    try:
        print(f"== group commit: {MICRO_THREADS} writers x {MICRO_RECORDS} "
              f"records over {MICRO_PROBLEMS} problems ==")
        micro = bench_batching(os.path.join(root, "emu"), emulate=True)
        real = bench_batching(os.path.join(root, "real"), emulate=False)
        print_table(
            "write path (records/s)",
            ["disk", "unbatched", "batched", "speedup", "rec/commit"],
            [
                [f"emulated {FSYNC_EMU * 1000:.0f}ms fsync",
                 fmt(micro["unbatched_rec_per_s"]),
                 fmt(micro["batched_rec_per_s"]),
                 f"{fmt(micro['speedup'])}x",
                 fmt(micro["records_per_commit"])],
                ["real (informational)",
                 fmt(real["unbatched_rec_per_s"]),
                 fmt(real["batched_rec_per_s"]),
                 f"{fmt(real['speedup'])}x",
                 fmt(real["records_per_commit"])],
            ],
        )

        print(f"\n== topology scaling: {HTTP_THREADS} clients x {HTTP_OPS} "
              f"mixed ops over {HTTP_PROBLEMS} problems ==")
        scale1 = bench_scaling(root, 1)
        scale4 = bench_scaling(root, 4)
        print_table(
            "HTTP mixed workload",
            ["topology", "ops/s", "append p50 (ms)", "append p99 (ms)"],
            [
                ["1 shard", fmt(scale1["ops_per_s"]),
                 fmt(scale1["append_p50_ms"]), fmt(scale1["append_p99_ms"])],
                ["4 shards", fmt(scale4["ops_per_s"]),
                 fmt(scale4["append_p50_ms"]), fmt(scale4["append_p99_ms"])],
            ],
        )

        print(f"\n== fault drill: SIGKILL 1 of {DRILL_SHARDS} backends "
              f"under {DRILL_THREADS} writers ==")
        drill = bench_fault_drill(root)
        print(f"killed {drill['killed']}; {drill['acked']} acked, "
              f"{drill['stored']} stored, {drill['lost_acked']} lost, "
              f"{drill['duplicated']} duplicated, "
              f"{drill['failed_after_retries']} failed after retries")

        payload = {
            "config": {
                "micro_threads": MICRO_THREADS,
                "micro_records": MICRO_RECORDS,
                "micro_problems": MICRO_PROBLEMS,
                "fsync_emulated_s": FSYNC_EMU,
                "flush_interval_s": FLUSH_INTERVAL,
                "http_threads": HTTP_THREADS,
                "http_ops": HTTP_OPS,
                "drill_shards": DRILL_SHARDS,
            },
            "batching_emulated_disk": micro,
            "batching_real_disk": real,
            "scaling": {"one_shard": scale1, "four_shards": scale4},
            "fault_drill": drill,
        }

        ok = True
        if args.check:
            print("\n== deterministic gates ==")
            payload["checks"] = check_gates(micro, scale1, scale4, drill)
            ok = payload["checks"]["passed"]

        os.makedirs(os.path.dirname(os.path.abspath(args.out)) or ".", exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=float)
        print(f"wrote {args.out}")
        return 0 if ok else 1
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
