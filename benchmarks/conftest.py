"""Benchmark-suite configuration: everything here is a pytest-benchmark."""

import sys
import os

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
