"""Extension — value of the history database (archive & reuse, Sec. 1 goal 3).

Tunes the same SuperLU_DIST task in consecutive "sessions" that share a
history database, measuring the best-found objective after each session at
a fixed per-session budget.  The warm-started sessions should dominate a
cold tuner given the same cumulative budget split the same way, because the
archived evaluations keep informing the surrogate.
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.superlu import SuperLUDIST
from repro.core import GPTune, HistoryDB, Options
from repro.runtime import cori_haswell

SESSIONS = 3
PER_SESSION = 6


def test_ext_history_reuse(benchmark, tmp_path):
    app = SuperLUDIST(machine=cori_haswell(8), matrices=["SiNa"], scale=0.04, seed=0)
    task = [{"matrix": "SiNa"}]
    db = HistoryDB(str(tmp_path / "h.json"))

    rows, record = [], {"warm": [], "cold": []}
    for s in range(SESSIONS):
        budget = PER_SESSION * (s + 1)  # archived samples count toward it
        warm = GPTune(app.problem(), Options(seed=100 + s, **FAST_OPTS), history=db).tune(
            task, budget
        )
        cold = GPTune(app.problem(), Options(seed=100 + s, **FAST_OPTS)).tune(
            task, PER_SESSION
        )
        record["warm"].append(warm.best(0)[1])
        record["cold"].append(cold.best(0)[1])
        rows.append(
            [s + 1, budget, fmt(warm.best(0)[1]), fmt(cold.best(0)[1]), db.count(app.name)]
        )

    print_table(
        "Extension: history-database reuse across sessions (SuperLU_DIST SiNa)",
        ["session", "cumulative budget", "warm best", "cold best (fresh 6)", "archive size"],
        rows,
    )
    save_results("ext_history", record)

    warm = np.array(record["warm"])
    cold = np.array(record["cold"])
    # warm best is monotone (archive only grows) and the final warm result
    # beats the average cold session — improvement-over-time without
    # demanding strict gains when session 1 already lands near the optimum
    # (a single lucky cold draw can also edge the warm final by a few %)
    assert np.all(np.diff(warm) <= 1e-12)
    assert warm[-1] <= float(cold.mean())
    # archive holds the cumulative evaluations
    assert db.count(app.name) == SESSIONS * PER_SESSION
    benchmark(lambda: None)
