"""Fig. 4 — advantage of incorporating coarse performance models.

Left panel (paper): MLA on Eq. (11) over δ = 20 tasks t = 0, 0.5, …, 9.5
with the noisy model ỹ = (1 + 0.1 r(x)) y, for ε_tot ∈ {20, 40, 80}; the
ratio (tuned minimum without model) / (tuned minimum with model) is ≥ 1 for
all tasks, more so for small ε_tot and large t.

Right panel: ScaLAPACK PDGEQRF with the Eq. (7) model (on-the-fly
t_flop/t_msg/t_vol estimation), 5 random tasks with m, n < 20000; up to 35%
improvement at ε_tot = 10 that fades by ε_tot = 40.

Downscaling: δ = 8 analytical tasks, ε_tot ∈ {10, 20}; 4 QR tasks.
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.analytical import AnalyticalApp
from repro.apps.scalapack import PDGEQRF
from repro.core import GPTune, Options
from repro.runtime import cori_haswell

SHIFT = 10.0  # Eq. (11) dips below zero; ratios need positive objectives


def _run_analytical(eps_tot: int, with_model: bool, seed: int) -> np.ndarray:
    app = AnalyticalApp(seed=seed)
    base = app.problem(with_models=with_model)
    # shift the objective so that win ratios are well defined (> 0)
    from repro.core import TuningProblem

    prob = TuningProblem(
        base.task_space,
        base.tuning_space,
        lambda t, c: base.objective(t, c) + SHIFT,
        models=base.models,
        name="analytical-shifted",
    )
    tasks = [{"t": 0.5 * i} for i in range(8)]
    opts = Options(seed=seed, **FAST_OPTS)
    res = GPTune(prob, opts).tune(tasks, n_samples=eps_tot)
    return res.best_values() - SHIFT


def test_fig4_left_analytical(benchmark):
    record = {}
    rows = []
    for eps in (10, 20):
        no_model = _run_analytical(eps, with_model=False, seed=5)
        with_model = _run_analytical(eps, with_model=True, seed=5)
        ratio = (no_model + SHIFT) / (with_model + SHIFT)
        wins = int(np.sum(ratio >= 1.0 - 1e-12))
        record[str(eps)] = {
            "no_model": no_model.tolist(),
            "with_model": with_model.tolist(),
            "ratio": ratio.tolist(),
        }
        rows.append([eps, fmt(float(ratio.mean())), fmt(float(ratio.max())), f"{wins}/8"])
    print_table(
        "Fig. 4 left: analytical, ratio no-model/with-model (paper: ratio >= 1 for all)",
        ["eps_tot", "mean ratio", "max ratio", "tasks with ratio>=1"],
        rows,
    )
    save_results("fig4_left_analytical", record)

    # the noisy-but-informative model must not hurt on average, and should
    # matter more at the smaller budget (the paper's headline effect)
    mean_small = np.mean(record["10"]["ratio"])
    assert mean_small >= 0.98
    benchmark(lambda: _run_analytical(6, with_model=True, seed=1))


def test_fig4_right_pdgeqrf(benchmark):
    app = PDGEQRF(machine=cori_haswell(16), mn_max=20000, seed=0)
    tasks = app.sample_tasks(4, seed=42)
    record = {}
    rows = []
    for eps in (8, 16):
        r_no = GPTune(app.problem(with_models=False), Options(seed=9, **FAST_OPTS)).tune(
            tasks, n_samples=eps
        )
        r_yes = GPTune(app.problem(with_models=True), Options(seed=9, **FAST_OPTS)).tune(
            tasks, n_samples=eps
        )
        ratio = r_no.best_values() / r_yes.best_values()
        record[str(eps)] = {"ratio": ratio.tolist()}
        wins = int(np.sum(ratio >= 1.0))
        rows.append([eps, fmt(float(ratio.mean())), fmt(float(ratio.max())), f"{wins}/4"])
    print_table(
        "Fig. 4 right: PDGEQRF, ratio no-model/with-model (paper: up to 1.35 at eps=10)",
        ["eps_tot", "mean ratio", "max ratio", "tasks with ratio>=1"],
        rows,
    )
    save_results("fig4_right_pdgeqrf", record)

    # Eq. (7) features must not hurt QR tuning on average at the small budget
    assert float(np.mean(record["8"]["ratio"])) >= 0.95
    benchmark(lambda: None)
