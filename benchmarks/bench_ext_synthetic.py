"""Extension — tuner shoot-out on synthetic functions with known optima.

The paper's comparisons use HPC codes whose true optima are unknown; the
synthetic families (`repro.apps.synthetic`) have closed-form minima, so the
comparison can be phrased as *regret* — how far above the global optimum
each tuner lands at a fixed budget.  All tuners run through the uniform
registry interface of Sec. 6.1.
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.synthetic import BraninApp, SphereApp
from repro.core import GPTune, Options
from repro.tuners import TUNERS, run_tuner

BUDGET = 20
TUNER_NAMES = ("gptune", "opentuner", "hpbandster", "ytopt", "random")


def _regrets(app, task, optimum, seed):
    prob = app.problem()
    out = {}
    for name in TUNER_NAMES:
        rec = run_tuner(name, prob, task, BUDGET, seed=seed)
        out[name] = rec.best()[1] - optimum
    return out


def test_ext_synthetic_regret(benchmark):
    cases = [
        ("branin t=0", BraninApp(), {"t": 0.0}, BraninApp.OPTIMUM),
        ("branin t=2", BraninApp(), {"t": 2.0}, BraninApp.OPTIMUM),
        ("sphere3 t=3", SphereApp(dim=3), {"t": 3}, 0.01),
        ("sphere3 t=8", SphereApp(dim=3), {"t": 8}, 0.01),
    ]
    record = {}
    rows = []
    for label, app, task, opt in cases:
        regrets = _regrets(app, task, opt, seed=11)
        record[label] = regrets
        rows.append([label] + [fmt(regrets[n], 3) for n in TUNER_NAMES])

    print_table(
        f"Extension: regret after {BUDGET} evaluations (lower is better)",
        ["case"] + list(TUNER_NAMES),
        rows,
    )
    save_results("ext_synthetic_regret", record)

    # model-based tuners must beat random on average over the cases
    mean = {n: float(np.mean([record[c][n] for c in record])) for n in TUNER_NAMES}
    assert mean["gptune"] <= mean["random"]
    # every tuner gets within sane distance of the optimum on the bowls
    for n in TUNER_NAMES:
        assert record["sphere3 t=3"][n] < 0.5

    # GPTune's multitask mode exploits the related Branin tasks
    app = BraninApp()
    multi = GPTune(app.problem(), Options(seed=13, **FAST_OPTS)).tune(
        [{"t": 0.0}, {"t": 1.0}, {"t": 2.0}], BUDGET // 2
    )
    multi_regret = float(np.mean(multi.best_values() - BraninApp.OPTIMUM))
    record["branin multitask (half budget)"] = {"gptune": multi_regret}
    print(f"\nmultitask Branin mean regret at half budget: {multi_regret:.3g}")
    save_results("ext_synthetic_regret", record)
    assert multi_regret < 5.0
    benchmark(lambda: None)
