"""Extension — transfer learning autotuning (TLA) value curve.

Not a paper table (the paper only states the archive-and-reuse goal), but
the natural follow-up experiment for the system: given completed MLA data
on source tasks, how good is an *unseen* task's configuration after 0 new
evaluations (TLA-0) and after a handful (TLA-MLA), versus tuning from
scratch with the same small budget?
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.scalapack import PDGEQRF
from repro.core import GPTune, Options, TransferLearner
from repro.runtime import cori_haswell


def test_ext_tla_transfer_value(benchmark):
    app = PDGEQRF(machine=cori_haswell(4), mn_max=16000, seed=0)
    prob = app.problem()
    opts = Options(seed=2, **FAST_OPTS)

    sources = [
        {"m": 4000, "n": 4000},
        {"m": 8000, "n": 8000},
        {"m": 14000, "n": 14000},
        {"m": 12000, "n": 4000},
    ]
    src = GPTune(prob, opts).tune(sources, 12)
    tla = TransferLearner(prob, src.data)

    new_tasks = [{"m": 6000, "n": 6000}, {"m": 11000, "n": 11000}, {"m": 10000, "n": 5000}]
    rows, record = [], {}
    for t in new_tasks:
        y_tla0 = app.objective(t, tla.predict_config(t))
        res_tla = tla.tune(t, 4, options=opts, max_source_tasks=3)
        y_tlam = res_tla.best(res_tla.data.n_tasks - 1)[1]
        y_scratch = GPTune(prob, opts).tune([t], 4).best(0)[1]
        y_default = app.objective(t, app.default_config(t))
        lbl = f"{t['m']}x{t['n']}"
        rows.append([lbl, fmt(y_tla0), fmt(y_tlam), fmt(y_scratch), fmt(y_default)])
        record[lbl] = {
            "tla0": y_tla0,
            "tla_mla_4": y_tlam,
            "scratch_4": y_scratch,
            "default": y_default,
        }

    print_table(
        "Extension: transfer learning to unseen tasks (PDGEQRF)",
        ["new task", "TLA-0 (0 runs)", "TLA-MLA (4 runs)", "scratch (4 runs)", "default"],
        rows,
    )
    save_results("ext_tla", record)

    # TLA with zero evaluations must already be competitive: on average
    # within 2x of the 4-run from-scratch result, and TLA-MLA must not lose
    # to scratch on average (it sees strictly more information)
    tla0 = np.array([r["tla0"] for r in record.values()])
    tlam = np.array([r["tla_mla_4"] for r in record.values()])
    scratch = np.array([r["scratch_4"] for r in record.values()])
    assert np.mean(tla0 / scratch) < 2.0
    assert np.mean(tlam / scratch) < 1.25
    benchmark(lambda: tla.predict_config({"m": 9000, "n": 9000}))
