"""Fig. 6 — GPTune vs OpenTuner vs HpBandSter.

Paper setup: PDGEQRF with δ = 10 random tasks (m, n < 20000), ε_tot = 10,
2048 cores — GPTune beats OpenTuner on 7/10 tasks (up to 4.9×) and
HpBandSter on 8/10 (up to 2.9×).  SuperLU_DIST on 7 PARSEC matrices,
ε_tot = 20, 1024 cores — up to 1.6×/1.3× on 6/7 and 7/7 tasks.

The baselines run per task (they have no multitask support); GPTune runs
one MLA over all tasks.  Downscaling: δ = 6 QR tasks and 4 matrices.
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.scalapack import PDGEQRF
from repro.apps.superlu import SuperLUDIST
from repro.core import GPTune, Options
from repro.core.metrics import win_task
from repro.runtime import cori_haswell
from repro.tuners import HpBandSterTuner, OpenTunerTuner


def _compare(app, tasks, eps, seed):
    prob = app.problem()
    mla = GPTune(prob, Options(seed=seed, **FAST_OPTS)).tune(tasks, eps)
    gpt_best = mla.best_values()
    ot_best = np.array(
        [OpenTunerTuner().tune(prob, t, eps, seed=seed + 100 + i).best()[1] for i, t in enumerate(tasks)]
    )
    hb_best = np.array(
        [HpBandSterTuner().tune(prob, t, eps, seed=seed + 200 + i).best()[1] for i, t in enumerate(tasks)]
    )
    return gpt_best, ot_best, hb_best


def _report(title, tasks_labels, gpt, ot, hb, name):
    rows = [
        [lab, fmt(g), fmt(o / g, 3), fmt(h / g, 3)]
        for lab, g, o, h in zip(tasks_labels, gpt, ot, hb)
    ]
    print_table(title, ["task", "GPTune best", "OT/GPTune", "HB/GPTune"], rows)
    payload = {
        "gptune": list(map(float, gpt)),
        "opentuner": list(map(float, ot)),
        "hpbandster": list(map(float, hb)),
        "win_vs_ot": win_task(gpt, ot),
        "win_vs_hb": win_task(gpt, hb),
        "max_ratio_ot": float(np.max(ot / gpt)),
        "max_ratio_hb": float(np.max(hb / gpt)),
    }
    save_results(name, payload)
    return payload


def test_fig6_left_pdgeqrf(benchmark):
    app = PDGEQRF(machine=cori_haswell(64), mn_max=20000, seed=0)
    tasks = app.sample_tasks(6, seed=7)
    gpt, ot, hb = _compare(app, tasks, eps=10, seed=11)
    labels = [f"{t['m']}x{t['n']}" for t in tasks]
    p = _report(
        "Fig. 6 left: PDGEQRF ratios vs GPTune (paper: GPTune wins 7-8/10, up to 4.9x)",
        labels, gpt, ot, hb, "fig6_pdgeqrf",
    )
    # paper shape: GPTune at least ties both baselines on most tasks
    tie_ot = np.mean(np.asarray(ot) / np.asarray(gpt) >= 0.95)
    tie_hb = np.mean(np.asarray(hb) / np.asarray(gpt) >= 0.95)
    assert tie_ot >= 0.5
    assert tie_hb >= 0.5
    benchmark(lambda: None)


def test_fig6_right_superlu(benchmark):
    matrices = ["Si2", "SiH4", "SiNa", "Na5"]
    app = SuperLUDIST(
        machine=cori_haswell(32), matrices=matrices, objectives=("time",), scale=0.04, seed=0
    )
    tasks = [{"matrix": m} for m in matrices]
    gpt, ot, hb = _compare(app, tasks, eps=12, seed=13)
    p = _report(
        "Fig. 6 right: SuperLU_DIST ratios vs GPTune (paper: wins 6-7/7, up to 1.6x)",
        matrices, gpt, ot, hb, "fig6_superlu",
    )
    tie = np.mean(np.asarray(ot) / np.asarray(gpt) >= 0.9) + np.mean(
        np.asarray(hb) / np.asarray(gpt) >= 0.9
    )
    assert tie >= 1.0  # GPTune roughly-or-better on at least half across both
    benchmark(lambda: None)
