"""Fig. 5 + Tab. 3 (upper) — single-task vs multitask MLA on ScaLAPACK.

Paper setup: equal total budgets δ·ε_tot.  PDGEQRF on 64 Cori nodes,
single-task (δ=1, the big task m=23324, n=26545, ε_tot=100) vs multitask
(δ=10 including 9 random cheaper tasks, ε_tot=10); the multitask run matches
the single-task minimum on the shared task while also solving the other 9,
and spends *less* total objective time.  PDSYEVX analogous on 1 node, δ=9.

Downscaling: budget 40 (δ=8 × ε=5 vs δ=1 × ε=40) for QR; δ=6 for PDSYEVX.
"""

import numpy as np

from harness import FAST_OPTS, fmt, print_table, save_results
from repro.apps.scalapack import PDGEQRF, PDSYEVX
from repro.core import GPTune, Options
from repro.runtime import cori_haswell


def test_fig5_left_tab3_pdgeqrf(benchmark):
    app = PDGEQRF(machine=cori_haswell(64), mn_max=40000, seed=0)
    big = {"m": 23324, "n": 26545}
    others = app.sample_tasks(7, seed=3)
    for t in others:  # the paper's "9 other tasks with m, n < 40000"
        t["m"], t["n"] = min(t["m"], 20000), min(t["n"], 20000)
    tasks = [big] + others
    delta, eps_multi = len(tasks), 8
    budget = delta * eps_multi

    multi = GPTune(app.problem(), Options(seed=1, **FAST_OPTS)).tune(tasks, eps_multi)
    single = GPTune(app.problem(), Options(seed=1, **FAST_OPTS)).tune([big], budget)

    flops = [app.flop_count(t) for t in tasks]
    order = np.argsort(flops)
    rows = []
    for i in order:
        best = multi.best(i)[1]
        worst = float(np.max([y[0] for y in multi.data.Y[i]]))
        rows.append([fmt(flops[i] / 1e12, 3), fmt(best), fmt(worst)])
    print_table(
        "Fig. 5 left: PDGEQRF multitask best/worst per task, sorted by Tflops",
        ["Tflops", "best s", "worst s"],
        rows,
    )
    print_table(
        "Tab. 3 upper (PDGEQRF): phase breakdown (objective time is simulated app time)",
        ["setting", "total", "objective", "modeling", "search"],
        [
            ["Single-task", fmt(single.stats["total_time"]), fmt(single.stats["objective_time"]),
             fmt(single.stats["modeling_time"]), fmt(single.stats["search_time"])],
            ["Multitask", fmt(multi.stats["total_time"]), fmt(multi.stats["objective_time"]),
             fmt(multi.stats["modeling_time"]), fmt(multi.stats["search_time"])],
        ],
    )
    save_results(
        "fig5_tab3_pdgeqrf",
        {
            "tasks": tasks,
            "multi_best": multi.best_values().tolist(),
            "single_best_big_task": single.best(0)[1],
            "multi_best_big_task": multi.best(0)[1],
            "single_stats": single.stats,
            "multi_stats": multi.stats,
        },
    )

    # paper shape: equal budget, multitask attains a comparable minimum on
    # the expensive task while spending far less total objective time
    assert multi.best(0)[1] <= 1.4 * single.best(0)[1]
    assert multi.stats["objective_time"] < single.stats["objective_time"]
    benchmark(lambda: None)


def test_fig5_right_tab3_pdsyevx(benchmark):
    app = PDSYEVX(machine=cori_haswell(1), m_max=7000, seed=0)
    big = {"m": 7000}
    others = [{"m": m} for m in (3000, 3800, 4600, 5400, 6200)]
    tasks = [big] + others

    multi = GPTune(app.problem(), Options(seed=2, **FAST_OPTS)).tune(tasks, 8)
    single = GPTune(app.problem(), Options(seed=2, **FAST_OPTS)).tune([big], 8 * len(tasks))

    ms = np.array([t["m"] for t in tasks])
    order = np.argsort(ms)
    rows = []
    for i in order:
        best = multi.best(i)[1]
        worst = float(np.max([y[0] for y in multi.data.Y[i]]))
        rows.append([ms[i], fmt(best), fmt(worst)])
    print_table("Fig. 5 right: PDSYEVX multitask best/worst per task", ["m", "best s", "worst s"], rows)
    save_results(
        "fig5_tab3_pdsyevx",
        {
            "m": ms.tolist(),
            "multi_best": multi.best_values().tolist(),
            "single_best_m7000": single.best(0)[1],
            "multi_best_m7000": multi.best(0)[1],
            "single_stats": single.stats,
            "multi_stats": multi.stats,
        },
    )

    # paper shape 1: best runtime grows like O(m³) across tasks
    best = multi.best_values()
    i_small = int(np.argmin(ms))
    ratio = best[0] / best[i_small]  # m=7000 vs m=3000
    assert ratio > (7000 / 3000) ** 2  # at least quadratic growth observed

    # paper shape 2: single- and multitask best agree on the shared task
    assert multi.best(0)[1] <= 1.3 * single.best(0)[1]
    benchmark(lambda: None)
