"""Observability: metrics, spans, and campaign telemetry.

The layer the tuner, the resilience machinery, and the crowd-tuning service
all report into — see :mod:`repro.observability.metrics` for the
counter/gauge/histogram registry (rendered as Prometheus text by the
server's ``GET /metrics``) and :mod:`repro.observability.spans` for the
nested, timestamped phase/model/backoff timers streamed into the campaign
log.  ``docs/OBSERVABILITY.md`` documents event kinds, span hierarchy, and
metric naming.
"""

from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .spans import (
    Span,
    SpanRecorder,
    SpanTimer,
    current_recorder,
    install_recorder,
    maybe_span,
    recording,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "SpanTimer",
    "current_recorder",
    "install_recorder",
    "maybe_span",
    "recording",
]
