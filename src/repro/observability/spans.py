"""Timestamped, nestable spans for campaign-phase timing.

The paper's Table 3 breaks tuner overhead into sampling / modeling / search
/ evaluation phases; this module makes that breakdown observable in a *live*
campaign rather than only as post-hoc ``stats`` sums.  A :class:`SpanTimer`
is a context manager stamping **wall-clock** (``time.time``, for correlating
with external logs) and **monotonic** (``time.perf_counter``, for correct
durations across clock adjustments) times at entry, and recording a finished
:class:`Span` at exit.  Spans nest: each records the ``span_id`` of the
enclosing span on the same thread, so ``model.fit`` appears inside
``phase.modeling`` and ``retry.backoff`` inside ``phase.evaluation``.

Instrumented code never talks to a recorder directly — it calls
:func:`maybe_span`, which returns a shared no-op context manager unless a
:class:`SpanRecorder` has been installed (:func:`install_recorder`).  The
disabled path is one module-global read plus a no-op ``with``, so telemetry
off costs nothing measurable even in the ``LCM.predict`` hot loop.

High-frequency spans (thousands of ``model.predict`` calls per search
phase) pass ``aggregate=True``: they fold into a per-name (count, total)
accumulator and a metrics histogram instead of appending one event each;
:meth:`SpanRecorder.flush` emits the accumulated totals as single
``"span-summary"`` events.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanRecorder",
    "SpanTimer",
    "current_recorder",
    "install_recorder",
    "maybe_span",
    "recording",
]


@dataclasses.dataclass(frozen=True)
class Span:
    """One finished timed interval.

    ``t_wall``/``t_mono`` are the wall-clock (epoch seconds) and monotonic
    stamps taken at entry; ``dur_s`` is the monotonic duration.  ``parent_id``
    is the ``span_id`` of the span that was open on the same thread when this
    one started (``None`` at top level).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    t_wall: float
    t_mono: float
    dur_s: float
    fields: Dict[str, Any] = dataclasses.field(default_factory=dict)


class _NullSpan:
    """Shared no-op stand-in returned when no recorder is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        """Discard annotations (telemetry is off)."""


_NULL = _NullSpan()


class SpanTimer:
    """Context manager timing one span; created via :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "name", "aggregate", "fields", "span_id", "parent_id",
                 "t_wall", "t_mono")

    def __init__(self, recorder: "SpanRecorder", name: str, aggregate: bool,
                 fields: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.aggregate = aggregate
        self.fields = fields
        self.span_id: int = -1
        self.parent_id: Optional[int] = None
        self.t_wall = 0.0
        self.t_mono = 0.0

    def annotate(self, **fields: Any) -> None:
        """Attach extra structured fields mid-span (e.g. a result count)."""
        self.fields.update(fields)

    def __enter__(self) -> "SpanTimer":
        self._recorder._open(self)
        self.t_wall = time.time()
        self.t_mono = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        dur = time.perf_counter() - self.t_mono
        self._recorder._close(self, dur)
        return False


class SpanRecorder:
    """Collects finished spans, mirroring them into a log and a registry.

    Parameters
    ----------
    log:
        Optional :class:`~repro.runtime.trace.CampaignLog` (anything with
        ``record(kind, detail, **fields)``): each finished span appends a
        ``"span"`` event carrying the stamps in its structured fields, so the
        campaign's JSONL telemetry holds events *and* timings in one stream.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`: every
        span observes ``repro_span_seconds{name=...}``.

    Nesting state is thread-local, so spans opened by executor worker
    threads during concurrent evaluations nest correctly per thread.
    """

    def __init__(self, log: Any = None, metrics: Any = None):
        self.log = log
        self.metrics = metrics
        self._spans: List[Span] = []
        self._agg: Dict[str, List[float]] = {}  # name -> [count, total_s]
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._local = threading.local()

    # -- SpanTimer plumbing --------------------------------------------------
    def _stack(self) -> List[int]:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def _open(self, timer: SpanTimer) -> None:
        stack = self._stack()
        timer.parent_id = stack[-1] if stack else None
        timer.span_id = next(self._ids)
        stack.append(timer.span_id)

    def _close(self, timer: SpanTimer, dur: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == timer.span_id:
            stack.pop()
        if self.metrics is not None:
            self.metrics.observe("repro_span_seconds", dur, span=timer.name)
        if timer.aggregate:
            with self._lock:
                acc = self._agg.setdefault(timer.name, [0.0, 0.0])
                acc[0] += 1
                acc[1] += dur
            return
        span = Span(
            name=timer.name,
            span_id=timer.span_id,
            parent_id=timer.parent_id,
            t_wall=timer.t_wall,
            t_mono=timer.t_mono,
            dur_s=dur,
            fields=dict(timer.fields),
        )
        with self._lock:
            self._spans.append(span)
        if self.log is not None:
            self.log.record(
                "span",
                f"{span.name} {dur * 1e3:.3f}ms",
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                t_wall=span.t_wall,
                t_mono=span.t_mono,
                dur_s=span.dur_s,
                **timer.fields,
            )

    # -- public API ----------------------------------------------------------
    def span(self, name: str, aggregate: bool = False, **fields: Any) -> SpanTimer:
        """Open a new (nested) span; use as ``with recorder.span("x"): ...``."""
        return SpanTimer(self, str(name), bool(aggregate), dict(fields))

    @property
    def spans(self) -> List[Span]:
        """Finished non-aggregated spans in completion order (copy)."""
        with self._lock:
            return list(self._spans)

    def totals(self) -> Dict[str, Tuple[int, float]]:
        """Per-name ``(count, total seconds)`` over all finished spans."""
        out: Dict[str, List[float]] = {}
        for s in self.spans:
            acc = out.setdefault(s.name, [0, 0.0])
            acc[0] += 1
            acc[1] += s.dur_s
        with self._lock:
            for name, (n, tot) in self._agg.items():
                acc = out.setdefault(name, [0, 0.0])
                acc[0] += n
                acc[1] += tot
        return {k: (int(n), float(t)) for k, (n, t) in out.items()}

    def flush(self) -> None:
        """Emit aggregated spans as ``"span-summary"`` events and reset them."""
        with self._lock:
            agg, self._agg = self._agg, {}
        if self.log is None:
            return
        for name in sorted(agg):
            n, tot = agg[name]
            self.log.record(
                "span-summary",
                f"{name} count={int(n)} total={tot:.6g}s",
                name=name,
                count=int(n),
                total_s=tot,
            )


# -- module-global recorder ---------------------------------------------------
_active: Optional[SpanRecorder] = None
_install_lock = threading.Lock()


def install_recorder(recorder: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Install ``recorder`` as the process-wide span sink; returns the
    previous one so callers can restore it (``None`` uninstalls)."""
    global _active
    with _install_lock:
        prev, _active = _active, recorder
        return prev


def current_recorder() -> Optional[SpanRecorder]:
    """The active recorder, or ``None`` when telemetry is off."""
    return _active


def maybe_span(name: str, aggregate: bool = False, **fields: Any) -> Any:
    """A span on the active recorder, or a shared no-op when telemetry is off.

    This is the only call sites ever make; its disabled cost is one global
    read, so instrumentation can live on hot paths.
    """
    rec = _active
    if rec is None:
        return _NULL
    return rec.span(name, aggregate=aggregate, **fields)


@contextmanager
def recording(recorder: SpanRecorder):
    """Scope helper: install ``recorder`` for the block, restore on exit."""
    prev = install_recorder(recorder)
    try:
        yield recorder
    finally:
        recorder.flush()
        install_recorder(prev)
