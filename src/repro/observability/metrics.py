"""A dependency-free, thread-safe metrics registry.

Production autotuning services need the standard trio of instruments —
**counters** (monotone totals: requests served, evaluations run), **gauges**
(point-in-time values: queue depth, live campaigns), and **histograms**
(latency distributions over fixed buckets) — without pulling in a metrics
client library.  :class:`MetricsRegistry` implements all three over plain
dicts behind one lock, with:

* **labels** — every instrument takes keyword labels, so one metric name
  covers a family (``repro_http_requests_total{method="GET", status="200"}``);
* **snapshot / merge** — a registry serializes to a JSON-able snapshot and
  absorbs another registry's (or snapshot's) values, which is how per-worker
  registries roll up into one scrape target;
* **two renderings** — the Prometheus text exposition format (served by the
  crowd-tuning server's ``GET /metrics``) and plain JSON (for archiving next
  to benchmark results).

Instrument handles (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
are thin bound views; all state lives in the registry, so handles are cheap
to create on the fly and safe to share across threads.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram buckets (seconds) — spans µs-scale predict calls to
#: minute-scale objective runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Internal key: (metric name, sorted (label, value) pairs).
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, Any]) -> _Key:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    items = []
    for k in sorted(labels):
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
        items.append((k, str(labels[k])))
    return name, tuple(items)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Sequence[Tuple[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


class Counter:
    """Bound handle to one monotone counter series in a registry."""

    __slots__ = ("_registry", "_name", "_labels")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: Dict[str, Any]):
        self._registry, self._name, self._labels = registry, name, labels

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` (must be >= 0) to the counter."""
        self._registry.inc(self._name, value, **self._labels)


class Gauge:
    """Bound handle to one gauge series in a registry."""

    __slots__ = ("_registry", "_name", "_labels")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: Dict[str, Any]):
        self._registry, self._name, self._labels = registry, name, labels

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._registry.set_gauge(self._name, value, **self._labels)

    def add(self, value: float) -> None:
        """Add ``value`` (may be negative) to the gauge."""
        self._registry.add_gauge(self._name, value, **self._labels)


class Histogram:
    """Bound handle to one fixed-bucket histogram series in a registry."""

    __slots__ = ("_registry", "_name", "_labels")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: Dict[str, Any]):
        self._registry, self._name, self._labels = registry, name, labels

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._registry.observe(self._name, value, **self._labels)


class MetricsRegistry:
    """Thread-safe container of counters, gauges, and histograms.

    All mutation goes through one lock; reads (:meth:`snapshot`,
    :meth:`render_text`) take the same lock and copy, so scrapes never see a
    half-updated histogram.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        # histogram series: key -> [bucket counts..., count, sum]
        self._hists: Dict[_Key, List[float]] = {}
        self._hist_buckets: Dict[str, Tuple[float, ...]] = {}

    # -- instrument factories ------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """Bound counter handle (the series appears on first increment)."""
        _key(name, labels)  # validate eagerly
        return Counter(self, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Bound gauge handle."""
        _key(name, labels)
        return Gauge(self, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        """Bound histogram handle with fixed ``buckets`` (default seconds scale)."""
        _key(name, labels)
        self._ensure_buckets(name, buckets)
        return Histogram(self, name, labels)

    # -- direct mutation -----------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name`` by ``value`` (>= 0)."""
        if value < 0:
            raise ValueError("counters only go up")
        k = _key(name, labels)
        with self._lock:
            self._counters[k] = self._counters.get(k, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name`` to ``value``."""
        k = _key(name, labels)
        with self._lock:
            self._gauges[k] = float(value)

    def add_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Add ``value`` (may be negative) to gauge ``name``."""
        k = _key(name, labels)
        with self._lock:
            self._gauges[k] = self._gauges.get(k, 0.0) + float(value)

    def observe(
        self, name: str, value: float, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> None:
        """Record one histogram observation."""
        k = _key(name, labels)
        bounds = self._ensure_buckets(name, buckets)
        v = float(value)
        with self._lock:
            series = self._hists.get(k)
            if series is None:
                series = self._hists[k] = [0.0] * (len(bounds) + 2)
            for i, b in enumerate(bounds):
                if v <= b:
                    series[i] += 1
                    break
            series[-2] += 1  # count (the implicit +Inf bucket is derived)
            series[-1] += v  # sum

    def _ensure_buckets(
        self, name: str, buckets: Optional[Sequence[float]]
    ) -> Tuple[float, ...]:
        with self._lock:
            bounds = self._hist_buckets.get(name)
            if bounds is None:
                bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_BUCKETS)))
                if not bounds:
                    raise ValueError("histogram needs at least one bucket")
                self._hist_buckets[name] = bounds
            elif buckets is not None and tuple(sorted(map(float, buckets))) != bounds:
                raise ValueError(f"histogram {name!r} already registered with other buckets")
            return bounds

    # -- point reads ---------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter series (0.0 if never incremented).

        Typed point reads keep tests and benchmark gates off string-matching
        the Prometheus rendering.
        """
        k = _key(name, labels)
        with self._lock:
            return self._counters.get(k, 0.0)

    def gauge_value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Current value of one gauge series (``default`` if never set)."""
        k = _key(name, labels)
        with self._lock:
            return self._gauges.get(k, default)

    def histogram_stats(self, name: str, **labels: Any) -> Dict[str, float]:
        """One histogram series' ``{"count", "sum"}`` (zeros if empty)."""
        k = _key(name, labels)
        with self._lock:
            series = self._hists.get(k)
            if series is None:
                return {"count": 0.0, "sum": 0.0}
            return {"count": series[-2], "sum": series[-1]}

    # -- snapshot / merge ----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able copy of every series (the merge/export interchange form)."""
        with self._lock:
            return {
                "counters": [
                    {"name": n, "labels": dict(ls), "value": v}
                    for (n, ls), v in sorted(self._counters.items())
                ],
                "gauges": [
                    {"name": n, "labels": dict(ls), "value": v}
                    for (n, ls), v in sorted(self._gauges.items())
                ],
                "histograms": [
                    {
                        "name": n,
                        "labels": dict(ls),
                        "buckets": list(self._hist_buckets[n]),
                        "counts": list(s[:-2]),
                        "count": s[-2],
                        "sum": s[-1],
                    }
                    for (n, ls), s in sorted(self._hists.items())
                ],
            }

    def merge(self, other: Any) -> "MetricsRegistry":
        """Absorb another registry or snapshot: counters/histograms add,
        gauges take the other side's value (last writer wins)."""
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for c in snap.get("counters", ()):
            self.inc(c["name"], c["value"], **c["labels"])
        for g in snap.get("gauges", ()):
            self.set_gauge(g["name"], g["value"], **g["labels"])
        for h in snap.get("histograms", ()):
            bounds = self._ensure_buckets(h["name"], h["buckets"])
            if list(bounds) != [float(b) for b in h["buckets"]]:
                raise ValueError(f"histogram {h['name']!r}: bucket layouts differ")
            k = _key(h["name"], h["labels"])
            with self._lock:
                series = self._hists.get(k)
                if series is None:
                    series = self._hists[k] = [0.0] * (len(bounds) + 2)
                for i, c in enumerate(h["counts"]):
                    series[i] += c
                series[-2] += h["count"]
                series[-1] += h["sum"]
        return self

    # -- rendering -----------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        snap = self.snapshot()
        lines: List[str] = []
        seen_type: set = set()

        def typeline(name: str, kind: str) -> None:
            if name not in seen_type:
                lines.append(f"# TYPE {name} {kind}")
                seen_type.add(name)

        for c in snap["counters"]:
            typeline(c["name"], "counter")
            labels = sorted(c["labels"].items())
            lines.append(f"{c['name']}{_fmt_labels(labels)} {_fmt_value(c['value'])}")
        for g in snap["gauges"]:
            typeline(g["name"], "gauge")
            labels = sorted(g["labels"].items())
            lines.append(f"{g['name']}{_fmt_labels(labels)} {_fmt_value(g['value'])}")
        for h in snap["histograms"]:
            typeline(h["name"], "histogram")
            labels = sorted(h["labels"].items())
            cum = 0.0
            for bound, n in zip(h["buckets"], h["counts"]):
                cum += n
                le = _fmt_labels(labels, extra=f'le="{_fmt_value(bound)}"')
                lines.append(f"{h['name']}_bucket{le} {_fmt_value(cum)}")
            inf = _fmt_labels(labels, extra='le="+Inf"')
            lines.append(f"{h['name']}_bucket{inf} {_fmt_value(h['count'])}")
            lines.append(f"{h['name']}_sum{_fmt_labels(labels)} {_fmt_value(h['sum'])}")
            lines.append(f"{h['name']}_count{_fmt_labels(labels)} {_fmt_value(h['count'])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)
