"""Text rendering of benchmark results (figures without matplotlib).

The benchmark harness saves every regenerated table/figure as JSON under
``benchmarks/results/``.  This module turns those payloads back into
terminal-friendly charts — scatter plots for Pareto fronts (Fig. 7), line
charts for scaling curves (Fig. 3), and bar charts for per-task ratios
(Fig. 6) — so `python -m repro.reporting benchmarks/results` reproduces the
*figures*, not just the numbers, in any terminal.

All renderers are pure functions from data to strings, which also makes
them unit-testable.
"""

from __future__ import annotations

import json
import math
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["bar_chart", "line_chart", "scatter_plot", "render_results_dir", "main"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart; an optional reference value is marked with '|'.

    Parameters
    ----------
    labels, values:
        Bar names and lengths (non-negative).
    width:
        Character budget for the longest bar.
    reference:
        Value to mark on every row (e.g. ratio = 1 in Fig. 6).
    """
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not values:
        return f"{title}\n(empty)"
    vmax = max(max(values), reference or 0.0) or 1.0
    lw = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for lab, v in zip(labels, values):
        if v < 0:
            raise ValueError("bar values must be non-negative")
        n = int(round(v / vmax * width))
        bar = list("#" * n + " " * (width - n))
        if reference is not None:
            r = min(width - 1, int(round(reference / vmax * width)))
            bar[r] = "|"
        lines.append(f"{str(lab).rjust(lw)} {''.join(bar)} {v:.4g}")
    return "\n".join(lines)


def _axes(
    xs: Sequence[float], ys: Sequence[float], width: int, height: int
) -> Tuple[float, float, float, float]:
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    return x0, x1, y0, y1


def scatter_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    width: int = 56,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Multi-series ASCII scatter plot; each series gets its own glyph.

    Parameters
    ----------
    series:
        Mapping ``name -> (xs, ys)``; up to 8 series (glyphs ``*o+x^#@%``).
    logx, logy:
        Log-scale an axis (requires positive coordinates).
    """
    glyphs = "*o+x^#@%"
    if len(series) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} series supported")
    allx, ally = [], []
    txd: Dict[str, Tuple[List[float], List[float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        fx = [math.log10(v) for v in xs] if logx else list(map(float, xs))
        fy = [math.log10(v) for v in ys] if logy else list(map(float, ys))
        txd[name] = (fx, fy)
        allx.extend(fx)
        ally.extend(fy)
    if not allx:
        return f"{title}\n(empty)"
    x0, x1, y0, y1 = _axes(allx, ally, width, height)
    grid = [[" "] * width for _ in range(height)]
    for gi, (name, (fx, fy)) in enumerate(txd.items()):
        g = glyphs[gi]
        for x, y in zip(fx, fy):
            c = min(width - 1, int((x - x0) / (x1 - x0) * (width - 1)))
            r = min(height - 1, int((y - y0) / (y1 - y0) * (height - 1)))
            grid[height - 1 - r][c] = g
    lines = [title] if title else []
    ymax_lbl = f"{(10**y1 if logy else y1):.3g}"
    ymin_lbl = f"{(10**y0 if logy else y0):.3g}"
    for i, row in enumerate(grid):
        prefix = ymax_lbl if i == 0 else (ymin_lbl if i == height - 1 else "")
        lines.append(f"{prefix:>9} |{''.join(row)}|")
    xmin_lbl = f"{(10**x0 if logx else x0):.3g}"
    xmax_lbl = f"{(10**x1 if logx else x1):.3g}"
    lines.append(f"{'':>9}  {xmin_lbl}{' ' * max(1, width - len(xmin_lbl) - len(xmax_lbl))}{xmax_lbl}")
    legend = "   ".join(f"{glyphs[i]} {name}" for i, name in enumerate(series))
    lines.append(f"{'':>9}  {legend}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 56,
    height: int = 14,
    logy: bool = False,
) -> str:
    """Shared-x multi-series chart (markers only; x must be increasing)."""
    pts = {name: (xs, ys) for name, ys in series.items()}
    return scatter_plot(pts, title=title, width=width, height=height, logy=logy)


# -- results-directory renderer ------------------------------------------------


def _render_fig7(payload: dict) -> str:
    out = []
    for matrix, rec in payload.items():
        fm = rec.get("front_multi", [])
        fs = rec.get("front_single", [])
        if not fm or not fs:
            continue
        out.append(
            scatter_plot(
                {
                    "multitask": ([p[0] for p in fm], [p[1] for p in fm]),
                    "single-task": ([p[0] for p in fs], [p[1] for p in fs]),
                },
                title=f"Fig. 7 right ({matrix}): Pareto fronts, time vs memory (log-log)",
                logx=True,
                logy=True,
            )
        )
    return "\n\n".join(out)


def _render_fig6(payload: dict, name: str) -> str:
    gpt = payload["gptune"]
    labels = [f"task{i}" for i in range(len(gpt))]
    ot = [o / g for o, g in zip(payload["opentuner"], gpt)]
    hb = [h / g for h, g in zip(payload["hpbandster"], gpt)]
    a = bar_chart(labels, ot, title=f"{name}: OpenTuner/GPTune best-runtime ratio", reference=1.0)
    b = bar_chart(labels, hb, title=f"{name}: HpBandSter/GPTune best-runtime ratio", reference=1.0)
    return a + "\n\n" + b


def _render_fig3(payload: dict) -> str:
    meas = payload.get("measured", [])
    if not meas:
        return ""
    xs = [m["N"] for m in meas]
    return line_chart(
        xs,
        {
            "modeling s": [m["modeling_s"] for m in meas],
            "search s": [m["search_s"] for m in meas],
        },
        title="Fig. 3: measured serial phase times vs N = εδ (log y)",
        logy=True,
    )


def render_results_dir(path: str) -> str:
    """Render every recognized result JSON under ``path`` to one report."""
    if not os.path.isdir(path):
        raise FileNotFoundError(f"no results directory at {path}")
    sections: List[str] = []
    for fname in sorted(os.listdir(path)):
        if not fname.endswith(".json"):
            continue
        with open(os.path.join(path, fname), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        stem = fname[:-5]
        try:
            if stem == "fig7_right_multitask":
                sections.append(_render_fig7(payload))
            elif stem.startswith("fig6_"):
                sections.append(_render_fig6(payload, stem))
            elif stem == "fig3_scaling":
                sections.append(_render_fig3(payload))
        except (KeyError, ValueError, TypeError):
            sections.append(f"({fname}: unrenderable payload)")
    return "\n\n".join(s for s in sections if s)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.reporting [results_dir]``."""
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else os.path.join("benchmarks", "results")
    print(render_results_dir(path))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
