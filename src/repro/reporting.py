"""Text rendering of benchmark results (figures without matplotlib).

The benchmark harness saves every regenerated table/figure as JSON under
``benchmarks/results/``.  This module turns those payloads back into
terminal-friendly charts — scatter plots for Pareto fronts (Fig. 7), line
charts for scaling curves (Fig. 3), and bar charts for per-task ratios
(Fig. 6) — so `python -m repro.reporting benchmarks/results` reproduces the
*figures*, not just the numbers, in any terminal.

It also renders **campaign telemetry**: ``repro report run.jsonl`` turns a
telemetry export (``repro tune --telemetry run.jsonl``) into the paper's
Table-3-style phase-time breakdown — phase seconds and percentages from the
recorded spans alone, a model/resilience event summary, and a consistency
check of the span sums against the campaign's final ``"stats"`` event.

All renderers are pure functions from data to strings, which also makes
them unit-testable.
"""

from __future__ import annotations

import json
import math
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "bar_chart",
    "line_chart",
    "scatter_plot",
    "phase_breakdown",
    "check_phase_stats",
    "render_campaign_report",
    "render_results_dir",
    "main",
]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart; an optional reference value is marked with '|'.

    Parameters
    ----------
    labels, values:
        Bar names and lengths (non-negative).
    width:
        Character budget for the longest bar.
    reference:
        Value to mark on every row (e.g. ratio = 1 in Fig. 6).
    """
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not values:
        return f"{title}\n(empty)"
    vmax = max(max(values), reference or 0.0) or 1.0
    lw = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for lab, v in zip(labels, values):
        if v < 0:
            raise ValueError("bar values must be non-negative")
        n = int(round(v / vmax * width))
        bar = list("#" * n + " " * (width - n))
        if reference is not None:
            r = min(width - 1, int(round(reference / vmax * width)))
            bar[r] = "|"
        lines.append(f"{str(lab).rjust(lw)} {''.join(bar)} {v:.4g}")
    return "\n".join(lines)


def _axes(
    xs: Sequence[float], ys: Sequence[float], width: int, height: int
) -> Tuple[float, float, float, float]:
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    return x0, x1, y0, y1


def scatter_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    width: int = 56,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Multi-series ASCII scatter plot; each series gets its own glyph.

    Parameters
    ----------
    series:
        Mapping ``name -> (xs, ys)``; up to 8 series (glyphs ``*o+x^#@%``).
    logx, logy:
        Log-scale an axis (requires positive coordinates).
    """
    glyphs = "*o+x^#@%"
    if len(series) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} series supported")
    allx, ally = [], []
    txd: Dict[str, Tuple[List[float], List[float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        fx = [math.log10(v) for v in xs] if logx else list(map(float, xs))
        fy = [math.log10(v) for v in ys] if logy else list(map(float, ys))
        txd[name] = (fx, fy)
        allx.extend(fx)
        ally.extend(fy)
    if not allx:
        return f"{title}\n(empty)"
    x0, x1, y0, y1 = _axes(allx, ally, width, height)
    grid = [[" "] * width for _ in range(height)]
    for gi, (name, (fx, fy)) in enumerate(txd.items()):
        g = glyphs[gi]
        for x, y in zip(fx, fy):
            c = min(width - 1, int((x - x0) / (x1 - x0) * (width - 1)))
            r = min(height - 1, int((y - y0) / (y1 - y0) * (height - 1)))
            grid[height - 1 - r][c] = g
    lines = [title] if title else []
    ymax_lbl = f"{(10**y1 if logy else y1):.3g}"
    ymin_lbl = f"{(10**y0 if logy else y0):.3g}"
    for i, row in enumerate(grid):
        prefix = ymax_lbl if i == 0 else (ymin_lbl if i == height - 1 else "")
        lines.append(f"{prefix:>9} |{''.join(row)}|")
    xmin_lbl = f"{(10**x0 if logx else x0):.3g}"
    xmax_lbl = f"{(10**x1 if logx else x1):.3g}"
    lines.append(f"{'':>9}  {xmin_lbl}{' ' * max(1, width - len(xmin_lbl) - len(xmax_lbl))}{xmax_lbl}")
    legend = "   ".join(f"{glyphs[i]} {name}" for i, name in enumerate(series))
    lines.append(f"{'':>9}  {legend}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 56,
    height: int = 14,
    logy: bool = False,
) -> str:
    """Shared-x multi-series chart (markers only; x must be increasing)."""
    pts = {name: (xs, ys) for name, ys in series.items()}
    return scatter_plot(pts, title=title, width=width, height=height, logy=logy)


# -- campaign telemetry report -------------------------------------------------

#: phase spans whose totals correspond 1:1 to TuneResult.stats wall times
PHASE_STATS_KEYS = {
    "phase.modeling": "modeling_time",
    "phase.search": "search_time",
    "phase.evaluation": "objective_wall_time",
}

#: resilience / model event kinds summarized by the campaign report
_SUMMARY_KINDS = (
    "retry",
    "timeout",
    "exception",
    "nonfinite",
    "eval-failure",
    "worker-death",
    "model-fit",
    "model-extend",
    "model-backend",
    "model-downgrade",
    "model-cache-hit",
    "model-cache-store",
    "search-mode",
    "checkpoint",
    "resume",
    "async-start",
    "async-drain",
    "async-fallback",
    "async-stop",
)


def phase_breakdown(events) -> Dict[str, Dict[str, float]]:
    """Aggregate span durations per name from a telemetry event stream.

    Sums both individual ``"span"`` events (``dur_s`` field) and aggregated
    ``"span-summary"`` events (``count``/``total_s`` fields, emitted for
    hot-path spans like ``model.predict``).  Returns
    ``{name: {"count": n, "total_s": seconds}}``.
    """
    out: Dict[str, Dict[str, float]] = {}
    for ev in events:
        if ev.kind == "span":
            name, cnt = ev.fields.get("name"), 1
            dur = float(ev.fields.get("dur_s", 0.0))
        elif ev.kind == "span-summary":
            name, cnt = ev.fields.get("name"), int(ev.fields.get("count", 0))
            dur = float(ev.fields.get("total_s", 0.0))
        else:
            continue
        if not name:
            continue
        acc = out.setdefault(str(name), {"count": 0, "total_s": 0.0})
        acc["count"] += cnt
        acc["total_s"] += dur
    return out


def check_phase_stats(
    breakdown: Dict[str, Dict[str, float]],
    stats: Dict[str, float],
    tolerance: float = 0.05,
) -> Tuple[bool, List[str]]:
    """Compare span phase totals against the campaign's ``stats`` event.

    The gate compares the *sum* over the mapped phases
    (:data:`PHASE_STATS_KEYS`) against the sum of the corresponding stats
    wall times; per-phase deltas are reported as information only (a span
    around a microsecond-fast objective is dominated by its own overhead,
    so per-phase relative error is meaningless at that scale).  Returns
    ``(ok, lines)``; ``ok`` is False when the sums disagree by more than
    ``tolerance`` (relative) or when either side is missing.
    """
    lines: List[str] = []
    if not stats:
        return False, ["no 'stats' event in telemetry (campaign incomplete?)"]
    span_sum = 0.0
    stats_sum = 0.0
    for span_name, stats_key in PHASE_STATS_KEYS.items():
        s = breakdown.get(span_name, {}).get("total_s", 0.0)
        t = float(stats.get(stats_key, 0.0))
        span_sum += s
        stats_sum += t
        delta = abs(s - t)
        rel = delta / t if t > 0 else (0.0 if delta == 0 else math.inf)
        lines.append(
            f"{span_name:18s} spans {s:10.4f}s   stats.{stats_key} {t:10.4f}s   "
            f"delta {delta * 1e3:8.3f}ms"
        )
        _ = rel  # per-phase error is informational only; the gate is on sums
    if stats_sum <= 0:
        ok = span_sum <= 0 or span_sum < 1e-3
        rel_total = 0.0 if ok else math.inf
    else:
        rel_total = abs(span_sum - stats_sum) / stats_sum
        ok = rel_total <= tolerance
    lines.append(
        f"{'total':18s} spans {span_sum:10.4f}s   stats        {stats_sum:10.4f}s   "
        f"rel {rel_total * 100:6.2f}% ({'OK' if ok else f'>{tolerance * 100:.0f}% MISMATCH'})"
    )
    return ok, lines


def _render_async(events) -> str:
    """Queue-depth / straggler-wait summary of an async streaming campaign.

    Built from the ``"async-drain"`` events: each carries the drained batch
    size (``n``), the blocking wait before it (``wait_s`` — long waits are
    stragglers holding their slot), and the queue depth the drain started
    with (``inflight``).  Returns ``""`` for lockstep campaigns.
    """
    drains = [e for e in events if e.kind == "async-drain"]
    if not drains:
        return ""
    waits = [float(e.fields.get("wait_s", 0.0)) for e in drains]
    depths = [int(e.fields.get("inflight", 0)) for e in drains]
    batch = [int(e.fields.get("n", 0)) for e in drains]
    lines = ["async queue (from async-drain events)"]
    lines.append(
        f"{'drains':>18}  {len(drains)}   completions {sum(batch)}"
    )
    lines.append(
        f"{'queue depth':>18}  mean {sum(depths) / len(depths):.2f}   "
        f"max {max(depths)}"
    )
    lines.append(
        f"{'drain wait':>18}  mean {sum(waits) / len(waits):.4g}s   "
        f"max {max(waits):.4g}s   total {sum(waits):.4g}s"
    )
    for e in events:
        if e.kind == "async-stop":
            lines.append(
                f"{'lifetime':>18}  submitted {int(e.fields.get('submitted', 0))}"
                f"   completed {int(e.fields.get('completed', 0))}"
                f"   peak inflight {int(e.fields.get('peak_inflight', 0))}"
            )
    return "\n".join(lines)


def render_campaign_report(log, tolerance: float = 0.05) -> Tuple[str, bool]:
    """Render the Table-3-style report for one telemetry event log.

    Parameters
    ----------
    log:
        A :class:`~repro.runtime.trace.CampaignLog`, typically loaded from a
        ``repro tune --telemetry`` JSONL export via
        :meth:`~repro.runtime.trace.CampaignLog.load_jsonl`.
    tolerance:
        Relative tolerance of the span-vs-stats consistency gate.

    Returns ``(text, consistent)`` — the rendered report and whether the
    phase spans agree with the recorded campaign stats within tolerance.
    """
    events = log.events
    breakdown = phase_breakdown(events)
    stats: Dict[str, float] = {}
    for ev in events:
        if ev.kind == "stats":
            stats = {k: float(v) for k, v in ev.fields.items()}

    sections: List[str] = []
    phases = {k: v for k, v in sorted(breakdown.items()) if k.startswith("phase.")}
    total = sum(v["total_s"] for v in phases.values())
    rows = [
        (name.split(".", 1)[1], int(v["count"]), v["total_s"],
         100.0 * v["total_s"] / total if total > 0 else 0.0)
        for name, v in phases.items()
    ]
    tbl = ["phase breakdown (from spans)", f"{'phase':>12}  {'count':>6}  {'seconds':>10}  {'%':>6}"]
    for name, cnt, secs, pct in rows:
        tbl.append(f"{name:>12}  {cnt:6d}  {secs:10.4f}  {pct:6.1f}")
    tbl.append(f"{'total':>12}  {'':6}  {total:10.4f}  {100.0 if total > 0 else 0.0:6.1f}")
    sections.append("\n".join(tbl))
    if rows:
        sections.append(
            bar_chart([r[0] for r in rows], [r[2] for r in rows], title="phase seconds")
        )

    model = {k: v for k, v in sorted(breakdown.items()) if k.startswith("model.")}
    if model:
        lines = ["model spans"]
        for name, v in model.items():
            lines.append(f"{name:>15}  count {int(v['count']):5d}  total {v['total_s']:.4f}s")
        sections.append("\n".join(lines))

    async_section = _render_async(events)
    if async_section:
        sections.append(async_section)

    counts = log.counts()
    lines = ["events"]
    for kind in _SUMMARY_KINDS:
        if counts.get(kind):
            lines.append(f"{kind:>18}  {counts[kind]}")
    n_starts = log.total("model-fit", "n_starts")
    if counts.get("model-fit"):
        lines.append(f"{'L-BFGS multi-starts':>18}  {n_starts}")
    modes = [
        str(ev.fields.get("mode") or ev.detail)
        for ev in events
        if ev.kind == "search-mode"
    ]
    if modes:
        seen_modes = list(dict.fromkeys(modes))  # first-use order, deduped
        lines.append(f"{'search modes':>18}  {', '.join(seen_modes)}")
    backends = [
        str(ev.fields.get("backend") or ev.detail)
        for ev in events
        if ev.kind == "model-backend"
    ]
    if backends:
        seen_backends = list(dict.fromkeys(backends))  # first-use order, deduped
        lines.append(f"{'model backends':>18}  {', '.join(seen_backends)}")
    if len(lines) == 1:
        lines.append("(none)")
    sections.append("\n".join(lines))

    ok, check_lines = check_phase_stats(breakdown, stats, tolerance=tolerance)
    sections.append("\n".join(["consistency (spans vs stats event)"] + check_lines))
    return "\n\n".join(sections), ok


# -- results-directory renderer ------------------------------------------------


def _render_fig7(payload: dict) -> str:
    out = []
    for matrix, rec in payload.items():
        fm = rec.get("front_multi", [])
        fs = rec.get("front_single", [])
        if not fm or not fs:
            continue
        out.append(
            scatter_plot(
                {
                    "multitask": ([p[0] for p in fm], [p[1] for p in fm]),
                    "single-task": ([p[0] for p in fs], [p[1] for p in fs]),
                },
                title=f"Fig. 7 right ({matrix}): Pareto fronts, time vs memory (log-log)",
                logx=True,
                logy=True,
            )
        )
    return "\n\n".join(out)


def _render_fig6(payload: dict, name: str) -> str:
    gpt = payload["gptune"]
    labels = [f"task{i}" for i in range(len(gpt))]
    ot = [o / g for o, g in zip(payload["opentuner"], gpt)]
    hb = [h / g for h, g in zip(payload["hpbandster"], gpt)]
    a = bar_chart(labels, ot, title=f"{name}: OpenTuner/GPTune best-runtime ratio", reference=1.0)
    b = bar_chart(labels, hb, title=f"{name}: HpBandSter/GPTune best-runtime ratio", reference=1.0)
    return a + "\n\n" + b


def _render_fig3(payload: dict) -> str:
    meas = payload.get("measured", [])
    if not meas:
        return ""
    xs = [m["N"] for m in meas]
    return line_chart(
        xs,
        {
            "modeling s": [m["modeling_s"] for m in meas],
            "search s": [m["search_s"] for m in meas],
        },
        title="Fig. 3: measured serial phase times vs N = εδ (log y)",
        logy=True,
    )


def render_results_dir(path: str) -> str:
    """Render every recognized result JSON under ``path`` to one report."""
    if not os.path.isdir(path):
        raise FileNotFoundError(f"no results directory at {path}")
    sections: List[str] = []
    for fname in sorted(os.listdir(path)):
        if not fname.endswith(".json"):
            continue
        with open(os.path.join(path, fname), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        stem = fname[:-5]
        try:
            if stem == "fig7_right_multitask":
                sections.append(_render_fig7(payload))
            elif stem.startswith("fig6_"):
                sections.append(_render_fig6(payload, stem))
            elif stem == "fig3_scaling":
                sections.append(_render_fig3(payload))
        except (KeyError, ValueError, TypeError):
            sections.append(f"({fname}: unrenderable payload)")
    return "\n\n".join(s for s in sections if s)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.reporting [results_dir]``."""
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else os.path.join("benchmarks", "results")
    print(render_results_dir(path))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
