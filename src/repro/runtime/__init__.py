"""Parallel runtime substrate: machine models, simulated MPI, executors."""

from .distributed_linalg import (
    cholesky_spmd,
    distributed_cholesky,
    distributed_forward_solve,
    forward_substitution_spmd,
)
from .executor import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkerError,
    make_executor,
)
from .machine import Machine, cori_haswell, laptop
from .mpi import InterComm, Request, SimComm, SimJob, run_spmd
from .resilience import (
    EvalOutcome,
    EvalTimeoutError,
    FatalEvaluationError,
    RetryPolicy,
    RunCheckpoint,
    atomic_write_json,
    run_with_retries,
)
from .simclock import SimClock
from .trace import CampaignEvent, CampaignLog, JsonlEventWriter, TraceEvent, Tracer, traced

__all__ = [
    "CampaignEvent",
    "CampaignLog",
    "EvalOutcome",
    "JsonlEventWriter",
    "EvalTimeoutError",
    "FatalEvaluationError",
    "InterComm",
    "Machine",
    "ProcessBackend",
    "Request",
    "RetryPolicy",
    "RunCheckpoint",
    "SerialBackend",
    "SimClock",
    "SimComm",
    "SimJob",
    "ThreadBackend",
    "TraceEvent",
    "Tracer",
    "WorkerError",
    "atomic_write_json",
    "run_with_retries",
    "cholesky_spmd",
    "cori_haswell",
    "distributed_cholesky",
    "distributed_forward_solve",
    "forward_substitution_spmd",
    "traced",
    "laptop",
    "make_executor",
    "run_spmd",
]
