"""Parallel runtime substrate: machine models, simulated MPI, executors."""

from .distributed_linalg import (
    cholesky_spmd,
    distributed_cholesky,
    distributed_forward_solve,
    forward_substitution_spmd,
)
from .executor import ProcessBackend, SerialBackend, ThreadBackend, make_executor
from .machine import Machine, cori_haswell, laptop
from .mpi import InterComm, Request, SimComm, SimJob, run_spmd
from .simclock import SimClock
from .trace import TraceEvent, Tracer, traced

__all__ = [
    "InterComm",
    "Machine",
    "ProcessBackend",
    "Request",
    "SerialBackend",
    "SimClock",
    "SimComm",
    "SimJob",
    "ThreadBackend",
    "TraceEvent",
    "Tracer",
    "cholesky_spmd",
    "cori_haswell",
    "distributed_cholesky",
    "distributed_forward_solve",
    "forward_substitution_spmd",
    "traced",
    "laptop",
    "make_executor",
    "run_spmd",
]
