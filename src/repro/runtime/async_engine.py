"""Asynchronous evaluation queue for streaming MLA campaigns.

The lockstep MLA loop (sample → model → search → evaluate) stalls every task
on the slowest evaluation of each batch — one straggling application run
holds the whole campaign hostage.  :class:`AsyncEvalEngine` removes the
barrier: the driver submits evaluations as proposals are made, completions
stream back as they finish, and the posterior absorbs each drained batch
immediately (see :meth:`repro.core.mla.GPTune.tune` with
``Options(async_eval=True)``).

The engine separates *queue semantics* from *execution*:

* :class:`AsyncEvalEngine` owns the bounded in-flight set (``max_inflight``),
  assigns every submission a monotonically increasing sequence id, and sorts
  each drained completion batch by that id — so the order in which results
  are *published to the driver* depends only on submission order within a
  batch, never on scheduler-internal races.
* A **scheduler** actually runs the work: :class:`SerialScheduler` (inline,
  deterministic degradation target), :class:`ThreadScheduler` /
  :class:`ProcessScheduler` (pools over
  ``concurrent.futures``; the process variant rebuilds a broken pool and
  resubmits lost evaluations like
  :class:`~repro.runtime.executor.ProcessBackend`), and
  :class:`SimScheduler`, a :class:`~repro.runtime.simclock.SimClock`-driven
  fake executor for deterministic tests and benchmarks.

Determinism contract (proved in ``tests/test_determinism.py``): under a
deterministic scheduler, the driver's decision stream is a pure function of
the published-result order and the seed tree.  :class:`SimScheduler`
supports checkpointing in-flight evaluations with their *remaining* virtual
duration (``eta``), so a campaign killed mid-flight and resumed reproduces
the uninterrupted run bit-for-bit; shuffling completion order within a drain
batch cannot change anything because the engine re-sorts by sequence id.
The driver pairs this with the checkpoint's posterior-extension snapshot
(:class:`~repro.runtime.resilience.RunCheckpoint` ``modeling``), so the
bit-for-bit guarantee holds for every streaming shape — multi-objective,
performance models, ``refit_interval > 1``.

Like :mod:`repro.runtime.resilience`, this module imports nothing from
:mod:`repro.core` so the core layers can depend on it without cycles.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .executor import WorkerError
from .simclock import SimClock

__all__ = [
    "AsyncEvalEngine",
    "CompletedEval",
    "ProcessScheduler",
    "SerialScheduler",
    "SimScheduler",
    "ThreadScheduler",
    "make_scheduler",
]


@dataclasses.dataclass(frozen=True)
class CompletedEval:
    """One finished evaluation handed back by :meth:`AsyncEvalEngine.drain`.

    ``seq`` is the engine-wide submission sequence id; drain batches are
    sorted by it, so absorbing completions in list order is deterministic.
    """

    seq: int
    task: int
    config: Dict[str, Any]
    outcome: Any


class SerialScheduler:
    """Run every submission inline; ``wait()`` returns all of them at once.

    The degradation target: an async campaign over a serial scheduler is a
    barrier-free batched loop with identical queue semantics and no
    concurrency, useful as a deterministic baseline on any machine.
    """

    def start(self, seq: int, fn: Callable[[Any], Any], payload: Any,
              eta: Optional[float] = None) -> None:
        """Run the evaluation inline and queue its result for ``wait()``."""
        try:
            result = fn(payload)
        except Exception as e:
            raise WorkerError(seq, f"evaluation {seq} failed: {e}") from e
        self._done.append((seq, result))

    def __init__(self):
        self._done: List[Tuple[int, Any]] = []

    def wait(self) -> List[Tuple[int, Any]]:
        """Return every result accumulated since the last ``wait()``."""
        if not self._done:
            raise RuntimeError("wait() with nothing in flight")
        out, self._done = self._done, []
        return out

    def remaining(self, seq: int) -> Optional[float]:
        """Inline execution has no in-flight time; always ``None``."""
        return None

    def shutdown(self) -> None:
        """Drop any undrained results."""
        self._done.clear()


class ThreadScheduler:
    """Pool scheduler over ``ThreadPoolExecutor``.

    Evaluations overlap whenever the objective releases the GIL (BLAS,
    subprocess waits, I/O, sleeps).  A raising evaluation surfaces as a
    :class:`~repro.runtime.executor.WorkerError` carrying its sequence id.
    """

    def __init__(self, n_workers: int = 2,
                 on_event: Optional[Callable[[str, str], Any]] = None):
        if n_workers < 1:
            raise ValueError("need n_workers >= 1")
        self.n_workers = int(n_workers)
        self.on_event = on_event
        self._pool = self._make_pool()
        self._futures: Dict[int, concurrent.futures.Future] = {}
        self._items: Dict[int, Tuple[Callable[[Any], Any], Any]] = {}

    def _make_pool(self):
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.n_workers)

    def start(self, seq: int, fn: Callable[[Any], Any], payload: Any,
              eta: Optional[float] = None) -> None:
        """Submit the evaluation to the pool (``eta`` is ignored)."""
        self._items[seq] = (fn, payload)
        self._futures[seq] = self._pool.submit(fn, payload)

    def _recover(self, lost: List[int]) -> None:
        raise WorkerError(lost[0], f"thread pool broken on evaluation {lost[0]}")

    def wait(self) -> List[Tuple[int, Any]]:
        """Block until at least one in-flight evaluation completes."""
        while True:
            if not self._futures:
                raise RuntimeError("wait() with nothing in flight")
            done, _ = concurrent.futures.wait(
                list(self._futures.values()),
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            out: List[Tuple[int, Any]] = []
            lost: List[int] = []
            for seq in sorted(self._futures):
                fut = self._futures[seq]
                if fut not in done:
                    continue
                del self._futures[seq]
                try:
                    out.append((seq, fut.result()))
                except concurrent.futures.BrokenExecutor:
                    lost.append(seq)
                except Exception as e:
                    raise WorkerError(seq, f"evaluation {seq} failed: {e}") from e
            if lost:
                self._recover(lost)
            if out:
                return out

    def remaining(self, seq: int) -> Optional[float]:
        """Real executors cannot estimate time left; always ``None``."""
        return None

    def shutdown(self) -> None:
        """Cancel outstanding futures and tear the pool down without waiting."""
        for fut in self._futures.values():
            fut.cancel()
        self._futures.clear()
        self._items.clear()
        self._pool.shutdown(wait=False, cancel_futures=True)


class ProcessScheduler(ThreadScheduler):
    """Pool scheduler over ``ProcessPoolExecutor`` with worker-death recovery.

    When the pool breaks (a worker was killed — OOM, segfault), the lost
    evaluations are resubmitted on a rebuilt pool up to ``max_pool_restarts``
    times, mirroring :class:`~repro.runtime.executor.ProcessBackend`; every
    rebuild emits a ``("worker-death", ...)`` event.  Evaluation callables
    and payloads must be picklable.
    """

    def __init__(self, n_workers: int = 2, max_pool_restarts: int = 2,
                 on_event: Optional[Callable[[str, str], Any]] = None):
        self.max_pool_restarts = int(max_pool_restarts)
        self._restarts = 0
        super().__init__(n_workers, on_event=on_event)

    def _make_pool(self):
        return concurrent.futures.ProcessPoolExecutor(max_workers=self.n_workers)

    def _recover(self, lost: List[int]) -> None:
        self._restarts += 1
        if self._restarts > self.max_pool_restarts:
            raise WorkerError(
                lost[0],
                f"worker died {self._restarts} time(s); "
                f"giving up on evaluation {lost[0]}",
            )
        if self.on_event is not None:
            self.on_event(
                "worker-death",
                f"pool broken; resubmitting {len(lost)} evaluation(s) "
                f"(restart {self._restarts}/{self.max_pool_restarts})",
            )
        # a broken pool poisons every outstanding future: recollect them all
        lost_all = sorted(set(lost) | set(self._futures))
        self._futures.clear()
        self._pool.shutdown(wait=False)
        self._pool = self._make_pool()
        for seq in lost_all:
            fn, payload = self._items[seq]
            self._futures[seq] = self._pool.submit(fn, payload)


class SimScheduler:
    """Deterministic virtual-time scheduler for tests and benchmarks.

    Evaluations run *eagerly* at submission (the simulated objective is
    cheap); their completion is scheduled ``duration(task, config)`` virtual
    seconds later on a shared :class:`~repro.runtime.simclock.SimClock`.
    ``wait()`` advances the clock to the earliest outstanding completion and
    returns every evaluation finishing at that instant — so stragglers
    (large durations) genuinely hold their slot while short evaluations
    stream past them, with zero real sleeping.

    Parameters
    ----------
    duration:
        ``duration(task_index, config) -> float`` virtual seconds per
        evaluation.  Heavy-tailed durations reproduce straggler-bound
        campaigns deterministically.
    clock:
        Shared clock (``clock.now`` at the end of a campaign is its
        simulated makespan).  A fresh one is created when omitted.
    shuffle_seed:
        When set, each ``wait()`` batch is returned in a seeded-random order
        — an adversarial stand-in for OS completion races, used to prove the
        engine's publication order is completion-order invariant.
    eta_tol:
        Completion-time tie tolerance when grouping a drain batch.
    """

    def __init__(self, duration: Callable[[int, Dict[str, Any]], float],
                 clock: Optional[SimClock] = None,
                 shuffle_seed: Optional[int] = None,
                 eta_tol: float = 1e-9):
        self.duration = duration
        self.clock = clock if clock is not None else SimClock()
        self.eta_tol = float(eta_tol)
        self._rng = (np.random.default_rng(shuffle_seed)
                     if shuffle_seed is not None else None)
        self._pending: Dict[int, Tuple[float, Any]] = {}  # seq -> (done_t, result)

    def start(self, seq: int, fn: Callable[[Any], Any], payload: Any,
              eta: Optional[float] = None) -> None:
        """Run the evaluation eagerly; schedule its completion ``duration``
        (or resubmission ``eta``) virtual seconds from now."""
        try:
            result = fn(payload)
        except Exception as e:
            raise WorkerError(seq, f"evaluation {seq} failed: {e}") from e
        task, cfg = payload
        d = float(eta) if eta is not None else float(self.duration(task, cfg))
        self._pending[seq] = (self.clock.now + max(d, 0.0), result)

    def wait(self) -> List[Tuple[int, Any]]:
        """Advance the clock to the earliest outstanding completion and
        return every evaluation finishing at that instant."""
        if not self._pending:
            raise RuntimeError("wait() with nothing in flight")
        t = min(done_t for done_t, _ in self._pending.values())
        self.clock.advance_to(t)
        batch = [(seq, result) for seq, (done_t, result) in self._pending.items()
                 if done_t <= t + self.eta_tol]
        for seq, _ in batch:
            del self._pending[seq]
        if self._rng is not None and len(batch) > 1:
            order = self._rng.permutation(len(batch))
            batch = [batch[i] for i in order]
        return batch

    def remaining(self, seq: int) -> Optional[float]:
        """Virtual seconds left for an in-flight evaluation.

        Checkpointing this as the resubmission ``eta`` preserves relative
        completion times across a kill/resume, which is what makes resumed
        async campaigns bit-identical to uninterrupted ones.
        """
        done_t, _ = self._pending[seq]
        return max(0.0, done_t - self.clock.now)

    def shutdown(self) -> None:
        """Drop all scheduled completions."""
        self._pending.clear()


def make_scheduler(backend: str, n_workers: int = 2,
                   on_event: Optional[Callable[[str, str], Any]] = None):
    """Build a scheduler from an :class:`~repro.core.options.Options` backend
    string (``"serial"``, ``"thread"`` or ``"process"``)."""
    if backend == "serial":
        return SerialScheduler()
    if backend == "thread":
        return ThreadScheduler(n_workers, on_event=on_event)
    if backend == "process":
        return ProcessScheduler(n_workers, on_event=on_event)
    raise ValueError(f"unknown backend {backend!r}")


class AsyncEvalEngine:
    """Bounded asynchronous evaluation queue with deterministic publication.

    Parameters
    ----------
    fn:
        ``fn((task_index, config)) -> outcome`` — the evaluation callable
        (picklable for :class:`ProcessScheduler`).  The driver passes a
        closure over :meth:`TuningProblem.evaluate_outcome` and its retry
        policy, so the resilience ladder composes with the queue unchanged.
    scheduler:
        Any object with the scheduler protocol (``start``/``wait``/
        ``remaining``/``shutdown``); see the module docstring.
    max_inflight:
        Hard cap on concurrently outstanding evaluations.  :meth:`submit`
        past the cap raises — callers gate on :attr:`can_submit`.

    Invariants (asserted by ``tests/test_async_engine.py``): the in-flight
    count never exceeds ``max_inflight``; every completion is published
    exactly once; each drained batch is sorted by submission sequence id.
    """

    def __init__(self, fn: Callable[[Any], Any], scheduler, max_inflight: int):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.fn = fn
        self.scheduler = scheduler
        self.max_inflight = int(max_inflight)
        self.peak_inflight = 0
        self.submitted = 0
        self.completed = 0
        self._next_seq = 0
        self._inflight: Dict[int, Tuple[int, Dict[str, Any]]] = {}

    @property
    def inflight(self) -> int:
        """Number of outstanding evaluations."""
        return len(self._inflight)

    @property
    def can_submit(self) -> bool:
        """Whether a slot is free under ``max_inflight``."""
        return len(self._inflight) < self.max_inflight

    def inflight_tasks(self) -> List[int]:
        """Task index of every outstanding evaluation (one entry each)."""
        return [task for task, _ in self._inflight.values()]

    def submit(self, task: int, config: Dict[str, Any],
               eta: Optional[float] = None) -> int:
        """Enqueue one evaluation; returns its sequence id.

        ``eta`` is only meaningful on resume with a scheduler that honors it
        (:class:`SimScheduler`): the checkpointed remaining duration of a
        previously in-flight evaluation.
        """
        if not self.can_submit:
            raise RuntimeError(
                f"max_inflight={self.max_inflight} exceeded "
                f"({len(self._inflight)} in flight)"
            )
        seq = self._next_seq
        self._next_seq += 1
        cfg = dict(config)
        self._inflight[seq] = (int(task), cfg)
        self.scheduler.start(seq, self.fn, (int(task), cfg), eta=eta)
        self.submitted += 1
        self.peak_inflight = max(self.peak_inflight, len(self._inflight))
        return seq

    def drain(self) -> Tuple[List[CompletedEval], float]:
        """Block until ≥ 1 completion; return ``(batch, wait_seconds)``.

        The batch is sorted by sequence id, so completion-order races inside
        the scheduler cannot leak into the driver's data order.
        """
        if not self._inflight:
            return [], 0.0
        t0 = time.perf_counter()
        raw = self.scheduler.wait()
        wait_s = time.perf_counter() - t0
        batch: List[CompletedEval] = []
        for seq, result in sorted(raw, key=lambda it: it[0]):
            task, cfg = self._inflight.pop(seq)
            batch.append(CompletedEval(seq=seq, task=task, config=cfg, outcome=result))
        self.completed += len(batch)
        return batch, wait_s

    def pending_snapshot(self) -> List[Tuple[int, int, Dict[str, Any], Optional[float]]]:
        """Checkpoint view of the in-flight set: ``(seq, task, config, eta)``
        sorted by sequence id (``eta`` is ``None`` for real executors)."""
        out = []
        for seq in sorted(self._inflight):
            task, cfg = self._inflight[seq]
            out.append((seq, task, dict(cfg), self.scheduler.remaining(seq)))
        return out

    def shutdown(self) -> None:
        """Abandon outstanding evaluations and release scheduler resources."""
        self._inflight.clear()
        self.scheduler.shutdown()
