"""Communication and dense-linear-algebra cost models.

Prices MPI collectives with the classic α-β (latency–bandwidth) model and the
LCM covariance factorization with a ScaLAPACK-style parallel Cholesky model.
The simulated-MPI layer charges these times to rank clocks; the Fig. 3
scaling benchmark uses :func:`parallel_cholesky_time` and
:func:`lbfgs_modeling_time` to reproduce the modeling/search speedups of the
paper's parallel implementation (Sec. 4.3).
"""

from __future__ import annotations

import math

from .machine import Machine

__all__ = [
    "pt2pt_time",
    "bcast_time",
    "reduce_time",
    "allreduce_time",
    "gather_time",
    "alltoall_time",
    "barrier_time",
    "cholesky_flops",
    "parallel_cholesky_time",
    "lbfgs_modeling_time",
    "search_phase_time",
]


def pt2pt_time(machine: Machine, nbytes: float) -> float:
    """One point-to-point message: ``α + nβ``."""
    return machine.time_message(nbytes)


def bcast_time(machine: Machine, nbytes: float, p: int) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p) (α + nβ)``."""
    p = max(1, int(p))
    return math.ceil(math.log2(p)) * machine.time_message(nbytes) if p > 1 else 0.0


def reduce_time(machine: Machine, nbytes: float, p: int) -> float:
    """Binomial-tree reduction (same α-β shape as broadcast)."""
    return bcast_time(machine, nbytes, p)


def allreduce_time(machine: Machine, nbytes: float, p: int) -> float:
    """Recursive-doubling allreduce: ``log2 p`` rounds of ``α + nβ``."""
    return bcast_time(machine, nbytes, p)


def gather_time(machine: Machine, nbytes_per_rank: float, p: int) -> float:
    """Binomial gather: ``log2 p`` steps with doubling payloads."""
    p = max(1, int(p))
    if p <= 1:
        return 0.0
    t, chunk = 0.0, float(nbytes_per_rank)
    for _ in range(math.ceil(math.log2(p))):
        t += machine.time_message(chunk)
        chunk *= 2.0
    return t


def alltoall_time(machine: Machine, nbytes_per_pair: float, p: int) -> float:
    """Pairwise-exchange all-to-all: ``p - 1`` rounds."""
    p = max(1, int(p))
    return (p - 1) * machine.time_message(nbytes_per_pair)


def barrier_time(machine: Machine, p: int) -> float:
    """Dissemination barrier: ``log2 p`` zero-payload messages."""
    p = max(1, int(p))
    return math.ceil(math.log2(p)) * machine.latency if p > 1 else 0.0


# -- dense linear algebra -----------------------------------------------------

def cholesky_flops(n: int) -> float:
    """Flop count of a dense Cholesky factorization, ``n³/3``."""
    return n**3 / 3.0


def parallel_cholesky_time(machine: Machine, n: int, p: int, block: int = 64) -> float:
    """ScaLAPACK-style 2D block-cyclic Cholesky time on ``p`` processes.

    ``n³/(3p)`` flops at BLAS-3 efficiency plus the standard 2D-grid
    communication terms ``O(n² log p / sqrt(p))`` volume and
    ``O(n/b · log p)`` messages (α-β model).  This is the model GPTune's
    parallelized covariance factorization follows (Sec. 4.3 level-2
    parallelism, "for the modeling phase, we parallelized the factorization
    of the covariance matrix using ScaLAPACK").
    """
    n, p = int(n), max(1, int(p))
    t_flop = machine.time_flops(cholesky_flops(n), cores=p)
    if p == 1:
        return t_flop
    pr = max(1, int(math.sqrt(p)))
    logp = math.log2(p)
    volume = (n * n / pr) * logp * 8.0  # bytes
    messages = (n / block) * logp * 2.0
    return t_flop + messages * machine.latency + volume * machine.inv_bandwidth


def lbfgs_modeling_time(
    machine: Machine,
    n_samples_total: int,
    n_hyperparameters: int,
    n_starts: int,
    p: int,
    lbfgs_iters: int = 50,
) -> float:
    """Modeling-phase time model for the multi-start L-BFGS LCM fit.

    Each L-BFGS iteration factorizes the ``N×N`` LCM covariance (``N = εδ``)
    and forms the gradient (an additional ``O(N³)`` solve for ``Σ^{-1}`` plus
    ``O(N²)`` per hyperparameter).  ``n_starts`` independent restarts are
    distributed over ``p`` ranks (level-1 parallelism); each restart's
    factorization itself may use the ranks left idle when
    ``n_starts < p`` (level-2).  Matches the observed ``O(ε³δ³)`` serial
    scaling of Fig. 3.
    """
    N = int(n_samples_total)
    starts_per_wave = max(1, min(int(n_starts), int(p)))
    waves = math.ceil(n_starts / starts_per_wave)
    ranks_per_start = max(1, int(p) // starts_per_wave)
    per_iter = (
        parallel_cholesky_time(machine, N, ranks_per_start)
        + machine.time_flops(N**3, cores=ranks_per_start)  # Σ^{-1} for the gradient
        + machine.time_flops(2.0 * n_hyperparameters * N * N, cores=ranks_per_start)
    )
    return waves * lbfgs_iters * per_iter


def search_phase_time(
    machine: Machine,
    n_tasks: int,
    n_samples_total: int,
    p: int,
    candidates: int = 1000,
    pso_iters: int = 30,
) -> float:
    """Search-phase time model (PSO over EI, tasks distributed over ranks).

    Each EI evaluation needs the posterior variance at the candidate — a
    triangular back-substitution against the ``N×N`` Cholesky factor, i.e.
    ``O(N²)`` per candidate (``N = ε·δ``), matching the paper's observed
    ``O(ε²δ²)`` serial scaling (Fig. 3).  Distributing the δ independent
    per-task searches over ``p`` ranks caps the speedup at δ ("the speedup
    is at most δ = 20").
    """
    N, d, p = int(n_samples_total), max(1, int(n_tasks)), max(1, int(p))
    per_generation = machine.time_flops(2.0 * N * N * candidates)
    per_task = pso_iters * per_generation + machine.time_flops(4.0 * N * N)
    tasks_per_rank = math.ceil(d / min(p, d))
    return tasks_per_rank * per_task
