"""Executor backends for the tuner's own parallelism.

GPTune parallelizes its modeling phase (multi-start L-BFGS restarts) and
search phase (per-task EI optimization) over workers (Sec. 4.3).  On real
installations that is MPI spawning; here the same call sites take any object
with ``map(fn, iterable) -> list``:

* :class:`SerialBackend` — plain loop (deterministic baseline),
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor`` (NumPy
  and SciPy release the GIL inside BLAS/LAPACK, so restarts overlap),
* :class:`ProcessBackend` — ``ProcessPoolExecutor`` for true multi-core
  parallelism (work functions must be picklable).

:func:`make_executor` builds one from an :class:`~repro.core.options.Options`
backend string.
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Callable, Iterable, List

__all__ = ["SerialBackend", "ThreadBackend", "ProcessBackend", "make_executor"]


class SerialBackend:
    """In-order, in-process execution."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item sequentially."""
        return [fn(x) for x in items]

    def shutdown(self) -> None:
        """No resources to release."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class ThreadBackend:
    """Thread-pool execution (good for GIL-releasing numeric work).

    Parameters
    ----------
    n_workers:
        Pool size.
    """

    def __init__(self, n_workers: int = 2):
        if n_workers < 1:
            raise ValueError("need n_workers >= 1")
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=int(n_workers))
        self.n_workers = int(n_workers)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` concurrently, preserving input order."""
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        """Release the pool's threads."""
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class ProcessBackend:
    """Process-pool execution (requires picklable work functions).

    Parameters
    ----------
    n_workers:
        Pool size.
    """

    def __init__(self, n_workers: int = 2):
        if n_workers < 1:
            raise ValueError("need n_workers >= 1")
        self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=int(n_workers))
        self.n_workers = int(n_workers)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` across processes, preserving input order."""
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        """Terminate the worker processes."""
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


def make_executor(backend: str, n_workers: int = 2):
    """Build an executor from an options string.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    n_workers:
        Worker count for the pooled backends.
    """
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(n_workers)
    if backend == "process":
        return ProcessBackend(n_workers)
    raise ValueError(f"unknown backend {backend!r}")
