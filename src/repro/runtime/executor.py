"""Executor backends for the tuner's own parallelism.

GPTune parallelizes its modeling phase (multi-start L-BFGS restarts),
concurrent objective evaluations, and — when lockstep batching is off or
impossible (``Options.search_backend``) — whole per-task EI/NSGA-II searches
over workers (Secs. 4.2–4.3).  On real installations that is MPI spawning;
here the same call sites take any object with
``map(fn, iterable) -> list``:

* :class:`SerialBackend` — plain loop (deterministic baseline),
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor`` (NumPy
  and SciPy release the GIL inside BLAS/LAPACK, so restarts overlap),
* :class:`ProcessBackend` — ``ProcessPoolExecutor`` for true multi-core
  parallelism (work functions must be picklable).

All backends surface the **first** failing work item (lowest index) as a
:class:`WorkerError` carrying ``index`` and chaining the original exception,
so a crashed restart or evaluation is attributable.  :class:`ProcessBackend`
additionally survives worker death: when the pool breaks (a worker was
killed, e.g. by the OOM killer), the lost items are resubmitted on a fresh
pool up to ``max_pool_restarts`` times.

:func:`make_executor` builds one from an :class:`~repro.core.options.Options`
backend string.
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "WorkerError",
    "make_executor",
]


class WorkerError(RuntimeError):
    """A mapped work item raised in a worker.

    Attributes
    ----------
    index:
        Position of the failing item in the mapped iterable.  The original
        exception is chained as ``__cause__`` (when one exists).
    """

    def __init__(self, index: int, message: str):
        super().__init__(message)
        self.index = int(index)


class SerialBackend:
    """In-order, in-process execution."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item sequentially."""
        out = []
        for i, x in enumerate(items):
            try:
                out.append(fn(x))
            except Exception as e:
                raise WorkerError(i, f"work item {i} failed: {e}") from e
        return out

    def shutdown(self) -> None:
        """No resources to release."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class ThreadBackend:
    """Thread-pool execution (good for GIL-releasing numeric work).

    Parameters
    ----------
    n_workers:
        Pool size.
    """

    def __init__(self, n_workers: int = 2):
        if n_workers < 1:
            raise ValueError("need n_workers >= 1")
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=int(n_workers))
        self.n_workers = int(n_workers)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` concurrently, preserving input order."""
        futures = [self._pool.submit(fn, x) for x in items]
        out = []
        for i, fut in enumerate(futures):
            try:
                out.append(fut.result())
            except Exception as e:
                raise WorkerError(i, f"work item {i} failed: {e}") from e
        return out

    def shutdown(self) -> None:
        """Release the pool's threads."""
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class ProcessBackend:
    """Process-pool execution (requires picklable work functions).

    Parameters
    ----------
    n_workers:
        Pool size.
    max_pool_restarts:
        How many times a broken pool (a killed worker) may be rebuilt and
        the lost items resubmitted before giving up.
    on_event:
        Optional ``on_event(kind, detail)`` callback notified with
        ``("worker-death", ...)`` whenever the pool is rebuilt.
    """

    def __init__(
        self,
        n_workers: int = 2,
        max_pool_restarts: int = 2,
        on_event: Optional[Callable[[str, str], Any]] = None,
    ):
        if n_workers < 1:
            raise ValueError("need n_workers >= 1")
        self.n_workers = int(n_workers)
        self.max_pool_restarts = int(max_pool_restarts)
        self.on_event = on_event
        self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.n_workers)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` across processes, preserving input order.

        Items whose results were lost to a dying worker are resubmitted on a
        rebuilt pool; completed items are never re-run.
        """
        items = list(items)
        results: List[Any] = [None] * len(items)
        pending = list(range(len(items)))
        restarts = 0
        while pending:
            futures = [(i, self._pool.submit(fn, items[i])) for i in pending]
            lost: List[int] = []
            for i, fut in futures:
                try:
                    results[i] = fut.result()
                except concurrent.futures.BrokenExecutor as e:
                    lost.append(i)
                    broken_cause = e
                except Exception as e:
                    raise WorkerError(i, f"work item {i} failed: {e}") from e
            if not lost:
                break
            restarts += 1
            if restarts > self.max_pool_restarts:
                raise WorkerError(
                    lost[0],
                    f"worker died {restarts} time(s); giving up on item {lost[0]}",
                ) from broken_cause
            if self.on_event is not None:
                self.on_event(
                    "worker-death",
                    f"pool broken; resubmitting {len(lost)} item(s) "
                    f"(restart {restarts}/{self.max_pool_restarts})",
                )
            self._pool.shutdown(wait=False)
            self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.n_workers)
            pending = lost
        return results

    def shutdown(self) -> None:
        """Terminate the worker processes."""
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


def make_executor(
    backend: str,
    n_workers: int = 2,
    on_event: Optional[Callable[[str, str], Any]] = None,
):
    """Build an executor from an options string.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    n_workers:
        Worker count for the pooled backends.
    on_event:
        Resilience-event callback, forwarded to backends that emit events
        (currently :class:`ProcessBackend` worker-death notifications).
    """
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(n_workers)
    if backend == "process":
        return ProcessBackend(n_workers, on_event=on_event)
    raise ValueError(f"unknown backend {backend!r}")
