"""Simulated MPI: a thread-per-rank SPMD engine with virtual time.

GPTune's parallel implementation (Sec. 4) relies on MPI dynamic process
management: one master process runs the Python driver and *spawns* worker
groups for function evaluation, modeling, and search; masters and workers
talk over inter-communicators (Fig. 1 of the paper).  This module reproduces
that programming model without an MPI installation:

* each rank is a Python thread executing the user's SPMD function,
* :class:`SimComm` provides ``send/recv``, ``bcast``, ``scatter/gather``,
  ``reduce/allreduce``, ``barrier`` and ``Spawn`` with mpi4py-like semantics,
* every operation charges *simulated* seconds to per-rank
  :class:`~repro.runtime.simclock.SimClock` objects using the α-β cost model
  of :mod:`repro.runtime.costmodel`, and ``compute(seconds)`` charges local
  work,
* the job's simulated makespan is the maximum rank clock at completion.

Message causality is honored: a receive completes at
``max(receiver_clock, sender_send_time) + α + nβ``; collectives synchronize
the group to ``max(clocks) + collective_cost``.  Payload sizes are estimated
with ``pickle`` so cost scales with real data volume.
"""

from __future__ import annotations

import math
import pickle
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import costmodel
from .machine import Machine
from .simclock import SimClock

__all__ = ["SimComm", "InterComm", "SimJob", "Request", "run_spmd", "payload_bytes"]

_RECV_TIMEOUT = 60.0  # real seconds before declaring deadlock


def payload_bytes(obj: Any) -> int:
    """Approximate wire size of a Python object (pickle length)."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


class _Mailbox:
    """Per-rank mailbox with (source, tag) matching."""

    def __init__(self):
        self._cond = threading.Condition()
        self._queues: Dict[Tuple[int, int], deque] = {}

    def put(self, source: int, tag: int, item: Tuple[Any, float]) -> None:
        with self._cond:
            self._queues.setdefault((source, tag), deque()).append(item)
            self._cond.notify_all()

    def has(self, source: int, tag: int) -> bool:
        """Non-blocking probe for a matching message."""
        with self._cond:
            q = self._queues.get((source, tag))
            return bool(q)

    def get(self, source: int, tag: int) -> Tuple[Any, float]:
        with self._cond:
            key = (source, tag)
            ok = self._cond.wait_for(
                lambda: self._queues.get(key) and len(self._queues[key]) > 0,
                timeout=_RECV_TIMEOUT,
            )
            if not ok:
                raise RuntimeError(
                    f"simulated MPI deadlock: recv(source={source}, tag={tag}) timed out"
                )
            return self._queues[key].popleft()


class Request:
    """Handle for a nonblocking operation (mpi4py's ``Request`` shape).

    ``isend`` completes immediately (buffered semantics); ``irecv`` defers
    the matching until :meth:`wait`/:meth:`test`.  Time accounting happens
    at completion, mirroring how overlap hides latency: the receiver's
    clock only advances when it actually needs the data.
    """

    def __init__(self, complete_fn=None, result: Any = None, done: bool = False):
        self._complete = complete_fn
        self._result = result
        self._done = done

    def wait(self) -> Any:
        """Block until completion; returns the received object (or None)."""
        if not self._done:
            self._result = self._complete()
            self._done = True
        return self._result

    def test(self) -> Tuple[bool, Any]:
        """Non-destructive completion probe: ``(done, result_or_None)``.

        For receives, probes the mailbox without blocking; a ready message
        is absorbed (subsequent ``wait`` returns it immediately).
        """
        if self._done:
            return True, self._result
        if self._probe is not None and not self._probe():
            return False, None
        return True, self.wait()

    _probe = None


class _Group:
    """Shared state of one communicator group."""

    def __init__(self, size: int, machine: Machine):
        self.size = size
        self.machine = machine
        self.clocks = [SimClock() for _ in range(size)]
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.lock = threading.Lock()
        self._slot: List[Any] = [None] * size

    def sync_clocks(self, extra: float) -> float:
        """Advance every clock to ``max(clocks) + extra``; returns new time."""
        with self.lock:
            t = max(c.now for c in self.clocks) + extra
            for c in self.clocks:
                c.advance_to(t)
            return t


class SimComm:
    """A rank's view of an intra-communicator.

    Mirrors the mpi4py lowercase (pickle-based) API.  All methods charge
    simulated time; ``compute`` charges pure local work.
    """

    def __init__(self, group: _Group, rank: int, parent: Optional["InterComm"] = None):
        self._group = group
        self.rank = rank
        self.size = group.size
        self._parent = parent
        self._children: List[SimJob] = []

    # -- introspection, mirrors mpi4py -----------------------------------
    def Get_rank(self) -> int:
        """Rank of the calling thread within this communicator."""
        return self.rank

    def Get_size(self) -> int:
        """Number of ranks in this communicator."""
        return self.size

    def Get_parent(self) -> Optional["InterComm"]:
        """Inter-communicator to the spawner (None for the root world)."""
        return self._parent

    @property
    def clock(self) -> SimClock:
        """This rank's virtual clock."""
        return self._group.clocks[self.rank]

    @property
    def machine(self) -> Machine:
        """The machine the communicator is priced against."""
        return self._group.machine

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of local computation to this rank."""
        self.clock.advance(seconds)

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-buffered send (time charged at the receiver)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"bad dest {dest}")
        self._group.mailboxes[dest].put(self.rank, tag, (obj, self.clock.now))

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive; completes at ``max(t_recv, t_send) + α + nβ``."""
        obj, t_sent = self._group.mailboxes[self.rank].get(source, tag)
        cost = costmodel.pt2pt_time(self.machine, payload_bytes(obj))
        self.clock.advance_to(t_sent)
        self.clock.advance(cost)
        return obj

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (buffered: completes immediately)."""
        self.send(obj, dest, tag)
        return Request(result=None, done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Nonblocking receive; the message is absorbed at wait()/test().

        Computation issued between ``irecv`` and ``wait`` overlaps the
        transfer: the receive completes at
        ``max(clock_at_wait, t_send) + α + nβ``.
        """
        req = Request(complete_fn=lambda: self.recv(source, tag))
        req._probe = lambda: self._group.mailboxes[self.rank].has(source, tag)
        return req

    # -- collectives -------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize the group (dissemination-barrier cost)."""
        self._group.barrier.wait()
        self._group.sync_clocks(costmodel.barrier_time(self.machine, self.size))
        self._group.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast from ``root`` (binomial-tree cost)."""
        g = self._group
        if self.rank == root:
            g._slot[0] = obj
        g.barrier.wait()
        cost = costmodel.bcast_time(self.machine, payload_bytes(g._slot[0]), self.size)
        g.sync_clocks(cost)
        out = g._slot[0]
        g.barrier.wait()
        return out

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank to ``root``."""
        g = self._group
        g._slot[self.rank] = obj
        g.barrier.wait()
        cost = costmodel.gather_time(self.machine, payload_bytes(obj), self.size)
        g.sync_clocks(cost)
        out = list(g._slot) if self.rank == root else None
        g.barrier.wait()
        return out

    def allgather(self, obj: Any) -> List[Any]:
        """Gather to all ranks (recursive-doubling cost:
        ``log2(p)·α + (p−1)·payload·β``)."""
        g = self._group
        g._slot[self.rank] = obj
        g.barrier.wait()
        nbytes = payload_bytes(obj)
        if self.size > 1:
            cost = (
                math.ceil(math.log2(self.size)) * self.machine.latency
                + (self.size - 1) * nbytes * self.machine.inv_bandwidth
            )
        else:
            cost = 0.0
        g.sync_clocks(cost)
        out = list(g._slot)
        g.barrier.wait()
        return out

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter a length-``size`` sequence from ``root``."""
        g = self._group
        if self.rank == root:
            objs = list(objs or [])
            if len(objs) != self.size:
                raise ValueError(f"scatter needs {self.size} items, got {len(objs)}")
            for i, o in enumerate(objs):
                g._slot[i] = o
        g.barrier.wait()
        cost = costmodel.gather_time(self.machine, payload_bytes(g._slot[self.rank]), self.size)
        g.sync_clocks(cost)
        out = g._slot[self.rank]
        g.barrier.wait()
        return out

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0) -> Any:
        """Reduce with a binary op (default: ``+``); result valid at ``root``."""
        vals = self.gather(obj, root=root)
        if self.rank != root:
            return None
        op = op or (lambda a, b: a + b)
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce-to-all (recursive-doubling cost)."""
        vals = self.allgather(obj)
        op = op or (lambda a, b: a + b)
        acc = vals[0]
        for v in vals[1:]:
            acc = op(acc, v)
        return acc

    # -- dynamic process management (Fig. 1) ------------------------------
    def Spawn(
        self,
        fn: Callable[["SimComm"], Any],
        nprocs: int,
        args: Tuple = (),
        machine: Optional[Machine] = None,
    ) -> "InterComm":
        """Spawn a worker group; returns the master-side inter-communicator.

        Mirrors GPTune's use of ``mpi4py``'s ``Spawn``: the caller becomes
        the local leader, the child group gets its own ``MPI_World`` whose
        ranks see the inter-communicator via ``Get_parent()``.  Child clocks
        start at the spawner's current time.
        """
        inter = InterComm(self, nprocs, machine or self.machine)
        job = SimJob(
            nprocs,
            fn,
            args=args,
            machine=machine or self.machine,
            parent=inter,
            start_time=self.clock.now,
        )
        inter._job = job
        self._children.append(job)
        job.start()
        return inter


class InterComm:
    """Inter-communicator between a spawner and a spawned worker group.

    The master addresses workers by remote rank; workers address the master
    as remote rank 0 (mpi4py's convention for a single-process parent).
    """

    def __init__(self, master: SimComm, remote_size: int, machine: Machine):
        self._master = master
        self.remote_size = remote_size
        self.machine = machine
        self._to_workers = [_Mailbox() for _ in range(remote_size)]
        self._to_master = _Mailbox()
        self._job: Optional[SimJob] = None
        self._worker_clocks: List[SimClock] = []

    # -- master side -------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Master → worker ``dest``."""
        self._to_workers[dest].put(0, tag, (obj, self._master.clock.now))

    def recv(self, source: int, tag: int = 0) -> Any:
        """Master ← worker ``source``."""
        obj, t_sent = self._to_master.get(source, tag)
        self._master.clock.advance_to(t_sent)
        self._master.clock.advance(costmodel.pt2pt_time(self.machine, payload_bytes(obj)))
        return obj

    def bcast_to_workers(self, obj: Any) -> None:
        """Master broadcast over the inter-communicator."""
        for d in range(self.remote_size):
            self.send(obj, d, tag=-1)

    def gather_from_workers(self) -> List[Any]:
        """Collect one object per worker (workers call ``send_to_master``)."""
        return [self.recv(s, tag=-2) for s in range(self.remote_size)]

    def Disconnect(self) -> float:
        """Wait for the worker group; master clock absorbs the group makespan.

        Returns the worker group's simulated makespan.
        """
        assert self._job is not None
        self._job.join()
        t = self._job.makespan
        self._master.clock.advance_to(t)
        return t

    # -- worker side -----------------------------------------------------
    def worker_send(self, comm: SimComm, obj: Any, tag: int = 0) -> None:
        """Worker → master."""
        self._to_master.put(comm.rank, tag, (obj, comm.clock.now))

    def worker_recv(self, comm: SimComm, tag: int = 0) -> Any:
        """Worker ← master."""
        obj, t_sent = self._to_workers[comm.rank].get(0, tag)
        comm.clock.advance_to(t_sent)
        comm.clock.advance(costmodel.pt2pt_time(self.machine, payload_bytes(obj)))
        return obj

    def worker_recv_bcast(self, comm: SimComm) -> Any:
        """Worker side of :meth:`bcast_to_workers`."""
        return self.worker_recv(comm, tag=-1)

    def worker_send_result(self, comm: SimComm, obj: Any) -> None:
        """Worker side of :meth:`gather_from_workers`."""
        self.worker_send(comm, obj, tag=-2)


class SimJob:
    """A running SPMD job: one thread per rank.

    Parameters
    ----------
    nranks:
        Number of ranks.
    fn:
        SPMD function ``fn(comm, *args)`` executed by every rank.
    args:
        Extra positional arguments.
    machine:
        Machine model pricing the job's communication/compute.
    parent:
        Inter-communicator when this group was spawned.
    start_time:
        Initial simulated time of all rank clocks.
    """

    def __init__(
        self,
        nranks: int,
        fn: Callable[..., Any],
        args: Tuple = (),
        machine: Optional[Machine] = None,
        parent: Optional[InterComm] = None,
        start_time: float = 0.0,
    ):
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = int(nranks)
        self.fn = fn
        self.args = tuple(args)
        self.machine = machine or Machine()
        self.group = _Group(self.nranks, self.machine)
        for c in self.group.clocks:
            c.reset(start_time)
        self.parent = parent
        self.results: List[Any] = [None] * self.nranks
        self.errors: List[Optional[BaseException]] = [None] * self.nranks
        self._threads: List[threading.Thread] = []

    def start(self) -> "SimJob":
        """Launch all rank threads (non-blocking)."""
        def runner(rank: int) -> None:
            comm = SimComm(self.group, rank, parent=self.parent)
            try:
                self.results[rank] = self.fn(comm, *self.args)
            except BaseException as exc:  # surfaced in join()
                self.errors[rank] = exc
                self.group.barrier.abort()

        for r in range(self.nranks):
            t = threading.Thread(target=runner, args=(r,), daemon=True)
            self._threads.append(t)
            t.start()
        return self

    def join(self) -> List[Any]:
        """Wait for completion; re-raises the first rank error, if any."""
        for t in self._threads:
            t.join()
        for exc in self.errors:
            if exc is not None:
                raise exc
        return self.results

    @property
    def makespan(self) -> float:
        """Simulated wall time: the maximum rank clock."""
        return max(c.now for c in self.group.clocks)


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    args: Tuple = (),
    machine: Optional[Machine] = None,
) -> Tuple[List[Any], float]:
    """Run ``fn(comm, *args)`` on ``nranks`` simulated ranks.

    Returns
    -------
    ``(results, makespan)`` — per-rank return values and the simulated wall
    time of the job.
    """
    job = SimJob(nranks, fn, args=args, machine=machine).start()
    results = job.join()
    return results, job.makespan
