"""Event tracing for the simulated runtime.

Real MPI work is debugged with timeline tools (Vampir, HPCToolkit); the
simulated runtime deserves the same.  A :class:`Tracer` collects per-rank
``(t_start, t_end, kind, detail)`` events — instrumented jobs record their
compute and communication phases against the virtual clocks — and renders a
text Gantt chart plus summary statistics (compute/communication split per
rank, critical-path rank).

Instrumentation is opt-in and zero-cost when absent: wrap a rank's
communicator with :func:`traced` inside the SPMD function.

Separately, :class:`CampaignLog` records *tuning-campaign lifecycle* events —
evaluation retries, timeouts, model downgrades, worker deaths, checkpoints —
so a production run leaves an auditable trail of every resilience action the
driver took (see :mod:`repro.runtime.resilience`).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from .mpi import SimComm

__all__ = [
    "CampaignEvent",
    "CampaignLog",
    "JsonlEventWriter",
    "TraceEvent",
    "Tracer",
    "traced",
]


@dataclasses.dataclass(frozen=True)
class CampaignEvent:
    """One recorded campaign lifecycle event.

    ``seq`` is the 0-based record order; ``kind`` is a short tag.  The
    resilience layer records ``"retry"``, ``"timeout"``, ``"exception"``,
    ``"nonfinite"``, ``"eval-failure"``, ``"worker-death"``, ``"checkpoint"``
    and ``"resume"``; the tuning-history service adds ``"service-append"``,
    ``"service-compact"`` and ``"service-torn-line"`` (storage layer); the
    modeling phase records ``"model-fit"`` (with its ``n_starts=`` multi-start
    count), ``"model-extend"`` (posterior extended in place with
    ``n_starts=0`` — see ``Options.refit_interval``), ``"model-downgrade"``,
    ``"model-cache-hit"`` and ``"model-cache-store"`` (surrogate cache); and
    the observability layer records ``"span"`` / ``"span-summary"`` (phase
    timings, see :mod:`repro.observability.spans`) plus one final ``"stats"``
    event carrying the campaign's phase totals.

    ``t_wall`` (epoch seconds) and ``t_mono`` (``time.perf_counter``) stamp
    when the event was recorded; ``fields`` carries structured annotations
    (e.g. ``{"n_starts": 3}``) that take precedence over parsing the
    human-readable ``detail`` string in :meth:`CampaignLog.total`.
    """

    seq: int
    kind: str
    detail: str = ""
    t_wall: float = 0.0
    t_mono: float = 0.0
    fields: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (the JSONL telemetry line)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "detail": self.detail,
            "t_wall": self.t_wall,
            "t_mono": self.t_mono,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CampaignEvent":
        """Inverse of :meth:`to_dict`; tolerates pre-timestamp payloads."""
        if "kind" not in raw:
            raise ValueError("event payload lacks a 'kind'")
        return cls(
            seq=int(raw.get("seq", 0)),
            kind=str(raw["kind"]),
            detail=str(raw.get("detail", "")),
            t_wall=float(raw.get("t_wall", 0.0)),
            t_mono=float(raw.get("t_mono", 0.0)),
            fields=dict(raw.get("fields") or {}),
        )


class CampaignLog:
    """Thread-safe append-only log of campaign events.

    Optional sinks (:meth:`add_sink`) observe every event as it is recorded
    — the streaming-telemetry hook (`repro tune --telemetry out.jsonl`
    attaches a :class:`JsonlEventWriter`).  Sinks run under the log's lock so
    their output preserves ``seq`` order; keep them fast and non-reentrant.
    """

    def __init__(self):
        self._events: List[CampaignEvent] = []
        self._lock = threading.Lock()
        self._sinks: List[Callable[[CampaignEvent], None]] = []

    def add_sink(self, sink: Callable[[CampaignEvent], None]) -> None:
        """Attach a callable observing every subsequently recorded event."""
        with self._lock:
            self._sinks.append(sink)

    def record(self, kind: str, detail: str = "", **fields: Any) -> CampaignEvent:
        """Append one event (stamped now) and return it.

        Keyword arguments become the event's structured ``fields``; numeric
        annotations recorded here are authoritative for :meth:`total`, the
        ``detail`` string stays purely human-readable.
        """
        with self._lock:
            ev = CampaignEvent(
                len(self._events),
                str(kind),
                str(detail),
                t_wall=time.time(),
                t_mono=time.perf_counter(),
                fields=fields,
            )
            self._events.append(ev)
            for sink in self._sinks:
                sink(ev)
        return ev

    @property
    def events(self) -> List[CampaignEvent]:
        """All events in record order (copy)."""
        with self._lock:
            return list(self._events)

    def of_kind(self, kind: str) -> List[CampaignEvent]:
        """Events with the given kind tag."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def count(self, kind: str) -> int:
        """Number of events with one kind tag."""
        return len(self.of_kind(kind))

    def total(self, kind: str, field: str) -> int:
        """Sum an integer ``field`` annotation over one kind's events.

        E.g. ``log.total("model-fit", "n_starts")`` is the campaign's total
        L-BFGS multi-start count — the quantity the surrogate cache exists
        to shrink.  A structured entry in the event's ``fields`` dict takes
        precedence; only events without one fall back to parsing a
        ``field=N`` token out of the ``detail`` string (trailing punctuation
        like ``"n_starts=8,"`` is stripped before conversion).  Events
        lacking the annotation in either form contribute 0.
        """
        total = 0
        needle = field + "="
        for e in self.of_kind(kind):
            if field in e.fields:
                try:
                    total += int(float(e.fields[field]))
                    continue
                except (TypeError, ValueError):
                    pass
            for tok in e.detail.split():
                if tok.startswith(needle):
                    try:
                        total += int(float(tok[len(needle):].rstrip(",;:.)]}")))
                    except ValueError:
                        pass
                    break
        return total

    def render(self) -> str:
        """Human-readable one-line-per-event listing."""
        ev = self.events
        if not ev:
            return "(no events)"
        return "\n".join(f"[{e.seq:>4}] {e.kind:<16} {e.detail}" for e in ev)

    # -- JSONL export / import ----------------------------------------------
    def dump_jsonl(self, path: str) -> int:
        """Write every event as one JSON object per line; returns the count."""
        ev = self.events
        with open(path, "w", encoding="utf-8") as fh:
            for e in ev:
                fh.write(json.dumps(e.to_dict()) + "\n")
        return len(ev)

    @classmethod
    def load_jsonl(cls, path: str) -> "CampaignLog":
        """Rebuild a log from a JSONL telemetry file (see :meth:`dump_jsonl`).

        Events keep their recorded timestamps and fields; ``seq`` is
        reassigned to the file order.  Blank lines are skipped; a malformed
        line raises ``ValueError`` naming the path and line number.
        """
        log = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for ln, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = CampaignEvent.from_dict(json.loads(line))
                except (json.JSONDecodeError, ValueError, TypeError) as e:
                    raise ValueError(f"{path}:{ln}: bad telemetry line ({e})") from e
                with log._lock:
                    log._events.append(dataclasses.replace(ev, seq=len(log._events)))
        return log


class JsonlEventWriter:
    """Streaming sink writing each :class:`CampaignEvent` as a JSONL line.

    Attach to a log via :meth:`CampaignLog.add_sink`; each event is written
    and flushed as it is recorded, so a killed campaign leaves a telemetry
    file complete up to its last event (the ``--telemetry`` CLI flag).
    """

    def __init__(self, path: str):
        self.path = path
        self.count = 0
        self._fh = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()

    def __call__(self, event: CampaignEvent) -> None:
        """Write one event (called by the log under its lock)."""
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(json.dumps(event.to_dict()) + "\n")
            self._fh.flush()
            self.count += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One traced interval on one rank's virtual timeline."""

    rank: int
    t_start: float
    t_end: float
    kind: str  # "compute" | "send" | "recv" | "collective"
    detail: str = ""

    @property
    def duration(self) -> float:
        """Length of the interval in simulated seconds."""
        return self.t_end - self.t_start


class Tracer:
    """Thread-safe event collector with text rendering."""

    def __init__(self):
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()

    def record(self, event: TraceEvent) -> None:
        """Append one event (called by instrumented communicators)."""
        if event.t_end < event.t_start:
            raise ValueError("event ends before it starts")
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """All events, ordered by (rank, start time)."""
        with self._lock:
            return sorted(self._events, key=lambda e: (e.rank, e.t_start, e.t_end))

    # -- analysis ------------------------------------------------------------
    def rank_summary(self) -> Dict[int, Dict[str, float]]:
        """Per-rank totals: time in compute vs communication."""
        out: Dict[int, Dict[str, float]] = {}
        for e in self.events:
            bucket = out.setdefault(e.rank, {"compute": 0.0, "comm": 0.0})
            key = "compute" if e.kind == "compute" else "comm"
            bucket[key] += e.duration
        return out

    def critical_rank(self) -> Optional[int]:
        """The rank whose timeline ends last (the makespan owner)."""
        ev = self.events
        if not ev:
            return None
        return max(ev, key=lambda e: e.t_end).rank

    def gantt(self, width: int = 60) -> str:
        """Text Gantt chart: one row per rank, '#' compute, '~' communication."""
        ev = self.events
        if not ev:
            return "(no events)"
        t_max = max(e.t_end for e in ev) or 1.0
        ranks = sorted({e.rank for e in ev})
        lines = []
        for r in ranks:
            row = [" "] * width
            for e in ev:
                if e.rank != r or e.duration <= 0:
                    continue
                a = min(width - 1, int(e.t_start / t_max * width))
                b = min(width, max(a + 1, int(e.t_end / t_max * width)))
                ch = "#" if e.kind == "compute" else "~"
                for k in range(a, b):
                    row[k] = ch
            lines.append(f"rank {r:>3} |{''.join(row)}|")
        lines.append(f"          0{' ' * (width - 10)}{t_max:.4g}s")
        return "\n".join(lines)


class _TracedComm:
    """Proxy around :class:`SimComm` recording events into a tracer."""

    def __init__(self, comm: SimComm, tracer: Tracer):
        self._comm = comm
        self._tracer = tracer

    def __getattr__(self, name: str) -> Any:
        return getattr(self._comm, name)

    def _timed(self, kind: str, detail: str, fn, *args, **kw):
        t0 = self._comm.clock.now
        out = fn(*args, **kw)
        self._tracer.record(
            TraceEvent(self._comm.rank, t0, self._comm.clock.now, kind, detail)
        )
        return out

    # -- instrumented operations -------------------------------------------
    def compute(self, seconds: float) -> None:
        self._timed("compute", f"{seconds:.3g}s", self._comm.compute, seconds)

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._timed("send", f"->{dest}", self._comm.send, obj, dest, tag)

    def recv(self, source: int, tag: int = 0):
        return self._timed("recv", f"<-{source}", self._comm.recv, source, tag)

    def bcast(self, obj, root: int = 0):
        return self._timed("collective", "bcast", self._comm.bcast, obj, root)

    def gather(self, obj, root: int = 0):
        return self._timed("collective", "gather", self._comm.gather, obj, root)

    def allgather(self, obj):
        return self._timed("collective", "allgather", self._comm.allgather, obj)

    def scatter(self, objs, root: int = 0):
        return self._timed("collective", "scatter", self._comm.scatter, objs, root)

    def reduce(self, obj, op=None, root: int = 0):
        return self._timed("collective", "reduce", self._comm.reduce, obj, op, root)

    def allreduce(self, obj, op=None):
        return self._timed("collective", "allreduce", self._comm.allreduce, obj, op)

    def barrier(self) -> None:
        self._timed("collective", "barrier", self._comm.barrier)


def traced(comm: SimComm, tracer: Tracer) -> _TracedComm:
    """Wrap a communicator so its operations are recorded in ``tracer``."""
    return _TracedComm(comm, tracer)
