"""Event tracing for the simulated runtime.

Real MPI work is debugged with timeline tools (Vampir, HPCToolkit); the
simulated runtime deserves the same.  A :class:`Tracer` collects per-rank
``(t_start, t_end, kind, detail)`` events — instrumented jobs record their
compute and communication phases against the virtual clocks — and renders a
text Gantt chart plus summary statistics (compute/communication split per
rank, critical-path rank).

Instrumentation is opt-in and zero-cost when absent: wrap a rank's
communicator with :func:`traced` inside the SPMD function.

Separately, :class:`CampaignLog` records *tuning-campaign lifecycle* events —
evaluation retries, timeouts, model downgrades, worker deaths, checkpoints —
so a production run leaves an auditable trail of every resilience action the
driver took (see :mod:`repro.runtime.resilience`).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, List, Optional

from .mpi import SimComm

__all__ = ["CampaignEvent", "CampaignLog", "TraceEvent", "Tracer", "traced"]


@dataclasses.dataclass(frozen=True)
class CampaignEvent:
    """One recorded campaign lifecycle event.

    ``seq`` is the 0-based record order; ``kind`` is a short tag such as
    ``"retry"``, ``"timeout"``, ``"eval-failure"``, ``"model-downgrade"``,
    ``"worker-death"``, ``"checkpoint"`` or ``"resume"``.  The tuning-history
    service adds ``"service-append"``, ``"service-compact"`` and
    ``"service-torn-line"`` (storage layer), and the modeling phase records
    ``"model-fit"`` (with its ``n_starts=`` multi-start count),
    ``"model-extend"`` (posterior extended in place with ``n_starts=0`` —
    see ``Options.refit_interval``), ``"model-cache-hit"`` and
    ``"model-cache-store"`` (surrogate cache).
    """

    seq: int
    kind: str
    detail: str = ""


class CampaignLog:
    """Thread-safe append-only log of campaign events."""

    def __init__(self):
        self._events: List[CampaignEvent] = []
        self._lock = threading.Lock()

    def record(self, kind: str, detail: str = "") -> CampaignEvent:
        """Append one event and return it."""
        with self._lock:
            ev = CampaignEvent(len(self._events), str(kind), str(detail))
            self._events.append(ev)
        return ev

    @property
    def events(self) -> List[CampaignEvent]:
        """All events in record order (copy)."""
        with self._lock:
            return list(self._events)

    def of_kind(self, kind: str) -> List[CampaignEvent]:
        """Events with the given kind tag."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def count(self, kind: str) -> int:
        """Number of events with one kind tag."""
        return len(self.of_kind(kind))

    def total(self, kind: str, field: str) -> int:
        """Sum an integer ``field=N`` annotation over one kind's details.

        E.g. ``log.total("model-fit", "n_starts")`` is the campaign's total
        L-BFGS multi-start count — the quantity the surrogate cache exists
        to shrink.  Events lacking the annotation contribute 0.
        """
        total = 0
        needle = field + "="
        for e in self.of_kind(kind):
            for tok in e.detail.split():
                if tok.startswith(needle):
                    try:
                        total += int(tok[len(needle):])
                    except ValueError:
                        pass
                    break
        return total

    def render(self) -> str:
        """Human-readable one-line-per-event listing."""
        ev = self.events
        if not ev:
            return "(no events)"
        return "\n".join(f"[{e.seq:>4}] {e.kind:<16} {e.detail}" for e in ev)


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One traced interval on one rank's virtual timeline."""

    rank: int
    t_start: float
    t_end: float
    kind: str  # "compute" | "send" | "recv" | "collective"
    detail: str = ""

    @property
    def duration(self) -> float:
        """Length of the interval in simulated seconds."""
        return self.t_end - self.t_start


class Tracer:
    """Thread-safe event collector with text rendering."""

    def __init__(self):
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()

    def record(self, event: TraceEvent) -> None:
        """Append one event (called by instrumented communicators)."""
        if event.t_end < event.t_start:
            raise ValueError("event ends before it starts")
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """All events, ordered by (rank, start time)."""
        with self._lock:
            return sorted(self._events, key=lambda e: (e.rank, e.t_start, e.t_end))

    # -- analysis ------------------------------------------------------------
    def rank_summary(self) -> Dict[int, Dict[str, float]]:
        """Per-rank totals: time in compute vs communication."""
        out: Dict[int, Dict[str, float]] = {}
        for e in self.events:
            bucket = out.setdefault(e.rank, {"compute": 0.0, "comm": 0.0})
            key = "compute" if e.kind == "compute" else "comm"
            bucket[key] += e.duration
        return out

    def critical_rank(self) -> Optional[int]:
        """The rank whose timeline ends last (the makespan owner)."""
        ev = self.events
        if not ev:
            return None
        return max(ev, key=lambda e: e.t_end).rank

    def gantt(self, width: int = 60) -> str:
        """Text Gantt chart: one row per rank, '#' compute, '~' communication."""
        ev = self.events
        if not ev:
            return "(no events)"
        t_max = max(e.t_end for e in ev) or 1.0
        ranks = sorted({e.rank for e in ev})
        lines = []
        for r in ranks:
            row = [" "] * width
            for e in ev:
                if e.rank != r or e.duration <= 0:
                    continue
                a = min(width - 1, int(e.t_start / t_max * width))
                b = min(width, max(a + 1, int(e.t_end / t_max * width)))
                ch = "#" if e.kind == "compute" else "~"
                for k in range(a, b):
                    row[k] = ch
            lines.append(f"rank {r:>3} |{''.join(row)}|")
        lines.append(f"          0{' ' * (width - 10)}{t_max:.4g}s")
        return "\n".join(lines)


class _TracedComm:
    """Proxy around :class:`SimComm` recording events into a tracer."""

    def __init__(self, comm: SimComm, tracer: Tracer):
        self._comm = comm
        self._tracer = tracer

    def __getattr__(self, name: str) -> Any:
        return getattr(self._comm, name)

    def _timed(self, kind: str, detail: str, fn, *args, **kw):
        t0 = self._comm.clock.now
        out = fn(*args, **kw)
        self._tracer.record(
            TraceEvent(self._comm.rank, t0, self._comm.clock.now, kind, detail)
        )
        return out

    # -- instrumented operations -------------------------------------------
    def compute(self, seconds: float) -> None:
        self._timed("compute", f"{seconds:.3g}s", self._comm.compute, seconds)

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self._timed("send", f"->{dest}", self._comm.send, obj, dest, tag)

    def recv(self, source: int, tag: int = 0):
        return self._timed("recv", f"<-{source}", self._comm.recv, source, tag)

    def bcast(self, obj, root: int = 0):
        return self._timed("collective", "bcast", self._comm.bcast, obj, root)

    def gather(self, obj, root: int = 0):
        return self._timed("collective", "gather", self._comm.gather, obj, root)

    def allgather(self, obj):
        return self._timed("collective", "allgather", self._comm.allgather, obj)

    def scatter(self, objs, root: int = 0):
        return self._timed("collective", "scatter", self._comm.scatter, objs, root)

    def reduce(self, obj, op=None, root: int = 0):
        return self._timed("collective", "reduce", self._comm.reduce, obj, op, root)

    def allreduce(self, obj, op=None):
        return self._timed("collective", "allreduce", self._comm.allreduce, obj, op)

    def barrier(self) -> None:
        self._timed("collective", "barrier", self._comm.barrier)


def traced(comm: SimComm, tracer: Tracer) -> _TracedComm:
    """Wrap a communicator so its operations are recorded in ``tracer``."""
    return _TracedComm(comm, tracer)
