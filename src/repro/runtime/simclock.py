"""Virtual clocks for the simulated-MPI runtime.

Each simulated MPI rank owns a :class:`SimClock` that accumulates *simulated*
seconds — compute time charged by cost models plus communication time charged
by the collectives.  The "wall clock" of a simulated parallel program is the
maximum over its ranks' clocks at completion, exactly how makespan is defined
for a bulk-synchronous code.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing virtual clock (seconds, float)."""

    def __init__(self, start: float = 0.0):
        self._t = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._t

    def advance(self, dt: float) -> float:
        """Advance by ``dt >= 0`` seconds; returns the new time."""
        dt = float(dt)
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        self._t += dt
        return self._t

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` (no-op if already past)."""
        self._t = max(self._t, float(t))
        return self._t

    def reset(self, t: float = 0.0) -> None:
        """Reset to an absolute time (test helper)."""
        self._t = float(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._t:.6g})"
