"""Distributed dense linear algebra on the simulated MPI runtime.

Sec. 4.3: "for each L-BFGS optimization, the factorization of the
covariance matrix is parallelized over a prescribed number of MPI
processes" (via ScaLAPACK).  This module makes that concrete and
executable: a right-looking blocked **Cholesky factorization with 1-D
block-cyclic row distribution** over :class:`~repro.runtime.mpi.SimComm`
ranks, plus the matching distributed triangular solve.  Results are
numerically identical to a serial factorization (tests assert this), while
the ranks' virtual clocks expose the parallel time — compute shrinks like
1/p, panel broadcasts add α·log p — giving the Fig. 3 modeling-phase
speedups from first principles rather than a formula.

The layout: block row k (size ``b``) lives on rank ``k % p``.  Step k:

1. the owner factorizes the diagonal block ``A_kk = L_kk L_kkᵀ`` and
   broadcasts ``L_kk``,
2. every rank forms its own panel rows ``P_j = A_jk L_kk⁻ᵀ`` (triangular
   solve) for the block rows it owns,
3. the panel pieces are allgathered so everyone holds the full panel,
4. each rank updates only its owned trailing rows
   ``A_j,k+1: −= P_j Pᵀ``,
5. clocks advance by each rank's actual flop counts on the machine model,
   and by the broadcast/allgather costs.

Each rank's copy of rows it does not own goes stale and is never read —
the genuine owner-computes discipline of a 1-D ScaLAPACK code.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from .machine import Machine
from .mpi import SimComm, run_spmd

__all__ = [
    "cholesky_spmd",
    "distributed_cholesky",
    "distributed_forward_solve",
    "forward_substitution_spmd",
]


def _block_range(k: int, b: int, n: int) -> Tuple[int, int]:
    return k * b, min((k + 1) * b, n)


def cholesky_spmd(comm: SimComm, A: np.ndarray, block: int = 32) -> Dict[int, np.ndarray]:
    """SPMD body: factorize SPD ``A`` (replicated input) cooperatively.

    Every rank receives the full matrix (as GPTune's replicated covariance)
    but only *computes* on its block rows; the returned dict maps owned
    block indices to their rows of the factor ``L``.  Virtual time is
    charged for local flops and panel broadcasts only, so the job's
    makespan is the simulated parallel factorization time.

    Parameters
    ----------
    comm:
        The rank's communicator.
    A:
        SPD matrix, identical on every rank.
    block:
        Block size b.
    """
    from scipy import linalg as sla

    A = np.array(A, dtype=float, copy=True)
    n = A.shape[0]
    if A.shape != (n, n):
        raise ValueError("A must be square")
    p, rank = comm.size, comm.rank
    nb = math.ceil(n / block)
    flop_rate = comm.machine.flops_per_core * comm.machine.blas_efficiency

    owned: Dict[int, np.ndarray] = {}
    for k in range(nb):
        k0, k1 = _block_range(k, block, n)
        b = k1 - k0
        owner = k % p
        if rank == owner:
            Lkk = np.linalg.cholesky(A[k0:k1, k0:k1])
            comm.compute((b**3 / 3.0) / flop_rate)
        else:
            Lkk = None
        Lkk = comm.bcast(Lkk, root=owner)

        # each rank triangular-solves its own panel rows: P_j = A_jk L_kk^{-T}
        pieces: Dict[int, np.ndarray] = {}
        solve_flops = 0.0
        for j in range(k + 1, nb):
            if j % p != rank:
                continue
            j0, j1 = _block_range(j, block, n)
            Pj = sla.solve_triangular(Lkk, A[j0:j1, k0:k1].T, lower=True).T
            pieces[j] = Pj
            solve_flops += (j1 - j0) * b * b
        comm.compute(solve_flops / flop_rate)

        # everyone needs the full panel for the symmetric rank-b update
        all_pieces: Dict[int, np.ndarray] = {}
        for d in comm.allgather(pieces):
            all_pieces.update(d)

        if rank == owner:
            row = np.zeros((b, k1))
            row[:, k0:k1] = Lkk
            for kk in range(k):  # earlier panel pieces of this block row
                c0, c1 = _block_range(kk, block, n)
                row[:, c0:c1] = A[k0:k1, c0:c1]
            owned[k] = row

        # trailing update of owned rows only: A_j,k1: -= P_j · P^T
        local_flops = 0.0
        for j, Pj in pieces.items():
            j0, j1 = _block_range(j, block, n)
            A[j0:j1, k0:k1] = Pj  # store L entries for later panel solves
            for jj in range(k + 1, j + 1):  # lower triangle only
                c0, c1 = _block_range(jj, block, n)
                A[j0:j1, c0:c1] -= Pj @ all_pieces[jj].T
                local_flops += 2.0 * (j1 - j0) * (c1 - c0) * b
        comm.compute(local_flops / flop_rate)
    return owned


def distributed_cholesky(
    A: np.ndarray,
    n_ranks: int,
    block: int = 32,
    machine: Optional[Machine] = None,
) -> Tuple[np.ndarray, float]:
    """Factor SPD ``A = L Lᵀ`` on ``n_ranks`` simulated MPI ranks.

    Returns
    -------
    ``(L, makespan)`` — the assembled lower-triangular factor (identical to
    ``np.linalg.cholesky(A)`` up to roundoff) and the simulated parallel
    wall time.
    """
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    results, makespan = run_spmd(n_ranks, cholesky_spmd, args=(A, block), machine=machine)
    L = np.zeros_like(A)
    nb = math.ceil(n / block)
    for rank_owned in results:
        for k, rows in rank_owned.items():
            k0, k1 = _block_range(k, block, n)
            L[k0:k1, : rows.shape[1]] = rows
    return np.tril(L), makespan


def forward_substitution_spmd(
    comm: SimComm, L: np.ndarray, b: np.ndarray, block: int = 32
) -> np.ndarray:
    """SPMD body: solve ``L x = b`` (L lower-triangular, replicated).

    Block forward substitution with the same 1-D block-cyclic ownership as
    :func:`cholesky_spmd`: the owner of block row k solves its diagonal
    block against the updated right-hand side and broadcasts ``x_k``; every
    rank then subtracts ``L_jk x_k`` from the right-hand sides of its own
    later block rows.  Returns the full solution on every rank.
    """
    from scipy import linalg as sla

    L = np.asarray(L, dtype=float)
    b = np.array(b, dtype=float, copy=True)
    n = b.shape[0]
    if L.shape != (n, n):
        raise ValueError("L/b dimension mismatch")
    p, rank = comm.size, comm.rank
    nb = math.ceil(n / block)
    flop_rate = comm.machine.flops_per_core * comm.machine.blas_efficiency
    x = np.zeros(n)
    for k in range(nb):
        k0, k1 = _block_range(k, block, n)
        owner = k % p
        if rank == owner:
            xk = sla.solve_triangular(L[k0:k1, k0:k1], b[k0:k1], lower=True)
            comm.compute(((k1 - k0) ** 2) / flop_rate)
        else:
            xk = None
        xk = comm.bcast(xk, root=owner)
        x[k0:k1] = xk
        # each rank updates the RHS of its own later block rows
        local_flops = 0.0
        for j in range(k + 1, nb):
            if j % p != rank:
                continue
            j0, j1 = _block_range(j, block, n)
            b[j0:j1] -= L[j0:j1, k0:k1] @ xk
            local_flops += 2.0 * (j1 - j0) * (k1 - k0)
        comm.compute(local_flops / flop_rate)
    return x


def distributed_forward_solve(
    L: np.ndarray,
    b: np.ndarray,
    n_ranks: int,
    block: int = 32,
    machine: Optional[Machine] = None,
) -> Tuple[np.ndarray, float]:
    """Solve ``L x = b`` on simulated ranks; returns ``(x, makespan)``.

    With the Cholesky factor of the LCM covariance this is the ``α = Σ⁻¹y``
    solve of the modeling phase (apply twice with ``L`` and ``Lᵀ``).
    """
    results, makespan = run_spmd(
        n_ranks, forward_substitution_spmd, args=(np.asarray(L), np.asarray(b), block),
        machine=machine,
    )
    return results[0], makespan
