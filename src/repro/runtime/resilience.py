"""Fault-tolerant evaluation and campaign checkpointing.

Real autotuning campaigns treat evaluation failures as the common case, not
the exception: exascale application runs crash, hang, return NaN, or get the
whole tuning driver killed mid-campaign.  This module provides the three
building blocks the MLA driver uses to survive them:

* :class:`RetryPolicy` / :func:`run_with_retries` — bounded retries with
  exponential backoff and *deterministic seeded jitter*, plus an optional
  per-evaluation timeout.  Every objective call in
  :meth:`repro.core.problem.TuningProblem.evaluate_outcome` is routed through
  this machinery and summarized in an :class:`EvalOutcome` record.
* :class:`RunCheckpoint` — a JSON snapshot of a running campaign (per-task
  evaluation sets, RNG fast-forward state, iteration counter, phase stats)
  written atomically after every sampling/search batch, so a killed campaign
  resumes via :meth:`repro.core.mla.GPTune.resume` exactly where it stopped.
* :func:`atomic_write_json` — the crash-safe temp-file + rename writer shared
  with :class:`repro.core.history.HistoryDB`.

The module is deliberately free of :mod:`repro.core` imports so the core
layers can depend on it without cycles.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "EvalOutcome",
    "EvalTimeoutError",
    "FatalEvaluationError",
    "RetryPolicy",
    "RunCheckpoint",
    "atomic_write_json",
    "run_with_retries",
]


class FatalEvaluationError(ValueError):
    """A non-retryable evaluation defect (e.g. wrong objective shape).

    :func:`run_with_retries` propagates this immediately: retrying a
    programming error only multiplies the damage.
    """


class EvalTimeoutError(TimeoutError):
    """An evaluation exceeded its :attr:`RetryPolicy.timeout` budget."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How to re-run a flaky objective evaluation.

    Attributes
    ----------
    max_attempts:
        Total tries per evaluation (1 = no retry).
    timeout:
        Per-attempt wall-clock cap in seconds; a hung objective is abandoned
        (its thread is orphaned — black boxes cannot be killed portably) and
        the attempt counts as a ``"timeout"`` failure.  ``None`` disables.
    backoff:
        Base delay in seconds before the second attempt (0 = immediate).
    backoff_factor:
        Multiplier applied per subsequent attempt (exponential backoff).
    jitter:
        Fractional spread added on top of the exponential delay.  The jitter
        is *deterministic*: attempt ``k`` draws from a generator seeded by
        ``(seed, k)``, so a replayed campaign sleeps the same schedule.
    seed:
        Seed for the jitter stream (``None`` behaves like 0).
    """

    max_attempts: int = 1
    timeout: Optional[float] = None
    backoff: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff * self.backoff_factor ** (attempt - 1)
        if base <= 0 or self.jitter == 0:
            return base
        u = np.random.default_rng([int(self.seed or 0), int(attempt)]).random()
        return base * (1.0 + self.jitter * float(u))

    def schedule(self, n: int) -> List[float]:
        """The deterministic backoff schedule for ``n`` failed attempts."""
        return [self.delay(a) for a in range(1, n + 1)]


@dataclasses.dataclass
class EvalOutcome:
    """Record of one (possibly retried) objective evaluation.

    ``value`` is the length-γ result vector — the real observation on
    success, the problem's penalty vector after exhausted retries, or
    ``None`` while unresolved.  ``events`` accumulates ``(kind, detail)``
    pairs (``"retry"``, ``"timeout"``, ``"eval-failure"``) so drivers can
    replay them into a campaign log even when the evaluation ran in a worker
    process.
    """

    value: Optional[np.ndarray]
    attempts: int
    wall_time: float
    failure_kind: Optional[str] = None  # "exception" | "nonfinite" | "timeout"
    error: Optional[BaseException] = None
    message: str = ""
    events: List[Tuple[str, str]] = dataclasses.field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether every attempt failed (value is a penalty or ``None``)."""
        return self.failure_kind is not None


def _call_with_timeout(call: Callable[[], Any], timeout: Optional[float]) -> Any:
    """Run ``call`` with an optional wall-clock cap.

    A timed-out call's thread keeps running in the background (Python cannot
    kill threads); its eventual result is discarded.
    """
    if timeout is None:
        return call()
    pool = concurrent.futures.ThreadPoolExecutor(max_workers=1)
    try:
        fut = pool.submit(call)
        try:
            return fut.result(timeout=timeout)
        except TimeoutError:
            if fut.done():  # the objective itself raised a TimeoutError
                raise
            raise EvalTimeoutError(f"evaluation exceeded {timeout:g}s") from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_with_retries(
    call: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> EvalOutcome:
    """Run ``call`` under a retry policy and classify the outcome.

    ``call`` must return a value convertible to a float vector.  Attempts
    failing with an exception, a non-finite result, or a timeout are retried
    up to ``policy.max_attempts`` with the policy's deterministic backoff;
    :class:`FatalEvaluationError` is never retried.  On exhaustion the
    returned outcome has ``value=None`` and the last failure's kind/error.
    """
    policy = policy or RetryPolicy()
    events: List[Tuple[str, str]] = []
    t0 = time.perf_counter()
    kind: Optional[str] = None
    error: Optional[BaseException] = None
    message = ""
    for attempt in range(1, policy.max_attempts + 1):
        try:
            y = _call_with_timeout(call, policy.timeout)
        except FatalEvaluationError:
            raise
        except EvalTimeoutError as e:
            kind, error, message = "timeout", None, str(e)
            events.append(("timeout", f"attempt {attempt}: {e}"))
        except Exception as e:
            kind, error, message = "exception", e, f"{type(e).__name__}: {e}"
        else:
            y = np.atleast_1d(np.asarray(y, dtype=float))
            if np.all(np.isfinite(y)):
                return EvalOutcome(
                    value=y,
                    attempts=attempt,
                    wall_time=time.perf_counter() - t0,
                    events=events,
                )
            kind, error, message = "nonfinite", None, f"non-finite value {y}"
        if attempt < policy.max_attempts:
            delay = policy.delay(attempt)
            events.append(
                ("retry", f"attempt {attempt} failed ({kind}); backoff {delay:.3g}s")
            )
            if delay > 0:
                sleep(delay)
    events.append(
        ("eval-failure", f"{policy.max_attempts} attempt(s) exhausted ({kind}: {message})")
    )
    return EvalOutcome(
        value=None,
        attempts=policy.max_attempts,
        wall_time=time.perf_counter() - t0,
        failure_kind=kind,
        error=error,
        message=message,
        events=events,
    )


# -- crash-safe persistence ---------------------------------------------------
def _json_default(obj: Any) -> Any:
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def atomic_write_json(path: str, obj: Any, indent: Optional[int] = None) -> None:
    """Write ``obj`` as JSON via temp file + rename so a crash mid-write
    can never leave a truncated file at ``path`` (NumPy scalars/arrays are
    converted to builtins)."""
    d = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(d, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=indent, default=_json_default)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@dataclasses.dataclass
class RunCheckpoint:
    """Resumable snapshot of one MLA campaign.

    Captures everything :meth:`repro.core.mla.GPTune.tune` needs to continue
    a killed run with byte-identical decisions: the per-task evaluation sets
    (``X``/``Y``), the master RNG entropy plus how many child seeds were
    already spawned (``spawn_count`` — resuming fast-forwards the seed tree
    instead of replaying it), the iteration counter, and the phase stats.
    """

    problem: str
    entropy: Any
    spawn_count: int
    n_samples: int
    tasks: List[Dict[str, Any]]
    frozen: List[int]
    iteration: int
    stats: Dict[str, float]
    X: List[List[Dict[str, Any]]]
    Y: List[List[List[float]]]
    version: int = 1

    def save(self, path: str) -> None:
        """Persist atomically as JSON (see :func:`atomic_write_json`)."""
        atomic_write_json(path, dataclasses.asdict(self))

    @classmethod
    def load(cls, path: str) -> "RunCheckpoint":
        """Load and validate a checkpoint; raises ``ValueError`` naming the
        path when the file is truncated, corrupted, or from another layout."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}: corrupted checkpoint ({e})") from e
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: malformed checkpoint (expected an object)")
        names = {f.name for f in dataclasses.fields(cls)}
        missing = names - set(raw)
        if missing:
            raise ValueError(f"{path}: checkpoint missing fields {sorted(missing)}")
        ck = cls(**{k: raw[k] for k in names})
        if int(ck.version) != 1:
            raise ValueError(f"{path}: unsupported checkpoint version {ck.version}")
        if len(ck.X) != len(ck.tasks) or len(ck.Y) != len(ck.tasks):
            raise ValueError(f"{path}: checkpoint X/Y do not match its task list")
        return ck
