"""Fault-tolerant evaluation and campaign checkpointing.

Real autotuning campaigns treat evaluation failures as the common case, not
the exception: exascale application runs crash, hang, return NaN, or get the
whole tuning driver killed mid-campaign.  This module provides the three
building blocks the MLA driver uses to survive them:

* :class:`RetryPolicy` / :func:`run_with_retries` — bounded retries with
  exponential backoff and *deterministic seeded jitter*, plus an optional
  per-evaluation timeout.  Every objective call in
  :meth:`repro.core.problem.TuningProblem.evaluate_outcome` is routed through
  this machinery and summarized in an :class:`EvalOutcome` record.
* :class:`RunCheckpoint` — a JSON snapshot of a running campaign (per-task
  evaluation sets, RNG fast-forward state, iteration counter, phase stats)
  written atomically after every sampling/search batch, so a killed campaign
  resumes via :meth:`repro.core.mla.GPTune.resume` exactly where it stopped.
* :func:`atomic_write_json` — the crash-safe temp-file + rename writer shared
  with :class:`repro.core.history.HistoryDB`.

The module is deliberately free of :mod:`repro.core` imports so the core
layers can depend on it without cycles.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import queue
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..observability.spans import maybe_span

__all__ = [
    "EvalOutcome",
    "EvalTimeoutError",
    "FatalEvaluationError",
    "RetryPolicy",
    "RunCheckpoint",
    "atomic_write_json",
    "run_with_retries",
]


class FatalEvaluationError(ValueError):
    """A non-retryable evaluation defect (e.g. wrong objective shape).

    :func:`run_with_retries` propagates this immediately: retrying a
    programming error only multiplies the damage.
    """


class EvalTimeoutError(TimeoutError):
    """An evaluation exceeded its :attr:`RetryPolicy.timeout` budget."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How to re-run a flaky objective evaluation.

    Attributes
    ----------
    max_attempts:
        Total tries per evaluation (1 = no retry).
    timeout:
        Per-attempt wall-clock cap in seconds; a hung objective is abandoned
        (its thread is orphaned — black boxes cannot be killed portably) and
        the attempt counts as a ``"timeout"`` failure.  ``None`` disables.
    backoff:
        Base delay in seconds before the second attempt (0 = immediate).
    backoff_factor:
        Multiplier applied per subsequent attempt (exponential backoff).
    jitter:
        Fractional spread added on top of the exponential delay.  The jitter
        is *deterministic*: attempt ``k`` draws from a generator seeded by
        ``(seed, k)``, so a replayed campaign sleeps the same schedule.
    seed:
        Seed for the jitter stream (``None`` behaves like 0).
    """

    max_attempts: int = 1
    timeout: Optional[float] = None
    backoff: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff * self.backoff_factor ** (attempt - 1)
        if base <= 0 or self.jitter == 0:
            return base
        u = np.random.default_rng([int(self.seed or 0), int(attempt)]).random()
        return base * (1.0 + self.jitter * float(u))

    def schedule(self, n: int) -> List[float]:
        """The deterministic backoff schedule for ``n`` failed attempts."""
        return [self.delay(a) for a in range(1, n + 1)]


@dataclasses.dataclass
class EvalOutcome:
    """Record of one (possibly retried) objective evaluation.

    ``value`` is the length-γ result vector — the real observation on
    success, the problem's penalty vector after exhausted retries, or
    ``None`` while unresolved.  ``events`` accumulates ``(kind, detail)``
    pairs (``"retry"``, ``"timeout"``, ``"eval-failure"``) so drivers can
    replay them into a campaign log even when the evaluation ran in a worker
    process.
    """

    value: Optional[np.ndarray]
    attempts: int
    wall_time: float
    failure_kind: Optional[str] = None  # "exception" | "nonfinite" | "timeout"
    error: Optional[BaseException] = None
    message: str = ""
    events: List[Tuple[str, str]] = dataclasses.field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether every attempt failed (value is a penalty or ``None``)."""
        return self.failure_kind is not None


class _ResultBox:
    """One-shot result slot a caller waits on (with a timeout)."""

    __slots__ = ("value", "error", "_done")

    def __init__(self):
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def finish(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        """Publish the call's outcome and wake the waiter."""
        self.value, self.error = value, error
        self._done.set()

    def wait(self, timeout: Optional[float]) -> bool:
        """True when the call completed within ``timeout`` seconds."""
        return self._done.wait(timeout)


class _EvalWorker(threading.Thread):
    """One reusable, named daemon thread running timed objective calls.

    After finishing a job the worker returns itself to its pool's idle list
    — *even when the caller already gave up on it* — so a timed-out
    evaluation parks one worker only until the abandoned objective returns,
    instead of leaking a fresh thread per timeout.
    """

    _ids = itertools.count()

    def __init__(self, pool: "_EvalWorkerPool"):
        super().__init__(name=f"repro-eval-worker-{next(self._ids)}", daemon=True)
        self._pool = pool
        self._inbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self.start()

    def submit(self, call: Callable[[], Any]) -> _ResultBox:
        """Hand the worker one call; returns the box its outcome lands in."""
        box = _ResultBox()
        self._inbox.put((call, box))
        return box

    def retire(self) -> None:
        """Ask the worker to exit once it drains its inbox."""
        self._inbox.put(None)

    def run(self) -> None:
        while True:
            job = self._inbox.get()
            if job is None:
                return
            call, box = job
            try:
                box.finish(value=call())
            except BaseException as e:  # noqa: BLE001 - relayed to the waiter
                box.finish(error=e)
            self._pool._release(self)


class _EvalWorkerPool:
    """Reusable daemon workers for per-evaluation timeouts.

    The old implementation built a fresh single-thread executor per
    evaluation and ``shutdown(wait=False)`` on timeout — every timed-out
    evaluation leaked a live thread still running the objective, so a long
    flaky campaign accumulated threads without bound.  Here a worker whose
    caller timed out simply rejoins the idle list when the abandoned
    objective eventually returns; the next evaluation reuses it.  Only
    objectives that never return at all can hold workers forever — and they
    hold exactly one each, which no portable design can avoid (Python cannot
    kill a thread).

    ``max_idle`` bounds the parked-thread count; surplus workers retire.
    ``created`` counts workers ever spawned — the test suite pins it to stay
    flat across dozens of simulated timeouts.
    """

    def __init__(self, max_idle: int = 4):
        self.max_idle = int(max_idle)
        self.created = 0
        self._idle: List[_EvalWorker] = []
        self._lock = threading.Lock()

    def _acquire(self) -> _EvalWorker:
        with self._lock:
            if self._idle:
                return self._idle.pop()
            self.created += 1
        return _EvalWorker(self)

    def _release(self, worker: _EvalWorker) -> None:
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(worker)
                return
        worker.retire()

    def idle_count(self) -> int:
        """Number of parked (reusable) workers."""
        with self._lock:
            return len(self._idle)

    def run(self, call: Callable[[], Any], timeout: float) -> Any:
        """Run ``call`` on a pooled worker with a wall-clock cap."""
        worker = self._acquire()
        box = worker.submit(call)
        if not box.wait(timeout):
            # Abandon, don't reuse: the worker rejoins the pool by itself
            # once the objective returns.  Its eventual result is discarded.
            raise EvalTimeoutError(f"evaluation exceeded {timeout:g}s")
        if box.error is not None:
            raise box.error
        return box.value


#: Process-wide pool shared by every retried evaluation.
_EVAL_POOL = _EvalWorkerPool()


def _call_with_timeout(call: Callable[[], Any], timeout: Optional[float]) -> Any:
    """Run ``call`` with an optional wall-clock cap.

    A timed-out call keeps running on its (reusable, daemon) worker thread
    in the background — Python cannot kill threads — and its eventual result
    is discarded; the worker returns to the shared pool afterwards.  An
    objective that raises :class:`TimeoutError` *itself* within the budget
    propagates that original error, not :class:`EvalTimeoutError`.
    """
    if timeout is None:
        return call()
    return _EVAL_POOL.run(call, timeout)


def run_with_retries(
    call: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> EvalOutcome:
    """Run ``call`` under a retry policy and classify the outcome.

    ``call`` must return a value convertible to a float vector.  Attempts
    failing with an exception, a non-finite result, or a timeout are retried
    up to ``policy.max_attempts`` with the policy's deterministic backoff;
    :class:`FatalEvaluationError` is never retried.  On exhaustion the
    returned outcome has ``value=None`` and the last failure's kind/error.

    Every failed attempt records a per-attempt event of its failure kind
    (``"timeout"``, ``"exception"``, ``"nonfinite"``) before any ``"retry"``
    event, so a campaign log shows *what each attempt did*, not just the
    final classification.  Backoff waits are timed as ``"retry.backoff"``
    spans when telemetry is on.
    """
    policy = policy or RetryPolicy()
    events: List[Tuple[str, str]] = []
    t0 = time.perf_counter()
    kind: Optional[str] = None
    error: Optional[BaseException] = None
    message = ""
    for attempt in range(1, policy.max_attempts + 1):
        try:
            y = _call_with_timeout(call, policy.timeout)
        except FatalEvaluationError:
            raise
        except EvalTimeoutError as e:
            kind, error, message = "timeout", None, str(e)
            events.append(("timeout", f"attempt {attempt}: {e}"))
        except Exception as e:
            kind, error, message = "exception", e, f"{type(e).__name__}: {e}"
            events.append(("exception", f"attempt {attempt}: {message}"))
        else:
            y = np.atleast_1d(np.asarray(y, dtype=float))
            if np.all(np.isfinite(y)):
                return EvalOutcome(
                    value=y,
                    attempts=attempt,
                    wall_time=time.perf_counter() - t0,
                    events=events,
                )
            kind, error, message = "nonfinite", None, f"non-finite value {y}"
            events.append(("nonfinite", f"attempt {attempt}: {message}"))
        if attempt < policy.max_attempts:
            delay = policy.delay(attempt)
            events.append(
                ("retry", f"attempt {attempt} failed ({kind}); backoff {delay:.3g}s")
            )
            if delay > 0:
                with maybe_span("retry.backoff", attempt=attempt, delay_s=delay):
                    sleep(delay)
    events.append(
        ("eval-failure", f"{policy.max_attempts} attempt(s) exhausted ({kind}: {message})")
    )
    return EvalOutcome(
        value=None,
        attempts=policy.max_attempts,
        wall_time=time.perf_counter() - t0,
        failure_kind=kind,
        error=error,
        message=message,
        events=events,
    )


# -- crash-safe persistence ---------------------------------------------------
def _json_default(obj: Any) -> Any:
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def atomic_write_json(path: str, obj: Any, indent: Optional[int] = None) -> None:
    """Write ``obj`` as JSON via temp file + rename so a crash mid-write
    can never leave a truncated file at ``path`` (NumPy scalars/arrays are
    converted to builtins)."""
    d = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(d, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=indent, default=_json_default)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@dataclasses.dataclass
class RunCheckpoint:
    """Resumable snapshot of one MLA campaign.

    Captures everything :meth:`repro.core.mla.GPTune.tune` needs to continue
    a killed run with byte-identical decisions: the per-task evaluation sets
    (``X``/``Y``), the master RNG entropy plus how many child seeds were
    already spawned (``spawn_count`` — resuming fast-forwards the seed tree
    instead of replaying it), the iteration counter, and the phase stats.

    ``pending`` records evaluations that were *in flight* when an async
    campaign (``Options(async_eval=True)``) checkpointed: one entry
    ``{"task", "x", "eta"}`` per outstanding evaluation, in submission
    order, where ``eta`` is the remaining virtual duration under a
    :class:`~repro.runtime.async_engine.SimScheduler` (``None`` for real
    executors).  Resuming resubmits them first, preserving the original
    completion schedule.  Lockstep resume refuses a checkpoint with pending
    evaluations — they would be silently lost.

    ``modeling`` (version 2) snapshots the posterior-*extension* warm state
    so campaigns running ``Options(refit_interval > 1)`` resume
    bit-identically: the modeling-phase counter (``fit_iter``) plus, per
    objective, the winning hyperparameter vector (``theta``), the fitted
    y-transform, and the per-extend chunk boundaries (``chunks`` — per-task
    row counts after the base fit and after each extension, replayed
    verbatim on resume because chunked Cholesky updates are not bitwise
    equal to one combined update), and — when the campaign enriches inputs
    with performance models — the featurizer's running normalization range
    and model hyperparameters.  ``None`` (and every version-1 checkpoint)
    means "no warm state": resume refits from scratch, which is correct but
    only bit-identical when ``refit_interval == 1``.

    The ``version`` field is derived, not caller-set: a checkpoint carrying
    ``modeling`` is version 2; one without is version 1, byte-compatible
    with readers that predate the field.
    """

    problem: str
    entropy: Any
    spawn_count: int
    n_samples: int
    tasks: List[Dict[str, Any]]
    frozen: List[int]
    iteration: int
    stats: Dict[str, float]
    X: List[List[Dict[str, Any]]]
    Y: List[List[List[float]]]
    pending: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    modeling: Optional[Dict[str, Any]] = None
    version: int = 1

    def __post_init__(self) -> None:
        self.version = 2 if self.modeling is not None else 1

    def save(self, path: str) -> None:
        """Persist atomically as JSON (see :func:`atomic_write_json`).

        Checkpoints without modeling warm state are written as version 1 —
        byte-compatible with readers that predate the ``modeling`` field."""
        obj = dataclasses.asdict(self)
        if self.modeling is None:
            del obj["modeling"]
        atomic_write_json(path, obj)

    @classmethod
    def load(cls, path: str) -> "RunCheckpoint":
        """Load and validate a checkpoint; raises ``ValueError`` naming the
        path when the file is truncated, corrupted, or from another layout."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}: corrupted checkpoint ({e})") from e
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: malformed checkpoint (expected an object)")
        names = {f.name for f in dataclasses.fields(cls)}
        required = {
            f.name
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        }
        missing = required - set(raw)
        if missing:
            raise ValueError(f"{path}: checkpoint missing fields {sorted(missing)}")
        if int(raw.get("version", 1)) not in (1, 2):
            raise ValueError(
                f"{path}: unsupported checkpoint version {raw['version']}"
            )
        ck = cls(**{k: raw[k] for k in names if k in raw})
        if len(ck.X) != len(ck.tasks) or len(ck.Y) != len(ck.tasks):
            raise ValueError(f"{path}: checkpoint X/Y do not match its task list")
        return ck
