"""Machine models.

The paper's experiments ran on NERSC Cori (Cray XC40; 2388 Haswell nodes of
two 16-core Xeon E5-2698v3 and 128 GB DDR4).  Since this reproduction has no
supercomputer, the machine is an explicit parameter: every application
simulator and the simulated-MPI cost model price their work against a
:class:`Machine`.  Keeping the machine a value object also lets benchmarks
ask "what would change on a fatter-node system" — the kind of what-if the
original authors could not run cheaply.
"""

from __future__ import annotations

import dataclasses

__all__ = ["Machine", "cori_haswell", "laptop"]


@dataclasses.dataclass(frozen=True)
class Machine:
    """A homogeneous cluster description.

    Attributes
    ----------
    name:
        Label used in logs.
    nodes:
        Node count available to the job.
    cores_per_node:
        Physical cores per node.
    flops_per_core:
        Peak double-precision flop/s of one core.
    mem_per_node:
        Usable memory per node, bytes.
    latency:
        Network point-to-point latency α, seconds.
    inv_bandwidth:
        Inverse network bandwidth β, seconds per byte.
    mem_bandwidth:
        Per-node memory bandwidth, bytes/s (used by bandwidth-bound kernels
        such as sparse mat-vec and AMG smoothing).
    blas_efficiency:
        Fraction of peak a well-blocked dense kernel achieves.
    """

    name: str = "generic"
    nodes: int = 1
    cores_per_node: int = 32
    flops_per_core: float = 36.8e9
    mem_per_node: float = 128e9
    latency: float = 1.5e-6
    inv_bandwidth: float = 1.0 / 8e9
    mem_bandwidth: float = 120e9
    blas_efficiency: float = 0.85

    def __post_init__(self):
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("need at least one node and one core")
        if min(self.flops_per_core, self.mem_per_node, self.mem_bandwidth) <= 0:
            raise ValueError("rates and capacities must be positive")
        if self.latency < 0 or self.inv_bandwidth < 0:
            raise ValueError("latency/inv_bandwidth must be non-negative")

    @property
    def total_cores(self) -> int:
        """Total core count of the allocation."""
        return self.nodes * self.cores_per_node

    def flops_rate(self, cores: int, efficiency: float = 1.0) -> float:
        """Aggregate flop/s of ``cores`` cores at a given efficiency."""
        cores = max(1, min(int(cores), self.total_cores))
        return cores * self.flops_per_core * self.blas_efficiency * efficiency

    def time_flops(self, flops: float, cores: int = 1, efficiency: float = 1.0) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        return float(flops) / self.flops_rate(cores, efficiency)

    def time_message(self, nbytes: float) -> float:
        """Seconds for one point-to-point message of ``nbytes`` (α-β model)."""
        return self.latency + float(nbytes) * self.inv_bandwidth

    def time_memory(self, nbytes: float, nodes: int = 1) -> float:
        """Seconds to stream ``nbytes`` through memory on ``nodes`` nodes."""
        nodes = max(1, min(int(nodes), self.nodes))
        return float(nbytes) / (self.mem_bandwidth * nodes)


def cori_haswell(nodes: int = 1) -> Machine:
    """The Cori Haswell partition used throughout Sec. 6.

    Two 16-core Intel Xeon E5-2698v3 (2.3 GHz, 16 dp flops/cycle) per node,
    128 GB DDR4-2133, Cray Aries interconnect.
    """
    return Machine(
        name=f"cori-haswell-{nodes}",
        nodes=nodes,
        cores_per_node=32,
        flops_per_core=36.8e9,
        mem_per_node=128e9,
        latency=1.5e-6,
        inv_bandwidth=1.0 / 8e9,
        mem_bandwidth=120e9,
        blas_efficiency=0.85,
    )


def laptop() -> Machine:
    """A 4-core laptop, the artifact-appendix fallback machine."""
    return Machine(
        name="laptop",
        nodes=1,
        cores_per_node=4,
        flops_per_core=20e9,
        mem_per_node=16e9,
        latency=0.5e-6,
        inv_bandwidth=1.0 / 12e9,
        mem_bandwidth=40e9,
        blas_efficiency=0.7,
    )
