"""Kernel density estimators for the TPE tuner.

HpBandSter's BO component models good and bad configurations with
multivariate kernel density estimators (its documentation calls the
combination a Tree Parzen Estimator).  Following that design we use a product
kernel over dimensions:

* continuous/integer dimensions (normalized to ``[0,1]``): Gaussian kernels
  with Scott's-rule bandwidth, truncated to the unit interval by
  renormalization;
* categorical dimensions: the Aitchison–Aitken kernel, which places mass
  ``1 − λ`` on the observed category and ``λ/(g−1)`` on each other category.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

__all__ = ["ProductKDE"]


class ProductKDE:
    """Product-kernel density estimator on the normalized unit cube.

    Parameters
    ----------
    data:
        ``(n, d)`` normalized sample matrix (n >= 1).
    categorical_mask:
        Length-``d`` boolean mask of categorical dimensions.
    cardinalities:
        Per-dimension category counts (only read where the mask is True).
    min_bandwidth:
        Lower bound on continuous bandwidths (keeps the KDE proper when all
        samples coincide).
    """

    def __init__(
        self,
        data: np.ndarray,
        categorical_mask: Optional[np.ndarray] = None,
        cardinalities: Optional[np.ndarray] = None,
        min_bandwidth: float = 1e-3,
    ):
        self.data = np.atleast_2d(np.asarray(data, dtype=float))
        n, d = self.data.shape
        if n < 1:
            raise ValueError("KDE needs at least one sample")
        self.cat = (
            np.zeros(d, dtype=bool)
            if categorical_mask is None
            else np.asarray(categorical_mask, dtype=bool)
        )
        self.cards = (
            np.full(d, np.inf) if cardinalities is None else np.asarray(cardinalities, float)
        )
        # Scott's rule per continuous dimension
        sigma = self.data.std(axis=0)
        self.bw = np.maximum(sigma * n ** (-1.0 / (d + 4)), min_bandwidth)
        # Aitchison-Aitken smoothing per categorical dimension
        self.aa_lambda = np.minimum(0.5, n ** (-0.4))

    def _cat_index(self, values: np.ndarray, j: int) -> np.ndarray:
        g = max(int(self.cards[j]), 1)
        return np.minimum((np.clip(values, 0, 1) * g).astype(int), g - 1)

    def pdf(self, X: np.ndarray) -> np.ndarray:
        """Density at normalized query points ``(m, d)``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n, d = self.data.shape
        m = X.shape[0]
        # per-sample, per-query product over dimensions, accumulated in logs
        log_k = np.zeros((m, n))
        for j in range(d):
            if self.cat[j]:
                g = max(int(self.cards[j]), 1)
                if g == 1:
                    continue
                qi = self._cat_index(X[:, j], j)
                si = self._cat_index(self.data[:, j], j)
                same = qi[:, None] == si[None, :]
                lam = self.aa_lambda
                kj = np.where(same, 1.0 - lam, lam / (g - 1))
            else:
                h = self.bw[j]
                z = (X[:, j, None] - self.data[None, :, j]) / h
                kj = stats.norm.pdf(z) / h
                # renormalize the truncated Gaussian to [0, 1]
                mass = stats.norm.cdf((1.0 - self.data[:, j]) / h) - stats.norm.cdf(
                    (0.0 - self.data[:, j]) / h
                )
                kj = kj / np.maximum(mass[None, :], 1e-12)
            log_k += np.log(np.maximum(kj, 1e-300))
        return np.exp(log_k).mean(axis=1)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` normalized points from the estimated density."""
        nn, d = self.data.shape
        idx = rng.integers(0, nn, size=n)
        out = np.empty((n, d))
        for j in range(d):
            base = self.data[idx, j]
            if self.cat[j]:
                g = max(int(self.cards[j]), 1)
                keep = rng.random(n) >= self.aa_lambda
                randcat = rng.integers(0, g, size=n)
                cats = np.where(keep, self._cat_index(base, j), randcat)
                out[:, j] = (cats + rng.random(n)) / g
            else:
                vals = base + rng.normal(0.0, self.bw[j], size=n)
                # reflect back into the unit interval
                vals = np.abs(vals)
                vals = 1.0 - np.abs(1.0 - vals)
                out[:, j] = np.clip(vals, 0.0, 1.0)
        return out
