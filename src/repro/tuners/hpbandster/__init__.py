"""HpBandSter-style tuners: the TPE BO core (paper comparison mode) and
the hyperband/successive-halving multi-fidelity component (Sec. 5)."""

from .hyperband import HyperbandTuner, SuccessiveHalvingTuner
from .kde import ProductKDE
from .tpe import HpBandSterTuner

__all__ = ["HpBandSterTuner", "HyperbandTuner", "ProductKDE", "SuccessiveHalvingTuner"]
