"""Hyperband and successive halving — HpBandSter's multi-fidelity half.

Sec. 5 of the paper: "the earlier hyperband is a multi-armed bandit strategy
that dynamically allocates resources to a set of random configurations and
uses successive halving to stop poorly performing configurations.
HpBandSter infuses a model-based search (Bayesian optimization) algorithm
instead of random selection of configurations at the beginning of each
hyperband iteration."  The paper *disables* this feature for its
comparisons (it "requires running applications with varying
fidelity/budgets"); this module implements it anyway so both modes of the
HpBandSter system exist and can be ablated.

Fidelity is expressed through a user callable
``with_fidelity(task, budget) -> task_variant`` — e.g. for the fusion codes
a smaller number of time steps, for iterative solvers a looser tolerance.
Costs are accounted in *fidelity units*: one full-budget evaluation costs
1.0, an evaluation at budget ``b`` costs ``b``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ...core.problem import TuningProblem
from ...core.sampling import sample_feasible
from ..base import TuneRecord, Tuner
from .kde import ProductKDE

__all__ = ["SuccessiveHalvingTuner", "HyperbandTuner"]

FidelityFn = Callable[[Mapping[str, Any], float], Mapping[str, Any]]


class SuccessiveHalvingTuner(Tuner):
    """One successive-halving bracket.

    Starts ``n`` configurations at the lowest budget, keeps the best
    ``1/η`` fraction at each rung, multiplying the budget by ``η`` until
    full fidelity.

    Parameters
    ----------
    with_fidelity:
        Maps ``(task, budget ∈ (0, 1])`` to the reduced-fidelity task.
    eta:
        Halving rate (3 is the hyperband default).
    min_budget:
        Lowest fidelity fraction used.
    """

    name = "successive_halving"

    def __init__(
        self,
        with_fidelity: FidelityFn,
        eta: float = 3.0,
        min_budget: float = 1.0 / 9.0,
    ):
        if eta <= 1.0:
            raise ValueError("eta must exceed 1")
        if not 0.0 < min_budget <= 1.0:
            raise ValueError("min_budget in (0, 1]")
        self.with_fidelity = with_fidelity
        self.eta = float(eta)
        self.min_budget = float(min_budget)

    # -- bracket geometry --------------------------------------------------
    def rungs(self) -> List[float]:
        """Budget ladder from ``min_budget`` to 1.0 by factors of η."""
        out = [1.0]
        while out[-1] / self.eta >= self.min_budget - 1e-12:
            out.append(out[-1] / self.eta)
        return sorted(out)

    def run_bracket(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        configs: List[Dict[str, Any]],
        record: TuneRecord,
    ) -> Tuple[List[Dict[str, Any]], float]:
        """Run one bracket; returns (survivors at full budget, cost units).

        Every *full-fidelity* evaluation is appended to ``record`` (lower
        rungs inform selection only, as in BOHB's incumbent bookkeeping).
        """
        tdict = problem.task_space.to_dict(task)
        cost = 0.0
        survivors = list(configs)
        for budget in self.rungs():
            reduced = problem.task_space.to_dict(self.with_fidelity(tdict, budget))
            scored = []
            for cfg in survivors:
                y = problem.evaluate(reduced, cfg)
                cost += budget
                if budget >= 1.0 - 1e-12:
                    record.add(problem.tuning_space.round_trip(cfg), y)
                scored.append((float(y[0]), cfg))
            scored.sort(key=lambda s: s[0])
            keep = max(1, int(len(scored) / self.eta)) if budget < 1.0 else len(scored)
            survivors = [cfg for _, cfg in scored[:keep]]
        return survivors, cost

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        """Spend ≈ ``n_samples`` full-fidelity-equivalent units on brackets."""
        rng = np.random.default_rng(seed)
        record = TuneRecord(problem.task_space.to_dict(task), problem.n_objectives)
        tdict = record.task
        n_rungs = len(self.rungs())
        spent = 0.0
        while spent < n_samples:
            n0 = max(2, int(self.eta ** (n_rungs - 1)))
            configs = sample_feasible(problem.tuning_space, n0, rng, extra=tdict)
            _, cost = self.run_bracket(problem, task, configs, record)
            spent += cost
        return record


class HyperbandTuner(Tuner):
    """Hyperband with optional BOHB-style KDE sampling of new brackets.

    Cycles over bracket aggressiveness s = s_max … 0 (as in Li et al.
    2017); with ``model=True`` new configurations are drawn from a KDE over
    the best observed configurations instead of uniformly — the "infused
    model-based search" that turns hyperband into HpBandSter.

    Parameters
    ----------
    with_fidelity:
        Budget-reduction callable as in :class:`SuccessiveHalvingTuner`.
    eta, min_budget:
        Bracket geometry.
    model:
        Enable the KDE-guided sampling (BOHB mode).
    """

    name = "hyperband"

    def __init__(
        self,
        with_fidelity: FidelityFn,
        eta: float = 3.0,
        min_budget: float = 1.0 / 9.0,
        model: bool = True,
    ):
        self.sh = SuccessiveHalvingTuner(with_fidelity, eta=eta, min_budget=min_budget)
        self.eta = float(eta)
        self.model = bool(model)

    def _sample_configs(
        self,
        problem: TuningProblem,
        tdict: Mapping[str, Any],
        n: int,
        record: TuneRecord,
        rng: np.random.Generator,
    ) -> List[Dict[str, Any]]:
        space = problem.tuning_space
        if not self.model or len(record) < space.dimension + 2:
            return sample_feasible(space, n, rng, extra=tdict)
        X = np.vstack([space.normalize(c) for c in record.configs])
        y = record.values[:, 0]
        order = np.argsort(y, kind="stable")
        good = X[order[: max(2, len(y) // 4)]]
        kde = ProductKDE(good, space.categorical_mask, space.cardinalities)
        out: List[Dict[str, Any]] = []
        draws = kde.sample(4 * n, rng)
        for u in draws:
            cfg = space.denormalize(u)
            if space.is_feasible(cfg, extra=tdict):
                out.append(cfg)
            if len(out) >= n:
                break
        if len(out) < n:
            out.extend(sample_feasible(space, n - len(out), rng, extra=tdict))
        return out

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        """Spend ≈ ``n_samples`` full-fidelity-equivalents across brackets."""
        rng = np.random.default_rng(seed)
        record = TuneRecord(problem.task_space.to_dict(task), problem.n_objectives)
        tdict = record.task
        s_max = len(self.sh.rungs()) - 1
        spent, s = 0.0, s_max
        while spent < n_samples:
            n0 = max(2, int(math.ceil((s_max + 1) / (s + 1) * self.eta**s)))
            configs = self._sample_configs(problem, tdict, n0, record, rng)
            # bracket s starts at rung index (s_max - s): shrink the ladder
            bracket = SuccessiveHalvingTuner(
                self.sh.with_fidelity,
                eta=self.eta,
                min_budget=self.sh.rungs()[s_max - s],
            )
            _, cost = bracket.run_bracket(problem, task, configs, record)
            spent += cost
            s = s - 1 if s > 0 else s_max
        return record
