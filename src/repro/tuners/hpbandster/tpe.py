"""HpBandSter-style tuner: TPE Bayesian optimization.

HpBandSter combines hyperband with a model-based search; the paper disables
the multi-armed-bandit (multi-fidelity) part for the comparison (Sec. 6.6),
leaving the kernel-density BO loop implemented here:

1. split observed configurations into *good* (best γ-quantile) and *bad*
   sets once enough data exists,
2. fit product KDEs ``l(x)`` (good) and ``g(x)`` (bad),
3. sample candidates from ``l`` and evaluate the one maximizing the density
   ratio ``l(x)/g(x)`` — which HpBandSter uses in place of directly
   optimizing EI ("this is faster, but less accurate", Sec. 5).

Before the model activates (or with probability ``random_fraction``) a
uniform feasible configuration is evaluated, as in the original.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from ...core.problem import TuningProblem
from ...core.sampling import sample_feasible
from ..base import TuneRecord, Tuner
from .kde import ProductKDE

__all__ = ["HpBandSterTuner"]


class HpBandSterTuner(Tuner):
    """TPE/KDE Bayesian optimization (bandit feature disabled).

    Parameters
    ----------
    gamma:
        Fraction of observations forming the *good* KDE (HpBandSter default
        0.15, floored so both sets stay non-degenerate).
    n_candidates:
        Candidates sampled from ``l(x)`` per iteration.
    random_fraction:
        Probability of a uniform random evaluation each iteration (keeps
        exploration alive; HpBandSter's default is 1/3, we default to 0.2 —
        the pure-BO setting used when the bandit is disabled).
    min_points:
        Observations required before the model activates
        (``d + 1`` when None, HpBandSter's ``min_points_in_model``).
    """

    name = "hpbandster"

    def __init__(
        self,
        gamma: float = 0.15,
        n_candidates: int = 64,
        random_fraction: float = 0.2,
        min_points: Optional[int] = None,
    ):
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma in (0,1)")
        self.gamma = float(gamma)
        self.n_candidates = int(n_candidates)
        self.random_fraction = float(random_fraction)
        self.min_points = min_points

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        rng = np.random.default_rng(seed)
        record = TuneRecord(problem.task_space.to_dict(task), problem.n_objectives)
        tdict = record.task
        space = problem.tuning_space
        d = space.dimension
        min_points = (d + 1) if self.min_points is None else int(self.min_points)
        cat_mask = space.categorical_mask
        cards = space.cardinalities

        for _ in range(int(n_samples)):
            use_model = len(record) >= max(min_points, 3) and rng.random() >= self.random_fraction
            if not use_model:
                cfg = sample_feasible(space, 1, rng, extra=tdict)[0]
                self._evaluate(problem, record, cfg)
                continue

            X = np.vstack([space.normalize(c) for c in record.configs])
            y = record.values[:, 0]
            n_good = max(2, int(np.ceil(self.gamma * len(y))))
            n_good = min(n_good, len(y) - 2) if len(y) >= 4 else max(1, len(y) - 1)
            order = np.argsort(y, kind="stable")
            good, bad = X[order[:n_good]], X[order[n_good:]]
            if bad.shape[0] < 1:
                bad = X
            l_kde = ProductKDE(good, cat_mask, cards)
            g_kde = ProductKDE(bad, cat_mask, cards)

            cands = l_kde.sample(self.n_candidates, rng)
            ratio = l_kde.pdf(cands) / np.maximum(g_kde.pdf(cands), 1e-300)
            # best feasible candidate by density ratio
            cfg = None
            for i in np.argsort(-ratio, kind="stable"):
                c = space.denormalize(cands[i])
                if space.is_feasible(c, extra=tdict):
                    cfg = c
                    break
            if cfg is None:
                cfg = sample_feasible(space, 1, rng, extra=tdict)[0]
            self._evaluate(problem, record, cfg)
        return record
