"""Grid search — the exhaustive-search baseline of Sec. 5.

Evaluates a full-factorial grid (as fine as the budget allows) of feasible
configurations.  Included to demonstrate the curse of dimensionality the
paper cites: the per-dimension resolution achievable with a fixed budget
collapses as β grows.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..core.problem import TuningProblem
from .base import TuneRecord, Tuner

__all__ = ["GridSearchTuner"]


class GridSearchTuner(Tuner):
    """Full-factorial grid search truncated to the evaluation budget."""

    name = "grid"

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, object],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        record = TuneRecord(problem.task_space.to_dict(task), problem.n_objectives)
        tdict = record.task
        beta = problem.tuning_space.dimension
        # the finest symmetric grid that fits the budget
        per_dim = max(2, int(np.floor(n_samples ** (1.0 / beta))))
        grid = [
            cfg
            for cfg in problem.tuning_space.grid(per_dim)
            if problem.tuning_space.is_feasible(cfg, extra=tdict)
        ]
        rng = np.random.default_rng(seed)
        if len(grid) > n_samples:
            keep = rng.choice(len(grid), size=int(n_samples), replace=False)
            grid = [grid[i] for i in sorted(keep)]
        for cfg in grid[: int(n_samples)]:
            self._evaluate(problem, record, cfg)
        # spend any remaining budget on random feasible points
        from ..core.sampling import sample_feasible

        remaining = int(n_samples) - len(record)
        if remaining > 0:
            for cfg in sample_feasible(problem.tuning_space, remaining, rng, extra=tdict):
                self._evaluate(problem, record, cfg)
        return record
