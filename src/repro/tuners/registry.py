"""Tuner registry — GPTune's "invoke other tuners" interface.

Sec. 6.1: "To make it easier for users to try different autotuners, our
interface allows the user to invoke them as well.  So far, OpenTuner,
HpBandSter, and ytopt are supported."  :func:`run_tuner` is that interface:
one call signature for every tuner in this package, keyed by name.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from ..core.options import Options
from ..core.problem import TuningProblem
from .base import TuneRecord
from .gptune_adapter import GPTuneTuner
from .grid_search import GridSearchTuner
from .hpbandster import HpBandSterTuner
from .opentuner import OpenTunerTuner
from .random_search import RandomSearchTuner
from .ytopt import YtoptTuner

__all__ = ["TUNERS", "make_tuner", "run_tuner"]

TUNERS: Dict[str, Callable[[], Any]] = {
    "gptune": lambda: GPTuneTuner(Options(n_start=2)),
    "opentuner": OpenTunerTuner,
    "hpbandster": HpBandSterTuner,
    "ytopt": YtoptTuner,
    "random": RandomSearchTuner,
    "grid": GridSearchTuner,
}


def make_tuner(name: str):
    """Instantiate a tuner by registry name."""
    try:
        return TUNERS[name]()
    except KeyError:
        raise ValueError(f"unknown tuner {name!r}; known: {sorted(TUNERS)}") from None


def run_tuner(
    name: str,
    problem: TuningProblem,
    task: Mapping[str, Any],
    n_samples: int,
    seed: Optional[int] = None,
) -> TuneRecord:
    """Tune one task with the named tuner (uniform invocation interface)."""
    return make_tuner(name).tune(problem, task, int(n_samples), seed=seed)
