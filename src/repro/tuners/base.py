"""Common interface for single-task baseline tuners.

The paper compares GPTune against OpenTuner and HpBandSter, which "do not
support multitask learning", so they are run separately on each task
(Sec. 6.6).  Every baseline here implements

``tune(problem, task, n_samples, seed) -> TuneRecord``

over the same :class:`~repro.core.problem.TuningProblem` the MLA driver
consumes, which makes head-to-head comparisons one-liners in the benchmark
harness.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.problem import TuningProblem

__all__ = ["TuneRecord", "Tuner"]


class TuneRecord:
    """Evaluation log of one single-task tuning run.

    Attributes
    ----------
    task:
        The task tuned.
    configs:
        Native configurations in evaluation order.
    values:
        ``(n, γ)`` objective values in evaluation order.
    """

    def __init__(self, task: Mapping[str, Any], n_objectives: int = 1):
        self.task = dict(task)
        self.configs: List[Dict[str, Any]] = []
        self.values_list: List[np.ndarray] = []
        self.n_objectives = int(n_objectives)

    def add(self, config: Mapping[str, Any], y: Any) -> None:
        """Record one evaluation."""
        yv = np.atleast_1d(np.asarray(y, dtype=float))
        if yv.shape != (self.n_objectives,):
            raise ValueError(f"expected {self.n_objectives} objectives, got {yv.shape}")
        self.configs.append(dict(config))
        self.values_list.append(yv)

    @property
    def values(self) -> np.ndarray:
        """``(n, γ)`` objective matrix."""
        if not self.values_list:
            return np.empty((0, self.n_objectives))
        return np.vstack(self.values_list)

    def __len__(self) -> int:
        return len(self.configs)

    def best(self, objective: int = 0) -> Tuple[Dict[str, Any], float]:
        """Best ``(config, value)`` for one objective."""
        if not self.configs:
            raise ValueError("no evaluations recorded")
        ys = self.values[:, objective]
        i = int(np.argmin(ys))
        return self.configs[i], float(ys[i])

    def trajectory(self, objective: int = 0) -> np.ndarray:
        """Best-so-far curve (anytime performance)."""
        return np.minimum.accumulate(self.values[:, objective])


class Tuner:
    """Base class: budgeted evaluation loop plumbing for baselines."""

    name = "tuner"

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        """Tune one task with a budget of ``n_samples`` evaluations."""
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------
    @staticmethod
    def _evaluate(
        problem: TuningProblem,
        record: TuneRecord,
        config: Mapping[str, Any],
    ) -> float:
        """Evaluate, record, and return the first objective value."""
        y = problem.evaluate(record.task, config)
        record.add(problem.tuning_space.round_trip(config), y)
        return float(y[0])
