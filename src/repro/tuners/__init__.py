"""Baseline tuners: random/grid search, OpenTuner-, HpBandSter- and
ytopt-style, plus the uniform invocation registry (Sec. 6.1)."""

from .base import TuneRecord, Tuner
from .gptune_adapter import GPTuneTuner
from .grid_search import GridSearchTuner
from .hpbandster import HpBandSterTuner, ProductKDE
from .opentuner import OpenTunerTuner
from .random_search import RandomSearchTuner
from .registry import TUNERS, make_tuner, run_tuner
from .ytopt import RandomForestRegressor, YtoptTuner

__all__ = [
    "GPTuneTuner",
    "GridSearchTuner",
    "HpBandSterTuner",
    "OpenTunerTuner",
    "ProductKDE",
    "RandomForestRegressor",
    "RandomSearchTuner",
    "TUNERS",
    "TuneRecord",
    "Tuner",
    "YtoptTuner",
    "make_tuner",
    "run_tuner",
]
