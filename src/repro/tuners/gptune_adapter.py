"""Adapter exposing GPTune through the single-task baseline interface.

The Fig. 6 / Tab. 4 comparisons run every tuner per task with equal budgets.
:class:`GPTuneTuner` wraps the MLA driver so it is interchangeable with the
baselines; with ``tasks=None`` it tunes the single requested task (the
δ = 1 single-task GP mode), and given a task list it runs true MLA and
extracts the requested task's record — letting the harness measure exactly
the multitask advantage the paper reports.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from ..core.mla import GPTune
from ..core.options import Options
from ..core.problem import TuningProblem
from .base import TuneRecord, Tuner

__all__ = ["GPTuneTuner"]


class GPTuneTuner(Tuner):
    """GPTune (single- or multitask) behind the baseline interface.

    Parameters
    ----------
    options:
        Base options; the per-call ``seed`` overrides ``options.seed``.
    tasks:
        Optional co-tuned task list.  When given, :meth:`tune` runs MLA over
        ``tasks ∪ {task}`` and reports the requested task's evaluations.
    """

    name = "gptune"

    def __init__(self, options: Optional[Options] = None, tasks: Optional[Sequence[Any]] = None):
        self.options = options or Options()
        self.tasks = list(tasks) if tasks is not None else None

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        opts = self.options.replace(seed=seed) if seed is not None else self.options
        tdict = problem.task_space.to_dict(task)
        task_list = [tdict]
        if self.tasks:
            key = repr(sorted(tdict.items()))
            for t in self.tasks:
                td = problem.task_space.to_dict(t)
                if repr(sorted(td.items())) != key:
                    task_list.append(td)
        tuner = GPTune(problem, opts)
        result = tuner.tune(task_list, int(n_samples))
        record = TuneRecord(tdict, problem.n_objectives)
        for x, y in zip(result.data.X[0], result.data.Y[0]):
            record.add(x, y)
        return record
