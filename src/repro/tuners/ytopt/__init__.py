"""ytopt-style tuner: from-scratch random forests + RF-based BO."""

from .forest import RandomForestRegressor, RegressionTree
from .tuner import YtoptTuner

__all__ = ["RandomForestRegressor", "RegressionTree", "YtoptTuner"]
