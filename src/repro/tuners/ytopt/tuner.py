"""ytopt-style tuner: random-forest Bayesian optimization.

ytopt ("machine-learning-based search methods for autotuning", ref. [31] of
the paper) drives its search with scikit-optimize surrogates, most commonly
random forests — the same family as SuRf's [23].  The loop implemented
here:

1. evaluate an initial random design,
2. fit a :class:`~repro.tuners.ytopt.forest.RandomForestRegressor` on the
   normalized (config → objective) data,
3. sample candidate configurations, score them with Expected Improvement
   using the forest's ensemble spread as the predictive deviation, and
   evaluate the best feasible candidate,
4. repeat until the budget is spent.

Forests handle categoricals and conditional plateaus natively (SuRf's
stated strength), at the cost of weaker extrapolation than a GP — which is
exactly the trade the paper's comparisons probe.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from ...core.acquisition import expected_improvement
from ...core.problem import TuningProblem
from ...core.sampling import sample_feasible
from ..base import TuneRecord, Tuner
from .forest import RandomForestRegressor

__all__ = ["YtoptTuner"]


class YtoptTuner(Tuner):
    """Random-forest BO over the tuning space.

    Parameters
    ----------
    n_initial:
        Random evaluations before the model activates (``None`` → β + 1).
    n_candidates:
        Candidate pool size per iteration.
    n_trees, max_depth:
        Forest hyperparameters.
    xi:
        EI exploration margin (subtracted from the incumbent).
    """

    name = "ytopt"

    def __init__(
        self,
        n_initial: Optional[int] = None,
        n_candidates: int = 128,
        n_trees: int = 25,
        max_depth: int = 10,
        xi: float = 0.0,
    ):
        self.n_initial = n_initial
        self.n_candidates = int(n_candidates)
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.xi = float(xi)

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        rng = np.random.default_rng(seed)
        record = TuneRecord(problem.task_space.to_dict(task), problem.n_objectives)
        tdict = record.task
        space = problem.tuning_space
        n_init = (space.dimension + 1) if self.n_initial is None else int(self.n_initial)
        n_init = min(max(2, n_init), int(n_samples))

        for cfg in sample_feasible(space, n_init, rng, extra=tdict):
            self._evaluate(problem, record, cfg)

        while len(record) < n_samples:
            X = np.vstack([space.normalize(c) for c in record.configs])
            y = record.values[:, 0]
            # standardize targets so EI scales sanely across applications
            mu0, sd0 = float(y.mean()), float(y.std()) or 1.0
            yt = (y - mu0) / sd0
            forest = RandomForestRegressor(
                n_trees=self.n_trees,
                max_depth=self.max_depth,
                seed=int(rng.integers(2**63)),
            ).fit(X, yt)

            cands = rng.random((self.n_candidates, space.dimension))
            mean, std = forest.predict(cands, return_std=True)
            ei = expected_improvement(mean, std**2, float(yt.min()) - self.xi)
            picked = None
            for i in np.argsort(-ei, kind="stable"):
                cfg = space.denormalize(cands[i])
                if space.is_feasible(cfg, extra=tdict):
                    picked = cfg
                    break
            if picked is None:
                picked = sample_feasible(space, 1, rng, extra=tdict)[0]
            self._evaluate(problem, record, picked)
        return record
