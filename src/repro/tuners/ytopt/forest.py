"""Random-forest regression, from scratch.

ytopt (and SuRf, Sec. 5 of the paper) model application performance with
random forests: bagged CART regression trees with per-split feature
subsampling.  scikit-learn is unavailable offline, so this module implements
the standard algorithm directly:

* :class:`RegressionTree` — binary CART minimizing within-node variance,
  with depth / leaf-size stopping and random feature subsets per split;
* :class:`RandomForestRegressor` — bootstrap-aggregated trees whose spread
  of per-tree predictions doubles as an uncertainty estimate, which the
  ytopt tuner's acquisition uses exactly like a GP posterior deviation.

Inputs are normalized ``[0,1]`` vectors (categoricals arrive cell-encoded,
which CART splits handle naturally since each category occupies an
interval).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["RegressionTree", "RandomForestRegressor"]


@dataclasses.dataclass
class _Node:
    """One tree node; leaves carry a value, internal nodes a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree (variance-reduction splits).

    Parameters
    ----------
    max_depth:
        Depth cap.
    min_samples_leaf:
        Minimum samples per leaf.
    max_features:
        Features considered per split; ``None`` = all, otherwise a count
        (random forests typically use ``ceil(d/3)`` for regression).
    seed:
        Feature-subsampling seed.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        self.max_depth = int(max_depth)
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self.root: Optional[_Node] = None

    # -- training ----------------------------------------------------------
    def _best_split(
        self, X: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> Optional[Tuple[int, float, float]]:
        """Best (feature, threshold, score) or None when nothing splits."""
        n = y.shape[0]
        best = None
        base = float(np.var(y)) * n
        for j in features:
            order = np.argsort(X[:, j], kind="stable")
            xs, ys = X[order, j], y[order]
            # candidate thresholds between distinct consecutive values
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys * ys)
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue
                nl, nr = i, n - i
                sl, sr = csum[i - 1], csum[-1] - csum[i - 1]
                ql, qr = csum2[i - 1], csum2[-1] - csum2[i - 1]
                sse = (ql - sl * sl / nl) + (qr - sr * sr / nr)
                gain = base - sse
                if best is None or gain > best[2]:
                    thr = 0.5 * (xs[i - 1] + xs[min(i, n - 1)])
                    best = (int(j), float(thr), float(gain))
        if best is None or best[2] <= 1e-15:
            return None
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or y.shape[0] < 2 * self.min_samples_leaf:
            return node
        if np.allclose(y, y[0]):
            return node
        d = X.shape[1]
        k = d if self.max_features is None else min(d, max(1, int(self.max_features)))
        features = self.rng.choice(d, size=k, replace=False)
        split = self._best_split(X, y, features)
        if split is None:
            return node
        j, thr, _ = split
        mask = X[:, j] <= thr
        if mask.all() or not mask.any():
            return node
        node.feature, node.threshold = j, thr
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit to ``(n, d)`` inputs and ``(n,)`` targets."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("bad training data")
        self.root = self._build(X, y, 0)
        return self

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``(m, d)`` inputs."""
        if self.root is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.empty(X.shape[0])
        for i, x in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def d(node):
            return 0 if node is None or node.is_leaf else 1 + max(d(node.left), d(node.right))

        return d(self.root)


class RandomForestRegressor:
    """Bagged regression trees with ensemble-spread uncertainty.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    max_depth, min_samples_leaf:
        Passed to every tree.
    max_features:
        Per-split feature count; ``None`` → ``ceil(d/3)`` at fit time.
    seed:
        Master seed for bootstraps and feature subsampling.
    """

    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        if n_trees < 1:
            raise ValueError("need at least one tree")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self.trees: List[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit the ensemble on bootstrap resamples."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("bad training data")
        n, d = X.shape
        mf = self.max_features if self.max_features is not None else max(1, -(-d // 3))
        self.trees = []
        for _ in range(self.n_trees):
            idx = self.rng.integers(0, n, size=n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=mf,
                seed=int(self.rng.integers(2**63)),
            )
            tree.fit(X[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray, return_std: bool = False):
        """Ensemble mean (and optionally the tree-spread std)."""
        if not self.trees:
            raise RuntimeError("predict() before fit()")
        preds = np.vstack([t.predict(X) for t in self.trees])
        mean = preds.mean(axis=0)
        if return_std:
            return mean, preds.std(axis=0)
        return mean
