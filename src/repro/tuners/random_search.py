"""Random search — the stochastic baseline of Sec. 5.

Uniformly samples feasible configurations and keeps the best.  Cheap,
embarrassingly parallel, and surprisingly hard to beat at tiny budgets —
which is why the paper's "small number of allowed runs" regime needs
model-based tuners to show value against it.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..core.problem import TuningProblem
from ..core.sampling import sample_feasible
from .base import TuneRecord, Tuner

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner(Tuner):
    """Uniform random search over the feasible tuning space."""

    name = "random"

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, object],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        rng = np.random.default_rng(seed)
        record = TuneRecord(problem.task_space.to_dict(task), problem.n_objectives)
        tdict = record.task
        for cfg in sample_feasible(problem.tuning_space, int(n_samples), rng, extra=tdict):
            self._evaluate(problem, record, cfg)
        return record
