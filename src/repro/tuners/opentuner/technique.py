"""Technique interface for the OpenTuner-style ensemble tuner.

OpenTuner organizes model-free search *techniques* behind an ask/tell
interface and lets a multi-armed bandit allocate the evaluation budget across
them (Sec. 5 of the paper).  A technique proposes the next configuration
(``ask``) and observes every result produced by *any* technique (``tell``),
so all arms share the global best.

All techniques work on the normalized unit hypercube and use rejection to
stay feasible, falling back to uniform feasible draws when their proposal
mechanism leaves the feasible region.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from ...core.sampling import sample_feasible
from ...core.space import Space

__all__ = ["Technique", "RandomTechnique"]


class Technique:
    """Base class: feasibility plumbing plus the ask/tell contract.

    Parameters
    ----------
    space:
        The tuning space.
    task:
        Task bindings for constraint evaluation.
    rng:
        Shared random generator (the ensemble seeds one per technique).
    """

    name = "technique"

    def __init__(self, space: Space, task: Mapping[str, Any], rng: np.random.Generator):
        self.space = space
        self.task = dict(task)
        self.rng = rng
        self.best_config: Optional[Dict[str, Any]] = None
        self.best_value: float = np.inf

    # -- contract -----------------------------------------------------------
    def ask(self) -> Dict[str, Any]:
        """Propose the next native configuration (feasible)."""
        raise NotImplementedError

    def tell(self, config: Mapping[str, Any], value: float, mine: bool) -> None:
        """Observe a result.  ``mine`` marks proposals this technique made."""
        if value < self.best_value:
            self.best_value = float(value)
            self.best_config = dict(config)

    # -- helpers ------------------------------------------------------------
    def _random_feasible(self) -> Dict[str, Any]:
        return sample_feasible(self.space, 1, self.rng, extra=self.task)[0]

    def _feasible_or_random(self, unit: np.ndarray, tries: int = 8) -> Dict[str, Any]:
        """Snap a unit-space proposal to feasibility (jitter, then fall back)."""
        u = np.clip(np.asarray(unit, dtype=float), 0.0, 1.0)
        cfg = self.space.denormalize(u)
        if self.space.is_feasible(cfg, extra=self.task):
            return cfg
        for _ in range(tries):
            v = np.clip(u + self.rng.normal(0.0, 0.1, u.shape), 0.0, 1.0)
            cfg = self.space.denormalize(v)
            if self.space.is_feasible(cfg, extra=self.task):
                return cfg
        return self._random_feasible()

    def _unit(self, config: Mapping[str, Any]) -> np.ndarray:
        return self.space.normalize(config)


class RandomTechnique(Technique):
    """Pure random sampling — OpenTuner's always-available fallback arm."""

    name = "random"

    def ask(self) -> Dict[str, Any]:
        return self._random_feasible()
