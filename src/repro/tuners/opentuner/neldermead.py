"""Nelder–Mead simplex technique (Nelder & Mead 1965).

The classic derivative-free *local* method (Sec. 5 groups it with Orthogonal
Search as local approaches).  The simplex lives in the normalized space;
integer and categorical dimensions are handled by the space's snapping in
``denormalize``.  The ask/tell adaptation runs the standard
reflect → expand → contract → shrink state machine one evaluation at a time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .technique import Technique

__all__ = ["NelderMeadTechnique"]


class NelderMeadTechnique(Technique):
    """Sequential Nelder–Mead with unit-cube clipping."""

    name = "neldermead"

    _ALPHA, _GAMMA, _RHO, _SIGMA = 1.0, 2.0, 0.5, 0.5

    def __init__(self, *args, **kw):
        super().__init__(*args, **kw)
        d = self.space.dimension
        self.simplex: List[Tuple[np.ndarray, float]] = []
        self._init_needed = d + 1
        self._phase = "init"
        self._pending: Optional[np.ndarray] = None
        self._reflected: Optional[Tuple[np.ndarray, float]] = None
        self._shrink_queue: List[np.ndarray] = []

    # -- geometry helpers ---------------------------------------------------
    def _centroid(self) -> np.ndarray:
        pts = np.vstack([p for p, _ in self.simplex[:-1]])
        return pts.mean(axis=0)

    def _propose(self, point: np.ndarray) -> Dict[str, Any]:
        self._pending = np.clip(point, 0.0, 1.0)
        return self._feasible_or_random(self._pending)

    def ask(self) -> Dict[str, Any]:
        if len(self.simplex) < self._init_needed:
            cfg = self._random_feasible()
            self._pending = self._unit(cfg)
            self._phase = "init"
            return cfg
        self.simplex.sort(key=lambda s: s[1])
        best, worst = self.simplex[0][0], self.simplex[-1][0]
        c = self._centroid()
        if self._phase in ("init", "reflect"):
            self._phase = "reflect"
            return self._propose(c + self._ALPHA * (c - worst))
        if self._phase == "expand":
            return self._propose(c + self._GAMMA * (self._reflected[0] - c))
        if self._phase == "contract":
            return self._propose(c + self._RHO * (worst - c))
        if self._phase == "shrink":
            nxt = self._shrink_queue.pop()
            return self._propose(best + self._SIGMA * (nxt - best))
        raise AssertionError(f"bad phase {self._phase}")  # pragma: no cover

    def tell(self, config: Mapping[str, Any], value: float, mine: bool) -> None:
        super().tell(config, value, mine)
        if not mine:
            return
        u = self._unit(config)
        v = float(value)
        if len(self.simplex) < self._init_needed:
            self.simplex.append((u, v))
            if len(self.simplex) == self._init_needed:
                self._phase = "reflect"
            return
        self.simplex.sort(key=lambda s: s[1])
        f_best, f_second_worst, f_worst = (
            self.simplex[0][1],
            self.simplex[-2][1],
            self.simplex[-1][1],
        )
        if self._phase == "reflect":
            if v < f_best:
                self._reflected = (u, v)
                self._phase = "expand"
            elif v < f_second_worst:
                self.simplex[-1] = (u, v)
                self._phase = "reflect"
            else:
                self._reflected = (u, v)
                self._phase = "contract"
        elif self._phase == "expand":
            better = (u, v) if v < self._reflected[1] else self._reflected
            self.simplex[-1] = better
            self._phase = "reflect"
        elif self._phase == "contract":
            if v < min(f_worst, self._reflected[1]):
                self.simplex[-1] = (u, v)
                self._phase = "reflect"
            else:
                # shrink everything toward the best vertex
                self._shrink_queue = [p for p, _ in self.simplex[1:]]
                self.simplex = self.simplex[:1]
                self._phase = "shrink"
        elif self._phase == "shrink":
            self.simplex.append((u, v))
            if not self._shrink_queue:
                self._phase = (
                    "reflect" if len(self.simplex) >= self._init_needed else "init"
                )
