"""Genetic-algorithm technique (Srinivas & Patnaik 1994 style).

Maintains a fixed-size population of evaluated configurations; proposals are
produced by binary-tournament parent selection, uniform crossover in the
normalized space, and per-gene Gaussian mutation.  One of the global
model-free methods OpenTuner's bandit can select (Sec. 5).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from .technique import Technique

__all__ = ["GeneticAlgorithmTechnique"]


class GeneticAlgorithmTechnique(Technique):
    """Steady-state GA over the normalized tuning space."""

    name = "ga"

    def __init__(self, *args, population_size: int = 10, mutation_rate: float = 0.15, **kw):
        super().__init__(*args, **kw)
        self.population_size = max(2, int(population_size))
        self.mutation_rate = float(mutation_rate)
        self.population: List[Tuple[np.ndarray, float]] = []

    def _tournament(self) -> np.ndarray:
        i, j = self.rng.integers(0, len(self.population), 2)
        a, b = self.population[i], self.population[j]
        return a[0] if a[1] <= b[1] else b[0]

    def ask(self) -> Dict[str, Any]:
        if len(self.population) < 2:
            return self._random_feasible()
        p1, p2 = self._tournament(), self._tournament()
        mask = self.rng.random(p1.shape[0]) < 0.5
        child = np.where(mask, p1, p2)
        genes = self.rng.random(child.shape[0]) < self.mutation_rate
        child = np.where(genes, np.clip(child + self.rng.normal(0, 0.15, child.shape), 0, 1), child)
        return self._feasible_or_random(child)

    def tell(self, config: Mapping[str, Any], value: float, mine: bool) -> None:
        super().tell(config, value, mine)
        self.population.append((self._unit(config), float(value)))
        if len(self.population) > self.population_size:
            # drop the worst member (steady-state elitism)
            worst = max(range(len(self.population)), key=lambda k: self.population[k][1])
            self.population.pop(worst)
