"""Pattern (orthogonal) search technique.

Polls the ``2β`` axis neighbours of the incumbent at a step size that halves
whenever a full poll fails to improve — the "Orthogonal Search" local method
cited in Sec. 5.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from .technique import Technique

__all__ = ["PatternSearchTechnique"]


class PatternSearchTechnique(Technique):
    """Coordinate pattern search with halving steps."""

    name = "pattern"

    def __init__(self, *args, step: float = 0.25, min_step: float = 1e-3, **kw):
        super().__init__(*args, **kw)
        self.step = float(step)
        self.min_step = float(min_step)
        self.center: Optional[np.ndarray] = None
        self.center_value: float = np.inf
        self._direction = 0  # index into the 2β poll directions
        self._improved_this_sweep = False

    def ask(self) -> Dict[str, Any]:
        if self.center is None:
            cfg = self._random_feasible()
            return cfg
        d = self.space.dimension
        axis, sign = divmod(self._direction, 2)
        delta = np.zeros(d)
        delta[axis] = self.step if sign == 0 else -self.step
        return self._feasible_or_random(self.center + delta)

    def tell(self, config: Mapping[str, Any], value: float, mine: bool) -> None:
        super().tell(config, value, mine)
        u = self._unit(config)
        v = float(value)
        if self.center is None:
            self.center, self.center_value = u, v
            return
        if v < self.center_value:
            self.center, self.center_value = u, v
            self._improved_this_sweep = True
        if not mine:
            return
        self._direction += 1
        if self._direction >= 2 * self.space.dimension:
            self._direction = 0
            if not self._improved_this_sweep:
                self.step = max(self.step * 0.5, self.min_step)
            self._improved_this_sweep = False
