"""Particle-swarm technique for the OpenTuner-style ensemble.

Sec. 5 lists PSO (Kennedy & Eberhart) among the global model-free methods
the OpenTuner family draws on.  Unlike :class:`repro.core.search.pso`
(which optimizes the *cheap* acquisition with many internal evaluations),
this technique advances one particle per ``ask`` against the *expensive*
objective — the sequential, budget-frugal form an ensemble arm needs.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from .technique import Technique

__all__ = ["PSOTechnique"]


class PSOTechnique(Technique):
    """Round-robin particle swarm over the expensive objective.

    Parameters
    ----------
    swarm_size:
        Number of particles cycled through.
    inertia, cognitive, social:
        Classic PSO coefficients.
    """

    name = "pso"

    def __init__(
        self,
        *args,
        swarm_size: int = 6,
        inertia: float = 0.7,
        cognitive: float = 1.4,
        social: float = 1.4,
        **kw,
    ):
        super().__init__(*args, **kw)
        self.swarm_size = max(2, int(swarm_size))
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)
        d = self.space.dimension
        self.pos: Optional[np.ndarray] = None
        self.vel = self.rng.uniform(-0.1, 0.1, (self.swarm_size, d))
        self.pbest = np.zeros((self.swarm_size, d))
        self.pbest_f = np.full(self.swarm_size, np.inf)
        self.gbest: Optional[np.ndarray] = None
        self.gbest_f = np.inf
        self._next = 0
        self._initialized = 0

    def ask(self) -> Dict[str, Any]:
        if self._initialized < self.swarm_size:
            cfg = self._random_feasible()
            if self.pos is None:
                self.pos = np.zeros((self.swarm_size, self.space.dimension))
            self.pos[self._initialized] = self._unit(cfg)
            return cfg
        i = self._next
        d = self.space.dimension
        r1, r2 = self.rng.random(d), self.rng.random(d)
        self.vel[i] = (
            self.inertia * self.vel[i]
            + self.cognitive * r1 * (self.pbest[i] - self.pos[i])
            + self.social * r2 * (self.gbest - self.pos[i])
        )
        np.clip(self.vel[i], -0.4, 0.4, out=self.vel[i])
        proposal = self.pos[i] + self.vel[i]
        # reflecting bounds
        over, under = proposal > 1.0, proposal < 0.0
        proposal[over] = 2.0 - proposal[over]
        proposal[under] = -proposal[under]
        np.clip(proposal, 0.0, 1.0, out=proposal)
        self.vel[i][over | under] *= -0.5
        cfg = self._feasible_or_random(proposal)
        self.pos[i] = self._unit(cfg)
        return cfg

    def tell(self, config: Mapping[str, Any], value: float, mine: bool) -> None:
        super().tell(config, value, mine)
        u = self._unit(config)
        v = float(value)
        if v < self.gbest_f:  # global best absorbs everyone's results
            self.gbest, self.gbest_f = u.copy(), v
        if not mine:
            return
        if self._initialized < self.swarm_size:
            i = self._initialized
            self.pbest[i], self.pbest_f[i] = u, v
            self._initialized += 1
            return
        i = self._next
        if v < self.pbest_f[i]:
            self.pbest[i], self.pbest_f[i] = u, v
        self._next = (i + 1) % self.swarm_size
