"""Differential-evolution technique (rand/1/bin).

Proposals are ``a + F·(b − c)`` over three distinct population members with
binomial crossover against a random base member — OpenTuner ships several DE
variants; rand/1/bin is its default.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from .technique import Technique

__all__ = ["DifferentialEvolutionTechnique"]


class DifferentialEvolutionTechnique(Technique):
    """DE/rand/1/bin over the normalized tuning space."""

    name = "de"

    def __init__(self, *args, population_size: int = 12, f: float = 0.6, cr: float = 0.8, **kw):
        super().__init__(*args, **kw)
        self.population_size = max(4, int(population_size))
        self.f = float(f)
        self.cr = float(cr)
        self.population: List[Tuple[np.ndarray, float]] = []

    def ask(self) -> Dict[str, Any]:
        if len(self.population) < 4:
            return self._random_feasible()
        idx = self.rng.choice(len(self.population), 4, replace=False)
        base, a, b, c = (self.population[i][0] for i in idx)
        mutant = a + self.f * (b - c)
        cross = self.rng.random(base.shape[0]) < self.cr
        cross[self.rng.integers(0, base.shape[0])] = True  # at least one gene
        trial = np.where(cross, mutant, base)
        return self._feasible_or_random(trial)

    def tell(self, config: Mapping[str, Any], value: float, mine: bool) -> None:
        super().tell(config, value, mine)
        self.population.append((self._unit(config), float(value)))
        if len(self.population) > self.population_size:
            worst = max(range(len(self.population)), key=lambda k: self.population[k][1])
            self.population.pop(worst)
