"""OpenTuner-style ensemble tuner and its model-free techniques."""

from .annealing import SimulatedAnnealingTechnique
from .bandit import DEFAULT_TECHNIQUES, OpenTunerTuner
from .de import DifferentialEvolutionTechnique
from .ga import GeneticAlgorithmTechnique
from .neldermead import NelderMeadTechnique
from .pattern import PatternSearchTechnique
from .pso_technique import PSOTechnique
from .technique import RandomTechnique, Technique

__all__ = [
    "DEFAULT_TECHNIQUES",
    "DifferentialEvolutionTechnique",
    "GeneticAlgorithmTechnique",
    "NelderMeadTechnique",
    "OpenTunerTuner",
    "PSOTechnique",
    "PatternSearchTechnique",
    "RandomTechnique",
    "SimulatedAnnealingTechnique",
    "Technique",
]
