"""Simulated-annealing technique (Kirkpatrick, Gelatt & Vecchi 1983).

A random-walk around the current state with a geometric cooling schedule;
worse moves are accepted with probability ``exp(-Δ/T)``.  One of the global
model-free methods cited in Sec. 5 of the paper.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from .technique import Technique

__all__ = ["SimulatedAnnealingTechnique"]


class SimulatedAnnealingTechnique(Technique):
    """SA with Gaussian proposal kernel and geometric cooling."""

    name = "annealing"

    def __init__(
        self,
        *args,
        t_initial: float = 1.0,
        cooling: float = 0.9,
        step: float = 0.15,
        **kw,
    ):
        super().__init__(*args, **kw)
        self.temperature = float(t_initial)
        self.cooling = float(cooling)
        self.step = float(step)
        self.state: Optional[np.ndarray] = None
        self.state_value: float = np.inf
        self._pending: Optional[np.ndarray] = None

    def ask(self) -> Dict[str, Any]:
        if self.state is None:
            cfg = self._random_feasible()
            self._pending = self._unit(cfg)
            return cfg
        scale = self.step * max(self.temperature, 0.05)
        proposal = np.clip(self.state + self.rng.normal(0, scale, self.state.shape), 0, 1)
        cfg = self._feasible_or_random(proposal)
        self._pending = self._unit(cfg)
        return cfg

    def tell(self, config: Mapping[str, Any], value: float, mine: bool) -> None:
        super().tell(config, value, mine)
        if not mine:
            return
        u = self._unit(config)
        if self.state is None:
            self.state, self.state_value = u, float(value)
            return
        delta = float(value) - self.state_value
        if delta <= 0 or self.rng.random() < np.exp(-delta / max(self.temperature, 1e-9)):
            self.state, self.state_value = u, float(value)
        self.temperature *= self.cooling
