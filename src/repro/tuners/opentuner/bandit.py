"""OpenTuner-style ensemble tuner: AUC multi-armed bandit over techniques.

OpenTuner "relies on meta-heuristics to solve a multi-armed bandit problem
where application runtime (function evaluation) is the resource to be
allocated … in order to adaptively select the best performing method"
(Sec. 5 of the paper).  This reimplementation follows OpenTuner's published
design: each technique is an arm; an arm's exploitation score is the *area
under the curve* (AUC) of its recent new-global-best history over a sliding
window, combined with an exploration bonus ``C·sqrt(2 log t / n)`` (UCB).
Every result is shared with all techniques so arms build on each other's
discoveries, exactly as OpenTuner's shared results database does.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Mapping, Optional, Sequence, Type

import numpy as np

from ...core.problem import TuningProblem
from ..base import TuneRecord, Tuner
from .annealing import SimulatedAnnealingTechnique
from .de import DifferentialEvolutionTechnique
from .ga import GeneticAlgorithmTechnique
from .neldermead import NelderMeadTechnique
from .pattern import PatternSearchTechnique
from .pso_technique import PSOTechnique
from .technique import RandomTechnique, Technique

__all__ = ["OpenTunerTuner", "DEFAULT_TECHNIQUES"]

DEFAULT_TECHNIQUES: Sequence[Type[Technique]] = (
    GeneticAlgorithmTechnique,
    DifferentialEvolutionTechnique,
    SimulatedAnnealingTechnique,
    NelderMeadTechnique,
    PatternSearchTechnique,
    PSOTechnique,
    RandomTechnique,
)


class _Arm:
    """Bandit bookkeeping for one technique."""

    def __init__(self, technique: Technique, window: int):
        self.technique = technique
        self.history: deque = deque(maxlen=window)  # 1 = produced new global best
        self.uses = 0

    def auc(self) -> float:
        """Decayed area under the new-best curve (recent wins count more)."""
        if not self.history:
            return 0.0
        n = len(self.history)
        num = sum((i + 1) * h for i, h in enumerate(self.history))
        den = n * (n + 1) / 2.0
        return num / den


class OpenTunerTuner(Tuner):
    """Ensemble tuner with AUC-bandit technique selection.

    Parameters
    ----------
    techniques:
        Technique classes forming the arms; defaults to OpenTuner's usual
        suite (GA, DE, SA, Nelder–Mead, pattern search, random).
    window:
        Sliding-window length of the AUC credit assignment.
    exploration:
        UCB exploration coefficient C.
    """

    name = "opentuner"

    def __init__(
        self,
        techniques: Optional[Sequence[Type[Technique]]] = None,
        window: int = 50,
        exploration: float = 0.3,
    ):
        self.technique_classes = list(
            DEFAULT_TECHNIQUES if techniques is None else techniques
        )
        if not self.technique_classes:
            raise ValueError("need at least one technique")
        self.window = int(window)
        self.exploration = float(exploration)

    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        seed: Optional[int] = None,
    ) -> TuneRecord:
        rng = np.random.default_rng(seed)
        record = TuneRecord(problem.task_space.to_dict(task), problem.n_objectives)
        tdict = record.task
        arms: List[_Arm] = [
            _Arm(cls(problem.tuning_space, tdict, np.random.default_rng(rng.integers(2**63))),
                 self.window)
            for cls in self.technique_classes
        ]
        global_best = np.inf
        for step in range(int(n_samples)):
            arm = self._select(arms, step, rng)
            cfg = arm.technique.ask()
            value = self._evaluate(problem, record, cfg)
            produced_best = value < global_best
            global_best = min(global_best, value)
            arm.uses += 1
            arm.history.append(1.0 if produced_best else 0.0)
            for other in arms:
                other.technique.tell(record.configs[-1], value, mine=other is arm)
        return record

    def _select(self, arms: List[_Arm], step: int, rng: np.random.Generator) -> _Arm:
        # play every arm once, then UCB on AUC scores
        unused = [a for a in arms if a.uses == 0]
        if unused:
            return unused[int(rng.integers(len(unused)))]
        t = max(step, 1)
        scores = [
            a.auc() + self.exploration * np.sqrt(2.0 * np.log(t) / a.uses) for a in arms
        ]
        return arms[int(np.argmax(scores))]
