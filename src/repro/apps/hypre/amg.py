"""Classical algebraic multigrid, from scratch.

The hypre experiments of Sec. 6.6 tune "GMRES with the BoomerAMG
preconditioner for solving the Poisson equation on structured 3D grids",
with 12 tuning parameters "including choice of coarsening algorithms,
smoothers and interpolation operators, and their corresponding parameters".
So convergence must *respond* to those choices — this module implements the
actual algorithms rather than a convergence formula:

* strength-of-connection graph with threshold θ and a ``max_row_sum``
  diagonal-dominance cutoff (both real BoomerAMG options),
* coarsening: Ruge–Stüben first pass (``RS``), the parallel independent-set
  method (``PMIS``), and ``HMIS`` (PMIS seeded by an RS pass, here realized
  as PMIS with second-pass thinning — the aggressive variant),
* interpolation: ``direct``, ``classical`` (Ruge–Stüben, distributing
  strong F–F connections) and ``one_point``; truncated by relative
  threshold and a per-row max element count, then rescaled,
* Galerkin coarse operators ``Aᶜ = Pᵀ A P``,
* smoothers: weighted Jacobi, Gauss–Seidel, SOR, and ℓ1-Jacobi,
* V-cycles with configurable sweep counts and a dense direct coarse solve.

Everything is plain SciPy sparse; problem sizes are downscaled by the
simulator so a V-cycle costs milliseconds.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve_triangular

__all__ = [
    "poisson3d",
    "strength_graph",
    "coarsen",
    "interpolation",
    "Level",
    "AMGHierarchy",
    "build_hierarchy",
    "COARSEN_CHOICES",
    "INTERP_CHOICES",
    "RELAX_CHOICES",
]

COARSEN_CHOICES = ("RS", "PMIS", "HMIS")
INTERP_CHOICES = ("direct", "classical", "one_point")
RELAX_CHOICES = ("jacobi", "gauss_seidel", "sor", "l1_jacobi")


def poisson3d(n1: int, n2: int, n3: int) -> sparse.csr_matrix:
    """7-point Laplacian on an ``n1 × n2 × n3`` grid (Dirichlet)."""
    if min(n1, n2, n3) < 1:
        raise ValueError("grid dims must be >= 1")

    def lap1d(n):
        return sparse.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")

    I1, I2, I3 = (sparse.identity(n, format="csr") for n in (n1, n2, n3))
    A = (
        sparse.kron(sparse.kron(lap1d(n1), I2), I3)
        + sparse.kron(sparse.kron(I1, lap1d(n2)), I3)
        + sparse.kron(sparse.kron(I1, I2), lap1d(n3))
    )
    return sparse.csr_matrix(A)


def strength_graph(
    A: sparse.csr_matrix, theta: float, max_row_sum: float = 1.0
) -> sparse.csr_matrix:
    """Classical strength of connection.

    ``j`` strongly influences ``i`` iff ``-a_ij ≥ θ · max_k(-a_ik)``.  Rows
    whose off-diagonal mass is below ``(1 − max_row_sum)`` of the diagonal
    (nearly diagonally dominant) are treated as having no strong
    connections, mirroring BoomerAMG's ``max_row_sum`` filter.
    """
    A = sparse.csr_matrix(A)
    n = A.shape[0]
    indptr, indices, data = A.indptr, A.indices, A.data
    s_rows, s_cols = [], []
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        off = cols != i
        if not np.any(off):
            continue
        neg = -vals[off]
        m = neg.max()
        if m <= 0:
            continue
        diag = vals[~off].sum() if np.any(~off) else 0.0
        row_sum = np.abs(vals[off]).sum()
        if diag != 0 and row_sum / abs(diag) < (1.0 - max_row_sum):
            continue
        strong = cols[off][neg >= theta * m]
        s_rows.extend([i] * strong.shape[0])
        s_cols.extend(strong.tolist())
    S = sparse.coo_matrix(
        (np.ones(len(s_rows)), (s_rows, s_cols)), shape=(n, n)
    ).tocsr()
    return S


def _rs_coarsen(S: sparse.csr_matrix, rng: np.random.Generator) -> np.ndarray:
    """Ruge–Stüben first pass: greedy by transpose-strong measure."""
    n = S.shape[0]
    ST = S.T.tocsr()
    measure = np.diff(ST.indptr).astype(float)
    state = np.zeros(n, dtype=np.int8)  # 0 undecided, 1 C, -1 F
    order = np.argsort(-(measure + rng.random(n)), kind="stable")
    import heapq

    heap = [(-measure[i], i) for i in range(n)]
    heapq.heapify(heap)
    del order
    while heap:
        negm, i = heapq.heappop(heap)
        if state[i] != 0 or -negm != measure[i]:
            continue
        state[i] = 1  # C-point
        # strong dependents of i become F; their influences gain measure
        for j in ST.indices[ST.indptr[i] : ST.indptr[i + 1]]:
            if state[j] == 0:
                state[j] = -1
                for k in S.indices[S.indptr[j] : S.indptr[j + 1]]:
                    if state[k] == 0:
                        measure[k] += 1
                        heapq.heappush(heap, (-measure[k], k))
    state[state == 0] = 1  # isolated leftovers become C
    return state == 1


def _pmis_coarsen(S: sparse.csr_matrix, rng: np.random.Generator) -> np.ndarray:
    """PMIS: independent set on the symmetrized strength graph."""
    n = S.shape[0]
    G = ((S + S.T) > 0).astype(np.int8).tocsr()
    measure = np.diff(S.T.tocsr().indptr).astype(float) + rng.random(n)
    state = np.zeros(n, dtype=np.int8)
    # isolated points become C immediately
    state[np.diff(G.indptr) == 0] = 1
    while np.any(state == 0):
        undecided = np.where(state == 0)[0]
        new_c = []
        for i in undecided:
            nbrs = G.indices[G.indptr[i] : G.indptr[i + 1]]
            live = nbrs[state[nbrs] >= 0]
            live = live[state[live] != -1]
            if np.all(measure[i] > measure[live[live != i]]) if live.size else True:
                new_c.append(i)
        if not new_c:  # numerical tie fallback
            new_c = [undecided[int(np.argmax(measure[undecided]))]]
        for i in new_c:
            state[i] = 1
            nbrs = G.indices[G.indptr[i] : G.indptr[i + 1]]
            state[nbrs[state[nbrs] == 0]] = -1
    return state == 1


def coarsen(
    S: sparse.csr_matrix,
    method: str,
    rng: Optional[np.random.Generator] = None,
    aggressive: bool = False,
) -> np.ndarray:
    """C/F splitting; returns a boolean C-point mask.

    ``aggressive`` applies a second splitting pass *on the C-points*
    (BoomerAMG's aggressive-coarsening levels), roughly squaring the
    coarsening ratio.
    """
    rng = rng or np.random.default_rng(0)
    if method == "RS":
        cmask = _rs_coarsen(S, rng)
    elif method == "PMIS":
        cmask = _pmis_coarsen(S, rng)
    elif method == "HMIS":
        # PMIS on top of an RS pass: RS decides candidates, PMIS thins them
        rs = _rs_coarsen(S, rng)
        cand = np.where(rs)[0]
        if cand.size:
            sub = S[cand][:, cand].tocsr()
            keep = _pmis_coarsen(sub, rng)
            cmask = np.zeros(S.shape[0], dtype=bool)
            cmask[cand[keep]] = True
        else:
            cmask = rs
    else:
        raise ValueError(f"unknown coarsening {method!r}; know {COARSEN_CHOICES}")
    if aggressive and cmask.sum() > 8:
        cidx = np.where(cmask)[0]
        S2 = S[cidx][:, cidx].tocsr()
        inner = coarsen(S2, "PMIS", rng, aggressive=False)
        out = np.zeros_like(cmask)
        out[cidx[inner]] = True
        cmask = out
    if not cmask.any():  # never return an empty coarse grid
        cmask[0] = True
    return cmask


def interpolation(
    A: sparse.csr_matrix,
    S: sparse.csr_matrix,
    cmask: np.ndarray,
    method: str,
    trunc_factor: float = 0.0,
    p_max_elmts: int = 0,
) -> sparse.csr_matrix:
    """Build the prolongation ``P`` (n × n_c) for a C/F splitting.

    ``trunc_factor`` drops entries below that fraction of the row max and
    ``p_max_elmts`` caps entries per row (0 = unlimited); rows are rescaled
    to preserve their sum, as BoomerAMG does.
    """
    if method not in INTERP_CHOICES:
        raise ValueError(f"unknown interpolation {method!r}; know {INTERP_CHOICES}")
    A = sparse.csr_matrix(A)
    n = A.shape[0]
    cidx = np.where(cmask)[0]
    cmap = -np.ones(n, dtype=np.int64)
    cmap[cidx] = np.arange(cidx.shape[0])
    rows, cols, vals = [], [], []
    Sr = S.tocsr()
    for i in range(n):
        if cmask[i]:
            rows.append(i)
            cols.append(cmap[i])
            vals.append(1.0)
            continue
        lo, hi = A.indptr[i], A.indptr[i + 1]
        acols, avals = A.indices[lo:hi], A.data[lo:hi]
        diag = avals[acols == i].sum() or 1.0
        strong = set(Sr.indices[Sr.indptr[i] : Sr.indptr[i + 1]].tolist())
        c_strong = [j for j in strong if cmask[j]]
        if not c_strong:
            continue  # F-point with no coarse influence: injected as zero row
        if method == "one_point":
            # strongest coarse neighbour, weight 1
            best, bv = c_strong[0], 0.0
            for j, v in zip(acols, avals):
                if j in c_strong and -v > bv:
                    best, bv = j, -v
            rows.append(i)
            cols.append(cmap[best])
            vals.append(1.0)
            continue
        a_row = dict(zip(acols.tolist(), avals.tolist()))
        if method == "classical":
            # distribute strong F-neighbours over shared coarse points
            a_eff = dict(a_row)
            for k in strong:
                if cmask[k] or k == i:
                    continue
                a_ik = a_row.get(k, 0.0)
                klo, khi = A.indptr[k], A.indptr[k + 1]
                kcols, kvals = A.indices[klo:khi], A.data[klo:khi]
                shared = [(j, v) for j, v in zip(kcols, kvals) if cmap[j] >= 0 and j in c_strong]
                denom = sum(v for _, v in shared)
                if denom == 0.0 or not shared:
                    a_eff[i] = a_eff.get(i, 0.0) + a_ik  # lump into diagonal
                else:
                    for j, v in shared:
                        a_eff[j] = a_eff.get(j, 0.0) + a_ik * v / denom
                a_eff.pop(k, None)
            a_row = a_eff
            diag = a_row.get(i, diag)
        total = sum(v for j, v in a_row.items() if j != i)
        c_sum = sum(a_row.get(j, 0.0) for j in c_strong)
        if c_sum == 0.0 or diag == 0.0:
            continue
        scale = total / c_sum
        w = {j: -scale * a_row.get(j, 0.0) / diag for j in c_strong}
        # truncation + max-elements cap, then rescale to preserve row sum
        wmax = max(abs(v) for v in w.values()) if w else 0.0
        kept = {j: v for j, v in w.items() if abs(v) >= trunc_factor * wmax}
        if p_max_elmts and len(kept) > p_max_elmts:
            order = sorted(kept, key=lambda j: -abs(kept[j]))[: int(p_max_elmts)]
            kept = {j: kept[j] for j in order}
        if not kept:
            continue
        ssum = sum(w.values())
        ksum = sum(kept.values())
        rescale = ssum / ksum if ksum != 0 else 1.0
        for j, v in kept.items():
            rows.append(i)
            cols.append(cmap[j])
            vals.append(v * rescale)
    P = sparse.coo_matrix((vals, (rows, cols)), shape=(n, cidx.shape[0])).tocsr()
    return P


@dataclasses.dataclass
class Level:
    """One multigrid level: operator, prolongation to it, and smoother data."""

    A: sparse.csr_matrix
    P: Optional[sparse.csr_matrix]  # None on the coarsest level
    diag: np.ndarray
    l1_diag: np.ndarray


class AMGHierarchy:
    """A built AMG hierarchy with V-cycle application.

    Parameters
    ----------
    levels:
        Fine-to-coarse :class:`Level` list.
    relax_type, relax_weight, outer_weight, sweeps:
        Smoother configuration shared by all levels.
    cycle_type:
        ``"V"`` (default) or ``"W"`` — W-cycles recurse twice per level,
        trading extra coarse-grid work for faster convergence on hard
        problems (a real BoomerAMG option).
    """

    def __init__(
        self,
        levels: List[Level],
        relax_type: str = "jacobi",
        relax_weight: float = 0.8,
        outer_weight: float = 1.0,
        sweeps: int = 1,
        cycle_type: str = "V",
    ):
        if not levels:
            raise ValueError("empty hierarchy")
        if relax_type not in RELAX_CHOICES:
            raise ValueError(f"unknown relax_type {relax_type!r}; know {RELAX_CHOICES}")
        if cycle_type not in ("V", "W"):
            raise ValueError(f"cycle_type must be 'V' or 'W', got {cycle_type!r}")
        self.levels = levels
        self.relax_type = relax_type
        self.relax_weight = float(relax_weight)
        self.outer_weight = float(outer_weight)
        self.sweeps = max(1, int(sweeps))
        self.cycle_type = cycle_type
        Ac = levels[-1].A.tocsc()
        # sparse LU when the coarse grid is healthy; dense pseudo-inverse as
        # the fallback for singular corner cases (e.g. all-weak strength)
        try:
            from scipy.sparse.linalg import splu

            lu = splu(Ac + 1e-12 * sparse.identity(Ac.shape[0], format="csc"))
            self._coarse_solve = lu.solve
        except Exception:
            pinv = np.linalg.pinv(Ac.toarray())
            self._coarse_solve = lambda b: pinv @ b

    # -- complexities (the standard AMG quality metrics) -----------------
    @property
    def n_levels(self) -> int:
        """Number of levels in the hierarchy (fine grid included)."""
        return len(self.levels)

    @property
    def grid_complexity(self) -> float:
        """Σ level sizes / fine size."""
        n0 = self.levels[0].A.shape[0]
        return sum(lv.A.shape[0] for lv in self.levels) / max(n0, 1)

    @property
    def operator_complexity(self) -> float:
        """Σ level nnz / fine nnz — the work multiplier per cycle."""
        nnz0 = self.levels[0].A.nnz
        return sum(lv.A.nnz for lv in self.levels) / max(nnz0, 1)

    # -- smoothing ---------------------------------------------------------
    def _smooth(self, lv: Level, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        A, w = lv.A, self.relax_weight
        for _ in range(self.sweeps):
            if self.relax_type == "jacobi":
                x = x + w * (b - A @ x) / lv.diag
            elif self.relax_type == "l1_jacobi":
                x = x + w * (b - A @ x) / lv.l1_diag
            elif self.relax_type in ("gauss_seidel", "sor"):
                omega = w if self.relax_type == "sor" else 1.0
                L = sparse.tril(A, format="csr")
                # (D/ω + L_strict) x_new = b − U x  with standard SOR split
                M = sparse.tril(A, k=-1, format="csr") + sparse.diags(lv.diag / omega)
                r = b - A @ x
                dx = spsolve_triangular(M.tocsr(), r, lower=True)
                x = x + self.outer_weight * dx
                del L
        return x

    def vcycle(self, b: np.ndarray, level: int = 0) -> np.ndarray:
        """One V- or W-(sweeps, sweeps) cycle for ``A x = b``, zero guess."""
        lv = self.levels[level]
        if level == self.n_levels - 1:
            return np.asarray(self._coarse_solve(b), dtype=float)
        x = self._smooth(lv, np.zeros_like(b), b)
        recursions = 2 if self.cycle_type == "W" else 1
        for _ in range(recursions):
            r = b - lv.A @ x
            rc = lv.P.T @ r
            xc = self.vcycle(rc, level + 1)
            x = x + lv.P @ xc
        return self._smooth(lv, x, b)

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Preconditioner interface for GMRES: apply one V-cycle."""
        return self.vcycle(np.asarray(b, dtype=float))


def build_hierarchy(
    A: sparse.csr_matrix,
    strong_threshold: float = 0.25,
    max_row_sum: float = 0.9,
    coarsen_type: str = "RS",
    interp_type: str = "classical",
    trunc_factor: float = 0.0,
    p_max_elmts: int = 4,
    agg_num_levels: int = 0,
    relax_type: str = "jacobi",
    relax_weight: float = 0.8,
    outer_weight: float = 1.0,
    sweeps: int = 1,
    cycle_type: str = "V",
    max_levels: int = 12,
    coarse_size: int = 40,
    seed: int = 0,
) -> AMGHierarchy:
    """Set up a BoomerAMG-like hierarchy with the 10 solver parameters.

    Coarsening stops at ``coarse_size`` unknowns or when it stagnates.
    """
    rng = np.random.default_rng(seed)
    A = sparse.csr_matrix(A).astype(float)
    levels: List[Level] = []
    for lvl in range(max_levels):
        diag = A.diagonal().copy()
        diag[diag == 0] = 1.0
        l1 = np.asarray(np.abs(A).sum(axis=1)).ravel()
        l1[l1 == 0] = 1.0
        if A.shape[0] <= coarse_size or lvl == max_levels - 1:
            levels.append(Level(A=A, P=None, diag=diag, l1_diag=l1))
            break
        S = strength_graph(A, strong_threshold, max_row_sum)
        cmask = coarsen(S, coarsen_type, rng, aggressive=lvl < agg_num_levels)
        if cmask.sum() >= A.shape[0]:  # no coarsening achieved: stop here
            levels.append(Level(A=A, P=None, diag=diag, l1_diag=l1))
            break
        P = interpolation(A, S, cmask, interp_type, trunc_factor, p_max_elmts)
        levels.append(Level(A=A, P=P, diag=diag, l1_diag=l1))
        A = sparse.csr_matrix(P.T @ A @ P)
        A.eliminate_zeros()
        if A.shape[0] == 0:
            break
    else:  # pragma: no cover - loop always breaks
        pass
    if levels[-1].P is not None:
        last = levels[-1]
        levels[-1] = Level(A=last.A, P=None, diag=last.diag, l1_diag=last.l1_diag)
    return AMGHierarchy(
        levels,
        relax_type=relax_type,
        relax_weight=relax_weight,
        outer_weight=outer_weight,
        sweeps=sweeps,
        cycle_type=cycle_type,
    )
