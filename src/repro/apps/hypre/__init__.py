"""hypre substrate: from-scratch classical AMG, restarted GMRES, and the
12-parameter BoomerAMG+GMRES tuning application."""

from .amg import (
    AMGHierarchy,
    COARSEN_CHOICES,
    INTERP_CHOICES,
    Level,
    RELAX_CHOICES,
    build_hierarchy,
    coarsen,
    interpolation,
    poisson3d,
    strength_graph,
)
from .gmres import GMRESResult, gmres
from .simulator import HypreApp

__all__ = [
    "AMGHierarchy",
    "COARSEN_CHOICES",
    "GMRESResult",
    "HypreApp",
    "INTERP_CHOICES",
    "Level",
    "RELAX_CHOICES",
    "build_hierarchy",
    "coarsen",
    "gmres",
    "interpolation",
    "poisson3d",
    "strength_graph",
]
