"""hypre (BoomerAMG-preconditioned GMRES) tuning application.

Sec. 6.2: a task is a structured 3-D Poisson grid ``t = [n1, n2, n3]``; the
solver runs on a 3-D process grid ``p = p1 × p2 × p3``, and "in addition to
the process grid, we consider a total of 12 tuning parameters of integer and
real types, including choice of coarsening algorithms, smoothers and
interpolation operators, and their corresponding parameters".

The 12 parameters here:

====================  ===========  ===============================================
parameter             type         meaning (BoomerAMG analogue)
====================  ===========  ===============================================
``p1``, ``p2``        integer      process grid dims (``p3 = ⌊p/(p1·p2)⌋``)
``strong_threshold``  real         strength-of-connection θ
``max_row_sum``       real         diagonal-dominance cutoff
``coarsen_type``      categorical  RS / PMIS / HMIS
``interp_type``       categorical  direct / classical / one_point
``trunc_factor``      real         interpolation truncation
``P_max_elmts``       integer      interpolation max elements per row
``agg_num_levels``    integer      aggressive-coarsening levels
``relax_type``        categorical  Jacobi / GS / SOR / ℓ1-Jacobi
``relax_weight``      real         smoother weight ω
``smooth_sweeps``     integer      pre/post sweeps per level
====================  ===========  ===============================================

The *convergence* part of the objective is measured by really running our
AMG + GMRES on a (downscaled) grid; the *cost* part prices setup plus
``iterations`` cycles at the full task size on the machine model: AMG
cycles are memory-bandwidth bound (operator complexity × fine nnz words)
with halo exchanges on the 3-D process grid per level, so a bad process
grid or an operator-complexity blowup costs real simulated time even when
iteration counts look fine.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from ...core.params import Categorical, Integer, Real
from ...core.space import Space
from ..base import Application, noise_rng
from .amg import COARSEN_CHOICES, INTERP_CHOICES, RELAX_CHOICES, build_hierarchy, poisson3d
from .gmres import gmres

__all__ = ["HypreApp"]


class HypreApp(Application):
    """AMG-preconditioned GMRES runtime simulator on 3-D Poisson tasks.

    Parameters
    ----------
    grid_range:
        Bounds of each task grid dimension (paper: 10 ≤ n_i ≤ 100).
    solve_cap:
        Maximum unknowns actually solved; larger tasks are proportionally
        downscaled for the convergence measurement (DESIGN.md substitution).
    rtol:
        GMRES relative tolerance.
    maxiter:
        GMRES iteration cap; non-converged runs are charged the cap plus a
        divergence penalty.
    noise:
        σ of the lognormal measurement noise.
    """

    name = "hypre"
    n_objectives = 1
    objective_names = ("runtime",)

    def __init__(
        self,
        grid_range: Tuple[int, int] = (10, 100),
        solve_cap: int = 2744,  # 14³
        rtol: float = 1e-8,
        maxiter: int = 100,
        noise: float = 0.03,
        **kw,
    ):
        super().__init__(**kw)
        self.grid_range = (int(grid_range[0]), int(grid_range[1]))
        self.solve_cap = int(solve_cap)
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)
        self.noise = float(noise)
        self.p_max = self.machine.total_cores
        self._solve_cache: Dict[Tuple, Tuple[int, float, int, bool]] = {}

    # -- spaces ----------------------------------------------------------
    def task_space(self) -> Space:
        lo, hi = self.grid_range
        return Space([Integer("n1", lo, hi), Integer("n2", lo, hi), Integer("n3", lo, hi)])

    def tuning_space(self) -> Space:
        p_total = self.p_max

        def grid_fits(p1, p2):
            # the 3-D process grid p1 × p2 × p3 must fit the allocation
            return p1 * p2 <= p_total

        return Space(
            [
                Integer("p1", 1, self.p_max, transform="log"),
                Integer("p2", 1, self.p_max, transform="log"),
                Real("strong_threshold", 0.05, 0.9),
                Real("max_row_sum", 0.5, 1.0),
                Categorical("coarsen_type", list(COARSEN_CHOICES)),
                Categorical("interp_type", list(INTERP_CHOICES)),
                Real("trunc_factor", 0.0, 0.5),
                Integer("P_max_elmts", 2, 12),
                Integer("agg_num_levels", 0, 3),
                Categorical("relax_type", list(RELAX_CHOICES)),
                Real("relax_weight", 0.3, 1.3),
                Integer("smooth_sweeps", 1, 3),
            ],
            constraints=[grid_fits],
        )

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        """BoomerAMG-ish defaults (hypre's documented out-of-the-box values)."""
        p1 = max(1, int(round(self.p_max ** (1.0 / 3.0))))
        return {
            "p1": p1,
            "p2": p1,
            "strong_threshold": 0.25,
            "max_row_sum": 0.9,
            "coarsen_type": "PMIS",
            "interp_type": "classical",
            "trunc_factor": 0.0,
            "P_max_elmts": 4,
            "agg_num_levels": 0,
            "relax_type": "gauss_seidel",
            "relax_weight": 1.0,
            "smooth_sweeps": 1,
        }

    # -- objective -----------------------------------------------------------
    def _scaled_dims(self, task: Mapping[str, Any]) -> Tuple[int, int, int]:
        dims = np.array([int(task["n1"]), int(task["n2"]), int(task["n3"])], dtype=float)
        total = float(np.prod(dims))
        if total <= self.solve_cap:
            return tuple(int(d) for d in dims)
        f = (self.solve_cap / total) ** (1.0 / 3.0)
        return tuple(max(4, int(round(d * f))) for d in dims)

    def _solve_key(self, dims: Tuple[int, int, int], config: Mapping[str, Any]) -> Tuple:
        solver_keys = (
            "strong_threshold",
            "max_row_sum",
            "coarsen_type",
            "interp_type",
            "trunc_factor",
            "P_max_elmts",
            "agg_num_levels",
            "relax_type",
            "relax_weight",
            "smooth_sweeps",
        )
        return dims + tuple(
            round(config[k], 4) if isinstance(config[k], float) else config[k]
            for k in solver_keys
        )

    def _measure(self, dims: Tuple[int, int, int], config: Mapping[str, Any]):
        """Run the real AMG+GMRES; returns (iters, op_complexity, levels, ok)."""
        key = self._solve_key(dims, config)
        if key not in self._solve_cache:
            A = poisson3d(*dims)
            try:
                H = build_hierarchy(
                    A,
                    strong_threshold=float(config["strong_threshold"]),
                    max_row_sum=float(config["max_row_sum"]),
                    coarsen_type=config["coarsen_type"],
                    interp_type=config["interp_type"],
                    trunc_factor=float(config["trunc_factor"]),
                    p_max_elmts=int(config["P_max_elmts"]),
                    agg_num_levels=int(config["agg_num_levels"]),
                    relax_type=config["relax_type"],
                    relax_weight=float(config["relax_weight"]),
                    outer_weight=1.0,
                    sweeps=int(config["smooth_sweeps"]),
                    seed=self.seed,
                )
                rng = np.random.default_rng(self.seed)
                b = rng.normal(size=A.shape[0])
                res = gmres(A, b, M=H, rtol=self.rtol, maxiter=self.maxiter)
                self._solve_cache[key] = (
                    int(res.iterations),
                    float(H.operator_complexity),
                    int(H.n_levels),
                    bool(res.converged),
                )
            except Exception:
                self._solve_cache[key] = (self.maxiter, 4.0, 2, False)
        return self._solve_cache[key]

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        dims = self._scaled_dims(task)
        iters, opcx, n_levels, converged = self._measure(dims, config)

        n1, n2, n3 = int(task["n1"]), int(task["n2"]), int(task["n3"])
        nnz = 7.0 * n1 * n2 * n3
        mach = self.machine
        p1, p2 = int(config["p1"]), int(config["p2"])
        p3 = max(1, self.p_max // (p1 * p2))
        p_used = p1 * p2 * p3
        sweeps = int(config["smooth_sweeps"])

        # per-cycle compute: smoothing + residual + transfers over all levels,
        # memory-bandwidth bound (12 bytes per nonzero touched per sweep)
        work_bytes = 12.0 * nnz * opcx * (2 * sweeps + 1)
        t_cycle_comp = work_bytes / (mach.mem_bandwidth * mach.nodes) * (
            self.p_max / max(p_used, 1)
        ) ** 0.5  # idle processes waste bandwidth share

        # halo exchange per level: 6 faces; the local subdomain of the task
        # grid on the p1×p2×p3 grid; coarse levels shrink geometrically
        face = (n1 / p1) * (n2 / p2) + (n1 / p1) * (n3 / p3) + (n2 / p2) * (n3 / p3)
        imbalance = self._grid_imbalance(n1, n2, n3, p1, p2, p3)
        t_cycle_comm = n_levels * (
            6.0 * mach.latency * (2 * sweeps + 1) + 2.0 * 8.0 * face * mach.inv_bandwidth
        )
        t_cycle = (t_cycle_comp + t_cycle_comm) * imbalance

        # GMRES adds a matvec + orthogonalization per iteration
        t_iter = t_cycle + 16.0 * nnz / (mach.mem_bandwidth * mach.nodes)
        t_setup = 3.0 * opcx * 40.0 * nnz / (mach.flops_per_core * p_used)

        penalty = 1.0 if converged else 3.0
        base = (t_setup + iters * t_iter) * penalty + 1e-4
        rng = noise_rng(self.seed + repeat, task, config)
        return float(base * math.exp(rng.normal(0.0, self.noise)))

    @staticmethod
    def _grid_imbalance(n1, n2, n3, p1, p2, p3) -> float:
        """Penalty when the process grid splits a dimension unevenly."""
        r = 1.0
        for n, p in ((n1, p1), (n2, p2), (n3, p3)):
            local = math.ceil(n / p)
            r *= (local * p) / n
        return r**0.5
