"""Restarted GMRES, from scratch.

The Krylov solver wrapped around the AMG preconditioner in the hypre
experiments.  Right-preconditioned GMRES(m) with modified Gram–Schmidt
Arnoldi and Givens-rotation least squares — the same algorithmic shape as
hypre's GMRES driver.  Returns the iteration count the simulator prices.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np
from scipy import sparse

__all__ = ["GMRESResult", "gmres"]


@dataclasses.dataclass
class GMRESResult:
    """Outcome of a GMRES solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Total inner iterations (matvec + preconditioner applications).
    residual_norm:
        Final relative residual ``‖b − Ax‖ / ‖b‖``.
    converged:
        Whether the tolerance was met within the iteration cap.
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def gmres(
    A: sparse.spmatrix,
    b: np.ndarray,
    M: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    rtol: float = 1e-8,
    restart: int = 30,
    maxiter: int = 200,
    x0: Optional[np.ndarray] = None,
) -> GMRESResult:
    """Right-preconditioned restarted GMRES for ``A x = b``.

    Parameters
    ----------
    A:
        Sparse system matrix.
    b:
        Right-hand side.
    M:
        Preconditioner application ``z = M(v)`` (e.g. one AMG V-cycle);
        identity when None.
    rtol:
        Relative residual tolerance.
    restart:
        Krylov dimension m of GMRES(m).
    maxiter:
        Cap on total inner iterations.
    x0:
        Initial guess (zero by default).
    """
    A = sparse.csr_matrix(A)
    b = np.asarray(b, dtype=float).ravel()
    n = b.shape[0]
    if A.shape != (n, n):
        raise ValueError("A/b dimension mismatch")
    M = M or (lambda v: v)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return GMRESResult(x=np.zeros(n), iterations=0, residual_norm=0.0, converged=True)

    total_iters = 0
    while total_iters < maxiter:
        r = b - A @ x
        beta = np.linalg.norm(r)
        if beta / bnorm <= rtol:
            return GMRESResult(x, total_iters, beta / bnorm, True)
        m = min(restart, maxiter - total_iters)
        V = np.zeros((n, m + 1))
        Z = np.zeros((n, m))
        H = np.zeros((m + 1, m))
        cs, sn = np.zeros(m), np.zeros(m)
        g = np.zeros(m + 1)
        V[:, 0] = r / beta
        g[0] = beta
        k_done = 0
        for k in range(m):
            Z[:, k] = M(V[:, k])
            w = A @ Z[:, k]
            for i in range(k + 1):  # modified Gram-Schmidt
                H[i, k] = w @ V[:, i]
                w -= H[i, k] * V[:, i]
            H[k + 1, k] = np.linalg.norm(w)
            if H[k + 1, k] > 1e-14:
                V[:, k + 1] = w / H[k + 1, k]
            # apply stored Givens rotations to the new column
            for i in range(k):
                t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = t
            denom = np.hypot(H[k, k], H[k + 1, k])
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_done = k + 1
            if abs(g[k + 1]) / bnorm <= rtol or not np.isfinite(g[k + 1]):
                break
        # solve the small triangular system and update
        y = np.linalg.lstsq(H[:k_done, :k_done], g[:k_done], rcond=None)[0]
        x = x + Z[:, :k_done] @ y
        if not np.all(np.isfinite(x)):
            return GMRESResult(np.zeros(n), total_iters, np.inf, False)
    r = b - A @ x
    res = float(np.linalg.norm(r) / bnorm)
    return GMRESResult(x, total_iters, res, res <= rtol)
