"""2-D block-cyclic distribution arithmetic (ScaLAPACK's data layout).

"In ScaLAPACK, a dense matrix is partitioned into blocks.  The processes
are arranged in a 2D process grid.  The matrix blocks are distributed in the
2D process grid in a block-cyclic fashion in both dimensions." (Sec. 6.2)

This module implements that layout exactly — the NUMROC-style local extent
computation, global↔local index maps, and per-process work accounting for a
right-looking panel factorization.  The QR/SYEVX simulators use
:func:`factorization_imbalance` so the grid/block-size penalty is *computed
from the actual distribution* rather than a smooth heuristic: the
distinctive ScaLAPACK effects (tiny trailing matrices concentrating on few
processes, block sizes commensurate with the grid) emerge naturally.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = [
    "numroc",
    "owner",
    "local_index",
    "global_index",
    "local_loads",
    "factorization_imbalance",
]


def numroc(n: int, nb: int, iproc: int, nprocs: int, isrcproc: int = 0) -> int:
    """Number of rows/columns of a distributed dimension owned by a process.

    A faithful port of ScaLAPACK's NUMROC: dimension ``n``, block size
    ``nb``, owning process coordinate ``iproc`` out of ``nprocs``, with the
    first block on ``isrcproc``.
    """
    if n < 0 or nb < 1 or nprocs < 1 or not 0 <= iproc < nprocs:
        raise ValueError("bad NUMROC arguments")
    mydist = (nprocs + iproc - isrcproc) % nprocs
    nblocks = n // nb
    count = (nblocks // nprocs) * nb
    extra = nblocks % nprocs
    if mydist < extra:
        count += nb
    elif mydist == extra:
        count += n % nb
    return count


def owner(global_idx: int, nb: int, nprocs: int, isrcproc: int = 0) -> int:
    """Process coordinate owning a global row/column index (0-based)."""
    if global_idx < 0:
        raise ValueError("negative index")
    return ((global_idx // nb) + isrcproc) % nprocs


def local_index(global_idx: int, nb: int, nprocs: int) -> int:
    """Local row/column index of a global index on its owner."""
    block, offset = divmod(global_idx, nb)
    return (block // nprocs) * nb + offset


def global_index(local_idx: int, nb: int, iproc: int, nprocs: int) -> int:
    """Inverse of :func:`local_index` for a given owner coordinate."""
    block, offset = divmod(local_idx, nb)
    return (block * nprocs + iproc) * nb + offset


def local_loads(m: int, n: int, mb: int, nb: int, p_r: int, p_c: int) -> np.ndarray:
    """Matrix of local element counts per process, shape ``(p_r, p_c)``."""
    rows = np.array([numroc(m, mb, i, p_r) for i in range(p_r)])
    cols = np.array([numroc(n, nb, j, p_c) for j in range(p_c)])
    return np.outer(rows, cols)


@functools.lru_cache(maxsize=65536)
def factorization_imbalance(
    m: int, n: int, b: int, p_r: int, p_c: int, steps: int = 16
) -> float:
    """Load-imbalance factor of a right-looking panel factorization.

    A blocked factorization sweeps panels ``k = 0, b, 2b, …``; at each step
    the *trailing submatrix* ``A[k+b:, k+b:]`` receives the rank-``b``
    update, which dominates the flops.  The per-step imbalance is the ratio
    of the maximum to the mean per-process share of that trailing matrix
    under the block-cyclic layout; the returned factor is the
    flops-weighted average over ``steps`` sampled panel positions.

    Always >= 1; equals ~1 for well-chosen ``b`` on large matrices and grows
    sharply when the trailing matrix shrinks to a few blocks (large ``b`` or
    elongated grids) — the behaviour the autotuner must discover.
    """
    if min(m, n, b, p_r, p_c) < 1:
        raise ValueError("all arguments must be >= 1")
    n_panels = max(1, n // b)
    sample = np.unique(np.linspace(0, n_panels - 1, min(steps, n_panels)).astype(int))
    num, den = 0.0, 0.0
    for k in sample:
        off = (k + 1) * b
        tm, tn = m - off, n - off
        if tm <= 0 or tn <= 0:
            break
        # owners rotate with the panel index under block-cyclic wrapping
        loads = local_loads(tm, tn, b, b, p_r, p_c)
        mean = loads.mean()
        if mean <= 0:
            continue
        ratio = loads.max() / mean
        weight = float(tm) * float(tn)  # ∝ update flops at this step
        num += ratio * weight
        den += weight
    return float(num / den) if den > 0 else 1.0
