"""PDSYEVX — dense symmetric eigensolver simulator (ScaLAPACK).

Computes eigenvalues/eigenvectors of a real symmetric ``m × m`` matrix.
Per Sec. 6.2 the task enforces ``m = n`` and the blocks ``b_r = b_c``, so
``t = [m]`` and ``x = [b, p, p_r]`` with the ``p_r ≤ p`` grid constraint.

The runtime model reflects PDSYEVX's structure: Householder
*tridiagonalization* (``4m³/3`` flops, roughly half of them BLAS-2
matrix-vector products that run at memory bandwidth, which is why the
routine is notoriously less block-friendly than QR), bisection + inverse
iteration on the tridiagonal (``O(m²)``), and the BLAS-3
*back-transformation* of eigenvectors (``2m³``).  Communication follows the
same panel-broadcast pattern as QR.  The best runtime scales as ``O(m³)``,
matching the Fig. 5 (right) observation.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping

from ...core.params import Integer
from ...core.space import Space
from ..base import Application, noise_rng
from . import costs

__all__ = ["PDSYEVX"]


class PDSYEVX(Application):
    """ScaLAPACK symmetric eigenvalue runtime simulator.

    Parameters
    ----------
    m_max:
        Upper bound of the task range (paper: 3000 ≤ m ≤ 7000 on one node).
    noise:
        σ of the lognormal run-to-run noise.
    """

    name = "pdsyevx"
    n_objectives = 1
    objective_names = ("runtime",)

    def __init__(self, m_max: int = 8000, noise: float = 0.05, **kw):
        kw.setdefault("repeats", 3)
        super().__init__(**kw)
        self.m_max = int(m_max)
        self.noise = float(noise)
        self.p_max = self.machine.total_cores

    def task_space(self) -> Space:
        return Space([Integer("m", 256, self.m_max)])

    def tuning_space(self) -> Space:
        return Space(
            [
                Integer("b", 4, 256, transform="log"),
                Integer("p", 2, self.p_max, transform="log"),
                Integer("p_r", 1, self.p_max, transform="log"),
            ],
            constraints=["p_r <= p"],
        )

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        p = self.p_max
        return {"b": 32, "p": p, "p_r": max(1, int(math.sqrt(p)))}

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        m = int(task["m"])
        b, p, p_r = int(config["b"]), int(config["p"]), int(config["p_r"])
        p_c = costs.grid_cols(p, p_r)
        p_used = p_r * p_c
        nthreads = max(1, min(self.p_max // p, self.machine.cores_per_node))
        mach = self.machine

        # tridiagonalization: half BLAS-3 (symmetric update), half BLAS-2
        flops_tri = 4.0 / 3.0 * m**3 / p_used
        blas3_rate = (
            mach.flops_per_core
            * mach.blas_efficiency
            * nthreads
            * (b / (b + 16.0))
            / (1.0 + (b / 256.0) ** 1.5)
            / (1.0 + 0.03 * (nthreads - 1))
        )
        # BLAS-2 half runs at memory bandwidth shared by on-node processes
        procs_per_node = max(1, p_used // max(1, mach.nodes))
        bw_per_proc = mach.mem_bandwidth / procs_per_node * nthreads / max(
            1, mach.cores_per_node // procs_per_node
        )
        blas2_rate = max(bw_per_proc / 8.0, 1e6)  # one flop per word streamed
        t_tri = 0.5 * flops_tri / blas3_rate + 0.5 * flops_tri / blas2_rate

        # bisection + inverse iteration on the tridiagonal (sequential-ish)
        t_tridiag_solve = 40.0 * m * m / (mach.flops_per_core * nthreads) / p_c

        # eigenvector back-transformation: pure BLAS-3
        t_back = 2.0 * m**3 / p_used / blas3_rate

        # panel-broadcast communication, QR-like counts with n = m
        msgs = costs.qr_messages(m, p_used, p_r, b)
        words = costs.qr_volume(m, m, p_used, p_r, b)
        t_comm = msgs * mach.latency + 8.0 * words * mach.inv_bandwidth

        # imbalance from the actual block-cyclic layout of the m × m matrix
        from .blockcyclic import factorization_imbalance

        imbalance = factorization_imbalance(m, m, b, p_r, p_c)
        base = (t_tri + t_tridiag_solve + t_back) * imbalance + t_comm + 1e-4

        rng = noise_rng(self.seed + repeat, task, config)
        return float(base * math.exp(rng.normal(0.0, self.noise)))
