"""PDGEQRF — dense QR factorization simulator (ScaLAPACK).

The tuning setup follows Sec. 2 / 6.2 of the paper: task ``t = [m, n]``,
tuning parameters ``x = [b, p, p_r]`` with ``b = b_r = b_c`` (β = 3 per
Table 2; the cost formulas of Sec. 3.3 already assume square blocks),
``p_c = ⌊p / p_r⌋``, ``nthreads = ⌊p_max / p⌋`` BLAS threads per process,
and the constraint ``p_r ≤ p``.

The simulated runtime prices the Eq. (8)–(10) counts on the machine model
and layers on the *structured residual* a coarse model misses on real
hardware — the effects an autotuner actually has to discover:

* **block-size efficiency** — small blocks keep the panel factorization
  BLAS-2 bound; oversized blocks serialize the panel and hurt load balance;
* **grid-aspect imbalance** — the process grid should roughly match the
  matrix aspect ratio ``m/n``;
* **wasted processes** — only ``p_r · p_c ≤ p`` processes do work;
* **thread efficiency** — per-process BLAS threads scale sublinearly;
* seeded lognormal **run-to-run noise**, with best-of-``repeats`` selection
  as in the paper's measurement protocol.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping

from ...core.params import Integer
from ...core.perfmodel import LinearPerformanceModel
from ...core.space import Space
from ..base import Application, noise_rng
from . import costs

__all__ = ["PDGEQRF"]


class PDGEQRF(Application):
    """ScaLAPACK dense QR runtime simulator.

    Parameters
    ----------
    machine:
        Machine model (the paper uses 16–64 Cori Haswell nodes).
    mn_max:
        Upper bound of the ``m``/``n`` task ranges (paper: 20000–40000).
    noise:
        σ of the lognormal run-to-run noise (3 % default).
    """

    name = "pdgeqrf"
    n_objectives = 1
    objective_names = ("runtime",)

    def __init__(self, mn_max: int = 40000, noise: float = 0.03, **kw):
        kw.setdefault("repeats", 3)
        super().__init__(**kw)
        self.mn_max = int(mn_max)
        self.noise = float(noise)
        self.p_max = self.machine.total_cores

    # -- spaces -----------------------------------------------------------
    def task_space(self) -> Space:
        return Space(
            [
                Integer("m", 128, self.mn_max),
                Integer("n", 128, self.mn_max),
            ]
        )

    def tuning_space(self) -> Space:
        return Space(
            [
                Integer("b", 4, 256, transform="log"),
                Integer("p", 2, self.p_max, transform="log"),
                Integer("p_r", 1, self.p_max, transform="log"),
            ],
            constraints=["p_r <= p"],
        )

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        """ScaLAPACK-ish defaults: 64-block, all processes, near-square grid."""
        p = self.p_max
        return {"b": 64, "p": p, "p_r": max(1, int(math.sqrt(p)))}

    # -- simulator ---------------------------------------------------------
    def _efficiency(self, b: int, nthreads: int) -> float:
        """BLAS-3 efficiency as a function of block size and threads."""
        b = float(b)
        block_eff = (b / (b + 24.0)) / (1.0 + (b / 384.0) ** 1.5)
        thread_eff = 1.0 / (1.0 + 0.03 * (nthreads - 1))
        return block_eff * thread_eff

    def _imbalance(self, m: int, n: int, b: int, p_r: int, p_c: int) -> float:
        """Load imbalance computed from the actual block-cyclic layout."""
        from .blockcyclic import factorization_imbalance

        return factorization_imbalance(m, n, b, p_r, p_c)

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        m, n = int(task["m"]), int(task["n"])
        if m < n:
            m, n = n, m  # QR needs m >= n; ScaLAPACK factors the tall side
        b, p, p_r = int(config["b"]), int(config["p"]), int(config["p_r"])
        p_c = costs.grid_cols(p, p_r)
        p_used = p_r * p_c
        nthreads = max(1, min(self.p_max // p, self.machine.cores_per_node))

        flops = costs.qr_flops(m, n, p_used, p_r, b)
        msgs = costs.qr_messages(n, p_used, p_r, b)
        words = costs.qr_volume(m, n, p_used, p_r, b)

        core_rate = (
            self.machine.flops_per_core
            * self.machine.blas_efficiency
            * nthreads
            * self._efficiency(b, nthreads)
        )
        # panel factorizations serialize part of every step; the resulting
        # pipeline bubbles grow with the process count (calibrated so the
        # tuned 2048-core run lands near the paper's 3.6 TFLOPS)
        sync_overhead = 1.0 + 0.25 * math.log2(max(p_used, 2))
        t_comp = flops / core_rate * self._imbalance(m, n, b, p_r, p_c) * sync_overhead
        t_comm = msgs * self.machine.latency + words * 8.0 * self.machine.inv_bandwidth
        base = t_comp + t_comm + 1e-4  # launch overhead floor

        rng = noise_rng(self.seed + repeat, task, config)
        return float(base * math.exp(rng.normal(0.0, self.noise)))

    # -- coarse model (Sec. 3.3 / Fig. 4 right) ------------------------------
    def models(self) -> List[LinearPerformanceModel]:
        """Eq. (7) with fittable machine coefficients t_flop/t_msg/t_vol."""

        def c_flop(task, config):
            m, n = sorted((int(task["m"]), int(task["n"])), reverse=True)
            p_c = costs.grid_cols(int(config["p"]), int(config["p_r"]))
            return costs.qr_flops(m, n, int(config["p_r"]) * p_c, int(config["p_r"]), int(config["b"]))

        def c_msg(task, config):
            _, n = sorted((int(task["m"]), int(task["n"])), reverse=True)
            p_c = costs.grid_cols(int(config["p"]), int(config["p_r"]))
            return costs.qr_messages(n, int(config["p_r"]) * p_c, int(config["p_r"]), int(config["b"]))

        def c_vol(task, config):
            m, n = sorted((int(task["m"]), int(task["n"])), reverse=True)
            p_c = costs.grid_cols(int(config["p"]), int(config["p_r"]))
            return costs.qr_volume(m, n, int(config["p_r"]) * p_c, int(config["p_r"]), int(config["b"]))

        rate = self.machine.flops_per_core * self.machine.blas_efficiency
        return [
            LinearPerformanceModel(
                [c_flop, c_msg, c_vol],
                initial_coefficients=[1.0 / rate, self.machine.latency, 8.0 * self.machine.inv_bandwidth],
            )
        ]

    def flop_count(self, task: Mapping[str, Any]) -> float:
        """Total QR flops ``2n²(m − n/3)`` of a task (Fig. 5 sorts tasks by this)."""
        m, n = sorted((int(task["m"]), int(task["n"])), reverse=True)
        return 2.0 * n * n * (m - n / 3.0)
