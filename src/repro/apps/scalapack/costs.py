"""Communication-avoiding cost formulas for ScaLAPACK QR (Eqs. 8–10).

These are the counts from Demmel, Grigori, Hoemmen & Langou (2012) that the
paper plugs into its coarse performance model (Eq. 7):

.. math::

    \\tilde y(t, x) = C_{flop}\\,t_{flop} + C_{msg}\\,t_{msg} + C_{vol}\\,t_{vol}

with ``t = [m, n]`` and ``x = [p, p_r, b]`` (the paper assumes
``b_r = b_c = b`` in these formulas).  The same counts drive both the "true"
simulator (plus structured residuals the model misses) and the
:class:`~repro.core.perfmodel.LinearPerformanceModel` attached to the
tuning problem — mirroring how, on Cori, the analytical model approximates
the measured runtime.
"""

from __future__ import annotations

import math

__all__ = ["qr_flops", "qr_messages", "qr_volume", "grid_cols", "syevx_flops"]


def grid_cols(p: int, p_r: int) -> int:
    """Number of column processes ``p_c = floor(p / p_r)`` (Sec. 2)."""
    return max(1, int(p) // max(1, int(p_r)))


def qr_flops(m: int, n: int, p: int, p_r: int, b: int) -> float:
    """Eq. (8): floating-point operations per process for PDGEQRF."""
    m, n, p, b = float(m), float(n), float(p), float(b)
    p_c = float(grid_cols(int(p), int(p_r)))
    p_r = float(max(1, int(p_r)))
    return (
        2.0 * n * n * (3.0 * m - n) / (2.0 * p)
        + b * n * n / (2.0 * p_c)
        + 3.0 * b * n * (2.0 * m - n) / (2.0 * p_r)
        + b * b * n / (3.0 * p_r)
    )


def qr_messages(n: int, p: int, p_r: int, b: int) -> float:
    """Eq. (9): message count along the critical path."""
    n, b = float(n), float(max(1, b))
    p_r = max(1, int(p_r))
    p_c = grid_cols(int(p), p_r)
    log_pr = math.log2(p_r) if p_r > 1 else 0.0
    log_pc = math.log2(p_c) if p_c > 1 else 0.0
    return 3.0 * n * log_pr + (2.0 * n / b) * log_pc


def qr_volume(m: int, n: int, p: int, p_r: int, b: int) -> float:
    """Eq. (10): words communicated along the critical path."""
    m, n, b = float(m), float(n), float(b)
    p_r = max(1, int(p_r))
    p_c = grid_cols(int(p), p_r)
    log_pr = math.log2(p_r) if p_r > 1 else 0.0
    log_pc = math.log2(p_c) if p_c > 1 else 0.0
    return (n * n / p_c + b * n) * log_pr + ((m * n - n * n / 2.0) / p_r + b * n / 2.0) * log_pc


def syevx_flops(m: int, p: int) -> float:
    """Dominant flops per process for PDSYEVX on an ``m × m`` matrix.

    Householder tridiagonalization costs ``4m³/3`` flops and back-
    transformation of eigenvectors ``2m³``; bisection/inverse iteration on
    the tridiagonal is lower order.  (No Eq. in the paper — PDSYEVX uses no
    coarse model there — but the simulator needs the count.)
    """
    m, p = float(m), float(max(1, p))
    return (4.0 / 3.0 * m**3 + 2.0 * m**3) / p
