"""ScaLAPACK application simulators: PDGEQRF (dense QR) and PDSYEVX
(symmetric eigensolver), with the Eq. (8)–(10) cost counts."""

from . import costs
from .qr import PDGEQRF
from .syevx import PDSYEVX

__all__ = ["PDGEQRF", "PDSYEVX", "costs"]
