"""Synthetic multitask benchmark functions with known minima.

Beyond the paper's Eq. (11), autotuner development needs cheap objectives
whose global minima are *known in closed form*, parameterized into task
families so the multitask machinery is exercised.  Each family follows the
:class:`~repro.apps.base.Application` interface:

* :class:`BraninApp` — the Branin-Hoo function with a task-dependent shift;
  three global minima of value 0.397887 (task t = 0).
* :class:`RosenbrockApp` — d-dimensional Rosenbrock valley, task scales the
  curvature; minimum 0 at x = (1, …, 1) for every task.
* :class:`SphereApp` — the sanity-check bowl with a task-dependent centre.

These power fast deterministic tests and make honest regression baselines
for search-quality changes (any tuner regression shows up immediately
against a known optimum).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping

import numpy as np

from ..core.params import Integer, Real
from ..core.space import Space
from .base import Application

__all__ = ["BraninApp", "RosenbrockApp", "SphereApp", "branin"]


def branin(x1: float, x2: float) -> float:
    """The Branin-Hoo function on its standard domain [−5,10] × [0,15]."""
    a, b, c = 1.0, 5.1 / (4 * math.pi**2), 5.0 / math.pi
    r, s, t = 6.0, 10.0, 1.0 / (8 * math.pi)
    return a * (x2 - b * x1**2 + c * x1 - r) ** 2 + s * (1 - t) * math.cos(x1) + s


class BraninApp(Application):
    """Branin with a task-shifted second coordinate.

    Task ``t ∈ [0, 3]`` shifts x2 by ``t``; the optimum value stays
    0.397887 for every task (the surface translates), making cross-task
    transfer maximally informative.
    """

    name = "branin"
    n_objectives = 1
    objective_names = ("value",)

    #: global optimum value of the Branin function
    OPTIMUM = 0.39788735772973816

    def task_space(self) -> Space:
        return Space([Real("t", 0.0, 3.0)])

    def tuning_space(self) -> Space:
        return Space([Real("x1", -5.0, 10.0), Real("x2", 0.0, 15.0)])

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        return {"x1": 0.0, "x2": 7.5}

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        return branin(config["x1"], config["x2"] - float(task["t"]))


class RosenbrockApp(Application):
    """d-dimensional Rosenbrock; task ``t`` scales the valley curvature.

    ``f = Σ t·(x_{i+1} − x_i²)² + (1 − x_i)²`` with minimum 0 at all-ones
    for every task; larger t makes the valley narrower (harder).
    """

    name = "rosenbrock"
    n_objectives = 1
    objective_names = ("value",)

    def __init__(self, dim: int = 2, **kw):
        super().__init__(**kw)
        if dim < 2:
            raise ValueError("Rosenbrock needs dim >= 2")
        self.dim = int(dim)

    def task_space(self) -> Space:
        return Space([Integer("t", 1, 200)])

    def tuning_space(self) -> Space:
        return Space([Real(f"x{i}", -2.0, 2.0) for i in range(self.dim)])

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        return {f"x{i}": 0.0 for i in range(self.dim)}

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        t = float(task["t"])
        x = np.array([config[f"x{i}"] for i in range(self.dim)])
        return float(np.sum(t * (x[1:] - x[:-1] ** 2) ** 2 + (1.0 - x[:-1]) ** 2))


class SphereApp(Application):
    """Shifted sphere: ``f = ‖x − c(t)‖² + 0.01`` with c(t) = t/10 · 1."""

    name = "sphere"
    n_objectives = 1
    objective_names = ("value",)

    def __init__(self, dim: int = 3, **kw):
        super().__init__(**kw)
        self.dim = max(1, int(dim))

    def task_space(self) -> Space:
        return Space([Integer("t", 0, 10)])

    def tuning_space(self) -> Space:
        return Space([Real(f"x{i}", 0.0, 1.0) for i in range(self.dim)])

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        return {f"x{i}": 0.5 for i in range(self.dim)}

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        c = float(task["t"]) / 10.0
        x = np.array([config[f"x{i}"] for i in range(self.dim)])
        return float(np.sum((x - c) ** 2) + 0.01)
