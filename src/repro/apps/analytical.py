"""The analytical test function of Eq. (11).

.. math::

    y(t, x) = 1 + e^{-(x+1)^{t+1}} \\cos(2\\pi x)
              \\sum_{i=1}^{5} \\sin(2\\pi x (t+2)^i)

with task parameter ``t`` and tuning parameter ``x``, both real.  The paper
uses it for the parallel-speedup study (Fig. 3, δ = 20 tasks) and the
performance-model study (Fig. 4 left, with the noisy model
``ỹ = (1 + 0.1 r(x)) y``).  The function is highly non-convex — larger ``t``
adds faster oscillation — making it a hard 1-D black-box benchmark whose true
minimum we can still find by dense scanning.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

import numpy as np

from ..core.params import Real
from ..core.perfmodel import CallableModel
from ..core.space import Space
from .base import Application, noise_rng

__all__ = ["analytical_function", "AnalyticalApp", "true_minimum"]


def analytical_function(t: float, x) -> np.ndarray:
    """Vectorized Eq. (11); ``x`` may be scalar or array, ``t`` scalar."""
    x = np.asarray(x, dtype=float)
    t = float(t)
    s = np.zeros_like(x)
    for i in range(1, 6):
        s += np.sin(2.0 * np.pi * x * (t + 2.0) ** i)
    return 1.0 + np.exp(-((x + 1.0) ** (t + 1.0))) * np.cos(2.0 * np.pi * x) * s


def true_minimum(t: float, resolution: int = 200_001) -> Tuple[float, float]:
    """Global minimum of Eq. (11) on ``x ∈ [0, 1]`` by dense scan.

    Returns ``(x*, y*)``.  A 2·10⁵-point scan resolves the fastest
    oscillation (period ≳ 1/(t+2)⁵ ≈ 4·10⁻⁶ per unit at t = 9.5 is below
    scan resolution only for extreme t; for the paper's t ≤ 9.5 tasks the
    scan is refined locally by golden-section afterwards).
    """
    xs = np.linspace(0.0, 1.0, resolution)
    ys = analytical_function(t, xs)
    i = int(np.argmin(ys))
    # local refinement around the best grid cell
    lo = xs[max(0, i - 1)]
    hi = xs[min(resolution - 1, i + 1)]
    from scipy.optimize import minimize_scalar

    res = minimize_scalar(
        lambda x: float(analytical_function(t, x)), bounds=(lo, hi), method="bounded"
    )
    if res.fun < ys[i]:
        return float(res.x), float(res.fun)
    return float(xs[i]), float(ys[i])


class AnalyticalApp(Application):
    """Eq. (11) wrapped as a (sequential, noise-free) application.

    Parameters
    ----------
    t_range:
        Bounds of the task parameter (paper tasks: ``t = 0, 0.5, …, 9.5``).
    model_noise:
        Amplitude of the noisy performance model ``ỹ = (1 + a·r(x))·y``
        used in Fig. 4 left (paper: ``a = 0.1``).
    """

    name = "analytical"
    n_objectives = 1
    objective_names = ("value",)

    def __init__(self, t_range=(0.0, 10.0), model_noise: float = 0.1, **kw):
        super().__init__(**kw)
        self.t_range = (float(t_range[0]), float(t_range[1]))
        self.model_noise = float(model_noise)

    def task_space(self) -> Space:
        return Space([Real("t", self.t_range[0], self.t_range[1])])

    def tuning_space(self) -> Space:
        return Space([Real("x", 0.0, 1.0)])

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        return {"x": 0.5}

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        return float(analytical_function(task["t"], config["x"]))

    def models(self):
        """The Fig. 4 noisy model: the objective scaled by ``1 + a·r(x)``."""

        def noisy_model(task: Mapping[str, Any], config: Mapping[str, Any]) -> float:
            r = noise_rng(self.seed + 7, task, config).normal()
            return float(
                (1.0 + self.model_noise * r) * analytical_function(task["t"], config["x"])
            )

        return [CallableModel(noisy_model)]
