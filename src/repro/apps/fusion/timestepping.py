"""Fusion-code surrogates: M3D_C1 and NIMROD time-stepping drivers.

Both codes "solve nonsymmetric sparse linear systems with preconditioned
GMRES, for which multiple instances of SuperLU_DIST are used to solve the
poloidal plane problems as a block Jacobi preconditioner" (Sec. 6.2).  The
geometry, discretization and MPI count are fixed; a *task* is the number of
time steps ``t`` — which is exactly what makes them a multitask-learning
showcase: tuning on cheap few-step tasks transfers to the expensive
many-step production runs (Sec. 6.5).

The surrogate structure:

* a synthetic poloidal-plane matrix (2-D point-cloud k-NN pattern, standing
  in for the C¹ finite-element / spectral-element blocks),
* **setup**: one SuperLU_DIST factorization per plane block, with real
  symbolic behaviour — COLPERM changes fill, NSUP/NREL change supernodes
  (via :mod:`repro.apps.superlu.symbolic`),
* **per step**: ``n_solves`` GMRES solves whose iteration count depends on
  ROWPERM (no row pivoting weakens the preconditioner on these
  ill-conditioned MHD systems) and whose cost is block triangular solves at
  the computed fill,
* NIMROD additionally assembles its matrices with ``nxbl × nybl`` blocking,
  with the usual too-small/too-large efficiency valley.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Tuple

from ...core.params import Categorical, Integer
from ...core.space import Space
from ..base import Application, noise_rng
from ..superlu import symbolic
from ..superlu.matrices import knn_matrix

__all__ = ["M3DC1", "NIMROD", "ROWPERM_CHOICES"]

ROWPERM_CHOICES = ("NOROWPERM", "LargeDiag_MC64")


class _FusionBase(Application):
    """Shared machinery of the two fusion surrogates.

    Parameters
    ----------
    plane_size:
        Unknowns per poloidal-plane block (downscaled from production runs).
    n_planes:
        Block-Jacobi block count (poloidal planes / Fourier modes).
    n_solves_per_step:
        Linear solves per time step (velocity/field/pressure groups).
    base_iters:
        GMRES iterations per solve with a good row permutation.
    t_max:
        Upper bound of the time-step task range.
    """

    n_objectives = 1
    objective_names = ("runtime",)

    def __init__(
        self,
        plane_size: int = 600,
        n_planes: int = 8,
        n_solves_per_step: int = 3,
        base_iters: int = 12,
        t_max: int = 20,
        noise: float = 0.04,
        **kw,
    ):
        super().__init__(**kw)
        self.plane_size = int(plane_size)
        self.n_planes = int(n_planes)
        self.n_solves_per_step = int(n_solves_per_step)
        self.base_iters = int(base_iters)
        self.t_max = int(t_max)
        self.noise = float(noise)
        self.p_max = self.machine.total_cores
        self._sym_cache: Dict[str, symbolic.SymbolicResult] = {}

    def task_space(self) -> Space:
        return Space([Integer("t", 1, self.t_max)])

    def _symbolic(self, colperm: str) -> symbolic.SymbolicResult:
        if colperm not in self._sym_cache:
            A = knn_matrix(self.plane_size, 9, seed=self.seed + 11)
            perm = symbolic.ordering(A, colperm, seed=self.seed)
            self._sym_cache[colperm] = symbolic.symbolic_cholesky(A, perm)
        return self._sym_cache[colperm]

    # -- common cost pieces -------------------------------------------------
    def _factorization_time(self, config: Mapping[str, Any], p: int, p_r: int) -> Tuple[float, float]:
        """(time of one plane factorization, factor nnz) for the config."""
        sym = self._symbolic(config["COLPERM"])
        part = symbolic.supernodes(sym, int(config["NSUP"]), int(config["NREL"]))
        fill = 2.0 * (sym.fill_nnz + part.relaxed_fill) - sym.n
        flops = 2.0 * sym.cholesky_flops
        w = max(part.mean_width, 1.0)
        eff = (w / (w + 12.0)) / (1.0 + (w / 320.0) ** 2)
        p_c = max(1, p // max(1, p_r))
        p_used = max(1, p_r * p_c)
        mach = self.machine
        rate = mach.flops_per_core * mach.blas_efficiency * eff
        t = flops / (rate * p_used) * max(p_r / p_c, p_c / p_r) ** 0.15
        t += part.n_supernodes * (math.log2(max(p_used, 2))) * mach.latency
        return t, fill

    def _rowperm_iters(self, rowperm: str) -> float:
        """Iteration multiplier: no row pivoting weakens the preconditioner."""
        return {"NOROWPERM": 1.7, "LargeDiag_MC64": 1.0}[rowperm]

    def _solve_time(self, fill: float, iters: float, p: int, p_r: int) -> float:
        """Block-Jacobi preconditioned GMRES time for one linear solve."""
        mach = self.machine
        p_c = max(1, p // max(1, p_r))
        p_used = max(1, p_r * p_c)
        # two triangular solves per iteration per plane, bandwidth bound
        trisolve = 2.0 * 16.0 * fill / (mach.mem_bandwidth * mach.nodes)
        matvec = 16.0 * 9.0 * self.plane_size * self.n_planes / (
            mach.mem_bandwidth * mach.nodes
        )
        comm = 2.0 * math.log2(max(p_used, 2)) * mach.latency
        return iters * (trisolve * self.n_planes / max(1, p_used // self.n_planes or 1) + matvec + comm)


class M3DC1(_FusionBase):
    """M3D_C1 surrogate: ``x = [ROWPERM, COLPERM, p_r, NSUP, NREL]`` (β = 5).

    ``p`` (the MPI count) is fixed by the experiment per Sec. 6.2 ("we fix
    the geometry model, its discretizations and MPI count p"), so only the
    grid shape ``p_r`` and the SuperLU structural parameters are tuned.
    """

    name = "m3dc1"

    def tuning_space(self) -> Space:
        return Space(
            [
                Categorical("ROWPERM", list(ROWPERM_CHOICES)),
                Categorical("COLPERM", list(symbolic.COLPERM_CHOICES)),
                Integer("p_r", 1, self.p_max, transform="log"),
                Integer("NSUP", 8, 512, transform="log"),
                Integer("NREL", 1, 64, transform="log"),
            ]
        )

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        return {
            "ROWPERM": "LargeDiag_MC64",
            "COLPERM": "METIS_AT_PLUS_A",
            "p_r": max(1, int(math.sqrt(self.p_max))),
            "NSUP": 128,
            "NREL": 20,
        }

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        steps = int(task["t"])
        p = self.p_max
        p_r = int(config["p_r"])
        t_fact, fill = self._factorization_time(config, p, p_r)
        iters = self.base_iters * self._rowperm_iters(config["ROWPERM"])
        t_solve = self._solve_time(fill, iters, p, p_r)
        # plane blocks factorize concurrently (p >= n_planes in practice)
        base = t_fact + steps * self.n_solves_per_step * t_solve + 2e-4
        rng = noise_rng(self.seed + repeat, task, config)
        return float(base * math.exp(rng.normal(0.0, self.noise)))


class NIMROD(_FusionBase):
    """NIMROD surrogate: adds assembly blocking ``nxbl, nybl`` (β = 7)."""

    name = "nimrod"

    def tuning_space(self) -> Space:
        return Space(
            [
                Categorical("ROWPERM", list(ROWPERM_CHOICES)),
                Categorical("COLPERM", list(symbolic.COLPERM_CHOICES)),
                Integer("p_r", 1, self.p_max, transform="log"),
                Integer("NSUP", 8, 512, transform="log"),
                Integer("NREL", 1, 64, transform="log"),
                Integer("nxbl", 1, 32, transform="log"),
                Integer("nybl", 1, 32, transform="log"),
            ]
        )

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        return {
            "ROWPERM": "LargeDiag_MC64",
            "COLPERM": "METIS_AT_PLUS_A",
            "p_r": max(1, int(math.sqrt(self.p_max))),
            "NSUP": 128,
            "NREL": 20,
            "nxbl": 4,
            "nybl": 4,
        }

    def _assembly_time(self, nxbl: int, nybl: int) -> float:
        """Per-step matrix assembly with 2-D blocking.

        Too few blocks starve cache reuse; too many pay per-block overhead —
        the sweet spot sits at a moderate block count, as in the real code.
        """
        blocks = nxbl * nybl
        elems = 4.0 * self.plane_size * self.n_planes
        per_elem = 160.0 / self.machine.flops_per_core
        cache_eff = blocks / (blocks + 8.0)
        overhead = 1.0 + blocks / 128.0
        return elems * per_elem / cache_eff * overhead

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> float:
        steps = int(task["t"])
        p = self.p_max
        p_r = int(config["p_r"])
        t_fact, fill = self._factorization_time(config, p, p_r)
        iters = self.base_iters * self._rowperm_iters(config["ROWPERM"])
        t_solve = self._solve_time(fill, iters, p, p_r)
        t_asm = self._assembly_time(int(config["nxbl"]), int(config["nybl"]))
        base = t_fact + steps * (
            self.n_solves_per_step * t_solve + t_asm
        ) + 2e-4
        rng = noise_rng(self.seed + repeat, task, config)
        return float(base * math.exp(rng.normal(0.0, self.noise)))
