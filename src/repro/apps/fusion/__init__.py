"""Fusion-plasma application surrogates (M3D_C1, NIMROD)."""

from .timestepping import M3DC1, NIMROD, ROWPERM_CHOICES

__all__ = ["M3DC1", "NIMROD", "ROWPERM_CHOICES"]
