"""Application interface for tuning substrates.

Every evaluated code from Table 2 of the paper is represented by an
:class:`Application`: it declares its task space ``IS``, tuning space ``PS``
(with constraints), default configuration, objective(s), and optional coarse
performance models, and packages them into a
:class:`~repro.core.problem.TuningProblem`.  Application objectives are
*simulators* priced against a :class:`~repro.runtime.machine.Machine` (see
DESIGN.md for the substitution rationale); their randomness is seeded so
experiments are reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.problem import TuningProblem
from ..core.space import Space
from ..runtime.machine import Machine, cori_haswell

__all__ = ["Application", "noise_rng"]


def noise_rng(seed: int, task: Mapping[str, Any], config: Mapping[str, Any]) -> np.random.Generator:
    """Deterministic per-(task, config) RNG for measurement noise.

    Hashing the native values means repeated evaluations of the same point
    see the same "machine", while different points get independent noise —
    the structured residual a real system would show.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(repr(sorted(task.items())).encode())
    h.update(repr(sorted(config.items())).encode())
    h.update(str(seed).encode())
    return np.random.default_rng(int.from_bytes(h.digest(), "little"))


class Application:
    """Base class for tunable application simulators.

    Parameters
    ----------
    machine:
        Machine model pricing the simulated runs; defaults to one Cori
        Haswell node as in the paper's small experiments.
    seed:
        Base seed for the simulator's noise model.
    repeats:
        Number of simulated repetitions per evaluation; the minimum is
        returned ("all the runs of PDGEQRF and PDSYEVX were performed 3
        times, and the minimal runtime was selected", Sec. 6.2).
    """

    #: subclasses set these
    name: str = "application"
    n_objectives: int = 1
    objective_names: Sequence[str] = ("runtime",)

    def __init__(
        self,
        machine: Optional[Machine] = None,
        seed: int = 0,
        repeats: int = 1,
    ):
        self.machine = machine or cori_haswell(1)
        self.seed = int(seed)
        self.repeats = max(1, int(repeats))
        self.n_evaluations = 0

    # -- to be provided by subclasses -------------------------------------
    def task_space(self) -> Space:
        """The application's ``IS``."""
        raise NotImplementedError

    def tuning_space(self) -> Space:
        """The application's ``PS`` (with constraints)."""
        raise NotImplementedError

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        """The code's out-of-the-box configuration for a task."""
        raise NotImplementedError

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> Any:
        """One simulated execution; scalar or length-γ output."""
        raise NotImplementedError

    def models(self) -> List[Any]:
        """Coarse performance models (Sec. 3.3); default none."""
        return []

    # -- common machinery --------------------------------------------------
    def objective(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> Any:
        """Best-of-``repeats`` evaluation (element-wise minimum for γ > 1)."""
        self.n_evaluations += 1
        outs = [
            np.atleast_1d(np.asarray(self.run(task, config, r), dtype=float))
            for r in range(self.repeats)
        ]
        best = np.min(np.vstack(outs), axis=0)
        return float(best[0]) if self.n_objectives == 1 else best

    def problem(self, with_models: bool = False) -> TuningProblem:
        """Package this application as a :class:`TuningProblem`.

        Parameters
        ----------
        with_models:
            Attach the application's coarse performance models.
        """
        return TuningProblem(
            task_space=self.task_space(),
            tuning_space=self.tuning_space(),
            objective=self.objective,
            n_objectives=self.n_objectives,
            models=self.models() if with_models else None,
            objective_names=list(self.objective_names),
            name=self.name,
        )

    def sample_tasks(self, n: int, seed: Optional[int] = None) -> List[Dict[str, Any]]:
        """Draw ``n`` random tasks from ``IS`` (the paper's random tasks)."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        space = self.task_space()
        return [space.denormalize(rng.random(space.dimension)) for _ in range(n)]
