"""Synthetic PARSEC-like sparse matrices.

The paper's SuperLU_DIST experiments use matrices from the PARSEC group of
the SuiteSparse collection (Sec. 6.6/6.7) — real-space pseudopotential DFT
matrices whose sparsity pattern is a near-neighbour stencil over a 3-D point
cloud.  Without network access we synthesize matrices with the same
structure: uniformly random 3-D points connected to their k nearest
neighbours (k chosen to hit the real matrix's average row degree), the
pattern symmetrized, and diagonally dominant values attached.

``PARSEC_STATS`` records the real (n, nnz) of each matrix; a global
``scale`` shrinks n so symbolic factorization stays laptop-fast while
preserving relative matrix sizes — Si2 remains the small easy one, SiO the
big one, exactly the ordering the paper's per-matrix results depend on.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy import sparse
from scipy.spatial import cKDTree

__all__ = ["PARSEC_STATS", "parsec_matrix", "knn_matrix"]

#: real SuiteSparse dimensions of the PARSEC matrices used in the paper
PARSEC_STATS: Dict[str, Tuple[int, int]] = {
    "Si2": (769, 17_801),
    "SiH4": (5_041, 171_903),
    "SiNa": (5_743, 102_265),
    "Na5": (5_832, 305_630),
    "benzene": (8_219, 242_669),
    "Si10H16": (17_077, 875_923),
    "Si5H12": (19_896, 738_598),
    "SiO": (33_401, 1_317_655),
}

_CACHE: Dict[Tuple[str, float], sparse.csc_matrix] = {}


def knn_matrix(n: int, k: int, seed: int = 0) -> sparse.csc_matrix:
    """Symmetric k-nearest-neighbour matrix over a random 3-D point cloud.

    Parameters
    ----------
    n:
        Dimension (number of points).
    k:
        Neighbours per point before symmetrization.
    seed:
        Point-cloud seed.

    Returns
    -------
    CSC matrix with a symmetric pattern, negative off-diagonals and a
    dominant positive diagonal (Poisson-like, guaranteed nonsingular).
    """
    if n < 2:
        raise ValueError("need n >= 2")
    k = max(1, min(int(k), n - 1))
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3))
    tree = cKDTree(pts)
    _, idx = tree.query(pts, k=k + 1)  # first neighbour is the point itself
    rows = np.repeat(np.arange(n), k)
    cols = idx[:, 1:].ravel()
    data = -np.ones(rows.shape[0])
    A = sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    A = A.minimum(A.T)  # symmetric pattern, entries stay -1
    A = A.tolil()
    A.setdiag(0.0)
    A = A.tocsr()
    A.eliminate_zeros()
    deg = -np.asarray(A.sum(axis=1)).ravel()
    A = A.tolil()
    A.setdiag(deg + 1.0)
    return A.tocsc()


def parsec_matrix(name: str, scale: float = 0.12, seed: int = 0) -> sparse.csc_matrix:
    """Synthetic stand-in for a named PARSEC matrix, cached per (name, scale).

    Parameters
    ----------
    name:
        One of :data:`PARSEC_STATS`.
    scale:
        Fraction of the real dimension to generate (the default keeps even
        SiO's symbolic factorization fast on one core).
    """
    if name not in PARSEC_STATS:
        raise KeyError(f"unknown PARSEC matrix {name!r}; know {sorted(PARSEC_STATS)}")
    key = (name, float(scale))
    if key not in _CACHE:
        n_real, nnz_real = PARSEC_STATS[name]
        # floor keeps the smallest matrices structurally interesting even at
        # aggressive downscaling (Si2 would otherwise shrink to a toy)
        n = max(min(n_real, 256), int(round(n_real * scale)))
        k = max(2, int(round(nnz_real / n_real / 2.0)))  # halved: symmetrization doubles
        # zlib.crc32 is stable across processes (hash() is salted per run)
        import zlib

        _CACHE[key] = knn_matrix(n, k, seed=seed + zlib.crc32(name.encode()) % 1000)
    return _CACHE[key]
