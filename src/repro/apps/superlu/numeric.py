"""Numeric sparse LU factorization (validates the symbolic machinery).

A real right-looking column LU on the ``A + Aᵀ``-symmetrized pattern, without
numerical pivoting — safe here because every matrix this package generates
is strictly diagonally dominant, exactly the situation where SuperLU_DIST's
static-pivoting mode (ROWPERM=LargeDiag + small pivots replaced) operates.

Besides being a substrate in its own right (it exposes *residual accuracy*
as a tunable objective), it cross-checks the symbolic code: the computed
factors must satisfy ``L @ U ≈ P A Pᵀ`` and their nonzero pattern must be
contained in the symbolic prediction — properties the test suite asserts on
random matrices.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from .symbolic import SymbolicResult

__all__ = ["LUFactors", "sparse_lu", "lu_solve"]


@dataclasses.dataclass
class LUFactors:
    """Result of :func:`sparse_lu`.

    Attributes
    ----------
    L:
        Unit-lower-triangular factor (CSC), diagonal stored.
    U:
        Upper-triangular factor (CSC).
    perm:
        The fill-reducing permutation that was applied
        (``L @ U ≈ A[perm][:, perm]``).
    small_pivots:
        Number of near-zero pivots replaced by ``pivot_floor`` (SuperLU's
        static-pivoting repair); 0 for diagonally dominant inputs.
    """

    L: sparse.csc_matrix
    U: sparse.csc_matrix
    perm: np.ndarray
    small_pivots: int

    @property
    def nnz(self) -> int:
        """Stored entries in L and U (diagonal counted once)."""
        return int(self.L.nnz + self.U.nnz - self.L.shape[0])


def sparse_lu(
    A: sparse.spmatrix,
    perm: Optional[np.ndarray] = None,
    symbolic: Optional[SymbolicResult] = None,
    pivot_floor: float = 1e-10,
) -> LUFactors:
    """Factor ``P A Pᵀ = L U`` without numerical pivoting.

    Parameters
    ----------
    A:
        Square sparse matrix; should be (near) diagonally dominant or
        pre-permuted for stability.
    perm:
        Fill-reducing permutation (identity when None).
    symbolic:
        Optional precomputed symbolic factorization on the same pattern and
        permutation; only used to cross-check the fill bound.
    pivot_floor:
        Magnitude below which a pivot is replaced (static-pivoting repair).

    Notes
    -----
    Complexity is O(Σ |L(:,j)|²)-ish via sparse column updates — fine for
    the downscaled matrices of this package, not a production kernel.
    """
    A = sparse.csc_matrix(A, copy=False).astype(float)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    if perm is None:
        perm = np.arange(n, dtype=np.int64)
    perm = np.asarray(perm, dtype=np.int64)
    P = A[perm][:, perm].tocsc()

    # working dense-ish column representation of the active submatrix,
    # stored as per-column dicts {row: value} of the *remaining* entries
    cols: list = [dict() for _ in range(n)]
    for j in range(n):
        for idx in range(P.indptr[j], P.indptr[j + 1]):
            cols[j][int(P.indices[idx])] = float(P.data[idx])

    L_rows: list = []
    L_cols: list = []
    L_vals: list = []
    U_rows: list = []
    U_cols: list = []
    U_vals: list = []
    small = 0

    for j in range(n):
        col = cols[j]
        pivot = col.get(j, 0.0)
        if abs(pivot) < pivot_floor:
            pivot = pivot_floor if pivot >= 0 else -pivot_floor
            small += 1
        # U(:, j): rows <= j ; L(:, j): rows > j scaled by the pivot
        below: Dict[int, float] = {}
        for i, v in col.items():
            if i < j:
                raise AssertionError("column not fully eliminated")  # pragma: no cover
            if i == j:
                U_rows.append(j)
                U_cols.append(j)
                U_vals.append(pivot)
            else:
                below[i] = v / pivot
        L_rows.append(j)
        L_cols.append(j)
        L_vals.append(1.0)
        for i, lv in below.items():
            L_rows.append(i)
            L_cols.append(j)
            L_vals.append(lv)

        # right-looking update: for each later column k containing row j,
        # U(j,k) is finalized, then the trailing column receives -L(:,j)*U(j,k)
        for k in range(j + 1, n):
            ujk = cols[k].pop(j, None)
            if ujk is None:
                continue
            U_rows.append(j)
            U_cols.append(k)
            U_vals.append(ujk)
            ck = cols[k]
            for i, lv in below.items():
                ck[i] = ck.get(i, 0.0) - lv * ujk
        cols[j] = {}

    L = sparse.csc_matrix((L_vals, (L_rows, L_cols)), shape=(n, n))
    U = sparse.csc_matrix((U_vals, (U_rows, U_cols)), shape=(n, n))
    if symbolic is not None and L.nnz > symbolic.fill_nnz:
        raise AssertionError(
            f"numeric fill {L.nnz} exceeds the symbolic bound {symbolic.fill_nnz}"
        )
    return LUFactors(L=L, U=U, perm=perm, small_pivots=small)


def lu_solve(factors: LUFactors, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given :func:`sparse_lu` factors of ``P A Pᵀ``."""
    from scipy.sparse.linalg import spsolve_triangular

    b = np.asarray(b, dtype=float).ravel()
    perm = factors.perm
    pb = b[perm]
    y = spsolve_triangular(factors.L.tocsr(), pb, lower=True, unit_diagonal=True)
    z = spsolve_triangular(factors.U.tocsr(), y, lower=False)
    x = np.empty_like(z)
    x[perm] = z
    return x
