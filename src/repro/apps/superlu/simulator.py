"""SuperLU_DIST factorization simulator.

Tuning setup from Sec. 6.2 of the paper: a task is a (PARSEC) matrix name,
and the tuning parameters are

``x = [COLPERM, LOOK, p, p_r, NSUP, NREL]``

— column permutation, look-ahead depth, MPI process count, process-grid
rows, maximum supernode size and supernode relaxation.  The symbolic phase
is *computed* (fill and supernodes really depend on COLPERM/NSUP/NREL via
:mod:`repro.apps.superlu.symbolic`); the numeric phase is priced on the
machine model:

* GEMM-dominated supernodal updates at a BLAS-3 efficiency that grows with
  the mean supernode width (small NSUP ⇒ skinny panels ⇒ BLAS-2 rates);
* per-supernode panel broadcasts along process rows/columns (α-β terms),
  overlapped by the look-ahead pipeline — stalls shrink as ``1/(1+LOOK)``
  but large LOOK windows buffer more panels;
* 2-D grid load imbalance growing with ``NSUP/(n/p_r)`` (few fat block rows
  cannot balance) and with grid aspect;
* objectives: factorization **time** and **memory** (factor storage +
  per-process panel/look-ahead buffers), the two axes of the paper's
  multi-objective study (Fig. 7 / Tab. 5).

Symbolic results are cached per (matrix, COLPERM), so one tuning run pays
for at most four orderings per matrix.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ...core.params import Categorical, Integer
from ...core.space import Space
from ..base import Application, noise_rng
from . import symbolic
from .matrices import PARSEC_STATS, parsec_matrix

__all__ = ["SuperLUDIST", "DEFAULT_CONFIG"]

#: the paper's Tab. 5 default configuration (COLPERM 4 = METIS_AT_PLUS_A)
DEFAULT_CONFIG: Dict[str, Any] = {
    "COLPERM": "METIS_AT_PLUS_A",
    "LOOK": 10,
    "p": 256,
    "p_r": 16,
    "NSUP": 128,
    "NREL": 20,
}


class SuperLUDIST(Application):
    """Sparse LU factorization time/memory simulator.

    Parameters
    ----------
    matrices:
        Task universe (names from :data:`~repro.apps.superlu.matrices.PARSEC_STATS`).
    objectives:
        ``("time",)``, ``("memory",)`` or ``("time", "memory")`` — the γ = 2
        setting reproduces Sec. 6.7.
    scale:
        Matrix downscaling factor passed to the generator.
    noise:
        σ of the lognormal run-to-run noise on the time objective.
    """

    name = "superlu_dist"

    def __init__(
        self,
        matrices: Optional[List[str]] = None,
        objectives: Tuple[str, ...] = ("time",),
        scale: float = 0.05,
        noise: float = 0.05,
        **kw,
    ):
        super().__init__(**kw)
        self.matrices = list(matrices or PARSEC_STATS)
        bad = [m for m in self.matrices if m not in PARSEC_STATS]
        if bad:
            raise ValueError(f"unknown matrices {bad}")
        if not set(objectives) <= {"time", "memory"} or not objectives:
            raise ValueError(f"objectives must be among ('time','memory'), got {objectives}")
        self.objectives = tuple(objectives)
        self.n_objectives = len(self.objectives)
        self.objective_names = self.objectives
        self.scale = float(scale)
        self.noise = float(noise)
        self.p_max = self.machine.total_cores
        self._symbolic_cache: Dict[Tuple[str, str], symbolic.SymbolicResult] = {}

    # -- spaces ------------------------------------------------------------
    def task_space(self) -> Space:
        return Space([Categorical("matrix", self.matrices)])

    def tuning_space(self) -> Space:
        return Space(
            [
                Categorical("COLPERM", list(symbolic.COLPERM_CHOICES)),
                Integer("LOOK", 1, 20),
                Integer("p", 2, self.p_max, transform="log"),
                Integer("p_r", 1, self.p_max, transform="log"),
                Integer("NSUP", 8, 512, transform="log"),
                Integer("NREL", 1, 64, transform="log"),
            ],
            constraints=["p_r <= p"],
        )

    def default_config(self, task: Mapping[str, Any]) -> Dict[str, Any]:
        cfg = dict(DEFAULT_CONFIG)
        cfg["p"] = min(cfg["p"], self.p_max)
        cfg["p_r"] = min(cfg["p_r"], cfg["p"])
        return cfg

    # -- symbolic cache -----------------------------------------------------
    def _symbolic(self, matrix: str, colperm: str) -> symbolic.SymbolicResult:
        key = (matrix, colperm)
        if key not in self._symbolic_cache:
            A = parsec_matrix(matrix, scale=self.scale, seed=self.seed)
            perm = symbolic.ordering(A, colperm, seed=self.seed)
            self._symbolic_cache[key] = symbolic.symbolic_cholesky(A, perm)
        return self._symbolic_cache[key]

    # -- simulator -----------------------------------------------------------
    def _factorization(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> Tuple[float, float]:
        """Deterministic (time_seconds, memory_bytes) for one configuration."""
        matrix = task["matrix"]
        colperm = config["COLPERM"]
        look = int(config["LOOK"])
        p, p_r = int(config["p"]), int(config["p_r"])
        nsup, nrel = int(config["NSUP"]), int(config["NREL"])
        p_c = max(1, p // p_r)
        p_used = p_r * p_c
        mach = self.machine

        sym = self._symbolic(matrix, colperm)
        part = symbolic.supernodes(sym, nsup, nrel)
        n = sym.n
        # LU stores L and U on the symmetric pattern: ≈ 2|L| − n entries,
        # plus the zero padding introduced by relaxed amalgamation
        factor_nnz = 2.0 * (sym.fill_nnz + part.relaxed_fill) - n
        flops = 2.0 * sym.cholesky_flops  # LU ≈ 2× Cholesky on the pattern

        # BLAS-3 efficiency from the mean supernode width
        w = max(part.mean_width, 1.0)
        gemm_eff = (w / (w + 12.0)) / (1.0 + (w / 320.0) ** 2)
        nthreads = max(1, self.p_max // p)
        rate = (
            mach.flops_per_core
            * mach.blas_efficiency
            * nthreads
            * gemm_eff
            / (1.0 + 0.03 * (nthreads - 1))
        )

        # 2-D grid imbalance: few block-rows per process row cannot balance
        rows_per_pr = max(n / (w * p_r), 1.0)
        imbalance = (1.0 + 1.0 / rows_per_pr) * max(p_r / p_c, p_c / p_r) ** 0.15
        t_comp = flops / (rate * p_used) * imbalance

        # panel communication: every supernode broadcasts its panel along
        # its process row and column; look-ahead hides a growing share
        nsn = part.n_supernodes
        avg_panel_bytes = 8.0 * factor_nnz / max(nsn, 1)
        log_pr = math.log2(p_r) if p_r > 1 else 0.0
        log_pc = math.log2(p_c) if p_c > 1 else 0.0
        t_msg = nsn * (log_pr + log_pc) * mach.latency
        t_vol = avg_panel_bytes * nsn * (log_pr + log_pc) / max(p_c, 1) * mach.inv_bandwidth
        stall = 1.0 + 2.0 / (1.0 + look)  # pipeline bubbles shrink with LOOK
        t_comm = (t_msg + t_vol) * stall

        time_s = t_comp + t_comm + 1e-4

        # memory: factors distributed over processes, plus per-process panel
        # and look-ahead window buffers that grow with NSUP and LOOK
        factor_bytes = 16.0 * factor_nnz  # value + index
        buffer_bytes = p_used * (2 + look) * nsup * (n / max(p_r, 1)) * 8.0 * 0.05
        memory_bytes = factor_bytes + buffer_bytes
        return time_s, memory_bytes

    def run(self, task: Mapping[str, Any], config: Mapping[str, Any], repeat: int) -> Any:
        time_s, memory_b = self._factorization(task, config)
        rng = noise_rng(self.seed + repeat, task, config)
        time_s *= math.exp(rng.normal(0.0, self.noise))
        out = {"time": time_s, "memory": memory_b}
        vals = [out[o] for o in self.objectives]
        return vals[0] if self.n_objectives == 1 else vals

    # -- conveniences for benchmarks ------------------------------------------
    def evaluate_default(self, matrix: str) -> Tuple[float, float]:
        """(time, memory) of the paper's default configuration."""
        return self._factorization({"matrix": matrix}, self.default_config({"matrix": matrix}))
