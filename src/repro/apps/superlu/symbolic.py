"""Symbolic factorization machinery for the SuperLU_DIST simulator.

SuperLU_DIST's performance is dominated by structure that is *computed*, not
modeled: the column permutation (COLPERM) determines fill-in, and
NSUP/NREL determine the supernode partition.  This module implements the
real algorithms on the (symmetrized) pattern ``A + Aᵀ``:

* fill-reducing **orderings** — NATURAL, RCM (SciPy's reverse Cuthill–McKee,
  standing in for bandwidth-type orderings), a from-scratch **minimum
  degree** (the MMD_AT_PLUS_A option), and a from-scratch **nested
  dissection** by recursive level-set bisection (the METIS_AT_PLUS_A
  option);
* the **elimination tree** and exact per-column **fill counts** via
  child-pattern merging (O(|L|));
* **supernode partitioning** with a maximum size NSUP and relaxed
  amalgamation of small subtrees (NREL), following SuperLU's
  ``relax_snode`` heuristic.

Everything here operates on patterns only; the numeric phase is priced by
:mod:`repro.apps.superlu.simulator`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import reverse_cuthill_mckee

__all__ = ["COLPERM_CHOICES", "ordering", "symbolic_cholesky", "supernodes", "SymbolicResult", "SupernodePartition"]

COLPERM_CHOICES = ("NATURAL", "RCM", "MMD_AT_PLUS_A", "METIS_AT_PLUS_A")


def _symmetrize(A: sparse.spmatrix) -> sparse.csr_matrix:
    """Pattern of ``A + Aᵀ`` without the diagonal, CSR of booleans."""
    A = sparse.csr_matrix(A, copy=False)
    S = (A + A.T).tocsr()
    S.setdiag(0)
    S.eliminate_zeros()
    S.data[:] = 1.0
    return S


def _minimum_degree(S: sparse.csr_matrix) -> np.ndarray:
    """Quotient-graph (approximate) minimum-degree ordering.

    Eliminated vertices become *elements* whose boundaries stand in for the
    cliques a naive implementation would materialize (the AMD idea of
    Amestoy, Davis & Duff).  The degree of a variable is approximated by
    ``|variable neighbours| + Σ |boundaries of adjacent elements|`` — an
    upper bound that is cheap to maintain.  A lazy min-heap with stale-entry
    skipping drives the selection.
    """
    import heapq

    n = S.shape[0]
    adj_var: List[set] = [
        set(S.indices[S.indptr[i] : S.indptr[i + 1]].tolist()) for i in range(n)
    ]
    adj_elem: List[set] = [set() for _ in range(n)]
    elem_bound: Dict[int, set] = {}
    eliminated = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)

    def exact_degree(v: int) -> int:
        s = set(adj_var[v])
        for e in adj_elem[v]:
            s |= elem_bound[e]
        s.discard(v)
        return len(s)

    heap = [(len(adj_var[v]), v) for v in range(n)]
    heapq.heapify(heap)
    for step in range(n):
        # pop by (possibly stale) key, verify with the exact external
        # degree, and re-queue when a better candidate is still waiting
        while True:
            key, best = heapq.heappop(heap)
            if eliminated[best]:
                continue
            d = exact_degree(best)
            if heap and d > heap[0][0]:
                heapq.heappush(heap, (d, best))
                continue
            break
        order[step] = best
        eliminated[best] = True
        # boundary of the new element: variable neighbours plus the
        # boundaries of absorbed elements
        boundary = {u for u in adj_var[best] if not eliminated[u]}
        for e in adj_elem[best]:
            boundary.update(u for u in elem_bound[e] if not eliminated[u])
            elem_bound.pop(e, None)
        boundary.discard(best)
        elem_bound[best] = boundary
        absorbed = adj_elem[best]
        for u in boundary:
            adj_var[u] -= boundary
            adj_var[u].discard(best)
            adj_elem[u] -= absorbed
            adj_elem[u].add(best)
            # lower bound on the new external degree; the pop loop verifies
            heapq.heappush(heap, (max(len(adj_var[u]), len(boundary) - 1), u))
        adj_var[best] = set()
        adj_elem[best] = set()
    return order


def _pseudo_peripheral(S: sparse.csr_matrix, nodes: np.ndarray, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """BFS level sets from a pseudo-peripheral node of the induced subgraph."""
    sub = S[nodes][:, nodes].tocsr()
    m = len(nodes)
    start = int(rng.integers(m))
    for _ in range(3):  # a few BFS sweeps push the start to the periphery
        level = np.full(m, -1, dtype=np.int64)
        level[start] = 0
        frontier = [start]
        order = [start]
        while frontier:
            nxt = []
            for v in frontier:
                for u in sub.indices[sub.indptr[v] : sub.indptr[v + 1]]:
                    if level[u] < 0:
                        level[u] = level[v] + 1
                        nxt.append(int(u))
                        order.append(int(u))
            frontier = nxt
        # disconnected components: give them fresh levels past the deepest
        far = int(np.max(level))
        for v in range(m):
            if level[v] < 0:
                far += 1
                level[v] = far
        start = order[-1]
    return level, np.arange(m)


def _nested_dissection(S: sparse.csr_matrix, nodes: np.ndarray, rng: np.random.Generator, leaf: int = 32) -> List[int]:
    """Recursive level-set bisection; separators are ordered last."""
    if len(nodes) <= leaf:
        return nodes.tolist()
    level, _ = _pseudo_peripheral(S, nodes, rng)
    median = float(np.median(level))
    left = nodes[level < median]
    right = nodes[level > median]
    sep = nodes[level == median]
    if len(left) == 0 or len(right) == 0:  # degenerate split: fall back
        return nodes.tolist()
    return (
        _nested_dissection(S, left, rng, leaf)
        + _nested_dissection(S, right, rng, leaf)
        + sep.tolist()
    )


def ordering(A: sparse.spmatrix, colperm: str, seed: int = 0) -> np.ndarray:
    """Fill-reducing permutation for the requested COLPERM option.

    Returns ``perm`` such that column ``perm[k]`` of ``A`` is eliminated at
    step ``k``.
    """
    S = _symmetrize(A)
    n = S.shape[0]
    if colperm == "NATURAL":
        return np.arange(n, dtype=np.int64)
    if colperm == "RCM":
        return np.asarray(reverse_cuthill_mckee(S, symmetric_mode=True), dtype=np.int64)
    if colperm == "MMD_AT_PLUS_A":
        return _minimum_degree(S)
    if colperm == "METIS_AT_PLUS_A":
        rng = np.random.default_rng(seed)
        return np.asarray(_nested_dissection(S, np.arange(n, dtype=np.int64), rng), dtype=np.int64)
    raise ValueError(f"unknown COLPERM {colperm!r}; know {COLPERM_CHOICES}")


@dataclasses.dataclass
class SymbolicResult:
    """Outcome of symbolic factorization under one ordering.

    Attributes
    ----------
    parent:
        Elimination-tree parent per column (−1 at roots).
    col_counts:
        ``|L(:, j)|`` including the diagonal, per column.
    subtree_size:
        Number of tree descendants (incl. self) per column.
    fill_nnz:
        Total ``|L|`` (lower triangle incl. diagonal).
    """

    parent: np.ndarray
    col_counts: np.ndarray
    subtree_size: np.ndarray
    fill_nnz: int

    @property
    def n(self) -> int:
        """Matrix dimension (number of columns)."""
        return self.parent.shape[0]

    @property
    def cholesky_flops(self) -> float:
        """Σ cnt² — flops of a Cholesky on this pattern (LU ≈ 2×)."""
        c = self.col_counts.astype(float)
        return float(np.sum(c * c))


def symbolic_cholesky(A: sparse.spmatrix, perm: np.ndarray) -> SymbolicResult:
    """Exact symbolic factorization of ``P (A+Aᵀ) Pᵀ``.

    Merges each child's pattern into its elimination-tree parent
    (O(|L|) time and peak memory bounded by the active patterns).
    """
    S = _symmetrize(A)
    n = S.shape[0]
    perm = np.asarray(perm, dtype=np.int64)
    if sorted(perm.tolist()) != list(range(n)):
        raise ValueError("perm is not a permutation")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)
    P = S[perm][:, perm].tocsc()

    parent = np.full(n, -1, dtype=np.int64)
    counts = np.ones(n, dtype=np.int64)
    children: Dict[int, List[np.ndarray]] = {}
    fill = 0
    for j in range(n):
        below = P.indices[P.indptr[j] : P.indptr[j + 1]]
        pat = below[below > j].astype(np.int64)
        for ch in children.pop(j, ()):  # merge child structures
            pat = np.union1d(pat, ch)
        pat = pat[pat > j]
        counts[j] = 1 + pat.shape[0]
        fill += int(counts[j])
        if pat.shape[0]:
            parent[j] = int(pat[0])
            children.setdefault(int(pat[0]), []).append(pat)
    subtree = np.ones(n, dtype=np.int64)
    for j in range(n):
        if parent[j] >= 0:
            subtree[parent[j]] += subtree[j]
    return SymbolicResult(parent=parent, col_counts=counts, subtree_size=subtree, fill_nnz=fill)


@dataclasses.dataclass
class SupernodePartition:
    """Supernode partition of the factor columns.

    Attributes
    ----------
    starts:
        First column of each supernode (ascending).
    widths:
        Column count of each supernode.
    heights:
        Row count (first column's ``col_count``) of each supernode.
    relaxed_fill:
        Extra stored entries introduced by relaxed amalgamation.
    """

    starts: np.ndarray
    widths: np.ndarray
    heights: np.ndarray
    relaxed_fill: int

    @property
    def n_supernodes(self) -> int:
        """Number of supernodes in the partition."""
        return self.starts.shape[0]

    @property
    def mean_width(self) -> float:
        """Average supernode width (drives BLAS-3 efficiency)."""
        return float(self.widths.mean()) if self.widths.size else 0.0

    @property
    def gemm_flops(self) -> float:
        """Σ over supernodes of the dense-trapezoid update flops (LU)."""
        w = self.widths.astype(float)
        h = self.heights.astype(float)
        # panel LU (w² h) plus the rank-w trailing update touching h rows/cols
        return float(np.sum(w * w * h + 2.0 * w * h * h))


def supernodes(sym: SymbolicResult, nsup: int, nrel: int) -> SupernodePartition:
    """Partition columns into supernodes.

    A column joins the current supernode when it is the etree parent of its
    predecessor with nested structure (``cnt[j] = cnt[j−1] − 1``) — the
    *fundamental* supernode condition — or, relaxed, when its subtree is
    small (``subtree_size ≤ nrel``), at the price of extra stored zeros.
    Supernodes never exceed ``nsup`` columns.

    Parameters
    ----------
    sym:
        Symbolic factorization result.
    nsup:
        Maximum supernode size (SuperLU's NSUP).
    nrel:
        Relaxation parameter (SuperLU's NREL): subtrees of at most this many
        nodes are amalgamated.
    """
    n = sym.n
    nsup = max(1, int(nsup))
    nrel = max(0, int(nrel))
    starts: List[int] = [0]
    relaxed_fill = 0
    width = 1
    for j in range(1, n):
        fundamental = sym.parent[j - 1] == j and sym.col_counts[j] == sym.col_counts[j - 1] - 1
        relaxed = sym.subtree_size[j] <= nrel and sym.parent[j - 1] == j
        if width < nsup and (fundamental or relaxed):
            if relaxed and not fundamental:
                # padding the smaller column to the supernode's row structure
                relaxed_fill += int(sym.col_counts[j - 1] - 1 - sym.col_counts[j])
            width += 1
        else:
            starts.append(j)
            width = 1
    starts_arr = np.asarray(starts, dtype=np.int64)
    ends = np.append(starts_arr[1:], n)
    widths = ends - starts_arr
    heights = sym.col_counts[starts_arr]
    return SupernodePartition(
        starts=starts_arr, widths=widths, heights=heights, relaxed_fill=max(0, relaxed_fill)
    )
