"""SuperLU_DIST substrate: synthetic PARSEC matrices, real symbolic
factorization (orderings, elimination tree, fill, supernodes), and the
time/memory factorization simulator."""

from .matrices import PARSEC_STATS, knn_matrix, parsec_matrix
from .numeric import LUFactors, lu_solve, sparse_lu
from .simulator import DEFAULT_CONFIG, SuperLUDIST
from .symbolic import (
    COLPERM_CHOICES,
    SupernodePartition,
    SymbolicResult,
    ordering,
    supernodes,
    symbolic_cholesky,
)

__all__ = [
    "COLPERM_CHOICES",
    "DEFAULT_CONFIG",
    "LUFactors",
    "PARSEC_STATS",
    "lu_solve",
    "sparse_lu",
    "SuperLUDIST",
    "SupernodePartition",
    "SymbolicResult",
    "knn_matrix",
    "ordering",
    "parsec_matrix",
    "supernodes",
    "symbolic_cholesky",
]
