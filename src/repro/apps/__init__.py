"""Application substrates evaluated in the paper (Table 2)."""

from .analytical import AnalyticalApp, analytical_function, true_minimum
from .base import Application, noise_rng
from .fusion import M3DC1, NIMROD
from .hypre import HypreApp
from .scalapack import PDGEQRF, PDSYEVX
from .superlu import SuperLUDIST
from .synthetic import BraninApp, RosenbrockApp, SphereApp

__all__ = [
    "AnalyticalApp",
    "BraninApp",
    "Application",
    "HypreApp",
    "M3DC1",
    "NIMROD",
    "PDGEQRF",
    "PDSYEVX",
    "RosenbrockApp",
    "SphereApp",
    "SuperLUDIST",
    "analytical_function",
    "noise_rng",
    "true_minimum",
]
