"""Crowd-tuning HTTP server: one shared tuning archive, many campaigns.

A deliberately dependency-free (stdlib ``http.server``) JSON service in
front of one :class:`~repro.service.store.ShardedStore`, so campaigns on
other machines read and write the same archive through
:class:`~repro.service.client.ServiceClient`.  Endpoints (all JSON):

========  ============================  =========================================
method    path                          meaning
========  ============================  =========================================
GET       ``/v1/stats``                 store-wide counts, etags, byte sizes
GET       ``/v1/problems``              archived problem names
GET       ``/v1/records/<problem>``     all records (+ rids); honors
                                        ``If-None-Match`` → ``304 Not Modified``
GET       ``/metrics``                  Prometheus text exposition of the
                                        server's :class:`MetricsRegistry`
POST      ``/v1/records/<problem>``     append ``{"records": [...]}``; honors
                                        ``If-Match`` → ``412`` on a stale etag
POST      ``/v1/query/<problem>``       nearest-task lookup
                                        ``{"task": {...}, "k": N}``
POST      ``/v1/compact/<problem>``     compact one shard
========  ============================  =========================================

Every request is counted into ``repro_http_requests_total{method, endpoint,
status}`` and timed into the ``repro_http_request_seconds`` histogram, so a
Prometheus scrape of ``/metrics`` sees per-endpoint traffic and latency.

**Write path.**  Plain appends go through a
:class:`~repro.service.batch.WriteBatcher` group commit: many concurrent
POSTs to one shard share a single lock-acquire + write + fsync instead of
paying one each.  Optimistic (``If-Match``) appends bypass batching — their
etag check must be atomic with their write — via the batcher's per-shard
``exclusive()`` section.  Reads are served from the store's etag-keyed
:class:`~repro.service.store.ShardReadCache`, so repeat ``records``/
``query`` traffic against a hot shard stops re-parsing JSONL.

**Backpressure.**  Both queues are bounded: when more than ``max_inflight``
requests are being handled, or the batcher's pending-write queue is full,
the server answers ``429 Too Many Requests`` with a ``Retry-After`` header
instead of letting latency grow without bound.  Saturation is visible in
the ``repro_service_requests_inflight`` / ``repro_service_write_queue_depth``
gauges and the ``repro_http_requests_total{status="429"}`` counter.

Every record response carries the shard's **ETag** — the content-defined
version token of :meth:`~repro.service.store.ShardedStore.etag`.  A client
that wants optimistic concurrency sends it back as ``If-Match`` on append:
if another campaign appended in between, the server answers ``412
Precondition Failed`` with the fresh etag and the client re-reads before
retrying.  Plain appends (no ``If-Match``) always succeed — the store's
advisory shard locks serialize them without loss, which is what cooperating
crowd-tuning campaigns use.

Requests are served by a :class:`http.server.ThreadingHTTPServer`; the store
itself is the synchronization point (per-shard advisory file locks), so the
server process can even share its store directory with local campaigns
appending directly.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import unquote

from ..observability import MetricsRegistry
from .batch import BackpressureError, WriteBatcher
from .query import nearest_tasks
from .store import ShardReadCache, ShardedStore

__all__ = ["TuningHistoryServer", "make_server", "serve"]

_MAX_BODY = 64 * 1024 * 1024  # refuse absurd payloads instead of OOMing


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a store via the server instance."""

    server_version = "repro-tuning-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------
    @property
    def store(self) -> ShardedStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # pragma: no cover - silence stderr
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    def _reply(
        self,
        status: int,
        payload: Dict[str, Any],
        etag: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._last_status = status
        # 304 must carry no body (RFC 9110 §15.4.5): clients do not read one,
        # so stray bytes would poison the next request on a keep-alive
        # connection
        body = b"" if status == 304 else json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", f'"{etag}"')
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _saturated(self, what: str, retry_after: float) -> None:
        """Answer 429 with an explicit client backoff hint."""
        self._reply(
            429,
            {"error": f"{what} saturated, retry later", "retry_after": retry_after},
            headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
        )

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, Optional[str]]:
        parts = self.path.rstrip("/").split("?")[0].split("/")
        # ['', 'v1', verb, problem?]
        if len(parts) < 3 or parts[1] != "v1":
            return "", None
        verb = parts[2]
        problem = unquote("/".join(parts[3:])) if len(parts) > 3 else None
        return verb, problem

    @staticmethod
    def _header_etag(value: Optional[str]) -> Optional[str]:
        return value.strip().strip('"') if value else None

    def _endpoint(self) -> str:
        if self.path.split("?")[0].rstrip("/") == "/metrics":
            return "metrics"
        verb, _ = self._route()
        return verb or "unknown"

    def _timed(self, method: str, handler: Callable[[], None]) -> None:
        """Run one request handler, recording count and latency metrics.

        Bounded concurrency: past ``max_inflight`` simultaneously handled
        requests the handler is not even entered — the client gets ``429``
        + ``Retry-After`` immediately.  ``/metrics`` is exempt, so
        observability survives saturation.
        """
        self._last_status = 0
        metrics = self.server.metrics  # type: ignore[attr-defined]
        t0 = time.perf_counter()
        admitted = self._endpoint() == "metrics" or self.server.admit()  # type: ignore[attr-defined]
        try:
            if admitted:
                handler()
            else:
                self._saturated("server", self.server.retry_after)  # type: ignore[attr-defined]
        finally:
            if admitted and self._endpoint() != "metrics":
                self.server.release()  # type: ignore[attr-defined]
            labels = {"method": method, "endpoint": self._endpoint()}
            metrics.inc(
                "repro_http_requests_total", status=str(self._last_status), **labels
            )
            metrics.observe(
                "repro_http_request_seconds", time.perf_counter() - t0, **labels
            )

    def _reply_metrics(self) -> None:
        self._last_status = 200
        body = self.server.metrics.render_text().encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- methods -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        """Dispatch a GET request (instrumented)."""
        self._timed("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        """Dispatch a POST request (instrumented)."""
        self._timed("POST", self._handle_post)

    def _handle_get(self) -> None:
        if self._endpoint() == "metrics":
            self._reply_metrics()
            return
        verb, problem = self._route()
        if verb == "stats" and problem is None:
            self._reply(200, self.store.stats())
        elif verb == "problems" and problem is None:
            self._reply(200, {"problems": self.store.problems()})
        elif verb == "records" and problem:
            # snapshot() pairs the rows with the etag of exactly those rows,
            # so a read racing appends/compaction never sees a torn view
            rows, etag = self.store.snapshot(problem)
            if self._header_etag(self.headers.get("If-None-Match")) == etag:
                self._reply(304, {}, etag=etag)
                return
            self._reply(
                200,
                {"problem": problem, "records": rows, "etag": etag},
                etag=etag,
            )
        else:
            self._error(404, f"unknown endpoint {self.path!r}")

    def _handle_post(self) -> None:
        verb, problem = self._route()
        try:
            payload = self._body()
        except ValueError as e:
            self._error(400, str(e))
            return
        if verb == "records" and problem:
            self._post_records(problem, payload)
        elif verb == "query" and problem:
            self._post_query(problem, payload)
        elif verb == "compact" and problem:
            self._reply(200, self.store.compact(problem))
        else:
            self._error(404, f"unknown endpoint {self.path!r}")

    def _post_records(self, problem: str, payload: Dict[str, Any]) -> None:
        records = payload.get("records")
        if not isinstance(records, list):
            self._error(400, 'body must be {"records": [...]}')
            return
        expected = self._header_etag(self.headers.get("If-Match"))
        batcher: Optional[WriteBatcher] = self.server.batcher  # type: ignore[attr-defined]
        if expected is None and batcher is not None:
            # plain append: ride the group commit (ack after its fsync)
            try:
                rids, etag = batcher.submit(problem, records)
            except BackpressureError as e:
                self._saturated("write queue", e.retry_after)
                return
            except (ValueError, TypeError) as e:
                self._error(400, f"bad record: {e}")
                return
            self._reply(
                200, {"appended": len(rids), "rids": rids, "etag": etag}, etag=etag
            )
            return
        # optimistic append (or batching disabled): the etag check and the
        # append must be one unit, or two racing writers both pass the check
        ctx = (
            batcher.exclusive(problem)
            if batcher is not None
            else self.server.append_mutex  # type: ignore[attr-defined]
        )
        with ctx:
            if expected is not None:
                current = self.store.etag(problem)
                if current != expected:
                    self._reply(
                        412,
                        {"error": "etag mismatch: shard changed since you read it",
                         "etag": current},
                        etag=current,
                    )
                    return
            try:
                written = self.store.append(problem, records)
            except (ValueError, TypeError) as e:
                self._error(400, f"bad record: {e}")
                return
            etag = self.store.etag(problem)
        self._reply(200, {"appended": len(written), "rids": written, "etag": etag}, etag=etag)

    def _post_query(self, problem: str, payload: Dict[str, Any]) -> None:
        task = payload.get("task")
        if not isinstance(task, dict):
            self._error(400, 'body must be {"task": {...}, "k": N}')
            return
        k = payload.get("k")
        rows, etag = self.store.snapshot(problem)
        near = nearest_tasks(rows, task, k=int(k) if k is not None else None)
        self._reply(
            200,
            {
                "problem": problem,
                "matches": [
                    {"task": t, "distance": d, "records": recs} for t, recs, d in near
                ],
                "etag": etag,
            },
        )


class TuningHistoryServer(ThreadingHTTPServer):
    """Threaded HTTP server owning one :class:`ShardedStore`.

    Carries a :class:`~repro.observability.MetricsRegistry` fed by the
    request handlers and exposed at ``GET /metrics`` in Prometheus text
    format — the registry is thread-safe, matching the threading server.

    Parameters
    ----------
    address, store, verbose:
        As before; ``store.cache`` (when attached) is wired into the
        server's metrics registry.
    batch:
        Group-commit plain appends through a :class:`WriteBatcher`
        (``False`` restores the seed one-fsync-per-request path — the
        baseline ``benchmarks/bench_service.py`` measures against).
    flush_interval, flush_bytes, max_pending:
        Batcher knobs (see :class:`~repro.service.batch.WriteBatcher`).
    max_inflight:
        Bound on concurrently handled requests before new ones get ``429``.
    """

    daemon_threads = True
    #: listen backlog; socketserver's default of 5 drops SYNs under a
    #: connection burst and the kernel's ~1 s retransmit wrecks tail latency
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        store: ShardedStore,
        verbose: bool = False,
        batch: bool = True,
        flush_interval: float = 0.005,
        flush_bytes: int = 256 * 1024,
        max_pending: int = 4096,
        max_inflight: int = 64,
    ):
        super().__init__(address, _Handler)
        self.store = store
        self.verbose = verbose
        self.append_mutex = threading.Lock()
        self.metrics = MetricsRegistry()
        if store.cache is not None and store.cache.metrics is None:
            store.cache.metrics = self.metrics
        self.max_inflight = int(max_inflight)
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.retry_after = 0.05
        self.batcher: Optional[WriteBatcher] = (
            WriteBatcher(
                store,
                flush_interval=flush_interval,
                flush_bytes=flush_bytes,
                max_pending=max_pending,
                metrics=self.metrics,
            )
            if batch
            else None
        )

    # -- request admission ---------------------------------------------------
    def admit(self) -> bool:
        """Reserve one in-flight request slot; ``False`` when saturated."""
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            depth = self._inflight
        self.metrics.set_gauge("repro_service_requests_inflight", float(depth))
        return True

    def release(self) -> None:
        """Return one in-flight request slot."""
        with self._inflight_lock:
            self._inflight -= 1
            depth = self._inflight
        self.metrics.set_gauge("repro_service_requests_inflight", float(depth))

    def server_close(self) -> None:
        """Flush pending batched writes, then close the listening socket."""
        if self.batcher is not None:
            self.batcher.close()
        super().server_close()


def make_server(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    on_event: Optional[Callable[[str, str], Any]] = None,
    verbose: bool = False,
    cache_bytes: int = 64 * 1024 * 1024,
    **server_kwargs: Any,
) -> TuningHistoryServer:
    """Build a service over the store at ``root`` (``port=0`` = ephemeral).

    The caller drives the returned server (``serve_forever`` /
    ``handle_request`` / ``shutdown``); its bound port is
    ``server.server_address[1]``.  ``cache_bytes=0`` disables the read
    cache; remaining keyword arguments (``batch``, ``flush_interval``,
    ``flush_bytes``, ``max_pending``, ``max_inflight``) reach
    :class:`TuningHistoryServer`.
    """
    cache = ShardReadCache(cache_bytes) if cache_bytes else None
    store = ShardedStore(root, on_event=on_event, cache=cache)
    return TuningHistoryServer((host, port), store, verbose=verbose, **server_kwargs)


def serve(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8577,
    verbose: bool = True,
    **kwargs: Any,
) -> None:  # pragma: no cover - blocking entry point, exercised via CLI tests
    """Run the service until interrupted (the ``repro serve`` verb)."""
    server = make_server(root, host, port, verbose=verbose, **kwargs)
    bound = server.server_address
    print(f"tuning-history service on http://{bound[0]}:{bound[1]} (store: {root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
