"""Query API over archived tuning records: nearest-task lookup.

Transfer learning (:mod:`repro.core.tla`) wants "the archived tasks closest
to the one I am about to tune" — this module answers that question directly
from any archive that can produce ``{"task", "x", "y"}`` records: a
:class:`~repro.service.store.ShardedStore`, the
:class:`~repro.core.history.HistoryDB` shim over it, or a remote
:class:`~repro.service.client.ServiceClient`.

Two distance modes cover the two deployment sides:

* **Space-aware** (the tuning client): distances in the problem's normalized
  task space (:meth:`repro.core.space.Space.normalize`), exactly the metric
  :class:`~repro.core.tla.TransferLearner` uses to prune far sources.
* **Space-free** (the HTTP service): the server stores records for arbitrary
  problems and does not know their :class:`~repro.core.space.Space`; numeric
  task dimensions are min-max normalized over the archived tasks themselves
  and non-numeric ones contribute a 0/1 mismatch term.  The heuristic ranks
  tasks the same way as the space-aware metric whenever task parameters are
  numeric with archive-spanning ranges.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "group_by_task",
    "nearest_tasks",
    "source_data_from_records",
    "archive_source",
]

Record = Dict[str, Any]


def _task_key(task: Mapping[str, Any]) -> Tuple:
    return tuple((str(k), repr(task[k])) for k in sorted(task))


def group_by_task(records: Sequence[Mapping[str, Any]]) -> List[Tuple[Dict[str, Any], List[Record]]]:
    """Group records by distinct task, preserving first-seen task order."""
    order: List[Tuple] = []
    groups: Dict[Tuple, Tuple[Dict[str, Any], List[Record]]] = {}
    for rec in records:
        task = dict(rec["task"])
        key = _task_key(task)
        if key not in groups:
            groups[key] = (task, [])
            order.append(key)
        groups[key][1].append(dict(rec))
    return [groups[k] for k in order]


def _heuristic_matrix(tasks: Sequence[Mapping[str, Any]], query: Mapping[str, Any]) -> np.ndarray:
    """Space-free distance of each archived task to the query task.

    Numeric dimensions are min-max scaled over ``tasks ∪ {query}``; missing
    or non-numeric dimensions contribute 1 on mismatch, 0 on equality.
    """
    names = sorted({k for t in tasks for k in t} | set(query))
    dists = np.zeros(len(tasks))
    for name in names:
        vals = [t.get(name) for t in tasks] + [query.get(name)]
        numeric = all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in vals)
        if numeric:
            arr = np.asarray(vals, dtype=float)
            lo, hi = float(arr.min()), float(arr.max())
            span = (hi - lo) or 1.0
            unit = (arr - lo) / span
            dists += (unit[:-1] - unit[-1]) ** 2
        else:
            q = query.get(name)
            dists += np.array([0.0 if t.get(name) == q else 1.0 for t in tasks])
    return np.sqrt(dists)


def nearest_tasks(
    records: Sequence[Mapping[str, Any]],
    task: Mapping[str, Any],
    k: Optional[int] = None,
    task_space=None,
) -> List[Tuple[Dict[str, Any], List[Record], float]]:
    """The ``k`` archived tasks closest to ``task`` with their records.

    Parameters
    ----------
    records:
        Archived ``{"task", "x", "y"}`` records (any problem-consistent mix
        of tasks).
    task:
        The query task.
    k:
        How many distinct tasks to return (``None`` = all, sorted by
        distance).
    task_space:
        Optional :class:`~repro.core.space.Space`; when given, distances are
        computed in its normalized coordinates, otherwise the space-free
        heuristic applies.

    Returns
    -------
    ``[(task_dict, records_of_that_task, distance), ...]`` nearest first.
    An exact-match task has distance 0 and always sorts first.
    """
    groups = group_by_task(records)
    if not groups:
        return []
    tasks = [t for t, _ in groups]
    if task_space is not None:
        T = task_space.normalize_many(tasks)
        t_new = task_space.normalize(task)
        d = np.linalg.norm(T - t_new[None, :], axis=1)
    else:
        d = _heuristic_matrix(tasks, dict(task))
    order = np.argsort(d, kind="stable")
    if k is not None:
        order = order[: max(int(k), 0)]
    return [(groups[i][0], groups[i][1], float(d[i])) for i in order]


def source_data_from_records(problem, records: Sequence[Mapping[str, Any]]):
    """Build :class:`~repro.core.data.TuningData` over the records' tasks.

    The returned data holds one task per distinct archived task (in archive
    order) with all matching evaluations absorbed — the shape
    :class:`~repro.core.tla.TransferLearner` expects as ``source``.
    """
    from ..core.data import TuningData

    groups = group_by_task(records)
    if not groups:
        raise ValueError("archive has no records for this problem")
    tasks = [problem.task_space.to_dict(t) for t, _ in groups]
    data = TuningData(
        problem.task_space,
        problem.tuning_space,
        tasks,
        n_objectives=problem.n_objectives,
    )
    for i, (_, recs) in enumerate(groups):
        for rec in recs:
            data.add(i, rec["x"], rec["y"])
    return data


def archive_source(
    problem,
    archive,
    new_task: Optional[Mapping[str, Any]] = None,
    max_tasks: Optional[int] = None,
):
    """Pull one problem's records from an archive as TransferLearner source.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.TuningProblem`; its name selects the
        shard and its task space provides the distance metric.
    archive:
        Anything with ``records(problem_name) -> [records]`` — a
        :class:`~repro.service.store.ShardedStore`, a
        :class:`~repro.core.history.HistoryDB`, or a remote
        :class:`~repro.service.client.ServiceClient`.
    new_task:
        When given with ``max_tasks``, only the ``max_tasks`` archived tasks
        nearest to it (normalized task space) are kept — the LCM covariance
        is cubic in total samples, so pruning far sources keeps transfer
        cheap.
    max_tasks:
        Source-task cap (``None`` = keep all).
    """
    records = archive.records(problem.name)
    if new_task is not None and max_tasks is not None:
        near = nearest_tasks(
            records, problem.task_space.to_dict(new_task), k=max_tasks,
            task_space=problem.task_space,
        )
        records = [rec for _, recs, _ in near for rec in recs]
    return source_data_from_records(problem, records)
