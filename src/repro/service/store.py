"""Sharded append-only storage engine for the shared tuning-history service.

The north-star asks for a tuning archive that many concurrent campaigns —
processes on one node or clients behind the HTTP service — can read and
write safely.  :class:`~repro.core.history.HistoryDB`'s original format (one
JSON object rewritten wholesale on every save) cannot do that: two writers
lose each other's records and every append costs O(total records).

:class:`ShardedStore` replaces it with a directory of per-problem **shards**:

* each problem's records live in one append-only JSONL file (``<slug>.jsonl``,
  one JSON record per line) — an append writes only the new lines;
* writers take an **advisory exclusive lock** on a per-shard ``.lock`` file
  (``fcntl.flock``, with an ``O_EXCL`` spin-lock fallback on platforms
  without it), so concurrent appends from any number of processes serialize
  without losing records;
* every record carries a unique ``rid`` (record id).  Records pushed *with*
  an existing rid — e.g. a crowd-tuning client syncing an archive it pulled
  earlier — are deduplicated; records appended without one get a fresh rid,
  so legitimately repeated evaluations of the same configuration are kept;
* a torn trailing line from a crashed writer is skipped on read and dropped
  by :meth:`compact`, which rewrites a shard crash-safely (temp file in the
  same directory + ``os.replace``) while holding the shard lock;
* :meth:`etag` returns a content-defined version token (a hash over the
  shard's rid set) that changes on every append and is *stable across
  compaction* — the HTTP service uses it for conditional GETs and
  optimistic-concurrency PUTs.

:func:`content_fingerprint` hashes a record's payload (task, x, y) only; it
keys the surrogate-model cache (:mod:`repro.service.modelcache`), where two
campaigns holding the same evaluations should hit the same cache entry
regardless of rids.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = ["ShardedStore", "ShardLock", "content_fingerprint", "canonical_payload"]

try:  # POSIX advisory locking; Windows lacks fcntl
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None

_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
_PAYLOAD_KEYS = ("task", "x", "y")


def _slug(problem: str) -> str:
    """Reversible filesystem-safe encoding of a problem name."""
    out = []
    for ch in problem:
        if ch in _SAFE and ch != "%":
            out.append(ch)
        else:
            out.append("%" + format(ord(ch), "04x"))
    return "".join(out) or "%0000"


def _unslug(slug: str) -> str:
    out, i = [], 0
    while i < len(slug):
        if slug[i] == "%":
            out.append(chr(int(slug[i + 1 : i + 5], 16)))
            i += 5
        else:
            out.append(slug[i])
            i += 1
    return "".join(out)


def canonical_payload(record: Mapping[str, Any]) -> str:
    """Canonical JSON of a record's (task, x, y) payload.

    Sorted keys and fixed float formatting make the encoding independent of
    dict insertion order, so equal payloads hash equally everywhere.
    """
    payload = {
        "task": {str(k): v for k, v in record["task"].items()},
        "x": {str(k): v for k, v in record["x"].items()},
        "y": [float(v) for v in record["y"]],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_fingerprint(record: Mapping[str, Any]) -> str:
    """Content hash of one record's payload (rid-independent)."""
    return hashlib.sha1(canonical_payload(record).encode("utf-8")).hexdigest()


class ShardLock:
    """Advisory exclusive lock on a shard's sidecar ``.lock`` file.

    The lock file is separate from the data file because :meth:`ShardedStore.compact`
    replaces the data file via ``os.replace`` — a lock held on the replaced
    inode would silently stop excluding later writers.

    Uses ``fcntl.flock`` where available; elsewhere falls back to an
    ``O_CREAT | O_EXCL`` spin lock with a stale-lock timeout.
    """

    def __init__(self, path: str, timeout: float = 30.0, poll: float = 0.005):
        self.path = path
        self.timeout = float(timeout)
        self.poll = float(poll)
        self._fd: Optional[int] = None

    def acquire(self) -> None:
        """Block until the lock is held (non-reentrant)."""
        if self._fd is not None:
            raise RuntimeError("lock is not reentrant")
        if fcntl is not None:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
            self._fd = fd
            return
        deadline = time.monotonic() + self.timeout  # pragma: no cover - off-POSIX
        while True:  # pragma: no cover
            try:
                self._fd = os.open(self.path + ".x", os.O_CREAT | os.O_EXCL | os.O_RDWR)
                return
            except FileExistsError:
                if time.monotonic() >= deadline:
                    raise TimeoutError(f"could not lock {self.path}")
                time.sleep(self.poll)

    def release(self) -> None:
        """Drop the lock; a no-op when it is not held."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - off-POSIX
            os.close(fd)
            os.unlink(self.path + ".x")

    def __enter__(self) -> "ShardLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _ShardState:
    """Per-shard read cache: byte offset consumed so far and known rids."""

    def __init__(self):
        self.offset = 0
        self.rids: Set[str] = set()


class ShardedStore:
    """Directory of per-problem append-only JSONL shards.

    Parameters
    ----------
    root:
        Directory holding the shards; created on first use.
    on_event:
        Optional ``callback(kind, detail)`` — e.g.
        :meth:`repro.runtime.trace.CampaignLog.record` — receiving service
        lifecycle events (``"service-append"``, ``"service-compact"``,
        ``"service-torn-line"``).
    """

    def __init__(self, root: str, on_event: Optional[Callable[[str, str], Any]] = None):
        self.root = str(root)
        self.on_event = on_event
        self._shards: Dict[str, _ShardState] = {}
        os.makedirs(self.root, exist_ok=True)

    # -- paths ---------------------------------------------------------------
    def shard_path(self, problem: str) -> str:
        """Data file of one problem's shard."""
        return os.path.join(self.root, _slug(problem) + ".jsonl")

    def _lock(self, problem: str) -> ShardLock:
        return ShardLock(os.path.join(self.root, _slug(problem) + ".lock"))

    def _emit(self, kind: str, detail: str) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    # -- queries -------------------------------------------------------------
    def problems(self) -> List[str]:
        """Problem names with a (possibly empty) shard on disk."""
        names = []
        for fname in os.listdir(self.root):
            if fname.endswith(".jsonl") and not fname.endswith(".compacting.jsonl"):
                names.append(_unslug(fname[: -len(".jsonl")]))
        return sorted(names)

    def records(self, problem: str, with_rid: bool = False) -> List[Dict[str, Any]]:
        """All valid records of one problem, in append order.

        ``with_rid=True`` keeps each record's ``rid`` key (needed to sync an
        archive into another store without duplicating it).
        """
        out = []
        for rec in self._read_all(problem):
            if not with_rid:
                rec = {k: rec[k] for k in _PAYLOAD_KEYS}
            out.append(rec)
        return out

    def count(self, problem: str) -> int:
        """Number of valid records in one shard."""
        return len(self._read_all(problem))

    def etag(self, problem: str) -> str:
        """Content-defined shard version: hash of the sorted rid set.

        Changes whenever a record is added or removed; unchanged by
        compaction (which preserves the rid set).  An empty shard's etag is
        the fixed token ``"empty"``.
        """
        self._refresh(problem)
        rids = self._shards[problem].rids
        if not rids:
            return "empty"
        h = hashlib.sha1()
        for rid in sorted(rids):
            h.update(rid.encode("ascii"))
            h.update(b"\n")
        return h.hexdigest()

    def stats(self) -> Dict[str, Any]:
        """Store-wide summary: per-problem counts, etags, and disk bytes."""
        per: Dict[str, Any] = {}
        total = 0
        for name in self.problems():
            n = self.count(name)
            total += n
            path = self.shard_path(name)
            per[name] = {
                "count": n,
                "etag": self.etag(name),
                "bytes": os.path.getsize(path) if os.path.exists(path) else 0,
            }
        return {"root": self.root, "n_records": total, "problems": per}

    # -- updates -------------------------------------------------------------
    def append(self, problem: str, records: Sequence[Mapping[str, Any]]) -> List[str]:
        """Append records to one shard; returns the rids actually written.

        Records lacking a ``rid`` get a fresh unique one (repeated payloads
        are kept — re-measuring a configuration is legitimate).  Records
        carrying a ``rid`` already present in the shard are skipped, making
        archive syncs idempotent.  The write is one ``write`` + ``fsync`` of
        complete lines under the shard's exclusive lock, so concurrent
        appends interleave without tearing each other.
        """
        prepared = []
        for rec in records:
            if not {"task", "x", "y"} <= set(rec):
                raise ValueError(f"malformed record {rec!r}")
            row = {
                "task": dict(rec["task"]),
                "x": dict(rec["x"]),
                "y": [float(v) for v in rec["y"]],
            }
            rid = rec.get("rid")
            row["rid"] = str(rid) if rid else uuid.uuid4().hex
            prepared.append(row)
        if not prepared:
            return []
        path = self.shard_path(problem)
        written: List[str] = []
        with self._lock(problem):
            self._refresh_locked(problem)
            state = self._shards[problem]
            lines = []
            for row in prepared:
                if row["rid"] in state.rids:
                    continue
                state.rids.add(row["rid"])
                written.append(row["rid"])
                lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
            if not written:
                return []
            blob = "\n".join(lines) + "\n"
            # a crashed writer may have left a torn, unterminated last line;
            # starting on a fresh line quarantines it for compaction to drop
            if state.offset > 0 and not self._ends_with_newline(path):
                blob = "\n" + blob
            fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            try:
                os.write(fd, blob.encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            state.offset = os.path.getsize(path)
        self._emit("service-append", f"{problem}: +{len(written)} record(s)")
        return written

    def clear(self, problem: str) -> None:
        """Drop one problem's shard entirely."""
        with self._lock(problem):
            try:
                os.unlink(self.shard_path(problem))
            except FileNotFoundError:
                pass
            self._shards.pop(problem, None)

    def compact(self, problem: str) -> Dict[str, int]:
        """Rewrite one shard: drop torn lines and duplicate rids.

        Crash-safe: the compacted content goes to a temp file in the shard
        directory, is fsynced, and replaces the shard atomically — a crash
        at any point leaves either the old or the new complete file.  Runs
        under the shard lock, so concurrent appends wait rather than vanish.
        """
        path = self.shard_path(problem)
        with self._lock(problem):
            rows, torn = self._parse(path)
            seen: Set[str] = set()
            kept = []
            for row in rows:
                if row["rid"] in seen:
                    continue
                seen.add(row["rid"])
                kept.append(row)
            tmp = path + ".compacting"
            with open(tmp, "w", encoding="utf-8") as fh:
                for row in kept:
                    fh.write(json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            state = _ShardState()
            state.offset = os.path.getsize(path)
            state.rids = seen
            self._shards[problem] = state
        dropped = len(rows) - len(kept)
        self._emit(
            "service-compact",
            f"{problem}: {len(kept)} record(s) kept, {dropped} duplicate(s), "
            f"{torn} torn line(s) dropped",
        )
        return {"kept": len(kept), "duplicates": dropped, "torn": torn}

    # -- shard IO ------------------------------------------------------------
    @staticmethod
    def _ends_with_newline(path: str) -> bool:
        try:
            with open(path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) == b"\n"
        except (OSError, ValueError):
            return True  # empty or missing file needs no separator

    def _parse(self, path: str) -> Tuple[List[Dict[str, Any]], int]:
        """All parseable rows of a shard file plus the count of torn lines."""
        if not os.path.exists(path):
            return [], 0
        rows, torn = [], 0
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    if not isinstance(row, dict) or not {"task", "x", "y", "rid"} <= set(row):
                        raise ValueError("not a record")
                except ValueError:
                    torn += 1
                    continue
                rows.append(row)
        if torn:
            self._emit("service-torn-line", f"{path}: {torn} unparseable line(s) skipped")
        return rows, torn

    def _read_all(self, problem: str) -> List[Dict[str, Any]]:
        rows, _ = self._parse(self.shard_path(problem))
        self._refresh(problem)  # keep the rid cache warm for etag/append
        return rows

    def _refresh(self, problem: str) -> None:
        with self._lock(problem):
            self._refresh_locked(problem)

    def _refresh_locked(self, problem: str) -> None:
        """Absorb shard bytes written since our cached offset (lock held).

        Compaction (ours or another process's) can shrink the file or
        rewrite history; a shrink invalidates the offset cache, so the shard
        is re-read from the start.
        """
        path = self.shard_path(problem)
        state = self._shards.setdefault(problem, _ShardState())
        size = os.path.getsize(path) if os.path.exists(path) else 0
        if size < state.offset:
            state.offset, state.rids = 0, set()
        if size == state.offset:
            return
        with open(path, "rb") as fh:
            fh.seek(state.offset)
            tail = fh.read()
        # only complete (newline-terminated) lines advance the offset; a
        # torn tail is re-examined on the next refresh
        complete = tail.rfind(b"\n") + 1
        for line in tail[:complete].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line.decode("utf-8"))
                rid = row["rid"]
            except (ValueError, TypeError, KeyError):
                continue
            state.rids.add(str(rid))
        state.offset += complete
