"""Sharded append-only storage engine for the shared tuning-history service.

The north-star asks for a tuning archive that many concurrent campaigns —
processes on one node or clients behind the HTTP service — can read and
write safely.  :class:`~repro.core.history.HistoryDB`'s original format (one
JSON object rewritten wholesale on every save) cannot do that: two writers
lose each other's records and every append costs O(total records).

:class:`ShardedStore` replaces it with a directory of per-problem **shards**:

* each problem's records live in one append-only JSONL file (``<slug>.jsonl``,
  one JSON record per line) — an append writes only the new lines;
* writers take an **advisory exclusive lock** on a per-shard ``.lock`` file
  (``fcntl.flock``, with an ``O_EXCL`` spin-lock fallback on platforms
  without it), so concurrent appends from any number of processes serialize
  without losing records;
* every record carries a unique ``rid`` (record id).  Records pushed *with*
  an existing rid — e.g. a crowd-tuning client syncing an archive it pulled
  earlier — are deduplicated; records appended without one get a fresh rid,
  so legitimately repeated evaluations of the same configuration are kept;
* a torn trailing line from a crashed writer is skipped on read and dropped
  by :meth:`compact`, which rewrites a shard crash-safely (temp file in the
  same directory + ``os.replace``) while holding the shard lock;
* :meth:`etag` returns a content-defined version token (a hash over the
  shard's rid set) that changes on every append and is *stable across
  compaction* — the HTTP service uses it for conditional GETs and
  optimistic-concurrency PUTs.

:func:`content_fingerprint` hashes a record's payload (task, x, y) only; it
keys the surrogate-model cache (:mod:`repro.service.modelcache`), where two
campaigns holding the same evaluations should hit the same cache entry
regardless of rids.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "ShardedStore",
    "ShardLock",
    "ShardReadCache",
    "content_fingerprint",
    "canonical_payload",
]

try:  # POSIX advisory locking; Windows lacks fcntl
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None

_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
_PAYLOAD_KEYS = ("task", "x", "y")


def _slug(problem: str) -> str:
    """Reversible filesystem-safe encoding of a problem name."""
    out = []
    for ch in problem:
        if ch in _SAFE and ch != "%":
            out.append(ch)
        else:
            out.append("%" + format(ord(ch), "04x"))
    return "".join(out) or "%0000"


def _unslug(slug: str) -> str:
    out, i = [], 0
    while i < len(slug):
        if slug[i] == "%":
            out.append(chr(int(slug[i + 1 : i + 5], 16)))
            i += 5
        else:
            out.append(slug[i])
            i += 1
    return "".join(out)


def canonical_payload(record: Mapping[str, Any]) -> str:
    """Canonical JSON of a record's (task, x, y) payload.

    Sorted keys and fixed float formatting make the encoding independent of
    dict insertion order, so equal payloads hash equally everywhere.
    """
    payload = {
        "task": {str(k): v for k, v in record["task"].items()},
        "x": {str(k): v for k, v in record["x"].items()},
        "y": [float(v) for v in record["y"]],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_fingerprint(record: Mapping[str, Any]) -> str:
    """Content hash of one record's payload (rid-independent)."""
    return hashlib.sha1(canonical_payload(record).encode("utf-8")).hexdigest()


def _etag_of(rids) -> str:
    """Content-defined shard version: hash of the (deduplicated) rid set."""
    unique = sorted(set(rids))
    if not unique:
        return "empty"
    h = hashlib.sha1()
    for rid in unique:
        h.update(rid.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknown — err on the side of respecting the lock
    return True


class ShardLock:
    """Advisory exclusive lock on a shard's sidecar ``.lock`` file.

    The lock file is separate from the data file because :meth:`ShardedStore.compact`
    replaces the data file via ``os.replace`` — a lock held on the replaced
    inode would silently stop excluding later writers.

    Uses ``fcntl.flock`` where available (the kernel drops it when the
    holder dies, so staleness cannot arise).  Elsewhere falls back to an
    ``O_CREAT | O_EXCL`` spin lock whose lock file records the holder's
    pid: a waiter that finds the file **breaks** it when the recorded pid
    is no longer alive, or when the file's mtime is older than
    ``stale_after`` seconds (a holder that died before writing its pid, or
    on another machine).  Breaking goes through an ``os.rename`` so that
    of several concurrent breakers exactly one wins — the others see the
    file vanish and simply retry the ``O_EXCL`` create.  Each break is
    reported through ``on_event("service-lock-stale", ...)``.
    """

    def __init__(
        self,
        path: str,
        timeout: float = 30.0,
        poll: float = 0.005,
        stale_after: float = 30.0,
        on_event: Optional[Callable[[str, str], Any]] = None,
        use_flock: Optional[bool] = None,
    ):
        self.path = path
        self.timeout = float(timeout)
        self.poll = float(poll)
        self.stale_after = float(stale_after)
        self.on_event = on_event
        self._use_flock = (fcntl is not None) if use_flock is None else bool(use_flock)
        if self._use_flock and fcntl is None:  # pragma: no cover - off-POSIX
            raise RuntimeError("flock requested but fcntl is unavailable")
        self._fd: Optional[int] = None

    def acquire(self) -> None:
        """Block until the lock is held (non-reentrant)."""
        if self._fd is not None:
            raise RuntimeError("lock is not reentrant")
        if self._use_flock:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
            self._fd = fd
            return
        lockfile = self.path + ".x"
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(lockfile, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
            except FileExistsError:
                if self._break_stale(lockfile):
                    continue  # broken (or holder released); retry immediately
                if time.monotonic() >= deadline:
                    raise TimeoutError(f"could not lock {self.path}")
                time.sleep(self.poll)
                continue
            os.write(fd, str(os.getpid()).encode("ascii"))
            self._fd = fd
            return

    def _break_stale(self, lockfile: str) -> bool:
        """Remove ``lockfile`` if its holder is provably gone.

        Returns ``True`` when the caller should retry the create at once —
        either we broke the lock or it disappeared on its own.
        """
        try:
            st = os.stat(lockfile)
            with open(lockfile, "r", encoding="ascii", errors="replace") as fh:
                raw = fh.read().strip()
        except (FileNotFoundError, OSError):
            return True  # released (or already broken) while we looked
        try:
            pid = int(raw)
        except ValueError:
            pid = 0  # holder died between create and pid write, or foreign file
        if pid and _pid_alive(pid):
            return False
        if not pid and time.time() - st.st_mtime < self.stale_after:
            return False  # pid not written *yet* — give the holder time
        # exactly one breaker wins the rename; losers retry the O_EXCL create
        grave = f"{lockfile}.stale-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        try:
            os.rename(lockfile, grave)
        except (FileNotFoundError, OSError):
            return True
        try:
            os.unlink(grave)
        except OSError:  # pragma: no cover - grave cleanup is best-effort
            pass
        if self.on_event is not None:
            why = f"pid {pid} dead" if pid else f"no pid for >{self.stale_after:g}s"
            self.on_event("service-lock-stale", f"{self.path}: broke stale lock ({why})")
        return True

    def release(self) -> None:
        """Drop the lock; a no-op when it is not held."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if self._use_flock:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:
            os.close(fd)
            try:
                os.unlink(self.path + ".x")
            except FileNotFoundError:  # pragma: no cover - broken as stale
                pass

    def __enter__(self) -> "ShardLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _ShardState:
    """Per-shard read cache: byte offset consumed so far and known rids."""

    def __init__(self):
        self.offset = 0
        self.rids: Set[str] = set()
        self.etag: Optional[str] = None  # memo of _etag_of(rids)


class _CacheEntry:
    __slots__ = ("etag", "rows", "fingerprints", "nbytes")

    def __init__(self, etag: str, rows: List[Dict[str, Any]], nbytes: int):
        self.etag = etag
        self.rows = rows
        self.fingerprints: Optional[List[str]] = None  # computed lazily
        self.nbytes = nbytes


class ShardReadCache:
    """Etag-keyed LRU cache of parsed shards, bounded by a byte budget.

    Repeat ``query``/``records`` traffic against a hot shard re-reads and
    re-parses the same JSONL on every request; this cache keeps the parsed
    rows (and, lazily, their content fingerprints) keyed by the shard's
    content-defined etag, so an entry self-invalidates the moment the shard
    changes — an appended record changes the etag and the stale entry is
    simply never hit again.  Eviction is LRU over an approximate byte
    accounting (the shard's on-disk size), so one huge shard cannot pin the
    whole budget while small hot shards thrash.

    Thread-safe: the HTTP server's handler threads share one instance.
    Hits/misses/evictions are counted into ``metrics`` when attached
    (``repro_service_read_cache_{hits,misses,evictions}_total`` plus the
    ``repro_service_read_cache_bytes`` gauge).
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024, metrics=None):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_bytes = int(max_bytes)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._bytes = 0

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"repro_service_read_cache_{name}_total")

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("repro_service_read_cache_bytes", float(self._bytes))

    def get(self, problem: str, etag: str) -> Optional[_CacheEntry]:
        """The cached entry for ``problem`` iff it matches ``etag``."""
        with self._lock:
            entry = self._entries.get(problem)
            if entry is None or entry.etag != etag:
                self._count("misses")
                return None
            self._entries.move_to_end(problem)
            self._count("hits")
            return entry

    def put(self, problem: str, entry: _CacheEntry) -> None:
        """Insert/replace one shard's entry, evicting LRU past the budget."""
        with self._lock:
            old = self._entries.pop(problem, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[problem] = entry
            self._bytes += entry.nbytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._count("evictions")
            self._gauge()

    def invalidate(self, problem: str) -> None:
        """Drop one shard's entry (e.g. after a local append)."""
        with self._lock:
            entry = self._entries.pop(problem, None)
            if entry is not None:
                self._bytes -= entry.nbytes
                self._gauge()

    def stats(self) -> Dict[str, int]:
        """Current occupancy: ``{"entries", "bytes"}``."""
        with self._lock:
            return {"entries": len(self._entries), "bytes": self._bytes}


class ShardedStore:
    """Directory of per-problem append-only JSONL shards.

    Parameters
    ----------
    root:
        Directory holding the shards; created on first use.
    on_event:
        Optional ``callback(kind, detail)`` — e.g.
        :meth:`repro.runtime.trace.CampaignLog.record` — receiving service
        lifecycle events (``"service-append"``, ``"service-compact"``,
        ``"service-torn-line"``, ``"service-lock-stale"``).
    cache:
        Optional :class:`ShardReadCache`; when attached, :meth:`records`,
        :meth:`count` and :meth:`fingerprints` serve hot shards from parsed
        memory keyed by the shard's etag instead of re-reading the JSONL.
        Appends/compactions through *this* store invalidate eagerly; writes
        by other processes are caught by the etag key itself.
    """

    def __init__(
        self,
        root: str,
        on_event: Optional[Callable[[str, str], Any]] = None,
        cache: Optional[ShardReadCache] = None,
    ):
        self.root = str(root)
        self.on_event = on_event
        self.cache = cache
        self._shards: Dict[str, _ShardState] = {}
        os.makedirs(self.root, exist_ok=True)

    # -- paths ---------------------------------------------------------------
    def shard_path(self, problem: str) -> str:
        """Data file of one problem's shard."""
        return os.path.join(self.root, _slug(problem) + ".jsonl")

    def _lock(self, problem: str) -> ShardLock:
        return ShardLock(
            os.path.join(self.root, _slug(problem) + ".lock"), on_event=self._emit
        )

    def _emit(self, kind: str, detail: str) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    # -- queries -------------------------------------------------------------
    def problems(self) -> List[str]:
        """Problem names with a (possibly empty) shard on disk."""
        names = []
        for fname in os.listdir(self.root):
            if fname.endswith(".jsonl") and not fname.endswith(".compacting.jsonl"):
                names.append(_unslug(fname[: -len(".jsonl")]))
        return sorted(names)

    def records(self, problem: str, with_rid: bool = False) -> List[Dict[str, Any]]:
        """All valid records of one problem, in append order.

        ``with_rid=True`` keeps each record's ``rid`` key (needed to sync an
        archive into another store without duplicating it).
        """
        out = []
        for rec in self._cached_rows(problem):
            if not with_rid:
                rec = {k: rec[k] for k in _PAYLOAD_KEYS}
            else:
                rec = dict(rec)  # cached rows are shared; hand out copies
            out.append(rec)
        return out

    def count(self, problem: str) -> int:
        """Number of valid records in one shard."""
        return len(self._cached_rows(problem))

    def snapshot(self, problem: str) -> Tuple[List[Dict[str, Any]], str]:
        """A *consistent* ``(records, etag)`` pair of one shard.

        The etag is computed from the very rows returned (hash of their rid
        set), never read separately — so a reader racing appends or
        :meth:`compact` observes some complete prefix of the shard with
        exactly that prefix's etag, never a torn pairing.  The HTTP layer
        serves conditional GETs from this.  The returned rows are the
        cache's own (do not mutate); :meth:`records` hands out copies.
        """
        if self.cache is not None:
            current = self.etag(problem)
            entry = self.cache.get(problem, current)
            if entry is None:
                entry = self._fill_cache(problem)
            return entry.rows, entry.etag
        rows = self._read_all(problem)
        return rows, _etag_of(row["rid"] for row in rows)

    def fingerprints(self, problem: str) -> List[str]:
        """Content fingerprints of one shard's records, in append order.

        Served from the read cache when attached — the fingerprints are
        computed once per shard version and reused until the etag moves,
        which is what keeps repeat model-cache lookups off the SHA-1 path.
        """
        if self.cache is None:
            return [content_fingerprint(r) for r in self._read_all(problem)]
        current = self.etag(problem)
        entry = self.cache.get(problem, current)
        if entry is None:
            entry = self._fill_cache(problem)
        if entry.fingerprints is None:
            entry.fingerprints = [content_fingerprint(r) for r in entry.rows]
        return list(entry.fingerprints)

    def _cached_rows(self, problem: str) -> List[Dict[str, Any]]:
        """Parsed rows of one shard, through the read cache when attached."""
        return self.snapshot(problem)[0]

    def _fill_cache(self, problem: str) -> _CacheEntry:
        """Parse one shard and cache it keyed by the etag *of those rows*."""
        rows = self._read_all(problem)
        etag = _etag_of(row["rid"] for row in rows)
        try:
            nbytes = os.path.getsize(self.shard_path(problem))
        except OSError:
            nbytes = 0
        entry = _CacheEntry(etag, rows, max(nbytes, 1))
        self.cache.put(problem, entry)
        return entry

    def etag(self, problem: str) -> str:
        """Content-defined shard version: hash of the sorted rid set.

        Changes whenever a record is added or removed; unchanged by
        compaction (which preserves the rid set).  An empty shard's etag is
        the fixed token ``"empty"``.
        """
        self._refresh(problem)
        state = self._shards[problem]
        if state.etag is None:
            state.etag = _etag_of(state.rids)
        return state.etag

    def stats(self) -> Dict[str, Any]:
        """Store-wide summary: per-problem counts, etags, and disk bytes."""
        per: Dict[str, Any] = {}
        total = 0
        for name in self.problems():
            n = self.count(name)
            total += n
            path = self.shard_path(name)
            per[name] = {
                "count": n,
                "etag": self.etag(name),
                "bytes": os.path.getsize(path) if os.path.exists(path) else 0,
            }
        return {"root": self.root, "n_records": total, "problems": per}

    # -- updates -------------------------------------------------------------
    def prepare(self, records: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        """Validate records and normalize them into append-ready rows.

        Each row gets a ``rid`` (kept when the input carries one, freshly
        assigned otherwise).  Raises ``ValueError``/``TypeError`` on
        malformed input — :class:`~repro.service.batch.WriteBatcher` calls
        this *before* queueing, so one bad request can never fail the batch
        it would have ridden in.
        """
        prepared = []
        for rec in records:
            if not {"task", "x", "y"} <= set(rec):
                raise ValueError(f"malformed record {rec!r}")
            row = {
                "task": dict(rec["task"]),
                "x": dict(rec["x"]),
                "y": [float(v) for v in rec["y"]],
            }
            rid = rec.get("rid")
            row["rid"] = str(rid) if rid else uuid.uuid4().hex
            prepared.append(row)
        return prepared

    def append(self, problem: str, records: Sequence[Mapping[str, Any]]) -> List[str]:
        """Append records to one shard; returns the rids actually written.

        Records lacking a ``rid`` get a fresh unique one (repeated payloads
        are kept — re-measuring a configuration is legitimate).  Records
        carrying a ``rid`` already present in the shard are skipped, making
        archive syncs idempotent.  The write is one ``write`` + ``fsync`` of
        complete lines under the shard's exclusive lock, so concurrent
        appends interleave without tearing each other.
        """
        prepared = self.prepare(records)
        if not prepared:
            return []
        path = self.shard_path(problem)
        written: List[str] = []
        with self._lock(problem):
            self._refresh_locked(problem)
            state = self._shards[problem]
            lines = []
            for row in prepared:
                if row["rid"] in state.rids:
                    continue
                state.rids.add(row["rid"])
                written.append(row["rid"])
                lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
            if not written:
                return []
            state.etag = None
            blob = "\n".join(lines) + "\n"
            # a crashed writer may have left a torn, unterminated last line;
            # starting on a fresh line quarantines it for compaction to drop
            if state.offset > 0 and not self._ends_with_newline(path):
                blob = "\n" + blob
            fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            try:
                os.write(fd, blob.encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            state.offset = os.path.getsize(path)
        if self.cache is not None:
            self.cache.invalidate(problem)
        self._emit("service-append", f"{problem}: +{len(written)} record(s)")
        return written

    def clear(self, problem: str) -> None:
        """Drop one problem's shard entirely."""
        with self._lock(problem):
            try:
                os.unlink(self.shard_path(problem))
            except FileNotFoundError:
                pass
            self._shards.pop(problem, None)
        if self.cache is not None:
            self.cache.invalidate(problem)

    def compact(self, problem: str) -> Dict[str, int]:
        """Rewrite one shard: drop torn lines and duplicate rids.

        Crash-safe: the compacted content goes to a temp file in the shard
        directory, is fsynced, and replaces the shard atomically — a crash
        at any point leaves either the old or the new complete file.  Runs
        under the shard lock, so concurrent appends wait rather than vanish.
        """
        path = self.shard_path(problem)
        with self._lock(problem):
            rows, torn = self._parse(path)
            seen: Set[str] = set()
            kept = []
            for row in rows:
                if row["rid"] in seen:
                    continue
                seen.add(row["rid"])
                kept.append(row)
            tmp = path + ".compacting"
            with open(tmp, "w", encoding="utf-8") as fh:
                for row in kept:
                    fh.write(json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            state = _ShardState()
            state.offset = os.path.getsize(path)
            state.rids = seen
            self._shards[problem] = state
        if self.cache is not None:
            self.cache.invalidate(problem)
        dropped = len(rows) - len(kept)
        self._emit(
            "service-compact",
            f"{problem}: {len(kept)} record(s) kept, {dropped} duplicate(s), "
            f"{torn} torn line(s) dropped",
        )
        return {"kept": len(kept), "duplicates": dropped, "torn": torn}

    # -- shard IO ------------------------------------------------------------
    @staticmethod
    def _ends_with_newline(path: str) -> bool:
        try:
            with open(path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) == b"\n"
        except (OSError, ValueError):
            return True  # empty or missing file needs no separator

    def _parse(self, path: str) -> Tuple[List[Dict[str, Any]], int]:
        """All parseable rows of a shard file plus the count of torn lines."""
        if not os.path.exists(path):
            return [], 0
        rows, torn = [], 0
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    if not isinstance(row, dict) or not {"task", "x", "y", "rid"} <= set(row):
                        raise ValueError("not a record")
                except ValueError:
                    torn += 1
                    continue
                rows.append(row)
        if torn:
            self._emit("service-torn-line", f"{path}: {torn} unparseable line(s) skipped")
        return rows, torn

    def _read_all(self, problem: str) -> List[Dict[str, Any]]:
        rows, _ = self._parse(self.shard_path(problem))
        self._refresh(problem)  # keep the rid cache warm for etag/append
        return rows

    def _refresh(self, problem: str) -> None:
        with self._lock(problem):
            self._refresh_locked(problem)

    def _refresh_locked(self, problem: str) -> None:
        """Absorb shard bytes written since our cached offset (lock held).

        Compaction (ours or another process's) can shrink the file or
        rewrite history; a shrink invalidates the offset cache, so the shard
        is re-read from the start.
        """
        path = self.shard_path(problem)
        state = self._shards.setdefault(problem, _ShardState())
        size = os.path.getsize(path) if os.path.exists(path) else 0
        if size < state.offset:
            state.offset, state.rids, state.etag = 0, set(), None
        if size == state.offset:
            return
        with open(path, "rb") as fh:
            fh.seek(state.offset)
            tail = fh.read()
        # only complete (newline-terminated) lines advance the offset; a
        # torn tail is re-examined on the next refresh
        complete = tail.rfind(b"\n") + 1
        for line in tail[:complete].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line.decode("utf-8"))
                rid = row["rid"]
            except (ValueError, TypeError, KeyError):
                continue
            if str(rid) not in state.rids:
                state.rids.add(str(rid))
                state.etag = None
        state.offset += complete
