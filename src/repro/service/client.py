"""HTTP client for the tuning-history service (stdlib ``urllib`` only).

:class:`ServiceClient` speaks the wire format of
:mod:`repro.service.server` and deliberately duck-types the
:class:`~repro.core.history.HistoryDB` archive interface —
``records(problem)``, ``append(problem, records)``, ``count(problem)``,
``problems()`` — so a remote campaign crowd-tunes against the shared
database by passing a client wherever a history archive is accepted::

    client = ServiceClient("http://tuner-hub:8577")
    GPTune(problem, options, history=client).tune(tasks, n_samples=20)

Appends are plain by default (the server's shard locks serialize
concurrent writers without loss).  For read-modify-write flows,
:meth:`append` accepts the etag from a previous read as ``if_match`` and
raises :class:`StaleEtagError` when the shard moved underneath — the
optimistic-concurrency loop is then: re-read, reconcile, retry.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ServiceClient", "ServiceError", "StaleEtagError"]


class ServiceError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)


class StaleEtagError(ServiceError):
    """An ``If-Match`` append hit a shard that changed since it was read."""

    def __init__(self, message: str, etag: Optional[str]):
        super().__init__(412, message)
        self.etag = etag


class ServiceClient:
    """Client for one tuning-history service.

    Parameters
    ----------
    base_url:
        Service root, e.g. ``"http://127.0.0.1:8577"``.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- wire plumbing -------------------------------------------------------
    def _url(self, verb: str, problem: Optional[str] = None) -> str:
        url = f"{self.base_url}/v1/{verb}"
        if problem is not None:
            url += "/" + urllib.parse.quote(problem, safe="")
        return url

    def _request(
        self,
        method: str,
        url: str,
        body: Optional[Mapping[str, Any]] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urllib.request.Request(url, data=data, method=method)
        req.add_header("Accept", "application/json")
        if data is not None:
            req.add_header("Content-Type", "application/json")
        for k, v in (headers or {}).items():
            req.add_header(k, v)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read()
                status = resp.status
                hdrs = {k.lower(): v for k, v in resp.headers.items()}
        except urllib.error.HTTPError as e:
            raw = e.read()
            status = e.code
            hdrs = {k.lower(): v for k, v in (e.headers or {}).items()}
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")}
        return status, payload, hdrs

    @staticmethod
    def _check(status: int, payload: Dict[str, Any]) -> Dict[str, Any]:
        if status == 412:
            raise StaleEtagError(
                payload.get("error", "etag mismatch"), payload.get("etag")
            )
        if status >= 400:
            raise ServiceError(status, payload.get("error", "request failed"))
        return payload

    # -- archive interface (HistoryDB-compatible) ---------------------------
    def problems(self) -> List[str]:
        """Archived problem names."""
        _, payload, _ = self._request("GET", self._url("problems"))
        return list(self._check(200, payload)["problems"])

    def records(self, problem: str, etag: Optional[str] = None) -> List[Dict[str, Any]]:
        """All records of one problem (with rids, so re-pushes deduplicate).

        Passing a previously seen ``etag`` turns the read conditional: an
        unchanged shard answers ``304`` and this returns ``None`` so the
        caller keeps its cached copy.
        """
        headers = {"If-None-Match": f'"{etag}"'} if etag else None
        status, payload, _ = self._request(
            "GET", self._url("records", problem), headers=headers
        )
        if status == 304:
            return None  # type: ignore[return-value] - documented sentinel
        return list(self._check(status, payload)["records"])

    def count(self, problem: str) -> int:
        """Number of archived records for one problem."""
        return int(self.stats()["problems"].get(problem, {}).get("count", 0))

    def append(
        self,
        problem: str,
        records: Sequence[Mapping[str, Any]],
        if_match: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append records; returns ``{"appended", "rids", "etag"}``.

        With ``if_match`` set, raises :class:`StaleEtagError` if the shard's
        etag no longer matches (another campaign wrote in between).
        """
        headers = {"If-Match": f'"{if_match}"'} if if_match else None
        status, payload, _ = self._request(
            "POST", self._url("records", problem),
            body={"records": [dict(r) for r in records]}, headers=headers,
        )
        return self._check(status, payload)

    # -- service extras ------------------------------------------------------
    def etag(self, problem: str) -> str:
        """Current shard version token."""
        return str(self.stats()["problems"].get(problem, {}).get("etag", "empty"))

    def query(self, problem: str, task: Mapping[str, Any], k: Optional[int] = None) -> List[Dict[str, Any]]:
        """Nearest archived tasks: ``[{"task", "distance", "records"}, ...]``."""
        body: Dict[str, Any] = {"task": dict(task)}
        if k is not None:
            body["k"] = int(k)
        status, payload, _ = self._request("POST", self._url("query", problem), body=body)
        return list(self._check(status, payload)["matches"])

    def compact(self, problem: str) -> Dict[str, int]:
        """Ask the service to compact one shard."""
        status, payload, _ = self._request("POST", self._url("compact", problem), body={})
        return self._check(status, payload)

    def stats(self) -> Dict[str, Any]:
        """Store-wide summary (counts, etags, byte sizes)."""
        status, payload, _ = self._request("GET", self._url("stats"))
        return self._check(status, payload)
