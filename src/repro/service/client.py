"""HTTP client for the tuning-history service (stdlib ``http.client`` only).

:class:`ServiceClient` speaks the wire format of
:mod:`repro.service.server` and deliberately duck-types the
:class:`~repro.core.history.HistoryDB` archive interface —
``records(problem)``, ``append(problem, records)``, ``count(problem)``,
``problems()`` — so a remote campaign crowd-tunes against the shared
database by passing a client wherever a history archive is accepted::

    client = ServiceClient("http://tuner-hub:8577")
    GPTune(problem, options, history=client).tune(tasks, n_samples=20)

**Connection reuse.**  The client keeps a small thread-safe pool of
persistent keep-alive :class:`http.client.HTTPConnection` objects instead
of opening a fresh TCP connection per request — under crowd-tuning load
the TCP+slow-start handshake per request costs more than the request
itself.  A connection that the server closed (restart, idle timeout) is
discarded; **idempotent GETs** are then retried on a fresh connection with
the deterministic backoff of the shared
:class:`~repro.runtime.resilience.RetryPolicy`.  Non-idempotent POSTs are
never retried implicitly — the router layer retries appends only after
assigning client-side rids, which makes them exactly-once.

Appends are plain by default (the server's shard locks serialize
concurrent writers without loss).  For read-modify-write flows,
:meth:`append` accepts the etag from a previous read as ``if_match`` and
raises :class:`StaleEtagError` when the shard moved underneath — the
optimistic-concurrency loop is then: re-read, reconcile, retry.  A
saturated server (``429 Too Many Requests``) surfaces as a
:class:`ServiceError` whose ``retry_after`` carries the server's backoff
hint.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runtime.resilience import RetryPolicy

__all__ = ["ServiceClient", "ServiceError", "StaleEtagError"]

#: Errors that mean "this pooled connection is dead, not the request" —
#: safe to retry an idempotent request on a fresh connection.
_RETRYABLE = (
    http.client.HTTPException,
    ConnectionError,
    socket.timeout,
    OSError,
)


class ServiceError(RuntimeError):
    """The service answered with an error status.

    ``retry_after`` is the server's backoff hint in seconds (0 unless the
    response was ``429 Too Many Requests`` with a hint).
    """

    def __init__(self, status: int, message: str, retry_after: float = 0.0):
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.retry_after = float(retry_after)


class StaleEtagError(ServiceError):
    """An ``If-Match`` append hit a shard that changed since it was read."""

    def __init__(self, message: str, etag: Optional[str]):
        super().__init__(412, message)
        self.etag = etag


class _ConnectionPool:
    """Thread-safe pool of keep-alive connections to one host:port."""

    def __init__(self, host: str, port: int, timeout: float, size: int = 8):
        self.host, self.port, self.timeout = host, int(port), float(timeout)
        self.size = int(size)
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self.created = 0  # total connections ever opened (reuse diagnostic)

    def get(self) -> http.client.HTTPConnection:
        """An idle pooled connection, or a fresh one."""
        with self._lock:
            if self._idle:
                return self._idle.pop()
            self.created += 1
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def put(self, conn: http.client.HTTPConnection) -> None:
        """Return a healthy connection for reuse (closed if pool is full)."""
        with self._lock:
            if len(self._idle) < self.size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        """Close every idle pooled connection."""
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class ServiceClient:
    """Client for one tuning-history service.

    Parameters
    ----------
    base_url:
        Service root, e.g. ``"http://127.0.0.1:8577"``.
    timeout:
        Per-request socket timeout in seconds.
    retry:
        :class:`~repro.runtime.resilience.RetryPolicy` for idempotent GETs
        hitting a dead pooled connection (default: 3 attempts, 50 ms
        deterministic backoff).  ``RetryPolicy(max_attempts=1)`` disables.
    pool_size:
        Keep-alive connections retained per client.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        pool_size: int = 8,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, backoff=0.05, backoff_factor=2.0, seed=0
        )
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r} (http only)")
        if not split.hostname:
            raise ValueError(f"no host in {base_url!r}")
        self._prefix = split.path.rstrip("/")
        self._pool = _ConnectionPool(
            split.hostname, split.port or 80, self.timeout, size=pool_size
        )

    def close(self) -> None:
        """Close pooled keep-alive connections (the client stays usable)."""
        self._pool.close()

    # -- wire plumbing -------------------------------------------------------
    def _url(self, verb: str, problem: Optional[str] = None) -> str:
        path = f"{self._prefix}/v1/{verb}"
        if problem is not None:
            path += "/" + urllib.parse.quote(problem, safe="")
        return path

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if path.startswith("http://") or path.startswith("https://"):
            path = urllib.parse.urlsplit(path).path  # tolerate full URLs
        data = json.dumps(body).encode("utf-8") if body is not None else None
        hdrs = {"Accept": "application/json"}
        if data is not None:
            hdrs["Content-Type"] = "application/json"
        hdrs.update(headers or {})
        attempts = self.retry.max_attempts if method == "GET" else 1
        for attempt in range(1, attempts + 1):
            conn = self._pool.get()
            try:
                conn.request(method, path, body=data, headers=hdrs)
                resp = conn.getresponse()
                raw = resp.read()
                status = resp.status
                resp_headers = {k.lower(): v for k, v in resp.getheaders()}
            except _RETRYABLE:
                # the pooled connection died under us (server restart, idle
                # close); never reuse it, and retry only idempotent GETs
                conn.close()
                if attempt >= attempts:
                    raise
                time.sleep(self.retry.delay(attempt))
                continue
            if resp.will_close:
                conn.close()
            else:
                self._pool.put(conn)
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                payload = {"error": raw.decode("utf-8", "replace")}
            if not isinstance(payload, dict):
                payload = {"error": repr(payload)}
            return status, payload, resp_headers
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _check(status: int, payload: Dict[str, Any]) -> Dict[str, Any]:
        if status == 412:
            raise StaleEtagError(
                payload.get("error", "etag mismatch"), payload.get("etag")
            )
        if status >= 400:
            raise ServiceError(
                status,
                payload.get("error", "request failed"),
                retry_after=float(payload.get("retry_after", 0.0) or 0.0),
            )
        return payload

    # -- archive interface (HistoryDB-compatible) ---------------------------
    def problems(self) -> List[str]:
        """Archived problem names."""
        status, payload, _ = self._request("GET", self._url("problems"))
        return list(self._check(status, payload)["problems"])

    def records(self, problem: str, etag: Optional[str] = None) -> List[Dict[str, Any]]:
        """All records of one problem (with rids, so re-pushes deduplicate).

        Passing a previously seen ``etag`` turns the read conditional: an
        unchanged shard answers ``304`` and this returns ``None`` so the
        caller keeps its cached copy.
        """
        headers = {"If-None-Match": f'"{etag}"'} if etag else None
        status, payload, _ = self._request(
            "GET", self._url("records", problem), headers=headers
        )
        if status == 304:
            return None  # type: ignore[return-value] - documented sentinel
        return list(self._check(status, payload)["records"])

    def count(self, problem: str) -> int:
        """Number of archived records for one problem."""
        return int(self.stats()["problems"].get(problem, {}).get("count", 0))

    def append(
        self,
        problem: str,
        records: Sequence[Mapping[str, Any]],
        if_match: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Append records; returns ``{"appended", "rids", "etag"}``.

        With ``if_match`` set, raises :class:`StaleEtagError` if the shard's
        etag no longer matches (another campaign wrote in between).
        """
        headers = {"If-Match": f'"{if_match}"'} if if_match else None
        status, payload, _ = self._request(
            "POST", self._url("records", problem),
            body={"records": [dict(r) for r in records]}, headers=headers,
        )
        return self._check(status, payload)

    # -- service extras ------------------------------------------------------
    def etag(self, problem: str) -> str:
        """Current shard version token."""
        return str(self.stats()["problems"].get(problem, {}).get("etag", "empty"))

    def query(self, problem: str, task: Mapping[str, Any], k: Optional[int] = None) -> List[Dict[str, Any]]:
        """Nearest archived tasks: ``[{"task", "distance", "records"}, ...]``."""
        body: Dict[str, Any] = {"task": dict(task)}
        if k is not None:
            body["k"] = int(k)
        status, payload, _ = self._request("POST", self._url("query", problem), body=body)
        return list(self._check(status, payload)["matches"])

    def compact(self, problem: str) -> Dict[str, int]:
        """Ask the service to compact one shard."""
        status, payload, _ = self._request("POST", self._url("compact", problem), body={})
        return self._check(status, payload)

    def stats(self) -> Dict[str, Any]:
        """Store-wide summary (counts, etags, byte sizes)."""
        status, payload, _ = self._request("GET", self._url("stats"))
        return self._check(status, payload)
