"""Surrogate-model cache: reuse fitted LCM hyperparameters across campaigns.

The modeling phase dominates GPTune's tuner overhead (Table 3: multi-start
L-BFGS over the LCM likelihood).  Yet a resumed campaign, or a neighboring
one crowd-tuning against the same shared archive, refits from scratch on
(almost) the same data.  :class:`SurrogateCache` persists each successful
fit's flat hyperparameter vector θ keyed by the **content fingerprints** of
the records it was fitted on (:func:`repro.service.store.content_fingerprint`
— rid-independent, so two campaigns holding equal evaluations hit the same
entry).

Lookup matches loosely on purpose: a cached fit is reusable when its data is
a **subset or superset** of the querying campaign's data (same problem,
objective, and model shape).  The driver then warm-starts L-BFGS from the
cached θ with a *single* start instead of ``n_start`` cold multi-starts —
the posterior landscape barely moves when a handful of points are added, so
the cached optimum is an excellent initial iterate.

The cache is an append-only JSONL file guarded by the same advisory lock
machinery as the record shards, so concurrent campaigns can share one cache
file; :meth:`compact` bounds its growth by keeping the freshest entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from .store import ShardLock

__all__ = ["CachedFit", "SurrogateCache"]


class CachedFit:
    """One cached surrogate fit.

    Attributes
    ----------
    problem, objective:
        What the surrogate modeled.
    n_tasks, n_dims, n_latent:
        LCM shape (δ, input dimension incl. model features, Q); the flat θ
        is only meaningful for an identical shape.
    theta:
        The optimized flat hyperparameter vector.
    log_likelihood:
        The fit's log marginal likelihood (diagnostic).
    fingerprints:
        Content fingerprints of the records the fit saw.
    backend, n_inducing:
        The surrogate backend that produced θ and (for the sparse backend)
        its inducing-set size.  Both are part of the entry's identity and
        the lookup filter: a sparse fit's θ is optimized against the
        Nyström likelihood on M inducing rows and must never warm-start an
        exact fit (or a sparse fit with a different M), and vice versa.
        Rows written before this field existed load as
        ``("exact-lcm", 0)`` — exactly what produced them.
    """

    def __init__(
        self,
        problem: str,
        objective: int,
        n_tasks: int,
        n_dims: int,
        n_latent: int,
        theta: Sequence[float],
        log_likelihood: float,
        fingerprints: Iterable[str],
        backend: str = "exact-lcm",
        n_inducing: int = 0,
    ):
        self.problem = str(problem)
        self.objective = int(objective)
        self.n_tasks = int(n_tasks)
        self.n_dims = int(n_dims)
        self.n_latent = int(n_latent)
        self.theta = [float(v) for v in theta]
        self.log_likelihood = float(log_likelihood)
        self.fingerprints: FrozenSet[str] = frozenset(str(f) for f in fingerprints)
        self.backend = str(backend)
        self.n_inducing = int(n_inducing)

    @property
    def key(self) -> str:
        """Stable identity of this entry (backend + shape + data fingerprints)."""
        h = hashlib.sha1()
        h.update(
            f"{self.problem}|{self.objective}|{self.n_tasks}|{self.n_dims}"
            f"|{self.n_latent}|{self.backend}|{self.n_inducing}".encode()
        )
        for fp in sorted(self.fingerprints):
            h.update(fp.encode("ascii"))
        return h.hexdigest()

    def to_json(self) -> Dict[str, Any]:
        """The entry as one JSON-serializable cache row."""
        return {
            "problem": self.problem,
            "objective": self.objective,
            "n_tasks": self.n_tasks,
            "n_dims": self.n_dims,
            "n_latent": self.n_latent,
            "theta": self.theta,
            "log_likelihood": self.log_likelihood,
            "fingerprints": sorted(self.fingerprints),
            "backend": self.backend,
            "n_inducing": self.n_inducing,
        }

    @classmethod
    def from_json(cls, row: Mapping[str, Any]) -> "CachedFit":
        return cls(
            row["problem"],
            row["objective"],
            row["n_tasks"],
            row["n_dims"],
            row["n_latent"],
            row["theta"],
            row["log_likelihood"],
            row["fingerprints"],
            # rows from before the backend field were always exact fits
            backend=row.get("backend", "exact-lcm"),
            n_inducing=row.get("n_inducing", 0),
        )


class SurrogateCache:
    """JSONL-backed cache of fitted LCM hyperparameters.

    Parameters
    ----------
    path:
        Cache file (created on first :meth:`put`); its directory must exist
        or be creatable.
    min_overlap:
        Minimum Jaccard overlap ``|cached ∩ query| / |cached ∪ query|``
        for a subset/superset entry to count as a hit.  1.0 restricts
        lookups to exact data matches.
    """

    def __init__(self, path: str, min_overlap: float = 0.5):
        if not 0.0 < min_overlap <= 1.0:
            raise ValueError("min_overlap must be in (0, 1]")
        self.path = str(path)
        self.min_overlap = float(min_overlap)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._entries: Dict[str, CachedFit] = {}
        self._loaded_size = -1
        # memoized lookup results: query tuple -> best entry key (or None);
        # valid only for the currently loaded file version
        self._lookup_memo: Dict[Any, Optional[str]] = {}

    def _lock(self) -> ShardLock:
        return ShardLock(self.path + ".lock")

    def _load(self) -> None:
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        if size == self._loaded_size:
            return
        entries: Dict[str, CachedFit] = {}
        if size:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        fit = CachedFit.from_json(json.loads(line))
                    except (ValueError, KeyError, TypeError):
                        continue  # torn or foreign line
                    entries[fit.key] = fit  # later lines win
        self._entries = entries
        self._loaded_size = size
        self._lookup_memo.clear()  # memo keys are per file version

    # -- public API ----------------------------------------------------------
    def __len__(self) -> int:
        self._load()
        return len(self._entries)

    def entries(self) -> List[CachedFit]:
        """All cached fits (latest version per key)."""
        self._load()
        return list(self._entries.values())

    def put(self, fit: CachedFit) -> str:
        """Persist one fit; returns its key.  Idempotent per key."""
        with self._lock():
            self._load()
            if fit.key in self._entries:
                return fit.key
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(fit.to_json(), sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._entries[fit.key] = fit
            self._loaded_size = os.path.getsize(self.path)
            self._lookup_memo.clear()
        return fit.key

    def lookup(
        self,
        problem: str,
        objective: int,
        fingerprints: Iterable[str],
        n_tasks: int,
        n_dims: int,
        n_latent: int,
        backend: str = "exact-lcm",
        n_inducing: int = 0,
    ) -> Optional[CachedFit]:
        """Best reusable fit for the given data, or ``None``.

        A candidate must match the problem, objective, LCM shape, **and
        surrogate backend** (including the sparse backend's inducing count
        — θ optimized against a different likelihood is not a warm start,
        it is a wrong start), and its fingerprint set must be a subset or
        superset of the query's with Jaccard overlap ≥ ``min_overlap``.
        Among candidates the largest overlap wins (ties: higher log
        likelihood).

        Repeated lookups are memoized per loaded file version: a driver
        polling the cache every refit with the same (slowly growing) data
        pays the linear scan once, not once per iteration.  Any reload,
        :meth:`put`, or :meth:`compact` invalidates the memo.
        """
        query = frozenset(str(f) for f in fingerprints)
        if not query:
            return None
        self._load()
        memo_key = (
            str(problem), int(objective), query, int(n_tasks), int(n_dims),
            int(n_latent), str(backend), int(n_inducing),
        )
        if memo_key in self._lookup_memo:
            hit = self._lookup_memo[memo_key]
            return self._entries.get(hit) if hit is not None else None
        best: Optional[CachedFit] = None
        best_rank = (-1.0, -float("inf"))
        for fit in self._entries.values():
            if (
                fit.problem != problem
                or fit.objective != int(objective)
                or fit.n_tasks != int(n_tasks)
                or fit.n_dims != int(n_dims)
                or fit.n_latent != int(n_latent)
                or fit.backend != str(backend)
                or fit.n_inducing != int(n_inducing)
                or not fit.fingerprints
            ):
                continue
            if not (fit.fingerprints <= query or query <= fit.fingerprints):
                continue
            overlap = len(fit.fingerprints & query) / len(fit.fingerprints | query)
            if overlap < self.min_overlap:
                continue
            rank = (overlap, fit.log_likelihood)
            if rank > best_rank:
                best, best_rank = fit, rank
        if len(self._lookup_memo) >= 512:  # bound a long campaign's memo
            self._lookup_memo.clear()
        self._lookup_memo[memo_key] = best.key if best is not None else None
        return best

    def compact(self, keep_latest: int = 64) -> int:
        """Rewrite the cache keeping at most ``keep_latest`` entries per
        (problem, objective); returns the number of entries kept.

        "Latest" follows file order — entries appended later (fitted on more
        data, typically) survive.
        """
        if keep_latest < 1:
            raise ValueError("keep_latest must be >= 1")
        with self._lock():
            self._loaded_size = -1
            self._load()
            by_group: Dict[Any, List[CachedFit]] = {}
            for fit in self._entries.values():  # dict preserves file order
                by_group.setdefault((fit.problem, fit.objective), []).append(fit)
            kept: List[CachedFit] = []
            for group in by_group.values():
                kept.extend(group[-keep_latest:])
            tmp = self.path + ".compacting"
            with open(tmp, "w", encoding="utf-8") as fh:
                for fit in kept:
                    fh.write(json.dumps(fit.to_json(), sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._entries = {f.key: f for f in kept}
            self._loaded_size = os.path.getsize(self.path)
            self._lookup_memo.clear()
        return len(kept)
